//! Cross-crate property tests: the execution engine must be a *pure
//! optimization*. Selections computed through [`fairsel_engine::CiSession`]
//! — cached, batched, parallel — are compared against reference
//! implementations that call the testers directly, exactly as the paper's
//! pseudocode does.

/// Reference (engine-free) implementations of SeqSel and GrpSel: direct
/// tester invocations, depth-first recursion, no cache. These mirror the
/// paper's Algorithms 1–4 line by line and exist only as test oracles.
pub mod reference {
    use fairsel_ci::{CiTest, VarId};
    use fairsel_core::{Problem, SelectConfig, Selection};

    /// Algorithm 1 with direct tester calls.
    pub fn seqsel_direct<T: CiTest + ?Sized>(
        tester: &mut T,
        problem: &Problem,
        cfg: &SelectConfig,
    ) -> Selection {
        let subsets = cfg.admissible_subsets(&problem.admissible);
        let mut out = Selection::default();
        let mut remaining = Vec::new();
        for &x in &problem.features {
            let mut admitted = false;
            for sub in &subsets {
                out.tests_used += 1;
                if tester.ci(&[x], &problem.sensitive, sub).independent {
                    admitted = true;
                    break;
                }
            }
            if admitted {
                out.c1.push(x);
            } else {
                remaining.push(x);
            }
        }
        let mut cond: Vec<VarId> = problem.admissible.clone();
        cond.extend(&out.c1);
        for &x in &remaining {
            out.tests_used += 1;
            if tester.ci(&[x], &[problem.target], &cond).independent {
                out.c2.push(x);
            } else {
                out.rejected.push(x);
            }
        }
        out
    }

    /// Algorithms 2–4 with direct tester calls and depth-first halving.
    pub fn grpsel_direct<T: CiTest + ?Sized>(
        tester: &mut T,
        problem: &Problem,
        cfg: &SelectConfig,
    ) -> Selection {
        let subsets = cfg.admissible_subsets(&problem.admissible);
        let mut out = Selection::default();
        let mut remaining: Vec<VarId> = Vec::new();
        phase1(
            tester,
            problem,
            &subsets,
            &problem.features,
            &mut out,
            &mut remaining,
        );
        let mut cond: Vec<VarId> = problem.admissible.clone();
        cond.extend(&out.c1);
        phase2(tester, problem, &cond, &remaining, &mut out);
        out
    }

    fn phase1<T: CiTest + ?Sized>(
        tester: &mut T,
        problem: &Problem,
        subsets: &[Vec<VarId>],
        group: &[VarId],
        out: &mut Selection,
        remaining: &mut Vec<VarId>,
    ) {
        if group.is_empty() {
            return;
        }
        for sub in subsets {
            out.tests_used += 1;
            if tester.ci(group, &problem.sensitive, sub).independent {
                out.c1.extend_from_slice(group);
                return;
            }
        }
        if group.len() == 1 {
            remaining.push(group[0]);
            return;
        }
        let (left, right) = group.split_at(group.len() / 2);
        phase1(tester, problem, subsets, left, out, remaining);
        phase1(tester, problem, subsets, right, out, remaining);
    }

    fn phase2<T: CiTest + ?Sized>(
        tester: &mut T,
        problem: &Problem,
        cond: &[VarId],
        group: &[VarId],
        out: &mut Selection,
    ) {
        if group.is_empty() {
            return;
        }
        out.tests_used += 1;
        if tester.ci(group, &[problem.target], cond).independent {
            out.c2.extend_from_slice(group);
            return;
        }
        if group.len() == 1 {
            out.rejected.push(group[0]);
            return;
        }
        let (left, right) = group.split_at(group.len() / 2);
        phase2(tester, problem, cond, left, out);
        phase2(tester, problem, cond, right, out);
    }
}

#[cfg(test)]
mod tests {
    use super::reference::{grpsel_direct, seqsel_direct};
    use fairsel_ci::{GTest, OracleCi};
    use fairsel_core::{grpsel, grpsel_in, grpsel_par, seqsel, seqsel_in, Problem, SelectConfig};
    use fairsel_datasets::sim::sample_table;
    use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
    use fairsel_discovery::{pc, pc_in};
    use fairsel_engine::CiSession;
    use fairsel_graph::Dag;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(seed: u64, n: usize, biased: f64) -> (Dag, Problem) {
        let cfg = SyntheticConfig {
            n_features: n,
            biased_fraction: biased,
            ..Default::default()
        };
        let inst = synthetic_instance(&mut StdRng::seed_from_u64(seed), &cfg);
        let problem = Problem::from_roles(&inst.roles);
        (inst.dag, problem)
    }

    /// SeqSel through the engine is byte-identical to direct tester calls
    /// — same partition, same number of issued tests — across random
    /// oracle instances.
    #[test]
    fn seqsel_engine_equals_direct_oracle() {
        for seed in 0..20u64 {
            let (dag, problem) = instance(seed, 31, 0.2);
            let cfg = SelectConfig::default();
            let direct = seqsel_direct(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg);
            let engine = seqsel(&mut OracleCi::from_dag(dag), &problem, &cfg);
            assert_eq!(direct.c1, engine.c1, "seed {seed}");
            assert_eq!(direct.c2, engine.c2, "seed {seed}");
            assert_eq!(direct.rejected, engine.rejected, "seed {seed}");
            assert_eq!(direct.tests_used, engine.tests_used, "seed {seed}");
        }
    }

    /// GrpSel through the engine (frontier batches) equals the direct
    /// depth-first recursion: same partition as *sets* and the same test
    /// count (the frontier reorders queries, never adds or drops one).
    #[test]
    fn grpsel_engine_equals_direct_oracle() {
        for seed in 0..20u64 {
            let (dag, problem) = instance(seed, 37, 0.15);
            let cfg = SelectConfig::default();
            let direct =
                grpsel_direct(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg).normalized();
            let engine = grpsel(&mut OracleCi::from_dag(dag), &problem, &cfg).normalized();
            assert_eq!(direct.c1, engine.c1, "seed {seed}");
            assert_eq!(direct.c2, engine.c2, "seed {seed}");
            assert_eq!(direct.rejected, engine.rejected, "seed {seed}");
            assert_eq!(direct.tests_used, engine.tests_used, "seed {seed}");
        }
    }

    /// The equivalence also holds on sampled data with the G-test — the
    /// tester the paper uses for discrete benchmarks — including the
    /// parallel execution path.
    #[test]
    fn selections_equal_on_data_tester() {
        let cfg_inst = SyntheticConfig {
            n_features: 18,
            biased_fraction: 0.2,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let inst = synthetic_instance(&mut rng, &cfg_inst);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        let table = sample_table(&scm, &inst.roles, 3000, &mut rng);
        let problem = Problem::from_table(&table);
        let cfg = SelectConfig::default();

        let s_direct = seqsel_direct(&mut GTest::new(&table, 0.01), &problem, &cfg);
        let s_engine = seqsel(&mut GTest::new(&table, 0.01), &problem, &cfg);
        assert_eq!(s_direct.normalized(), s_engine.normalized());

        let g_direct = grpsel_direct(&mut GTest::new(&table, 0.01), &problem, &cfg).normalized();
        let g_engine = grpsel(&mut GTest::new(&table, 0.01), &problem, &cfg).normalized();
        assert_eq!(g_direct.c1, g_engine.c1);
        assert_eq!(g_direct.c2, g_engine.c2);
        assert_eq!(g_direct.rejected, g_engine.rejected);
        assert_eq!(g_direct.tests_used, g_engine.tests_used);

        for workers in [2usize, 4] {
            let mut tester = GTest::new(&table, 0.01);
            let g_par = grpsel_par(&mut tester, &problem, &cfg, None, workers).normalized();
            assert_eq!(g_direct.c1, g_par.c1, "workers {workers}");
            assert_eq!(g_direct.c2, g_par.c2);
            assert_eq!(g_direct.rejected, g_par.rejected);
            assert_eq!(g_direct.tests_used, g_par.tests_used);
        }
    }

    /// The acceptance-criterion test: a repeated-query workload through a
    /// shared session issues strictly fewer tests than the same workload
    /// against the bare tester. Replaying SeqSel is the extreme case —
    /// the second run is answered entirely from cache.
    #[test]
    fn cache_dedup_reduces_issued_tests() {
        let (dag, problem) = instance(11, 24, 0.2);
        let cfg = SelectConfig::default();

        // Direct: two runs cost exactly double.
        let mut tester = OracleCi::from_dag(dag.clone());
        let d1 = seqsel_direct(&mut tester, &problem, &cfg);
        let d2 = seqsel_direct(&mut tester, &problem, &cfg);
        let direct_total = d1.tests_used + d2.tests_used;

        // Shared session: the replay is free.
        let mut tester = OracleCi::from_dag(dag);
        let mut session = CiSession::new(&mut tester);
        let e1 = seqsel_in(&mut session, &problem, &cfg);
        let e2 = seqsel_in(&mut session, &problem, &cfg);
        assert_eq!(e1.tests_used, d1.tests_used, "cold run costs the same");
        assert_eq!(
            e1.clone().normalized().selected(),
            d1.clone().normalized().selected()
        );
        assert_eq!(e2.tests_used, 0, "replay must be fully cached");
        let engine_total = session.stats().issued;
        assert!(
            engine_total < direct_total,
            "engine {engine_total} !< direct {direct_total}"
        );
        assert_eq!(engine_total, d1.tests_used);
        assert!(session.stats().cache_hits >= d2.tests_used);
    }

    /// Sharing one session across algorithms also dedups: GrpSel's
    /// singleton phase-1 probes repeat queries SeqSel already issued.
    #[test]
    fn cross_algorithm_session_sharing_dedups() {
        let (dag, problem) = instance(13, 24, 0.3);
        let cfg = SelectConfig::default();

        let mut cold = OracleCi::from_dag(dag.clone());
        let grpsel_alone = grpsel(&mut cold, &problem, &cfg);

        let mut tester = OracleCi::from_dag(dag);
        let mut session = CiSession::new(&mut tester);
        let seq = seqsel_in(&mut session, &problem, &cfg);
        let grp = grpsel_in(&mut session, &problem, &cfg, None);
        assert_eq!(
            seq.selected(),
            grp.selected(),
            "algorithms agree under the oracle"
        );
        assert!(
            grp.tests_used < grpsel_alone.tests_used,
            "warm grpsel {} !< cold grpsel {}",
            grp.tests_used,
            grpsel_alone.tests_used
        );
        assert!(session.stats().cache_hits > 0);
    }

    /// PC through a warm session replays for free and returns the same
    /// CPDAG.
    #[test]
    fn pc_replay_is_cached() {
        let (dag, problem) = instance(17, 10, 0.2);
        let mut vars: Vec<usize> = problem.sensitive.clone();
        vars.extend(&problem.admissible);
        vars.extend(&problem.features);
        vars.push(problem.target);
        vars.sort_unstable();

        let cold = pc(&mut OracleCi::from_dag(dag.clone()), &vars, 2);

        let mut tester = OracleCi::from_dag(dag);
        let mut session = CiSession::new(&mut tester);
        let first = pc_in(&mut session, &vars, 2);
        let issued_after_first = session.stats().issued;
        let second = pc_in(&mut session, &vars, 2);
        assert_eq!(cold, first);
        assert_eq!(first, second);
        assert_eq!(
            session.stats().issued,
            issued_after_first,
            "replayed skeleton search must not issue new tests"
        );
    }

    /// Canonicalization across spellings: symmetric sides and reordered
    /// conditioning sets share one cache slot, even on a data tester.
    #[test]
    fn canonicalization_dedups_on_data() {
        let cfg_inst = SyntheticConfig {
            n_features: 6,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let inst = synthetic_instance(&mut rng, &cfg_inst);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        let table = sample_table(&scm, &inst.roles, 500, &mut rng);
        let mut tester = GTest::new(&table, 0.01);
        let mut session = CiSession::new(&mut tester);
        let a = session.query(&[0, 1], &[2], &[3, 4]);
        let b = session.query(&[2], &[1, 0], &[4, 3]);
        assert_eq!(a, b);
        assert_eq!(session.stats().issued, 1);
        assert_eq!(session.stats().cache_hits, 1);
    }

    /// End-to-end determinism: the engine-routed pipeline is reproducible
    /// under a fixed seed regardless of worker count.
    #[test]
    fn worker_count_never_changes_results() {
        let (dag, problem) = instance(23, 48, 0.1);
        let cfg = SelectConfig::default();
        let base = grpsel(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg);
        for workers in [1usize, 2, 3, 7, 16] {
            let mut tester = OracleCi::from_dag(dag.clone());
            let got = grpsel_par(&mut tester, &problem, &cfg, None, workers);
            assert_eq!(base.c1, got.c1, "workers {workers}");
            assert_eq!(base.c2, got.c2);
            assert_eq!(base.rejected, got.rejected);
            assert_eq!(base.tests_used, got.tests_used);
        }
    }

    /// Sanity: a non-trivial oracle CiTest invocation count flows through
    /// the whole stack (CountingCi wrapped *outside* the session sees
    /// exactly the issued tests).
    #[test]
    fn counting_wrapper_sees_only_issued() {
        let (dag, problem) = instance(29, 20, 0.2);
        let cfg = SelectConfig::default();
        let mut counted = fairsel_ci::CountingCi::new(OracleCi::from_dag(dag));
        let mut session = CiSession::new(&mut counted);
        let first = seqsel_in(&mut session, &problem, &cfg);
        let _second = seqsel_in(&mut session, &problem, &cfg);
        drop(session);
        assert_eq!(
            counted.count(),
            first.tests_used,
            "cache hits never reach the tester"
        );
    }
}

#[cfg(test)]
mod wide_group_regression {
    use fairsel_ci::GTest;
    use fairsel_core::{grpsel_par, seqsel, Problem, SelectConfig};
    use fairsel_datasets::sim::sample_table;
    use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Regression: a 32+-feature group query once overflowed the G-test's
    /// mixed-radix joint encoding (`joint_codes: joint arity overflow`).
    /// GrpSel's root group must survive arbitrary width on data testers.
    #[test]
    fn grpsel_gtest_survives_wide_groups() {
        let cfg_inst = SyntheticConfig {
            n_features: 36,
            biased_fraction: 0.15,
            predictive_fraction: 0.2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let inst = synthetic_instance(&mut rng, &cfg_inst);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        let table = sample_table(&scm, &inst.roles, 1200, &mut rng);
        let problem = Problem::from_table(&table);
        let cfg = SelectConfig::default();
        let mut tester = GTest::new(&table, 0.01);
        let sel = grpsel_par(&mut tester, &problem, &cfg, None, 4);
        // Partition covers every feature; no panic is the real assertion.
        assert_eq!(
            sel.c1.len() + sel.c2.len() + sel.rejected.len(),
            problem.n_features()
        );
        // SeqSel on the same data also runs (scalar sides, wide phase-2
        // conditioning set exercises the dense z-encoding).
        let mut tester = GTest::new(&table, 0.01);
        let seq = seqsel(&mut tester, &problem, &cfg);
        assert_eq!(
            seq.c1.len() + seq.c2.len() + seq.rejected.len(),
            problem.n_features()
        );
    }
}

#[cfg(test)]
mod frontier_order_regression {
    use super::reference::grpsel_direct;
    use fairsel_ci::{CiOutcome, CiTest, VarId};
    use fairsel_core::{grpsel, Problem, SelectConfig};

    /// Phase 1 always fails; phase 2 passes iff the group avoids `bad`.
    struct TwoPhase {
        sensitive: VarId,
        bad: Vec<VarId>,
    }

    impl CiTest for TwoPhase {
        fn ci(&mut self, x: &[VarId], y: &[VarId], _z: &[VarId]) -> CiOutcome {
            if y == [self.sensitive] {
                CiOutcome::decided(false)
            } else {
                CiOutcome::decided(!x.iter().any(|v| self.bad.contains(v)))
            }
        }
        fn n_vars(&self) -> usize {
            16
        }
    }

    /// Regression: the frontier planner exhausts phase-1 singletons in
    /// level (BFS) order, but phase-2 halving must run over the same
    /// member order as the depth-first recursion — otherwise its groups
    /// compose differently and test counts (and, with finite-sample
    /// testers, outcomes) diverge. This instance — every feature failing
    /// phase 1, phase-2 dependence exactly on {1,2} — told BFS and DFS
    /// apart before `remaining` was re-ordered.
    #[test]
    fn phase2_group_composition_matches_dfs() {
        let problem = Problem {
            sensitive: vec![10],
            admissible: vec![],
            features: (0..6).collect(),
            target: 11,
        };
        let cfg = SelectConfig::default();
        let mk = || TwoPhase {
            sensitive: 10,
            bad: vec![1, 2],
        };
        let direct = grpsel_direct(&mut mk(), &problem, &cfg).normalized();
        let engine = grpsel(&mut mk(), &problem, &cfg).normalized();
        // Same partition and — because phase-2 groups compose identically
        // — the same test count. (Emission order within c2 still differs:
        // the frontier admits level by level, DFS leaf by leaf.)
        assert_eq!(direct.c1, engine.c1);
        assert_eq!(direct.c2, engine.c2);
        assert_eq!(direct.rejected, engine.rejected);
        assert_eq!(direct.tests_used, engine.tests_used);
    }
}
