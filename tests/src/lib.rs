//! Cross-crate property tests: the execution engine must be a *pure
//! optimization*. Selections computed through [`fairsel_engine::CiSession`]
//! — cached, batched, parallel — are compared against reference
//! implementations that call the testers directly, exactly as the paper's
//! pseudocode does.

/// Reference (engine-free) implementations of SeqSel and GrpSel: direct
/// tester invocations, depth-first recursion, no cache. These mirror the
/// paper's Algorithms 1–4 line by line and exist only as test oracles.
pub mod reference {
    use fairsel_ci::{CiTest, VarId};
    use fairsel_core::{Problem, SelectConfig, Selection};

    /// Algorithm 1 with direct tester calls.
    pub fn seqsel_direct<T: CiTest + ?Sized>(
        tester: &mut T,
        problem: &Problem,
        cfg: &SelectConfig,
    ) -> Selection {
        let subsets = cfg.admissible_subsets(&problem.admissible);
        let mut out = Selection::default();
        let mut remaining = Vec::new();
        for &x in &problem.features {
            let mut admitted = false;
            for sub in &subsets {
                out.tests_used += 1;
                if tester.ci(&[x], &problem.sensitive, sub).independent {
                    admitted = true;
                    break;
                }
            }
            if admitted {
                out.c1.push(x);
            } else {
                remaining.push(x);
            }
        }
        let mut cond: Vec<VarId> = problem.admissible.clone();
        cond.extend(&out.c1);
        for &x in &remaining {
            out.tests_used += 1;
            if tester.ci(&[x], &[problem.target], &cond).independent {
                out.c2.push(x);
            } else {
                out.rejected.push(x);
            }
        }
        out
    }

    /// Algorithms 2–4 with direct tester calls and depth-first halving.
    pub fn grpsel_direct<T: CiTest + ?Sized>(
        tester: &mut T,
        problem: &Problem,
        cfg: &SelectConfig,
    ) -> Selection {
        let subsets = cfg.admissible_subsets(&problem.admissible);
        let mut out = Selection::default();
        let mut remaining: Vec<VarId> = Vec::new();
        phase1(
            tester,
            problem,
            &subsets,
            &problem.features,
            &mut out,
            &mut remaining,
        );
        let mut cond: Vec<VarId> = problem.admissible.clone();
        cond.extend(&out.c1);
        phase2(tester, problem, &cond, &remaining, &mut out);
        out
    }

    fn phase1<T: CiTest + ?Sized>(
        tester: &mut T,
        problem: &Problem,
        subsets: &[Vec<VarId>],
        group: &[VarId],
        out: &mut Selection,
        remaining: &mut Vec<VarId>,
    ) {
        if group.is_empty() {
            return;
        }
        for sub in subsets {
            out.tests_used += 1;
            if tester.ci(group, &problem.sensitive, sub).independent {
                out.c1.extend_from_slice(group);
                return;
            }
        }
        if group.len() == 1 {
            remaining.push(group[0]);
            return;
        }
        let (left, right) = group.split_at(group.len() / 2);
        phase1(tester, problem, subsets, left, out, remaining);
        phase1(tester, problem, subsets, right, out, remaining);
    }

    fn phase2<T: CiTest + ?Sized>(
        tester: &mut T,
        problem: &Problem,
        cond: &[VarId],
        group: &[VarId],
        out: &mut Selection,
    ) {
        if group.is_empty() {
            return;
        }
        out.tests_used += 1;
        if tester.ci(group, &[problem.target], cond).independent {
            out.c2.extend_from_slice(group);
            return;
        }
        if group.len() == 1 {
            out.rejected.push(group[0]);
            return;
        }
        let (left, right) = group.split_at(group.len() / 2);
        phase2(tester, problem, cond, left, out);
        phase2(tester, problem, cond, right, out);
    }
}

#[cfg(test)]
mod tests {
    use super::reference::{grpsel_direct, seqsel_direct};
    use fairsel_ci::{GTest, OracleCi};
    use fairsel_core::{grpsel, grpsel_in, grpsel_par, seqsel, seqsel_in, Problem, SelectConfig};
    use fairsel_datasets::sim::sample_table;
    use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
    use fairsel_discovery::{pc, pc_in};
    use fairsel_engine::CiSession;
    use fairsel_graph::Dag;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(seed: u64, n: usize, biased: f64) -> (Dag, Problem) {
        let cfg = SyntheticConfig {
            n_features: n,
            biased_fraction: biased,
            ..Default::default()
        };
        let inst = synthetic_instance(&mut StdRng::seed_from_u64(seed), &cfg);
        let problem = Problem::from_roles(&inst.roles);
        (inst.dag, problem)
    }

    /// SeqSel through the engine is byte-identical to direct tester calls
    /// — same partition, same number of issued tests — across random
    /// oracle instances.
    #[test]
    fn seqsel_engine_equals_direct_oracle() {
        for seed in 0..20u64 {
            let (dag, problem) = instance(seed, 31, 0.2);
            let cfg = SelectConfig::default();
            let direct = seqsel_direct(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg);
            let engine = seqsel(&mut OracleCi::from_dag(dag), &problem, &cfg);
            assert_eq!(direct.c1, engine.c1, "seed {seed}");
            assert_eq!(direct.c2, engine.c2, "seed {seed}");
            assert_eq!(direct.rejected, engine.rejected, "seed {seed}");
            assert_eq!(direct.tests_used, engine.tests_used, "seed {seed}");
        }
    }

    /// GrpSel through the engine (frontier batches) equals the direct
    /// depth-first recursion: same partition as *sets* and the same test
    /// count (the frontier reorders queries, never adds or drops one).
    #[test]
    fn grpsel_engine_equals_direct_oracle() {
        for seed in 0..20u64 {
            let (dag, problem) = instance(seed, 37, 0.15);
            let cfg = SelectConfig::default();
            let direct =
                grpsel_direct(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg).normalized();
            let engine = grpsel(&mut OracleCi::from_dag(dag), &problem, &cfg).normalized();
            assert_eq!(direct.c1, engine.c1, "seed {seed}");
            assert_eq!(direct.c2, engine.c2, "seed {seed}");
            assert_eq!(direct.rejected, engine.rejected, "seed {seed}");
            assert_eq!(direct.tests_used, engine.tests_used, "seed {seed}");
        }
    }

    /// The equivalence also holds on sampled data with the G-test — the
    /// tester the paper uses for discrete benchmarks — including the
    /// parallel execution path.
    #[test]
    fn selections_equal_on_data_tester() {
        let cfg_inst = SyntheticConfig {
            n_features: 18,
            biased_fraction: 0.2,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let inst = synthetic_instance(&mut rng, &cfg_inst);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        let table = sample_table(&scm, &inst.roles, 3000, &mut rng);
        let problem = Problem::from_table(&table);
        let cfg = SelectConfig::default();

        let s_direct = seqsel_direct(&mut GTest::new(&table, 0.01), &problem, &cfg);
        let s_engine = seqsel(&mut GTest::new(&table, 0.01), &problem, &cfg);
        assert_eq!(s_direct.normalized(), s_engine.normalized());

        let g_direct = grpsel_direct(&mut GTest::new(&table, 0.01), &problem, &cfg).normalized();
        let g_engine = grpsel(&mut GTest::new(&table, 0.01), &problem, &cfg).normalized();
        assert_eq!(g_direct.c1, g_engine.c1);
        assert_eq!(g_direct.c2, g_engine.c2);
        assert_eq!(g_direct.rejected, g_engine.rejected);
        assert_eq!(g_direct.tests_used, g_engine.tests_used);

        for workers in [2usize, 4] {
            let mut tester = GTest::new(&table, 0.01);
            let g_par = grpsel_par(&mut tester, &problem, &cfg, None, workers).normalized();
            assert_eq!(g_direct.c1, g_par.c1, "workers {workers}");
            assert_eq!(g_direct.c2, g_par.c2);
            assert_eq!(g_direct.rejected, g_par.rejected);
            assert_eq!(g_direct.tests_used, g_par.tests_used);
        }
    }

    /// The acceptance-criterion test: a repeated-query workload through a
    /// shared session issues strictly fewer tests than the same workload
    /// against the bare tester. Replaying SeqSel is the extreme case —
    /// the second run is answered entirely from cache.
    #[test]
    fn cache_dedup_reduces_issued_tests() {
        let (dag, problem) = instance(11, 24, 0.2);
        let cfg = SelectConfig::default();

        // Direct: two runs cost exactly double.
        let mut tester = OracleCi::from_dag(dag.clone());
        let d1 = seqsel_direct(&mut tester, &problem, &cfg);
        let d2 = seqsel_direct(&mut tester, &problem, &cfg);
        let direct_total = d1.tests_used + d2.tests_used;

        // Shared session: the replay is free.
        let mut tester = OracleCi::from_dag(dag);
        let mut session = CiSession::new(&mut tester);
        let e1 = seqsel_in(&mut session, &problem, &cfg);
        let e2 = seqsel_in(&mut session, &problem, &cfg);
        assert_eq!(e1.tests_used, d1.tests_used, "cold run costs the same");
        assert_eq!(
            e1.clone().normalized().selected(),
            d1.clone().normalized().selected()
        );
        assert_eq!(e2.tests_used, 0, "replay must be fully cached");
        let engine_total = session.stats().issued;
        assert!(
            engine_total < direct_total,
            "engine {engine_total} !< direct {direct_total}"
        );
        assert_eq!(engine_total, d1.tests_used);
        assert!(session.stats().cache_hits >= d2.tests_used);
    }

    /// Sharing one session across algorithms also dedups: GrpSel's
    /// singleton phase-1 probes repeat queries SeqSel already issued.
    #[test]
    fn cross_algorithm_session_sharing_dedups() {
        let (dag, problem) = instance(13, 24, 0.3);
        let cfg = SelectConfig::default();

        let mut cold = OracleCi::from_dag(dag.clone());
        let grpsel_alone = grpsel(&mut cold, &problem, &cfg);

        let mut tester = OracleCi::from_dag(dag);
        let mut session = CiSession::new(&mut tester);
        let seq = seqsel_in(&mut session, &problem, &cfg);
        let grp = grpsel_in(&mut session, &problem, &cfg, None);
        assert_eq!(
            seq.selected(),
            grp.selected(),
            "algorithms agree under the oracle"
        );
        assert!(
            grp.tests_used < grpsel_alone.tests_used,
            "warm grpsel {} !< cold grpsel {}",
            grp.tests_used,
            grpsel_alone.tests_used
        );
        assert!(session.stats().cache_hits > 0);
    }

    /// PC through a warm session replays for free and returns the same
    /// CPDAG.
    #[test]
    fn pc_replay_is_cached() {
        let (dag, problem) = instance(17, 10, 0.2);
        let mut vars: Vec<usize> = problem.sensitive.clone();
        vars.extend(&problem.admissible);
        vars.extend(&problem.features);
        vars.push(problem.target);
        vars.sort_unstable();

        let cold = pc(&mut OracleCi::from_dag(dag.clone()), &vars, 2);

        let mut tester = OracleCi::from_dag(dag);
        let mut session = CiSession::new(&mut tester);
        let first = pc_in(&mut session, &vars, 2);
        let issued_after_first = session.stats().issued;
        let second = pc_in(&mut session, &vars, 2);
        assert_eq!(cold, first);
        assert_eq!(first, second);
        assert_eq!(
            session.stats().issued,
            issued_after_first,
            "replayed skeleton search must not issue new tests"
        );
    }

    /// Canonicalization across spellings: symmetric sides and reordered
    /// conditioning sets share one cache slot, even on a data tester.
    #[test]
    fn canonicalization_dedups_on_data() {
        let cfg_inst = SyntheticConfig {
            n_features: 6,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let inst = synthetic_instance(&mut rng, &cfg_inst);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        let table = sample_table(&scm, &inst.roles, 500, &mut rng);
        let mut tester = GTest::new(&table, 0.01);
        let mut session = CiSession::new(&mut tester);
        let a = session.query(&[0, 1], &[2], &[3, 4]);
        let b = session.query(&[2], &[1, 0], &[4, 3]);
        assert_eq!(a, b);
        assert_eq!(session.stats().issued, 1);
        assert_eq!(session.stats().cache_hits, 1);
    }

    /// End-to-end determinism: the engine-routed pipeline is reproducible
    /// under a fixed seed regardless of worker count.
    #[test]
    fn worker_count_never_changes_results() {
        let (dag, problem) = instance(23, 48, 0.1);
        let cfg = SelectConfig::default();
        let base = grpsel(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg);
        for workers in [1usize, 2, 3, 7, 16] {
            let mut tester = OracleCi::from_dag(dag.clone());
            let got = grpsel_par(&mut tester, &problem, &cfg, None, workers);
            assert_eq!(base.c1, got.c1, "workers {workers}");
            assert_eq!(base.c2, got.c2);
            assert_eq!(base.rejected, got.rejected);
            assert_eq!(base.tests_used, got.tests_used);
        }
    }

    /// Sanity: a non-trivial oracle CiTest invocation count flows through
    /// the whole stack (CountingCi wrapped *outside* the session sees
    /// exactly the issued tests).
    #[test]
    fn counting_wrapper_sees_only_issued() {
        let (dag, problem) = instance(29, 20, 0.2);
        let cfg = SelectConfig::default();
        let mut counted = fairsel_ci::CountingCi::new(OracleCi::from_dag(dag));
        let mut session = CiSession::new(&mut counted);
        let first = seqsel_in(&mut session, &problem, &cfg);
        let _second = seqsel_in(&mut session, &problem, &cfg);
        drop(session);
        assert_eq!(
            counted.count(),
            first.tests_used,
            "cache hits never reach the tester"
        );
    }
}

#[cfg(test)]
mod wide_group_regression {
    use fairsel_ci::GTest;
    use fairsel_core::{grpsel_par, seqsel, Problem, SelectConfig};
    use fairsel_datasets::sim::sample_table;
    use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Regression: a 32+-feature group query once overflowed the G-test's
    /// mixed-radix joint encoding (`joint_codes: joint arity overflow`).
    /// GrpSel's root group must survive arbitrary width on data testers.
    #[test]
    fn grpsel_gtest_survives_wide_groups() {
        let cfg_inst = SyntheticConfig {
            n_features: 36,
            biased_fraction: 0.15,
            predictive_fraction: 0.2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let inst = synthetic_instance(&mut rng, &cfg_inst);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        let table = sample_table(&scm, &inst.roles, 1200, &mut rng);
        let problem = Problem::from_table(&table);
        let cfg = SelectConfig::default();
        let mut tester = GTest::new(&table, 0.01);
        let sel = grpsel_par(&mut tester, &problem, &cfg, None, 4);
        // Partition covers every feature; no panic is the real assertion.
        assert_eq!(
            sel.c1.len() + sel.c2.len() + sel.rejected.len(),
            problem.n_features()
        );
        // SeqSel on the same data also runs (scalar sides, wide phase-2
        // conditioning set exercises the dense z-encoding).
        let mut tester = GTest::new(&table, 0.01);
        let seq = seqsel(&mut tester, &problem, &cfg);
        assert_eq!(
            seq.c1.len() + seq.c2.len() + seq.rejected.len(),
            problem.n_features()
        );
    }
}

#[cfg(test)]
mod batch_equivalence {
    //! The `CiTestBatch` contract, verified: for every batch-aware data
    //! tester, `eval_batch` — direct, through the engine, or fanned across
    //! worker pools — returns outcomes *byte-identical* to sequential
    //! per-query evaluation, and batched GrpSel selections are
    //! byte-identical to the per-query engine path and to the
    //! pre-refactor encoding path.

    use super::reference::grpsel_direct;
    use fairsel_ci::{
        CiOutcome, CiQueryRef, CiTest, CiTestBatch, FisherZ, GTest, PermutationCmi, Rcit, VarId,
    };
    use fairsel_core::{grpsel, grpsel_batched, Problem, SelectConfig};
    use fairsel_datasets::sim::sample_table;
    use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
    use fairsel_engine::{CiQuery, CiSession};
    use fairsel_table::Table;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sampled(seed: u64, n_features: usize, rows: usize) -> Table {
        let cfg = SyntheticConfig {
            n_features,
            biased_fraction: 0.2,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = synthetic_instance(&mut rng, &cfg);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        sample_table(&scm, &inst.roles, rows, &mut rng)
    }

    /// Random query workload shaped like the selectors': group sides of
    /// 1–4 variables, conditioning sets of 0–3, with deliberate repeats.
    fn workload(rng: &mut StdRng, n_vars: usize, count: usize) -> Vec<CiQuery> {
        let side = |max: usize, rng: &mut StdRng| -> Vec<VarId> {
            let len = rng.gen_range(1..=max);
            (0..len).map(|_| rng.gen_range(0..n_vars)).collect()
        };
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let x = side(4, rng);
            let y = side(2, rng);
            let zlen = rng.gen_range(0..=3usize);
            let z: Vec<VarId> = (0..zlen).map(|_| rng.gen_range(0..n_vars)).collect();
            out.push(CiQuery::new(&x, &y, &z));
            if rng.gen_range(0..4) == 0 {
                // Symmetric respelling of the previous query.
                out.push(CiQuery::new(&y, &x, &z));
            }
        }
        out
    }

    /// One tester's equivalence check across every execution path.
    fn assert_batch_equivalence<'t, F>(make: F, queries: &[CiQuery], label: &str)
    where
        F: Fn() -> Box<dyn SharedBatch + 't>,
    {
        // Reference: sequential per-query shared evaluation.
        let reference: Vec<CiOutcome> = {
            let t = make();
            queries.iter().map(|q| t.ci(&q.x, &q.y, &q.z)).collect()
        };
        // Direct eval_batch on a fresh tester.
        let direct: Vec<CiOutcome> = {
            let t = make();
            let refs: Vec<CiQueryRef<'_>> = queries
                .iter()
                .map(|q| CiQueryRef {
                    x: &q.x,
                    y: &q.y,
                    z: &q.z,
                })
                .collect();
            t.batch(&refs)
        };
        assert_eq!(reference, direct, "{label}: eval_batch != sequential eval");
        // Engine-routed, workers 1 / 2 / 4.
        for workers in [1usize, 2, 4] {
            let t = make();
            let got = t.run_through_session(queries, workers);
            assert_eq!(
                reference, got,
                "{label}: engine batched (workers={workers}) diverged"
            );
        }
    }

    /// Object-safe adapter so one harness drives all three testers.
    trait SharedBatch {
        fn ci(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome;
        fn batch(&self, qs: &[CiQueryRef<'_>]) -> Vec<CiOutcome>;
        fn run_through_session(&self, qs: &[CiQuery], workers: usize) -> Vec<CiOutcome>;
    }

    impl<T: CiTestBatch> SharedBatch for T {
        fn ci(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
            self.ci_shared(x, y, z)
        }
        fn batch(&self, qs: &[CiQueryRef<'_>]) -> Vec<CiOutcome> {
            self.eval_batch(qs)
        }
        fn run_through_session(&self, qs: &[CiQuery], workers: usize) -> Vec<CiOutcome> {
            let mut session = CiSession::new(self);
            if workers > 1 {
                session.run_batch_batched_parallel(qs, workers)
            } else {
                session.run_batch_batched(qs)
            }
        }
    }

    #[test]
    fn every_data_tester_is_batch_equivalent() {
        let table = sampled(41, 12, 800);
        let n_vars = table.n_cols();
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let queries = workload(&mut rng, n_vars, 40);
            assert_batch_equivalence(|| Box::new(GTest::new(&table, 0.01)), &queries, "g-test");
            assert_batch_equivalence(
                || Box::new(PermutationCmi::new(&table, 0.05, 19, 7)),
                &queries,
                "perm-cmi",
            );
            assert_batch_equivalence(
                || Box::new(FisherZ::new(&table, 0.01)),
                &queries,
                "fisher-z",
            );
        }
    }

    /// RCIT — a *randomized* tester, sequential-only before its port to
    /// per-query derived RNG streams — satisfies the same contract: batch
    /// and engine-routed evaluation at workers 1/2/4 is byte-identical to
    /// sequential per-query evaluation, including symmetric respellings
    /// (which share one derived stream by canonicalization).
    #[test]
    fn rcit_is_batch_equivalent_at_every_worker_count() {
        let table = sampled(47, 8, 300);
        let n_vars = table.n_cols();
        for seed in 0..2u64 {
            let mut rng = StdRng::seed_from_u64(300 + seed);
            let queries = workload(&mut rng, n_vars, 12);
            assert_batch_equivalence(
                || Box::new(Rcit::with_alpha(&table, 0.01, 5)),
                &queries,
                "rcit",
            );
        }
    }

    /// GrpSel through the batched engine path is byte-identical to the
    /// per-query engine path at every worker count.
    #[test]
    fn grpsel_batched_matches_per_query() {
        let table = sampled(43, 20, 2000);
        let problem = Problem::from_table(&table);
        for cfg in [
            SelectConfig::default(),
            SelectConfig {
                max_group: Some(5),
                ..Default::default()
            },
        ] {
            let base = grpsel(&mut GTest::new(&table, 0.01), &problem, &cfg);
            for workers in [1usize, 2, 4] {
                let mut tester = GTest::new(&table, 0.01);
                let got = grpsel_batched(&mut tester, &problem, &cfg, None, workers);
                assert_eq!(base.c1, got.c1, "workers {workers}");
                assert_eq!(base.c2, got.c2);
                assert_eq!(base.rejected, got.rejected);
                assert_eq!(base.tests_used, got.tests_used);
            }
        }
    }

    /// The pre-refactor data path, preserved as a reference tester:
    /// per-query joint encodings straight off the `Table` (caller
    /// order, no cache), exactly as `GTest` computed before the
    /// `EncodedTable` layer existed.
    struct LegacyGTest<'a> {
        table: &'a Table,
        alpha: f64,
    }

    impl CiTest for LegacyGTest<'_> {
        fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
            if x.is_empty() || y.is_empty() {
                return CiOutcome::decided(true);
            }
            let (xc, _) = self.table.joint_codes_dense(x);
            let (yc, _) = self.table.joint_codes_dense(y);
            let (zc, _) = self.table.joint_codes_dense(z);
            let (g, p) = fairsel_ci::gtest::g_test_from_codes(&xc, &yc, &zc);
            CiOutcome {
                independent: p > self.alpha,
                p_value: p,
                statistic: g,
            }
        }
        fn n_vars(&self) -> usize {
            self.table.n_cols()
        }
    }

    /// Selections through the new encoded, batched stack are identical to
    /// the pre-refactor per-query path (same partition, same test count)
    /// — the encoding layer is a pure optimization.
    #[test]
    fn selections_match_pre_refactor_path() {
        for seed in [3u64, 17, 29] {
            let table = sampled(seed, 18, 2500);
            let problem = Problem::from_table(&table);
            let cfg = SelectConfig::default();
            let legacy = grpsel_direct(
                &mut LegacyGTest {
                    table: &table,
                    alpha: 0.01,
                },
                &problem,
                &cfg,
            )
            .normalized();
            let mut tester = GTest::new(&table, 0.01);
            let new = grpsel_batched(&mut tester, &problem, &cfg, None, 4).normalized();
            assert_eq!(legacy.c1, new.c1, "seed {seed}");
            assert_eq!(legacy.c2, new.c2, "seed {seed}");
            assert_eq!(legacy.rejected, new.rejected, "seed {seed}");
            assert_eq!(legacy.tests_used, new.tests_used, "seed {seed}");
        }
    }
}

#[cfg(test)]
mod grouped_equivalence {
    //! The Z-grouped scheduler contract, verified for every batch-aware
    //! data tester: `eval_z_group` — called directly with the canonical
    //! conditioning set, or through the engine's grouped scheduler
    //! (`run_batch_grouped`) at workers 1/2/4/8 — returns outcomes
    //! **byte-identical** to sequential per-query `ci_shared`, on
    //! workloads with duplicated and symmetrically-respelled conditioning
    //! sets; and GrpSel selections are byte-identical with speculation on
    //! or off, with `issued` conserved.

    use fairsel_ci::{
        CiOutcome, CiQueryRef, CiTestBatch, FisherZ, GTest, PermutationCmi, Rcit, VarId,
    };
    use fairsel_core::{grpsel_batched_in, Problem, SelectConfig};
    use fairsel_datasets::sim::sample_table;
    use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
    use fairsel_engine::{CiQuery, CiSession};
    use fairsel_table::Table;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sampled(seed: u64, n_features: usize, rows: usize) -> Table {
        let cfg = SyntheticConfig {
            n_features,
            biased_fraction: 0.25,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = synthetic_instance(&mut rng, &cfg);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        sample_table(&scm, &inst.roles, rows, &mut rng)
    }

    /// A frontier-shaped workload: many queries share few conditioning
    /// sets (the Z-group structure), with deliberate repeats, reordered /
    /// duplicated conditioning spellings, and symmetric side swaps.
    fn grouped_workload(rng: &mut StdRng, n_vars: usize, count: usize) -> Vec<CiQuery> {
        let zsets: Vec<Vec<VarId>> = vec![
            vec![],
            vec![rng.gen_range(0..n_vars)],
            (0..3).map(|_| rng.gen_range(0..n_vars)).collect(),
        ];
        let mut out = Vec::with_capacity(count * 2);
        for _ in 0..count {
            let xlen = rng.gen_range(1..=3usize);
            let x: Vec<VarId> = (0..xlen).map(|_| rng.gen_range(0..n_vars)).collect();
            let y = vec![rng.gen_range(0..n_vars)];
            let z = &zsets[rng.gen_range(0..zsets.len())];
            out.push(CiQuery::new(&x, &y, z));
            match rng.gen_range(0..3) {
                0 => {
                    // Symmetric respelling of the same query.
                    out.push(CiQuery::new(&y, &x, z));
                }
                1 => {
                    // Same conditioning set, reordered with a duplicate.
                    let mut respelled = z.clone();
                    respelled.reverse();
                    if let Some(&v) = respelled.first() {
                        respelled.push(v);
                    }
                    out.push(CiQuery::new(&x, &y, &respelled));
                }
                _ => {}
            }
        }
        out
    }

    /// Run one tester through every grouped execution shape and compare
    /// to sequential per-query evaluation.
    fn assert_grouped_equivalence<T, F>(make: F, queries: &[CiQuery], label: &str)
    where
        T: CiTestBatch,
        F: Fn() -> T,
    {
        let reference: Vec<CiOutcome> = {
            let t = make();
            queries
                .iter()
                .map(|q| t.ci_shared(&q.x, &q.y, &q.z))
                .collect()
        };
        // Direct trait call, one group per canonical conditioning set.
        {
            let t = make();
            let mut order: Vec<Vec<VarId>> = Vec::new();
            let mut members: Vec<Vec<usize>> = Vec::new();
            for (i, q) in queries.iter().enumerate() {
                let mut zkey = q.z.clone();
                zkey.sort_unstable();
                zkey.dedup();
                match order.iter().position(|z| *z == zkey) {
                    Some(g) => members[g].push(i),
                    None => {
                        order.push(zkey);
                        members.push(vec![i]);
                    }
                }
            }
            for (zkey, idxs) in order.iter().zip(&members) {
                let refs: Vec<CiQueryRef<'_>> = idxs
                    .iter()
                    .map(|&i| CiQueryRef {
                        x: &queries[i].x,
                        y: &queries[i].y,
                        z: &queries[i].z,
                    })
                    .collect();
                let outs = t.eval_z_group(zkey, &refs);
                for (&i, out) in idxs.iter().zip(&outs) {
                    assert_eq!(
                        reference[i], *out,
                        "{label}: direct eval_z_group diverged at query {i}"
                    );
                }
            }
        }
        // Engine-routed grouped scheduler at every worker count.
        for workers in [1usize, 2, 4, 8] {
            let t = make();
            let mut session = CiSession::new(&t);
            let got = session.run_batch_grouped(queries, &[], workers);
            assert_eq!(
                reference, got,
                "{label}: grouped scheduler (workers={workers}) diverged"
            );
            assert_eq!(session.stats().grouped_batches, 1);
        }
    }

    #[test]
    fn gtest_and_fisherz_grouped_equivalence() {
        let table = sampled(61, 12, 900);
        let n_vars = table.n_cols();
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(500 + seed);
            let queries = grouped_workload(&mut rng, n_vars, 30);
            assert_grouped_equivalence(|| GTest::new(&table, 0.01), &queries, "g-test");
            assert_grouped_equivalence(|| FisherZ::new(&table, 0.01), &queries, "fisher-z");
        }
    }

    #[test]
    fn perm_cmi_and_rcit_grouped_equivalence() {
        let table = sampled(67, 8, 300);
        let n_vars = table.n_cols();
        let mut rng = StdRng::seed_from_u64(700);
        let queries = grouped_workload(&mut rng, n_vars, 10);
        assert_grouped_equivalence(
            || PermutationCmi::new(&table, 0.05, 19, 7),
            &queries,
            "perm-cmi",
        );
        assert_grouped_equivalence(|| Rcit::with_alpha(&table, 0.01, 5), &queries, "rcit");
    }

    /// Wide-arity group sides exercise the dense/hashed boundary of the
    /// grouped G computation (the dense cell space overflows its budget
    /// and must fall back byte-identically).
    #[test]
    fn gtest_grouped_equivalence_on_wide_group_sides() {
        let table = sampled(71, 30, 500);
        let n_vars = table.n_cols();
        let mut rng = StdRng::seed_from_u64(900);
        let mut queries = Vec::new();
        for _ in 0..12 {
            let xlen = rng.gen_range(8..=14usize);
            let x: Vec<VarId> = (0..xlen).map(|_| rng.gen_range(0..n_vars)).collect();
            let y = vec![rng.gen_range(0..n_vars)];
            let z: Vec<VarId> = (0..2).map(|_| rng.gen_range(0..n_vars)).collect();
            queries.push(CiQuery::new(&x, &y, &z));
        }
        assert_grouped_equivalence(|| GTest::new(&table, 0.01), &queries, "g-test/wide");
    }

    /// Speculation on/off: byte-identical selections at every worker
    /// count, and exact conservation of issued work
    /// (`issued_spec + speculative_hits == issued_plain`).
    #[test]
    fn speculation_preserves_selections_and_conserves_issued() {
        let table = sampled(73, 20, 1500);
        let problem = Problem::from_table(&table);
        let base_cfg = SelectConfig {
            max_group: Some(5),
            ..Default::default()
        };
        let mut plain_session = CiSession::new(GTest::new(&table, 0.01));
        let plain = grpsel_batched_in(&mut plain_session, &problem, &base_cfg, None, 1);
        let plain_issued = plain_session.stats().issued;
        assert_eq!(plain_session.stats().speculative_issued, 0);

        let spec_cfg = SelectConfig {
            speculate: true,
            ..base_cfg.clone()
        };
        for workers in [1usize, 4, 8] {
            let mut session = CiSession::new(GTest::new(&table, 0.01));
            let got = grpsel_batched_in(&mut session, &problem, &spec_cfg, None, workers);
            assert_eq!(plain.c1, got.c1, "workers {workers}");
            assert_eq!(plain.c2, got.c2, "workers {workers}");
            assert_eq!(plain.rejected, got.rejected, "workers {workers}");
            let stats = session.stats();
            assert!(stats.speculative_issued > 0, "workers {workers}");
            assert_eq!(
                stats.issued + stats.speculative_hits,
                plain_issued,
                "workers {workers}: speculation must conserve issued work"
            );
        }
    }
}

#[cfg(test)]
mod kernel_identity {
    //! The hardware-shaped kernel contract: every kernel generation —
    //! narrow (u8/u16/u32) code widths + dense counting arenas vs the
    //! pre-kernel reference paths, and blocked vs naive linear algebra —
    //! produces **bit-identical** p-values, statistics, and selection
    //! reports, at every worker count, on tables spanning all three
    //! storage widths (including joints that overflow u16).

    use fairsel_ci::{CiOutcome, CiTestBatch, FisherZ, GTest, KernelMode, PermutationCmi};
    use fairsel_core::{grpsel_batched_in, Problem, SelectConfig};
    use fairsel_datasets::sim::sample_table;
    use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
    use fairsel_engine::{CiQuery, CiSession};
    use fairsel_table::{Column, Role, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Mixed-width table: binary columns (u8 codes), ~300-arity columns
    /// (u16), and a 70 000-arity column (u32); conditioning on the two
    /// medium columns together overflows u16 at compose time.
    fn mixed_width_table(rows: usize, seed: u64) -> Table {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let gen = |arity: u32, next: &mut dyn FnMut() -> u64| -> Vec<u32> {
            (0..rows).map(|_| (next() % arity as u64) as u32).collect()
        };
        let mut cols = Vec::new();
        for i in 0..4 {
            cols.push(Column::cat(
                format!("b{i}"),
                Role::Feature,
                gen(2, &mut next),
                2,
            ));
        }
        for i in 0..2 {
            cols.push(Column::cat(
                format!("m{i}"),
                Role::Feature,
                gen(300, &mut next),
                300,
            ));
        }
        cols.push(Column::cat(
            "w0",
            Role::Feature,
            gen(70_000, &mut next),
            70_000,
        ));
        Table::new(cols).unwrap()
    }

    /// Queries touching every width tier: u8/u16/u32 sides, empty and
    /// wide conditioning sets, and a joint Z whose arity overflows u16.
    fn width_workload() -> Vec<CiQuery> {
        vec![
            CiQuery::new(&[0], &[1], &[]),
            CiQuery::new(&[0], &[4], &[2]),
            CiQuery::new(&[1], &[2], &[4]),
            CiQuery::new(&[0], &[1], &[4, 5]),
            CiQuery::new(&[2], &[3], &[6]),
            CiQuery::new(&[4], &[0], &[1, 6]),
            CiQuery::new(&[0, 1], &[2], &[4]),
            CiQuery::new(&[4], &[5], &[0, 1]),
        ]
    }

    fn grouped_outcomes<T: CiTestBatch>(
        t: &T,
        queries: &[CiQuery],
        workers: usize,
    ) -> Vec<CiOutcome> {
        let mut session = CiSession::new(t);
        session.run_batch_grouped(queries, &[], workers)
    }

    fn assert_bits(a: &[CiOutcome], b: &[CiOutcome], label: &str) {
        assert_eq!(a.len(), b.len(), "{label}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.independent, y.independent, "{label}[{i}]: verdict");
            assert_eq!(
                x.p_value.to_bits(),
                y.p_value.to_bits(),
                "{label}[{i}]: p-value bits ({} vs {})",
                x.p_value,
                y.p_value
            );
            assert_eq!(
                x.statistic.to_bits(),
                y.statistic.to_bits(),
                "{label}[{i}]: statistic bits ({} vs {})",
                x.statistic,
                y.statistic
            );
        }
    }

    #[test]
    fn gtest_kernel_modes_bit_identical_across_widths() {
        let table = mixed_width_table(1200, 3);
        let queries = width_workload();
        let reference = {
            let t = GTest::new(&table, 0.01).with_kernel_mode(KernelMode::Reference);
            grouped_outcomes(&t, &queries, 1)
        };
        for workers in [1usize, 2, 4, 8] {
            let t = GTest::new(&table, 0.01);
            let got = grouped_outcomes(&t, &queries, workers);
            assert_bits(&reference, &got, &format!("g-test workers={workers}"));
        }
    }

    #[test]
    fn perm_cmi_kernel_modes_bit_identical_across_widths() {
        let table = mixed_width_table(700, 5);
        let queries = width_workload();
        let reference = {
            let t =
                PermutationCmi::new(&table, 0.05, 19, 7).with_kernel_mode(KernelMode::Reference);
            grouped_outcomes(&t, &queries, 1)
        };
        for workers in [1usize, 2, 4, 8] {
            let t = PermutationCmi::new(&table, 0.05, 19, 7);
            let got = grouped_outcomes(&t, &queries, workers);
            assert_bits(&reference, &got, &format!("perm-cmi workers={workers}"));
        }
    }

    fn sampled(seed: u64, n_features: usize, rows: usize) -> Table {
        let cfg = SyntheticConfig {
            n_features,
            biased_fraction: 0.25,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = synthetic_instance(&mut rng, &cfg);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        sample_table(&scm, &inst.roles, rows, &mut rng)
    }

    #[test]
    fn fisherz_blocked_vs_naive_bit_identical() {
        let table = sampled(81, 14, 1100);
        let n_vars = table.n_cols();
        let queries: Vec<CiQuery> = (0..n_vars - 1)
            .map(|i| CiQuery::new(&[i], &[i + 1], &[(i + 2) % n_vars, (i + 5) % n_vars]))
            .collect();
        let reference = {
            fairsel_math::set_naive_kernels(true);
            let t = FisherZ::new(&table, 0.01);
            let out = grouped_outcomes(&t, &queries, 1);
            fairsel_math::set_naive_kernels(false);
            out
        };
        for workers in [1usize, 2, 4, 8] {
            let t = FisherZ::new(&table, 0.01);
            let got = grouped_outcomes(&t, &queries, workers);
            assert_bits(&reference, &got, &format!("fisher-z workers={workers}"));
        }
    }

    /// End-to-end: GrpSel selection reports are identical across kernel
    /// generations at every worker count.
    #[test]
    fn selections_identical_across_kernel_modes() {
        let table = sampled(83, 18, 1400);
        let problem = Problem::from_table(&table);
        let cfg = SelectConfig {
            max_group: Some(5),
            ..Default::default()
        };
        let reference = {
            let mut session =
                CiSession::new(GTest::new(&table, 0.01).with_kernel_mode(KernelMode::Reference));
            grpsel_batched_in(&mut session, &problem, &cfg, None, 1)
        };
        for workers in [1usize, 4, 8] {
            let mut session = CiSession::new(GTest::new(&table, 0.01));
            let got = grpsel_batched_in(&mut session, &problem, &cfg, None, workers);
            assert_eq!(reference.c1, got.c1, "workers {workers}");
            assert_eq!(reference.c2, got.c2, "workers {workers}");
            assert_eq!(reference.rejected, got.rejected, "workers {workers}");
        }
        // Fisher-z selections: blocked vs forced-naive kernels.
        let fz_ref = {
            fairsel_math::set_naive_kernels(true);
            let mut session = CiSession::new(FisherZ::new(&table, 0.01));
            let out = grpsel_batched_in(&mut session, &problem, &cfg, None, 1);
            fairsel_math::set_naive_kernels(false);
            out
        };
        let mut session = CiSession::new(FisherZ::new(&table, 0.01));
        let got = grpsel_batched_in(&mut session, &problem, &cfg, None, 4);
        assert_eq!(fz_ref.c1, got.c1);
        assert_eq!(fz_ref.c2, got.c2);
        assert_eq!(fz_ref.rejected, got.rejected);
    }
}

#[cfg(test)]
mod wide_group_power {
    //! The `max_group` knob: on wide discrete data the all-features root
    //! group is statistically vacuous (one category per row ⇒ no degrees
    //! of freedom ⇒ p = 1 ⇒ the root "passes" and biased features leak
    //! into C₁). Pre-splitting to width ⌊log₂ rows⌋ restores power.

    use fairsel_ci::{GTest, OracleCi};
    use fairsel_core::{grpsel, grpsel_batched, Problem, SelectConfig};
    use fairsel_datasets::fixtures;
    use fairsel_datasets::sim::sample_table;
    use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn max_group_recovers_phase1_truth_on_wide_data() {
        let cfg_inst = SyntheticConfig {
            n_features: 48,
            biased_fraction: 0.15,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let rows = 2000;
        let mut rng = StdRng::seed_from_u64(1);
        let inst = synthetic_instance(&mut rng, &cfg_inst);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        let table = sample_table(&scm, &inst.roles, rows, &mut rng);
        let problem = Problem::from_table(&table);

        let truth = grpsel(
            &mut OracleCi::from_dag(inst.dag.clone()),
            &problem,
            &SelectConfig::default(),
        )
        .normalized();
        assert!(
            !truth.rejected.is_empty(),
            "instance must have biased features"
        );

        // Without the knob: the wide root passes vacuously and every
        // biased feature leaks into C1.
        let mut wide_tester = GTest::new(&table, 0.01);
        let wide = grpsel_batched(
            &mut wide_tester,
            &problem,
            &SelectConfig::default(),
            None,
            1,
        )
        .normalized();
        assert_eq!(
            wide.c1.len(),
            problem.n_features(),
            "wide-group G-test should vacuously admit everything"
        );

        // With max_group = ⌊log2 rows⌋: phase 1 recovers the oracle C1
        // exactly — biased features no longer smuggled in.
        let cfg = SelectConfig {
            max_group: Some(SelectConfig::auto_max_group(rows)),
            ..Default::default()
        };
        assert_eq!(SelectConfig::auto_max_group(rows), 10);
        let mut tester = GTest::new(&table, 0.01);
        let narrow = grpsel_batched(&mut tester, &problem, &cfg, None, 1).normalized();
        assert_eq!(narrow.c1, truth.c1, "phase-1 recovery of the oracle C1");
        for rejected in &truth.rejected {
            assert!(
                !narrow.c1.contains(rejected),
                "biased feature {rejected} leaked into C1"
            );
        }
    }

    /// On the Figure 6 fixture the ground truth is that `X2` must be
    /// rejected (no CI pattern certifies it) while `X3 ∈ C1`; GrpSel with
    /// the data tester and `max_group` set recovers exactly the oracle
    /// classification from sampled data.
    #[test]
    fn figure_6_truth_recovered_with_max_group() {
        let f = fixtures::figure_6();
        let scm = f.scm(1.5);
        let rows = 4000;
        let mut rng = StdRng::seed_from_u64(6);
        let table = sample_table(&scm, &f.roles, rows, &mut rng);
        let problem = Problem::from_table(&table);

        let truth = grpsel(
            &mut OracleCi::from_dag(f.dag.clone()),
            &problem,
            &SelectConfig::default(),
        )
        .normalized();
        let x2 = table.col_id("X2").unwrap();
        assert!(truth.rejected.contains(&x2), "fixture truth: X2 rejected");

        let cfg = SelectConfig {
            max_group: Some(SelectConfig::auto_max_group(rows)),
            ..Default::default()
        };
        let mut tester = GTest::new(&table, 0.01);
        let got = grpsel_batched(&mut tester, &problem, &cfg, None, 2).normalized();
        assert_eq!(got.c1, truth.c1);
        assert_eq!(got.c2, truth.c2);
        assert_eq!(got.rejected, truth.rejected);
    }
}

#[cfg(test)]
mod degenerate_strata_regression {
    //! Regression for the degenerate-stratum short-circuit: a conditioning
    //! set wide enough that every row is its own stratum must return
    //! p = 1 instantly — no per-row contingency storage — for both
    //! discrete testers.

    use fairsel_ci::{CiTest, GTest, PermutationCmi};
    use fairsel_table::{Column, Role, Table};

    /// 34 binary conditioning columns spelling out the row index in
    /// binary, plus x/y columns: every row is a distinct stratum.
    fn wide_conditioning_table(rows: usize) -> (Table, Vec<usize>) {
        let mut cols = vec![
            Column::cat(
                "x",
                Role::Feature,
                (0..rows).map(|r| (r % 2) as u32).collect(),
                2,
            ),
            Column::cat(
                "y",
                Role::Feature,
                (0..rows).map(|r| ((r / 2) % 2) as u32).collect(),
                2,
            ),
        ];
        let n_cond = 34;
        for bit in 0..n_cond {
            cols.push(Column::cat(
                format!("z{bit}"),
                Role::Feature,
                (0..rows).map(|r| ((r >> (bit % 16)) & 1) as u32).collect(),
                2,
            ));
        }
        let t = Table::new(cols).unwrap();
        let z: Vec<usize> = (2..2 + n_cond).collect();
        (t, z)
    }

    #[test]
    fn gtest_short_circuits_all_singleton_strata() {
        let (t, z) = wide_conditioning_table(512);
        let mut g = GTest::new(&t, 0.01);
        assert_eq!(g.degenerate_short_circuits(), 0);
        let out = g.ci(&[0], &[1], &z);
        assert!(out.independent);
        assert_eq!(out.p_value, 1.0);
        assert_eq!(out.statistic, 0.0);
        assert_eq!(
            g.degenerate_short_circuits(),
            1,
            "wide conditioning set must take the degenerate fast path"
        );
        // Without the wide conditioning set the same pair is dependent on
        // nothing-degenerate strata — the short-circuit is surgical.
        let out = g.ci(&[0], &[1], &[2]);
        assert!(out.p_value < 1.0 || out.statistic == 0.0);
        assert_eq!(g.degenerate_short_circuits(), 1);
    }

    #[test]
    fn perm_cmi_short_circuits_without_consuming_randomness() {
        let (t, z) = wide_conditioning_table(256);
        let mut c = PermutationCmi::new(&t, 0.05, 99, 11);
        let out = c.ci(&[0], &[1], &z);
        assert!(out.independent);
        assert_eq!(out.p_value, 1.0);
        assert_eq!(out.statistic, 0.0);
        assert_eq!(c.degenerate_short_circuits(), 1);
    }

    /// The short-circuit is exact: on a *nearly* degenerate table (one
    /// duplicated row pattern) the full path still runs and agrees with
    /// the closed form p = 1 only when df = 0.
    #[test]
    fn short_circuit_matches_full_computation() {
        // 8 rows, 3 conditioning bits = every row its own stratum.
        let t = Table::new(vec![
            Column::cat("x", Role::Feature, vec![0, 1, 0, 1, 0, 1, 0, 1], 2),
            Column::cat("y", Role::Feature, vec![0, 0, 1, 1, 0, 0, 1, 1], 2),
            Column::cat("z0", Role::Feature, vec![0, 1, 0, 1, 0, 1, 0, 1], 2),
            Column::cat("z1", Role::Feature, vec![0, 0, 1, 1, 0, 0, 1, 1], 2),
            Column::cat("z2", Role::Feature, vec![0, 0, 0, 0, 1, 1, 1, 1], 2),
        ])
        .unwrap();
        let mut g = GTest::new(&t, 0.01);
        let fast = g.ci(&[0], &[1], &[2, 3, 4]);
        assert_eq!(g.degenerate_short_circuits(), 1);
        // Reference: the raw statistic over the same codes, full path.
        let (xc, _) = t.joint_codes_dense(&[0]);
        let (yc, _) = t.joint_codes_dense(&[1]);
        let (zc, _) = t.joint_codes_dense(&[2, 3, 4]);
        let (g_stat, p) = fairsel_ci::gtest::g_test_from_codes(&xc, &yc, &zc);
        assert_eq!((fast.statistic, fast.p_value), (g_stat, p));
    }
}

#[cfg(test)]
mod cache_bounds {
    //! The bounded-cache regression (the unbounded-growth bugfix): with an
    //! LRU cap far smaller than the workload's distinct variable sets,
    //! memory stays bounded (residency ≤ cap, evictions counted) while
    //! every selection remains byte-identical to the unbounded run —
    //! eviction only ever discards recomputable memo values.

    use fairsel_ci::{CiTestBatch, CiTestShared, FisherZ, GTest};
    use fairsel_core::{grpsel_batched_in, Problem, SelectConfig};
    use fairsel_datasets::sim::sample_table;
    use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
    use fairsel_engine::CiSession;
    use fairsel_table::{EncodedTable, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn sampled(seed: u64, n_features: usize, rows: usize) -> Table {
        let cfg = SyntheticConfig {
            n_features,
            biased_fraction: 0.25,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = synthetic_instance(&mut rng, &cfg);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        sample_table(&scm, &inst.roles, rows, &mut rng)
    }

    #[test]
    fn capped_gtest_selections_byte_identical_with_bounded_memory() {
        let table = sampled(7, 24, 1500);
        let problem = Problem::from_table(&table);
        let cfg = SelectConfig {
            max_group: Some(5),
            ..Default::default()
        };
        let cap = 8;

        let run = |enc: Arc<EncodedTable>| {
            let mut session = CiSession::new(GTest::over(enc, 0.01));
            let sel = grpsel_batched_in(&mut session, &problem, &cfg, None, 2).normalized();
            (sel, session.stats().clone())
        };
        let table_arc = Arc::new(table.clone());
        let (unbounded_sel, _) = run(Arc::new(EncodedTable::from_arc(Arc::clone(&table_arc))));
        let capped_enc = Arc::new(EncodedTable::from_arc_with_cap(table_arc, cap));
        let (capped_sel, capped_stats) = run(Arc::clone(&capped_enc));

        // Byte-identical partition and test count.
        assert_eq!(unbounded_sel.c1, capped_sel.c1);
        assert_eq!(unbounded_sel.c2, capped_sel.c2);
        assert_eq!(unbounded_sel.rejected, capped_sel.rejected);
        assert_eq!(unbounded_sel.tests_used, capped_sel.tests_used);

        // Memory stayed bounded across many distinct variable sets …
        assert!(
            capped_enc.cached_sets() <= cap,
            "residency {} exceeds cap {cap}",
            capped_enc.cached_sets()
        );
        // … because the LRU actually evicted (the workload touches far
        // more sets than the cap holds), and the telemetry says so.
        assert!(
            capped_enc.stats().evictions > 0,
            "workload must overflow the cap"
        );
        assert!(capped_stats.encode_cache_evictions > 0);
        assert!(
            capped_enc.stats().misses > capped_enc.stats().evictions,
            "evictions never exceed computed encodings"
        );
    }

    #[test]
    fn capped_fisherz_residual_cache_evicts_and_stays_exact() {
        let table = sampled(9, 20, 400);
        let cap = 4;
        let unbounded = FisherZ::new(&table, 0.01);
        let capped = FisherZ::over(
            Arc::new(EncodedTable::from_arc_with_cap(
                Arc::new(table.clone()),
                cap,
            )),
            0.01,
        );
        // Many distinct conditioning sets — far more than the cap.
        for z in 2..table.n_cols() {
            for z2 in 2..z {
                let zs = [z, z2];
                let a = unbounded.ci_shared(&[0], &[1], &zs);
                let b = capped.ci_shared(&[0], &[1], &zs);
                assert_eq!(a, b, "z = {zs:?}");
            }
        }
        // Replay: answers still byte-identical after eviction churn.
        for z in 2..table.n_cols() {
            let a = unbounded.ci_shared(&[0], &[1], &[z]);
            let b = capped.ci_shared(&[0], &[1], &[z]);
            assert_eq!(a, b, "replay z = {z}");
        }
        let stats = capped.encode_cache_stats();
        assert!(
            stats.evictions > 0,
            "design/residual caches must evict under the cap"
        );
        assert_eq!(unbounded.encode_cache_stats().evictions, 0);
    }
}

#[cfg(test)]
mod frontier_order_regression {
    use super::reference::grpsel_direct;
    use fairsel_ci::{CiOutcome, CiTest, VarId};
    use fairsel_core::{grpsel, Problem, SelectConfig};

    /// Phase 1 always fails; phase 2 passes iff the group avoids `bad`.
    struct TwoPhase {
        sensitive: VarId,
        bad: Vec<VarId>,
    }

    impl CiTest for TwoPhase {
        fn ci(&mut self, x: &[VarId], y: &[VarId], _z: &[VarId]) -> CiOutcome {
            if y == [self.sensitive] {
                CiOutcome::decided(false)
            } else {
                CiOutcome::decided(!x.iter().any(|v| self.bad.contains(v)))
            }
        }
        fn n_vars(&self) -> usize {
            16
        }
    }

    /// Regression: the frontier planner exhausts phase-1 singletons in
    /// level (BFS) order, but phase-2 halving must run over the same
    /// member order as the depth-first recursion — otherwise its groups
    /// compose differently and test counts (and, with finite-sample
    /// testers, outcomes) diverge. This instance — every feature failing
    /// phase 1, phase-2 dependence exactly on {1,2} — told BFS and DFS
    /// apart before `remaining` was re-ordered.
    #[test]
    fn phase2_group_composition_matches_dfs() {
        let problem = Problem {
            sensitive: vec![10],
            admissible: vec![],
            features: (0..6).collect(),
            target: 11,
        };
        let cfg = SelectConfig::default();
        let mk = || TwoPhase {
            sensitive: 10,
            bad: vec![1, 2],
        };
        let direct = grpsel_direct(&mut mk(), &problem, &cfg).normalized();
        let engine = grpsel(&mut mk(), &problem, &cfg).normalized();
        // Same partition and — because phase-2 groups compose identically
        // — the same test count. (Emission order within c2 still differs:
        // the frontier admits level by level, DFS leaf by leaf.)
        assert_eq!(direct.c1, engine.c1);
        assert_eq!(direct.c2, engine.c2);
        assert_eq!(direct.rejected, engine.rejected);
        assert_eq!(direct.tests_used, engine.tests_used);
    }
}

#[cfg(test)]
mod server_equivalence {
    //! The session-service acceptance property: N concurrent clients
    //! issuing overlapping workloads against one `fairsel serve` process
    //! get bodies **byte-identical** to local single-process runs of the
    //! same workloads, and a repeated identical request reports nonzero
    //! shared-cache hits (encode reuse + CI-outcome memo) while having
    //! issued no new tests.

    use fairsel_ci::GTest;
    use fairsel_core::{render_pipeline_report, run_pipeline_batched};
    use fairsel_datasets::sim::sample_table;
    use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
    use fairsel_server::{
        pipeline_config, request, Request, Response, ServeConfig, Server, WorkloadRequest,
    };
    use fairsel_table::csv;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload_csv(seed: u64, n_features: usize, rows: usize) -> String {
        let cfg = SyntheticConfig {
            n_features,
            biased_fraction: 0.2,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = synthetic_instance(&mut rng, &cfg);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        csv::to_csv_string(&sample_table(&scm, &inst.roles, rows, &mut rng))
    }

    /// What a local single-process `fairsel select` of this workload
    /// prints as its deterministic report (the CLI path, replicated).
    fn local_body(req: &WorkloadRequest) -> String {
        let table =
            csv::from_csv_string(req.dataset.as_csv().expect("inline csv workload")).expect("csv");
        let split = table.split_rows_stable(req.seed, req.train_frac);
        let (train, test) = (split.train, split.test);
        let cfg = pipeline_config(req, train.n_rows()).expect("config");
        let out = run_pipeline_batched(GTest::new(&train, req.alpha), &train, &test, &cfg);
        render_pipeline_report(&out, &train, &cfg, test.n_rows())
    }

    #[test]
    fn concurrent_clients_match_local_and_share_caches() {
        // Two overlapping workloads: same dataset + tester (one shared
        // session), different algorithms; plus a second dataset so the
        // registry actually shards.
        let csv_a = workload_csv(5, 14, 900);
        let csv_b = workload_csv(6, 10, 600);
        let wl = |csv: &str, algo: &str| WorkloadRequest {
            dataset: fairsel_server::DatasetRef::Csv(csv.to_owned()),
            algo: algo.into(),
            workers: 2,
            ..Default::default()
        };
        let workloads = [
            wl(&csv_a, "grpsel"),
            wl(&csv_a, "seqsel"),
            wl(&csv_b, "grpsel"),
        ];
        let expected: Vec<String> = workloads.iter().map(local_body).collect();

        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
        let addr = server.local_addr().to_string();
        let handle = server.spawn();

        // 4 concurrent clients, each cycling through the workloads twice.
        std::thread::scope(|scope| {
            for client in 0..4usize {
                let addr = addr.clone();
                let workloads = &workloads;
                let expected = &expected;
                scope.spawn(move || {
                    for round in 0..2 {
                        for (i, w) in workloads.iter().enumerate() {
                            let resp =
                                request(&addr, &Request::Select(w.clone())).expect("request");
                            let Response::Ok { body, cache, .. } = resp else {
                                panic!("client {client} round {round}: {resp:?}");
                            };
                            assert_eq!(
                                body, expected[i],
                                "client {client} round {round} workload {i}: \
                                 remote body diverged from local run"
                            );
                            assert!(cache.is_some());
                        }
                    }
                });
            }
        });

        // One more identical request: served warm from the shared state.
        let resp = request(&addr, &Request::Select(workloads[0].clone())).expect("warm");
        let Response::Ok { body, cache, .. } = resp else {
            panic!("warm request failed: {resp:?}");
        };
        assert_eq!(body, expected[0]);
        let cache = cache.expect("cache info");
        assert!(
            cache.shared_hits > 0,
            "warm request must report shared-cache hits"
        );
        assert!(cache.encode_hits > 0, "encode cache must have been reused");
        assert!(
            cache.sessions_served > 8,
            "the shared session served every overlapping request (got {})",
            cache.sessions_served
        );

        // Server-wide stats agree: every request was counted, both
        // datasets resident.
        let stats = request(&addr, &Request::Stats).expect("stats");
        let Response::Ok { stats: Some(s), .. } = stats else {
            panic!("stats failed");
        };
        assert_eq!(s.get_u64("requests"), Some(4 * 2 * 3 + 1));
        assert_eq!(s.get_u64("resident_datasets"), Some(2));

        handle.shutdown();
    }
}

#[cfg(test)]
mod server_saturation {
    //! The bounded-acceptor acceptance property: with more simultaneous
    //! clients than `--max-conns`, excess connections are shed with the
    //! **structured busy error** (not silently queued, not dropped),
    //! admitted connections complete **byte-identical** to local runs of
    //! the same workload, and the `shed_conns` / `active_conns` counters
    //! are exact.

    use fairsel_ci::GTest;
    use fairsel_core::{render_pipeline_report, run_pipeline_batched};
    use fairsel_datasets::sim::sample_table;
    use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
    use fairsel_server::proto::{read_json, write_json};
    use fairsel_server::{
        pipeline_config, request, Request, Response, ServeConfig, Server, WorkloadRequest,
    };
    use fairsel_table::csv;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::TcpStream;
    use std::time::Duration;

    fn workload_csv(seed: u64, n_features: usize, rows: usize) -> String {
        let cfg = SyntheticConfig {
            n_features,
            biased_fraction: 0.2,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = synthetic_instance(&mut rng, &cfg);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        csv::to_csv_string(&sample_table(&scm, &inst.roles, rows, &mut rng))
    }

    fn local_body(req: &WorkloadRequest) -> String {
        let table = csv::from_csv_string(req.dataset.as_csv().expect("inline csv")).expect("csv");
        let split = table.split_rows_stable(req.seed, req.train_frac);
        let (train, test) = (split.train, split.test);
        let cfg = pipeline_config(req, train.n_rows()).expect("config");
        let out = run_pipeline_batched(GTest::new(&train, req.alpha), &train, &test, &cfg);
        render_pipeline_report(&out, &train, &cfg, test.n_rows())
    }

    #[test]
    fn saturating_clients_shed_exactly_and_admitted_match_local() {
        const MAX_CONNS: usize = 4;
        const EXCESS: usize = 3;

        let wl = WorkloadRequest::with_csv(workload_csv(19, 10, 500));
        let expected = local_body(&wl);

        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                // One handler per admissible connection, so held-open
                // connections never starve each other.
                conn_workers: MAX_CONNS,
                max_conns: MAX_CONNS,
                ..Default::default()
            },
        )
        .expect("bind");
        let sock = server.local_addr();
        let addr = sock.to_string();
        let handle = server.spawn();

        // Fill every admission slot and prove each connection is live
        // (the ping round trip means the server admitted it).
        let mut held: Vec<TcpStream> = (0..MAX_CONNS)
            .map(|i| {
                let mut s =
                    TcpStream::connect_timeout(&sock, Duration::from_secs(5)).expect("connect");
                s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                write_json(&mut s, &Request::Ping.to_json()).unwrap();
                let resp = Response::from_json(&read_json(&mut s).unwrap().unwrap()).unwrap();
                assert_eq!(resp, Response::ok("pong"), "held connection {i}");
                s
            })
            .collect();

        // Every client past the cap gets the structured busy error —
        // before it even writes a request.
        for i in 0..EXCESS {
            let mut extra =
                TcpStream::connect_timeout(&sock, Duration::from_secs(5)).expect("connect");
            extra
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            let resp = Response::from_json(&read_json(&mut extra).unwrap().unwrap()).unwrap();
            assert_eq!(resp, Response::Busy, "excess connection {i} must be shed");
        }

        // The admitted connections now run the real workload
        // simultaneously — saturated server, responses byte-identical to
        // the local single-process run.
        std::thread::scope(|scope| {
            for (i, s) in held.iter_mut().enumerate() {
                let wl = &wl;
                let expected = &expected;
                scope.spawn(move || {
                    write_json(s, &Request::Select(wl.clone()).to_json()).unwrap();
                    let resp = Response::from_json(&read_json(s).unwrap().unwrap()).unwrap();
                    let Response::Ok { body, .. } = resp else {
                        panic!("admitted client {i} failed: {resp:?}");
                    };
                    assert_eq!(
                        &body, expected,
                        "client {i}: saturated-server body diverged from local run"
                    );
                });
            }
        });

        // Counters, read through a held connection so nothing else can
        // be shed in between: exactly EXCESS shed, exactly MAX_CONNS
        // active (the held ones — including the connection answering).
        write_json(&mut held[0], &Request::Stats.to_json()).unwrap();
        let resp = Response::from_json(&read_json(&mut held[0]).unwrap().unwrap()).unwrap();
        let Response::Ok { stats: Some(s), .. } = resp else {
            panic!("stats over held connection failed");
        };
        assert_eq!(s.get_u64("shed_conns"), Some(EXCESS as u64));
        assert_eq!(s.get_u64("active_conns"), Some(MAX_CONNS as u64));
        assert_eq!(s.get_u64("accepted_conns"), Some(MAX_CONNS as u64));
        assert_eq!(s.get_u64("max_conns"), Some(MAX_CONNS as u64));
        assert!(s.get_u64("bytes_rx").unwrap() > 0);
        assert!(s.get_u64("bytes_tx").unwrap() > 0);

        // Release the slots; the server is admitting again.
        drop(held);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match request(&addr, &Request::Ping) {
                Ok(Response::Ok { .. }) => break,
                Ok(Response::Busy) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                other => panic!("ping after release: {other:?}"),
            }
        }
        handle.shutdown();
    }
}

#[cfg(test)]
mod fp_addressed_requests {
    //! The fingerprint-addressed transport acceptance property: after a
    //! single `put`, a warm `select` by fingerprint issues **zero** CI
    //! tests, ships **< 1 KiB** of request payload, and returns a body
    //! byte-identical to both the inline-CSV remote spelling and a local
    //! run.

    use fairsel_ci::GTest;
    use fairsel_core::{render_pipeline_report, run_pipeline_batched};
    use fairsel_datasets::sim::sample_table;
    use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
    use fairsel_server::{
        pipeline_config, put_dataset, request, DatasetRef, Request, Response, ServeConfig, Server,
        WorkloadRequest,
    };
    use fairsel_table::{codec, csv, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload_table(seed: u64, n_features: usize, rows: usize) -> Table {
        let cfg = SyntheticConfig {
            n_features,
            biased_fraction: 0.2,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = synthetic_instance(&mut rng, &cfg);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        sample_table(&scm, &inst.roles, rows, &mut rng)
    }

    #[test]
    fn warm_fp_select_issues_zero_tests_under_1_kib() {
        let table = workload_table(23, 12, 700);
        let csv_text = csv::to_csv_string(&table);

        // The local reference body.
        let csv_wl = WorkloadRequest::with_csv(csv_text.clone());
        let parsed = csv::from_csv_string(&csv_text).expect("csv");
        let split = parsed.split_rows_stable(csv_wl.seed, csv_wl.train_frac);
        let (train, test) = (split.train, split.test);
        let cfg = pipeline_config(&csv_wl, train.n_rows()).expect("config");
        let out = run_pipeline_batched(GTest::new(&train, csv_wl.alpha), &train, &test, &cfg);
        let expected = render_pipeline_report(&out, &train, &cfg, test.n_rows());

        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
        let addr = server.local_addr().to_string();
        let handle = server.spawn();

        // Upload once; the server fingerprints the decoded table.
        let resp = put_dataset(&addr, &codec::encode_table(&table)).expect("put");
        let Response::Ok { body: fp_hex, .. } = resp else {
            panic!("put failed: {resp:?}");
        };
        let fp = u64::from_str_radix(&fp_hex, 16).expect("hex fp");

        // Cold fp-addressed select: tiny request, full local fidelity.
        let fp_req = Request::Select(WorkloadRequest {
            dataset: DatasetRef::Fp(fp),
            ..Default::default()
        });
        let frame_bytes = fp_req.to_json().to_string().len() + 4;
        assert!(
            frame_bytes < 1024,
            "fp-addressed request frame is {frame_bytes} bytes, must be < 1 KiB"
        );
        let Response::Ok { body, stats, .. } = request(&addr, &fp_req).expect("fp select") else {
            panic!("fp select failed");
        };
        assert_eq!(body, expected, "fp-addressed body must match local run");
        let cold_issued = stats.unwrap().get_u64("issued").expect("issued");
        assert!(cold_issued > 0, "cold request pays the CI tests");

        // Warm repeat by fingerprint: zero new CI tests (cumulative
        // session `issued` unchanged), nonzero shared hits.
        let Response::Ok {
            body: warm_body,
            stats: warm_stats,
            cache,
            ..
        } = request(&addr, &fp_req).expect("warm fp select")
        else {
            panic!("warm fp select failed");
        };
        assert_eq!(warm_body, expected);
        let warm_stats = warm_stats.unwrap();
        assert_eq!(
            warm_stats.get_u64("issued"),
            Some(cold_issued),
            "warm fp select must issue 0 new CI tests"
        );
        assert!(cache.unwrap().shared_hits > 0);

        // The inline-CSV spelling lands in the same session and agrees
        // byte-for-byte — fp addressing is a pure transport optimization.
        let Response::Ok {
            body: csv_body,
            stats: csv_stats,
            ..
        } = request(&addr, &Request::Select(csv_wl)).expect("csv select")
        else {
            panic!("csv select failed");
        };
        assert_eq!(csv_body, expected);
        assert_eq!(
            csv_stats.unwrap().get_u64("issued"),
            Some(cold_issued),
            "csv spelling reuses the fp-warmed session"
        );

        handle.shutdown();
    }
}

#[cfg(test)]
mod observability {
    //! The tracing layer's core contract: telemetry observes, never
    //! steers. With the span sink enabled or disabled, every selection
    //! report is byte-identical and every engine counter unchanged, at
    //! every worker count; and a served `select` leaves a span trail
    //! covering the whole accept → respond lifecycle, with per-command
    //! latency percentiles in `stats`.

    use fairsel_ci::GTest;
    use fairsel_core::{render_pipeline_report, run_pipeline_batched};
    use fairsel_datasets::sim::sample_table;
    use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
    use fairsel_engine::EngineStats;
    use fairsel_server::{
        pipeline_config, request, DatasetRef, Json, Request, Response, ServeConfig, Server,
        WorkloadRequest,
    };
    use fairsel_table::{csv, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Mutex;

    /// Serializes the tests that flip the process-global span sink, so
    /// the lifecycle test below never observes a mid-request disable.
    static OBS_LOCK: Mutex<()> = Mutex::new(());

    fn workload_table(seed: u64, n_features: usize, rows: usize) -> Table {
        let cfg = SyntheticConfig {
            n_features,
            biased_fraction: 0.2,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = synthetic_instance(&mut rng, &cfg);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        sample_table(&scm, &inst.roles, rows, &mut rng)
    }

    /// Every counter that must be invariant under tracing. `wall_ms` and
    /// the per-phase wall times are timing, not behavior, and are the
    /// only exclusions.
    #[derive(Debug, PartialEq)]
    struct Counters {
        requested: u64,
        issued: u64,
        cache_hits: u64,
        batches: u64,
        parallel_batches: u64,
        batched_batches: u64,
        grouped_batches: u64,
        speculative_issued: u64,
        speculative_hits: u64,
        max_batch: usize,
        encode_cache_hits: u64,
        encode_cache_misses: u64,
        encode_cache_evictions: u64,
        phases: Vec<(String, u64, u64, u64)>,
    }

    fn counter_tuple(s: &EngineStats) -> Counters {
        Counters {
            requested: s.requested,
            issued: s.issued,
            cache_hits: s.cache_hits,
            batches: s.batches,
            parallel_batches: s.parallel_batches,
            batched_batches: s.batched_batches,
            grouped_batches: s.grouped_batches,
            speculative_issued: s.speculative_issued,
            speculative_hits: s.speculative_hits,
            max_batch: s.max_batch,
            encode_cache_hits: s.encode_cache_hits,
            encode_cache_misses: s.encode_cache_misses,
            encode_cache_evictions: s.encode_cache_evictions,
            phases: s
                .phases
                .iter()
                .map(|p| (p.name.clone(), p.requested, p.issued, p.cache_hits))
                .collect(),
        }
    }

    #[test]
    fn tracing_toggle_is_invisible_to_selections_and_counters() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let table = workload_table(31, 12, 700);
        for workers in [1usize, 2, 4, 8] {
            let wl = WorkloadRequest {
                dataset: DatasetRef::Csv(String::new()),
                workers,
                ..Default::default()
            };
            let run = || {
                let split = table.split_rows_stable(wl.seed, wl.train_frac);
                let (train, test) = (split.train, split.test);
                let cfg = pipeline_config(&wl, train.n_rows()).expect("config");
                let out = run_pipeline_batched(GTest::new(&train, wl.alpha), &train, &test, &cfg);
                let body = render_pipeline_report(&out, &train, &cfg, test.n_rows());
                (body, counter_tuple(&out.engine))
            };
            fairsel_obs::set_enabled(false);
            let (body_off, counters_off) = run();
            fairsel_obs::set_enabled(true);
            let (body_on, counters_on) = run();
            assert_eq!(
                body_off, body_on,
                "workers={workers}: tracing changed the selection report"
            );
            assert_eq!(
                counters_off, counters_on,
                "workers={workers}: tracing changed engine counters"
            );
        }
    }

    #[test]
    fn served_select_leaves_full_span_trail_and_percentile_stats() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let table = workload_table(33, 10, 500);
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
        let addr = server.local_addr().to_string();
        let handle = server.spawn();

        let req = Request::Select(WorkloadRequest {
            dataset: DatasetRef::Csv(csv::to_csv_string(&table)),
            workers: 2,
            ..Default::default()
        });
        match request(&addr, &req).expect("select") {
            Response::Ok { .. } => {}
            other => panic!("select failed: {other:?}"),
        }

        // Trace: spans covering accept → queue wait → parse → engine
        // phases → respond. The sink is process-global, so other tests'
        // spans may interleave; containment is the assertion. A handler
        // thread flushes its span buffer when the root request span
        // drops — *after* the response bytes are written — so a
        // one-shot client can out-race the flush; poll briefly.
        const EXPECTED: [&str; 8] = [
            "server.queue_wait",
            "server.request",
            "server.parse",
            "server.respond",
            "registry.select",
            "planner.level",
            "tester.eval",
            "zgroup.eval",
        ];
        let mut t = Json::Null;
        for attempt in 0..40 {
            if attempt > 0 {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            let resp = request(&addr, &Request::Trace { last: 2048 }).expect("trace");
            let Response::Ok {
                stats: Some(got), ..
            } = resp
            else {
                panic!("trace failed: {resp:?}");
            };
            let done = match got.get("spans") {
                Some(Json::Arr(spans)) => {
                    let names: Vec<&str> = spans.iter().filter_map(|s| s.get_str("name")).collect();
                    EXPECTED.iter().all(|e| names.contains(e))
                }
                _ => false,
            };
            t = got;
            if done {
                break;
            }
        }
        let Some(Json::Arr(spans)) = t.get("spans") else {
            panic!("trace response carried no spans array");
        };
        let names: Vec<&str> = spans.iter().filter_map(|s| s.get_str("name")).collect();
        for expected in EXPECTED {
            assert!(
                names.contains(&expected),
                "span {expected:?} missing from trace (got {names:?})"
            );
        }
        // Child spans link to their parents.
        let request_ids: Vec<u64> = spans
            .iter()
            .filter(|s| s.get_str("name") == Some("server.request"))
            .filter_map(|s| s.get_u64("id"))
            .collect();
        let parse_parents: Vec<u64> = spans
            .iter()
            .filter(|s| s.get_str("name") == Some("server.parse"))
            .filter_map(|s| s.get_u64("parent"))
            .collect();
        assert!(
            parse_parents.iter().any(|p| request_ids.contains(p)),
            "server.parse must nest under a server.request span"
        );
        assert!(t.get_num("spans_dropped").is_some());

        // Stats: per-command percentiles, queue wait, named histograms.
        let Response::Ok { stats: Some(s), .. } = request(&addr, &Request::Stats).expect("stats")
        else {
            panic!("stats failed");
        };
        for k in [
            "request_wall_p50_ms",
            "request_wall_p95_ms",
            "request_wall_p99_ms",
            "request_wall_max_ms",
            "queue_wait_ms",
            "queue_wait_p50_ms",
            "queue_wait_p95_ms",
            "queue_wait_p99_ms",
            "pool_busy_ms",
            "spans_dropped",
        ] {
            assert!(s.get_num(k).is_some(), "stats field {k} missing");
        }
        let p50 = s.get_num("request_wall_p50_ms").unwrap();
        let p95 = s.get_num("request_wall_p95_ms").unwrap();
        let p99 = s.get_num("request_wall_p99_ms").unwrap();
        let max = s.get_num("request_wall_max_ms").unwrap();
        assert!(
            p50 <= p95 && p95 <= p99 && p99 <= max,
            "request-wall percentiles must ascend ({p50} / {p95} / {p99} / max {max})"
        );
        let hists = s.get("histograms").expect("histograms object");
        let select_hist = hists
            .get("request_wall/select")
            .expect("per-command histogram for select");
        assert!(
            select_hist.get_num("count").unwrap_or(0.0) >= 1.0,
            "the select histogram must have counted the request"
        );
        let qwait = hists.get("queue_wait").expect("queue-wait histogram");
        assert!(
            qwait.get_num("count").unwrap_or(0.0) >= 2.0,
            "every admitted connection records its queue wait"
        );
        // The Prometheus rendering of these stats carries the bucket
        // lines the CI smoke step greps for.
        let prom = fairsel_server::render_prom(&s);
        assert!(
            prom.contains("fairsel_request_wall_ms_bucket{cmd=\"select\",le="),
            "prom rendering must expose select request-wall buckets"
        );
        assert!(prom.contains("# TYPE fairsel_request_wall_ms histogram"));

        handle.shutdown();
    }
}

#[cfg(test)]
mod streaming_append {
    //! The streaming-append tentpole contract, verified for every
    //! batch-aware tester: a session **extended** over an appended row
    //! batch (`CiSession::extended_over`) answers any workload
    //! byte-identically to a **cold** session on the concatenated table
    //! — same p-value and statistic bits, same engine counters — at
    //! workers 1/2/4/8, and the scaffold ledger conserves exactly
    //! (`extended + rebuilt == resident + evicted`) at birth and after
    //! every query.

    use fairsel_ci::{CiTestBatch, FisherZ, GTest, PermutationCmi, Rcit, VarId};
    use fairsel_datasets::sim::sample_table;
    use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
    use fairsel_engine::{CiQuery, CiSession};
    use fairsel_table::{EncodedTable, Table, DEFAULT_CACHE_CAP};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn sampled(seed: u64, n_features: usize, rows: usize) -> Table {
        let cfg = SyntheticConfig {
            n_features,
            biased_fraction: 0.2,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = synthetic_instance(&mut rng, &cfg);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        sample_table(&scm, &inst.roles, rows, &mut rng)
    }

    /// Selector-shaped random workload (same shape as the batch
    /// equivalence suite uses): small group sides, conditioning sets of
    /// 0–3 variables, deliberate repeats.
    fn workload(rng: &mut StdRng, n_vars: usize, count: usize) -> Vec<CiQuery> {
        let side = |max: usize, rng: &mut StdRng| -> Vec<VarId> {
            let len = rng.gen_range(1..=max);
            (0..len).map(|_| rng.gen_range(0..n_vars)).collect()
        };
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let x = side(3, rng);
            let y = side(2, rng);
            let zlen = rng.gen_range(0..=3usize);
            let z: Vec<VarId> = (0..zlen).map(|_| rng.gen_range(0..n_vars)).collect();
            out.push(CiQuery::new(&x, &y, &z));
            if rng.gen_range(0..4) == 0 {
                out.push(CiQuery::new(&y, &x, &z));
            }
        }
        out
    }

    /// Warm a parent session, extend it over `batch`, and drive the
    /// extended session against a cold session on the concatenated
    /// table with the same probe workload. `patchable` marks testers
    /// whose sufficient statistic is an integer contingency table
    /// (G-test, permutation CMI): their memoized outcomes re-derive in
    /// O(batch) and the probe must consume them instead of issuing.
    #[allow(clippy::too_many_arguments)]
    fn assert_append_matches_cold<T: CiTestBatch, C: CiTestBatch>(
        parent: T,
        parent_enc: Arc<EncodedTable>,
        cold: C,
        batch: &Table,
        warm: &[CiQuery],
        probe: &[CiQuery],
        workers: usize,
        extendable: bool,
        patchable: bool,
        min_extended_encodings: u64,
        label: &str,
    ) {
        let mut psession = CiSession::new(parent);
        psession.run_batch_grouped(warm, &[], workers);
        let memoized_before = psession.cache_len() as u64;

        let child_enc = Arc::new(parent_enc.extend(batch).expect("schema-compatible batch"));
        let mut ext = psession
            .extended_over(Arc::clone(&child_enc))
            .expect("every data tester must support extension");

        // Warm-birth ledger: visible before any query, exactly conserved,
        // outcomes invalidated (p-values change with n).
        let (b_rows, b_enc, b_ext, b_rebuilt) = {
            let s = ext.stats();
            assert!(
                s.scaffolds_conserved(),
                "{label} workers {workers}: birth ledger must conserve"
            );
            (
                s.append_rows,
                s.extended_encodings,
                s.extended_scaffolds,
                s.rebuilt_scaffolds,
            )
        };
        assert!(b_rows > 0, "{label}: append_rows ledger empty at birth");
        assert!(
            b_enc >= min_extended_encodings,
            "{label}: extended_encodings {b_enc} < {min_extended_encodings}"
        );
        if extendable {
            assert!(
                b_ext > 0,
                "{label} workers {workers}: warm scaffolds must carry over"
            );
            assert_eq!(
                b_rebuilt, 0,
                "{label} workers {workers}: nothing rebuilt at birth"
            );
        } else {
            assert_eq!(b_ext, 0, "{label}: full-rebuild tester extends nothing");
        }
        assert_eq!(
            ext.cache_len(),
            0,
            "{label}: patched outcomes park outside the memo until demanded"
        );
        // The memo ledger is stamped at birth and conserves exactly:
        // every parent memo either patched or invalidated.
        {
            let s = ext.stats();
            assert_eq!(
                s.memoized_before, memoized_before,
                "{label} workers {workers}: memoized_before"
            );
            assert!(
                s.memos_conserved(),
                "{label} workers {workers}: memo ledger must conserve \
                 (patched {} + invalidated {} != before {})",
                s.memo_patched,
                s.memo_invalidated,
                s.memoized_before
            );
            if patchable {
                assert!(
                    s.memo_patched > 0,
                    "{label} workers {workers}: a contingency-table tester must patch"
                );
            } else {
                assert_eq!(
                    s.memo_patched, 0,
                    "{label} workers {workers}: float moment sums must never patch"
                );
                assert_eq!(s.memo_invalidated, memoized_before, "{label}");
            }
        }

        // Probe: extended vs cold, bit-for-bit, same counters.
        let mut cold_session = CiSession::new(cold);
        let got = ext.run_batch_grouped(probe, &[], workers);
        let want = cold_session.run_batch_grouped(probe, &[], workers);
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.independent, w.independent,
                "{label} q{i} workers {workers}: verdict diverged"
            );
            assert_eq!(
                g.p_value.to_bits(),
                w.p_value.to_bits(),
                "{label} q{i} workers {workers}: p-value bits diverged"
            );
            assert_eq!(
                g.statistic.to_bits(),
                w.statistic.to_bits(),
                "{label} q{i} workers {workers}: statistic bits diverged"
            );
        }
        assert_eq!(
            ext.outcomes_fingerprint(),
            cold_session.outcomes_fingerprint(),
            "{label} workers {workers}: outcome fingerprints diverged"
        );
        let es = ext.stats();
        let cs = cold_session.stats();
        assert_eq!(es.requested, cs.requested, "{label}: requested");
        // Every consumed patch replaces one cold issue and is booked as
        // a cache hit — the conservation the patched fast path lives by.
        assert_eq!(
            es.issued + es.memo_patch_hits,
            cs.issued,
            "{label} workers {workers}: issued + patch hits must conserve"
        );
        assert_eq!(
            es.cache_hits,
            cs.cache_hits + es.memo_patch_hits,
            "{label} workers {workers}: cache_hits"
        );
        assert!(
            es.memo_patch_hits <= es.memo_patched,
            "{label}: consumed more patches than parked"
        );
        if patchable {
            assert!(
                es.memo_patch_hits > 0,
                "{label} workers {workers}: the probe replays the warm workload, \
                 so patched outcomes must be consumed"
            );
            assert!(
                es.issued < cs.issued,
                "{label} workers {workers}: patching must save issues"
            );
        } else {
            assert_eq!(es.memo_patch_hits, 0, "{label}: nothing parked to consume");
            assert_eq!(es.issued, cs.issued, "{label}: issued");
        }
        assert_eq!(es.batches, cs.batches, "{label}: batches");
        assert!(
            es.scaffolds_conserved(),
            "{label} workers {workers}: ledger must conserve after queries \
             (extended {} + rebuilt {} != resident {} + evicted {})",
            es.extended_scaffolds,
            es.rebuilt_scaffolds,
            es.resident_scaffolds,
            es.scaffold_evictions
        );
    }

    #[test]
    fn extended_sessions_match_cold_for_all_testers_at_all_worker_counts() {
        let full = sampled(61, 10, 800);
        let n = full.n_rows();
        let split_at = 600;
        let base = full.take_rows(&(0..split_at).collect::<Vec<_>>());
        let batch = full.take_rows(&(split_at..n).collect::<Vec<_>>());
        let n_vars = full.n_cols();
        let mut rng = StdRng::seed_from_u64(991);
        let warm = workload(&mut rng, n_vars, 18);
        // The probe replays the warm workload (the "re-select": every
        // patched outcome gets demanded) and then branches into fresh
        // queries that must issue cold.
        let mut probe = warm.clone();
        probe.extend(workload(&mut rng, n_vars, 30));

        let enc_over = |t: &Table| {
            Arc::new(EncodedTable::from_arc_with_cap(
                Arc::new(t.clone()),
                DEFAULT_CACHE_CAP,
            ))
        };
        for workers in [1usize, 2, 4, 8] {
            let enc = enc_over(&base);
            assert_append_matches_cold(
                GTest::over(Arc::clone(&enc), 0.01),
                enc,
                GTest::new(&full, 0.01),
                &batch,
                &warm,
                &probe,
                workers,
                true,
                true,
                1,
                "g-test",
            );

            let enc = enc_over(&base);
            assert_append_matches_cold(
                PermutationCmi::over(Arc::clone(&enc), 0.05, 11, 7),
                enc,
                PermutationCmi::new(&full, 0.05, 11, 7),
                &batch,
                &warm,
                &probe,
                workers,
                true,
                true,
                1,
                "perm-cmi",
            );

            let enc = enc_over(&base);
            assert_append_matches_cold(
                FisherZ::over(Arc::clone(&enc), 0.01),
                enc,
                FisherZ::new(&full, 0.01),
                &batch,
                &warm,
                &probe,
                workers,
                true,
                false,
                0,
                "fisher-z",
            );

            // RCIT standardizes over the whole sample, so its scaffolds
            // rebuild rather than extend — the ledger records that and
            // still conserves, and results still match cold exactly.
            let parent = Rcit::with_alpha(&base, 0.01, 5);
            let enc = Arc::clone(parent.encoded());
            assert_append_matches_cold(
                parent,
                enc,
                Rcit::with_alpha(&full, 0.01, 5),
                &batch,
                &warm,
                &probe,
                workers,
                false,
                false,
                0,
                "rcit",
            );
        }
    }

    /// Eviction-forced mixed sessions: with a tiny tester cache, many
    /// sufficient-statistic tables are evicted before the append, so the
    /// extension patches some memos and invalidates the rest — and the
    /// re-select is still byte-identical to cold with a conserved ledger.
    #[test]
    fn eviction_forced_mixed_patch_and_invalidate_still_matches_cold() {
        let full = sampled(67, 10, 700);
        let n = full.n_rows();
        let base = full.take_rows(&(0..560).collect::<Vec<_>>());
        let batch = full.take_rows(&(560..n).collect::<Vec<_>>());
        let n_vars = full.n_cols();
        let mut rng = StdRng::seed_from_u64(733);
        let warm = workload(&mut rng, n_vars, 40);
        let probe = warm.clone();

        // Cap of 6 against a 40-query warm workload: guaranteed churn.
        let tiny = 6;
        for workers in [1usize, 2, 4, 8] {
            let enc = Arc::new(EncodedTable::from_arc_with_cap(
                Arc::new(base.clone()),
                tiny,
            ));
            let mut parent = CiSession::new(GTest::over(Arc::clone(&enc), 0.01));
            parent.run_batch_grouped(&warm, &[], workers);
            let memoized_before = parent.cache_len() as u64;

            let child_enc = Arc::new(enc.extend(&batch).expect("compatible batch"));
            let mut ext = parent.extended_over(child_enc).expect("extension path");
            let birth = ext.stats().clone();
            assert_eq!(birth.memoized_before, memoized_before);
            assert!(birth.memos_conserved(), "workers {workers}: {birth:?}");
            assert!(
                birth.memo_invalidated > 0,
                "workers {workers}: eviction churn must force invalidations ({birth:?})"
            );

            let concat = base.concat(&batch).unwrap();
            let cold_enc = Arc::new(EncodedTable::from_arc_with_cap(Arc::new(concat), tiny));
            let mut cold = CiSession::new(GTest::over(cold_enc, 0.01));
            let got = ext.run_batch_grouped(&probe, &[], workers);
            let want = cold.run_batch_grouped(&probe, &[], workers);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.p_value.to_bits(),
                    w.p_value.to_bits(),
                    "workers {workers} q{i}: p-value bits diverged"
                );
                assert_eq!(g.statistic.to_bits(), w.statistic.to_bits());
            }
            assert_eq!(ext.outcomes_fingerprint(), cold.outcomes_fingerprint());
            let (es, cs) = (ext.stats(), cold.stats());
            assert_eq!(es.issued + es.memo_patch_hits, cs.issued);
            assert_eq!(es.cache_hits, cs.cache_hits + es.memo_patch_hits);
        }
    }

    /// An empty append batch is a pure no-op: schema-validated, every
    /// memoized outcome patches trivially (n unchanged), nothing is
    /// invalidated, and replaying the warm workload issues zero tests.
    #[test]
    fn empty_batch_append_patches_everything_and_issues_nothing() {
        let base = sampled(71, 8, 500);
        let empty = base.take_rows(&[]);
        assert_eq!(empty.n_rows(), 0);
        let n_vars = base.n_cols();
        let mut rng = StdRng::seed_from_u64(811);
        let warm = workload(&mut rng, n_vars, 15);

        let enc = Arc::new(EncodedTable::from_arc_with_cap(
            Arc::new(base.clone()),
            DEFAULT_CACHE_CAP,
        ));
        let mut parent = CiSession::new(GTest::over(Arc::clone(&enc), 0.01));
        parent.run_batch_grouped(&warm, &[], 2);
        let memoized_before = parent.cache_len() as u64;
        let parent_fp = parent.outcomes_fingerprint();

        let child_enc = Arc::new(enc.extend(&empty).expect("empty batch is schema-valid"));
        assert_eq!(child_enc.n_rows(), base.n_rows());
        let mut ext = parent.extended_over(child_enc).expect("extension path");
        let birth = ext.stats().clone();
        assert_eq!(birth.memoized_before, memoized_before, "{birth:?}");
        assert_eq!(birth.memo_patched, memoized_before, "{birth:?}");
        assert_eq!(birth.memo_invalidated, 0, "{birth:?}");
        assert!(birth.memos_conserved());
        assert_eq!(ext.cache_len(), 0, "patched outcomes park until demanded");

        ext.run_batch_grouped(&warm, &[], 2);
        let es = ext.stats();
        assert_eq!(es.issued, 0, "n unchanged: nothing may be re-issued");
        assert_eq!(es.memo_patch_hits, memoized_before);
        assert_eq!(ext.outcomes_fingerprint(), parent_fp);
    }

    /// A single appended row exercises the smallest non-trivial patch:
    /// one integer add per resident table, still byte-identical to cold.
    #[test]
    fn single_row_append_matches_cold() {
        let full = sampled(73, 8, 501);
        let n = full.n_rows();
        let base = full.take_rows(&(0..n - 1).collect::<Vec<_>>());
        let batch = full.take_rows(&[n - 1]);
        assert_eq!(batch.n_rows(), 1);
        let n_vars = full.n_cols();
        let mut rng = StdRng::seed_from_u64(877);
        let warm = workload(&mut rng, n_vars, 15);
        let probe = warm.clone();

        for workers in [1usize, 4] {
            let enc = Arc::new(EncodedTable::from_arc_with_cap(
                Arc::new(base.clone()),
                DEFAULT_CACHE_CAP,
            ));
            assert_append_matches_cold(
                GTest::over(Arc::clone(&enc), 0.01),
                enc,
                GTest::new(&full, 0.01),
                &batch,
                &warm,
                &probe,
                workers,
                true,
                true,
                1,
                "g-test/1row",
            );
        }
    }
}

/// The serialized stats JSON is part of the byte-identity surface: bench
/// artifact diffs and the server's `stats_json` frame both compare it
/// verbatim, so key order and number formatting are pinned to the byte.
#[cfg(test)]
mod serialization_order {
    use fairsel_engine::EngineStats;

    /// Every byte of a default `EngineStats` serialization, literally.
    /// If this fails, either a counter was added (extend the literal AND
    /// `fairsel_bench::ENGINE_STATS_KEYS` AND the R5 analyzer contract)
    /// or key order / number formatting drifted — which silently breaks
    /// stored bench baselines.
    #[test]
    fn engine_stats_json_bytes_are_pinned() {
        let expected = concat!(
            "{\"requested\":0,\"issued\":0,\"cache_hits\":0,\"batches\":0,",
            "\"parallel_batches\":0,\"batched_batches\":0,\"grouped_batches\":0,",
            "\"speculative_issued\":0,\"speculative_hits\":0,\"speculative_wasted\":0,",
            "\"max_batch\":0,\"dedup_rate\":0,\"wall_ms\":0,",
            "\"encode_cache_hits\":0,\"encode_cache_misses\":0,",
            "\"encode_cache_evictions\":0,\"narrow_code_bytes\":0,",
            "\"dense_count_cells\":0,\"append_rows\":0,\"extended_encodings\":0,",
            "\"extended_scaffolds\":0,\"rebuilt_scaffolds\":0,",
            "\"resident_scaffolds\":0,\"scaffold_evictions\":0,",
            "\"memoized_before\":0,\"memo_patched\":0,\"memo_invalidated\":0,",
            "\"memo_patch_hits\":0,\"resident_suff_tables\":0,\"suff_evictions\":0,",
            "\"phases\":[]}"
        );
        assert_eq!(EngineStats::default().to_json(), expected);
    }

    /// Non-integer values use fixed 6-decimal formatting — no shortest-
    /// round-trip drift between toolchains.
    #[test]
    fn fractional_values_format_fixed_width() {
        let stats = EngineStats {
            requested: 3,
            cache_hits: 1,
            wall_ms: 1.5,
            ..Default::default()
        };
        let json = stats.to_json();
        assert!(json.contains("\"dedup_rate\":0.333333,"), "{json}");
        assert!(json.contains("\"wall_ms\":1.500000,"), "{json}");
    }

    /// The bench validator's key list and the writer agree exactly: every
    /// declared key appears in the serialization, in declaration order —
    /// the runtime half of the analyzer's cross-file R5 rule.
    #[test]
    fn bench_keys_match_writer_order() {
        let json = EngineStats::default().to_json();
        fairsel_bench::validate_stats_json(&json).expect("default stats must validate");
        let mut pos = 0usize;
        for key in fairsel_bench::ENGINE_STATS_KEYS {
            let quoted = format!("\"{key}\":");
            let at = json[pos..]
                .find(&quoted)
                .unwrap_or_else(|| panic!("key {key} missing or out of order in {json}"));
            pos += at + quoted.len();
        }
    }
}
