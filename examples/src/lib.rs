//! Worked examples: the paper's Figure 1(a) story, end to end, as
//! library functions with asserted outcomes (so the examples can never
//! silently rot).

use fairsel_ci::{GTest, OracleCi};
use fairsel_core::{run_pipeline, ClassifierKind, PipelineConfig, PipelineResult, SelectionAlgo};
use fairsel_datasets::fixtures::figure_1a;
use fairsel_datasets::sim::sample_table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Figure 1(a) with the exact d-separation oracle: selection admits the
/// mediated feature `X1` and the exogenous cause `C1`, rejects the biased
/// proxy `X2`, and the engine telemetry reports every test issued.
pub fn figure_1a_oracle() -> PipelineResult {
    let fixture = figure_1a();
    let scm = fixture.scm(1.5);
    let mut rng = StdRng::seed_from_u64(1);
    let train = sample_table(&scm, &fixture.roles, 2000, &mut rng);
    let test = sample_table(&scm, &fixture.roles, 1000, &mut rng);
    let cfg = PipelineConfig::default();
    run_pipeline(
        &mut OracleCi::from_dag(fixture.dag.clone()),
        &train,
        &test,
        &cfg,
    )
}

/// The same pipeline driven purely from sampled data with the G-test and
/// GrpSel — what `fairsel select --csv ...` runs.
pub fn figure_1a_from_data(rows: usize, seed: u64) -> PipelineResult {
    let fixture = figure_1a();
    let scm = fixture.scm(1.5);
    let mut rng = StdRng::seed_from_u64(seed);
    let train = sample_table(&scm, &fixture.roles, rows, &mut rng);
    let test = sample_table(&scm, &fixture.roles, rows / 2, &mut rng);
    let cfg = PipelineConfig {
        algo: SelectionAlgo::GrpSel { seed: Some(seed) },
        classifier: ClassifierKind::Logistic,
        ..Default::default()
    };
    run_pipeline(&mut GTest::new(&train, 0.01), &train, &test, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_example_rejects_biased_feature() {
        let out = figure_1a_oracle();
        assert_eq!(out.selection.rejected.len(), 1, "exactly X2 is rejected");
        assert!(out.engine.issued > 0);
        assert!(out.report.accuracy > 0.6);
    }

    #[test]
    fn data_example_matches_oracle_selection() {
        let oracle = figure_1a_oracle();
        let data = figure_1a_from_data(4000, 2);
        assert_eq!(
            oracle.model_cols, data.model_cols,
            "G-test recovers the oracle selection"
        );
    }
}
