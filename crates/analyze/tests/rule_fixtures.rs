//! Rule self-tests: for every rule R1–R6, one seeded violation the
//! analyzer must flag (positive) and one clean spelling it must accept
//! (negative). These fixtures are the analyzer's contract — if a rule's
//! heuristics change, these pin what "violation" means.

use fairsel_analyze::{analyze_file, analyze_workspace, Finding};

fn rules(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- R1

#[test]
fn r1_flags_hash_iteration_reaching_output() {
    let src = r#"
use std::collections::HashMap;
pub fn render(m: &HashMap<String, u64>) -> String {
    let counts: HashMap<String, u64> = m.clone();
    let mut out = String::new();
    for (k, v) in counts.iter() {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}
"#;
    let f = analyze_file("crates/engine/src/fixture.rs", src);
    assert_eq!(rules(&f), vec!["R1"], "{f:?}");
    assert!(f[0].msg.contains("counts.iter()"), "{}", f[0].msg);
}

#[test]
fn r1_accepts_sorted_collect_annotation_and_btree() {
    // Sorted before iteration (rebind), collected into a BTreeMap, and an
    // explicitly annotated unordered use — all three clean spellings.
    let src = r#"
use std::collections::{BTreeMap, HashMap, HashSet};
pub fn sorted(m: &HashMap<String, u64>) -> Vec<String> {
    let set: HashSet<String> = m.keys().cloned().collect();
    let mut v: Vec<String> = set.into_iter().collect();
    v.sort();
    v
}
pub fn ordered(m: &HashMap<String, u64>) -> BTreeMap<String, u64> {
    let copy: HashMap<String, u64> = m.clone();
    let out: BTreeMap<String, u64> = copy.iter().map(|(k, v)| (k.clone(), *v)).collect();
    out
}
pub fn annotated(m: &HashMap<String, u64>) -> u64 {
    let copy: HashMap<String, u64> = m.clone();
    // analyze: unordered-ok summation of u64 is exact in any order
    copy.values().sum()
}
"#;
    let f = analyze_file("crates/engine/src/fixture.rs", src);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn r1_scopes_let_bindings_per_function() {
    // `counts` is a HashMap in one function and a sorted Vec in another;
    // iterating the Vec must not inherit the other binding's hash taint.
    let src = r#"
use std::collections::HashMap;
pub fn build(xs: &[u32]) -> HashMap<u32, u64> {
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}
pub fn total(v: &[(u32, u64)]) -> u64 {
    let counts = v.to_vec();
    counts.iter().map(|(_, c)| c).sum()
}
"#;
    let f = analyze_file("crates/engine/src/fixture.rs", src);
    assert!(f.is_empty(), "{f:?}");
}

// ---------------------------------------------------------------- R2

#[test]
fn r2_flags_unbounded_cache_like_field() {
    let src = r#"
use std::collections::HashMap;
pub struct Memo {
    entries: HashMap<u64, Vec<f64>>,
}
"#;
    let f = analyze_file("crates/engine/src/fixture.rs", src);
    assert_eq!(rules(&f), vec!["R2"], "{f:?}");
    assert!(f[0].msg.contains("entries"), "{}", f[0].msg);
}

#[test]
fn r2_accepts_capped_cache_and_bounded_by() {
    let src = r#"
use std::collections::HashMap;
pub struct Memo {
    entries: CappedCache<u64, Vec<f64>>,
    // analyze: bounded-by one entry per worker thread, fixed at startup
    scratch: HashMap<u64, Vec<f64>>,
}
"#;
    let f = analyze_file("crates/engine/src/fixture.rs", src);
    assert!(f.is_empty(), "{f:?}");
}

// ---------------------------------------------------------------- R3

#[test]
fn r3_flags_wall_clock_in_deterministic_crate() {
    let src = r#"
use std::time::Instant;
pub fn timed() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_micros() as u64
}
"#;
    let f = analyze_file("crates/table/src/fixture.rs", src);
    // The `use` line is exempt; the body read is the finding.
    assert_eq!(rules(&f), vec!["R3"], "{f:?}");
    assert!(f[0].msg.contains("Instant"), "{}", f[0].msg);
}

#[test]
fn r3_accepts_annotation_and_non_deterministic_crates() {
    let annotated = r#"
use std::time::Instant;
pub fn timed() -> u64 {
    // analyze: wall-clock telemetry only; never branches execution
    let t0 = Instant::now();
    t0.elapsed().as_micros() as u64
}
"#;
    assert!(analyze_file("crates/engine/src/fixture.rs", annotated).is_empty());
    // The same unannotated code is fine outside the deterministic crates.
    let bare = r#"
use std::time::Instant;
pub fn timed() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_micros() as u64
}
"#;
    assert!(analyze_file("crates/obs/src/fixture.rs", bare).is_empty());
}

// ---------------------------------------------------------------- R4

#[test]
fn r4_flags_unwrap_and_expect_in_server() {
    let src = r#"
pub fn handle(input: &str) -> String {
    let n: u64 = input.parse().unwrap();
    let m: u64 = input.parse().expect("numeric field");
    format!("{}", n + m)
}
"#;
    let f = analyze_file("crates/server/src/fixture.rs", src);
    assert_eq!(rules(&f), vec!["R4", "R4"], "{f:?}");
}

#[test]
fn r4_ignores_parser_method_tests_and_other_crates() {
    // `self.expect(b'[')` is the in-crate JSON parser's method (byte-char
    // argument, not a panic message); test code is out of scope; and the
    // rule only covers the server crate.
    let src = r#"
impl Parser {
    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    #[test]
    fn parses() {
        let v: u64 = "7".parse().unwrap();
        assert_eq!(v, 7);
    }
}
"#;
    assert!(analyze_file("crates/server/src/fixture.rs", src).is_empty());
    let elsewhere = r#"
pub fn load(input: &str) -> u64 {
    input.parse().expect("caller validated")
}
"#;
    assert!(analyze_file("crates/engine/src/fixture.rs", elsewhere).is_empty());
}

// ---------------------------------------------------------------- R5

const R5_BENCH_OK: &str = r#"
pub const ENGINE_STATS_KEYS: &[&str] = &["requested", "cache_hits"];
"#;

#[test]
fn r5_flags_counter_missing_from_writer_or_validator() {
    // `cache_hits` is declared but never serialized; `requested` is
    // serialized but the bench validator does not know the key.
    let session = r#"
pub struct EngineStats {
    pub requested: u64,
    pub cache_hits: u64,
}
impl EngineStats {
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        push_kv(&mut s, "requested", self.requested);
        s
    }
}
"#;
    let bench = r#"pub const ENGINE_STATS_KEYS: &[&str] = &[];"#;
    let files = vec![
        (
            "crates/engine/src/session.rs".to_string(),
            session.to_string(),
        ),
        ("crates/bench/src/lib.rs".to_string(), bench.to_string()),
    ];
    let f = analyze_workspace(&files);
    assert_eq!(rules(&f), vec!["R5", "R5"], "{f:?}");
    assert!(f
        .iter()
        .any(|x| x.msg.contains("`cache_hits`") && x.msg.contains("writer")));
    assert!(f
        .iter()
        .any(|x| x.msg.contains("`requested`") && x.msg.contains("validator")));
}

#[test]
fn r5_accepts_fully_plumbed_counters() {
    let session = r#"
pub struct EngineStats {
    pub requested: u64,
    pub cache_hits: u64,
    pub phases: Vec<PhaseStats>,
}
impl EngineStats {
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        push_kv(&mut s, "requested", self.requested);
        push_kv(&mut s, "cache_hits", self.cache_hits);
        s
    }
}
"#;
    let files = vec![
        (
            "crates/engine/src/session.rs".to_string(),
            session.to_string(),
        ),
        (
            "crates/bench/src/lib.rs".to_string(),
            R5_BENCH_OK.to_string(),
        ),
    ];
    // `phases: Vec<PhaseStats>` is not a scalar counter — no finding.
    assert!(analyze_workspace(&files).is_empty());
}

// ---------------------------------------------------------------- R6

#[test]
fn r6_flags_unannotated_float_accumulation_in_kernel() {
    let src = r#"
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    let mut i = 0;
    while i < a.len() {
        acc += a[i] * b[i];
        i += 1;
    }
    acc
}
"#;
    let f = analyze_file("crates/mathx/src/linalg.rs", src);
    // `i += 1` is an exempt integer step; only the float accumulation hits.
    assert_eq!(rules(&f), vec!["R6"], "{f:?}");
}

#[test]
fn r6_accepts_order_annotation_and_non_kernel_files() {
    let annotated = r#"
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    // order: index i ascending, one product per step
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}
"#;
    assert!(analyze_file("crates/mathx/src/linalg.rs", annotated).is_empty());
    let bare = r#"
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}
"#;
    // Same code outside the kernel files is out of scope for R6.
    assert!(analyze_file("crates/mathx/src/other.rs", bare).is_empty());
}

// ------------------------------------------------------- output format

#[test]
fn findings_render_as_path_line_rule_message() {
    let src = "pub fn f(x: &str) -> u64 { x.parse().unwrap() }\n";
    let f = analyze_file("crates/server/src/fixture.rs", src);
    assert_eq!(f.len(), 1);
    let line = f[0].to_string();
    assert!(
        line.starts_with("crates/server/src/fixture.rs:1: R4: "),
        "{line}"
    );
}
