//! A small hand-rolled Rust lexer — just enough fidelity for source-level
//! lint rules: nested block comments, raw strings, byte strings, char
//! literals vs lifetimes, doc comments, raw identifiers. It does not parse;
//! it produces a flat token stream with line/column positions that the rule
//! engine walks with shape patterns.
//!
//! Fidelity matters here because the rules key off comments (annotation
//! grammar) and string literals (`.expect("...")` vs a parser method named
//! `expect` taking a byte literal). A regex-grade scanner gets both wrong.

/// A lexed token. Comments are tokens too — the annotation grammar lives in
/// them — and rules that only care about code filter them out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers `r#type` yield `type`).
    Ident(String),
    /// `'a`, `'static`, loop labels.
    Lifetime(String),
    /// `'x'`, `'\n'`, `b'['` (the `b` arrives as a separate ident).
    CharLit,
    /// `"..."`, `r#"..."#`, `b"..."` — the unquoted body.
    StrLit(String),
    /// Numeric literal (integer or float, any base, suffix folded in).
    NumLit(String),
    /// A single punctuation character; multi-char operators arrive as
    /// adjacent tokens (`+=` is `+` then `=` at col+1).
    Punct(char),
    /// `// ...`; `doc` marks `///` and `//!`.
    LineComment { doc: bool, text: String },
    /// `/* ... */` with nesting; `doc` marks `/**` and `/*!`.
    BlockComment { doc: bool, text: String },
}

/// Token with its source position (1-based line, 1-based column of the
/// first character).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
    pub col: u32,
}

impl Token {
    pub fn is_comment(&self) -> bool {
        matches!(self.tok, Tok::LineComment { .. } | Tok::BlockComment { .. })
    }

    /// Comment body for annotation scanning (empty for non-comments).
    pub fn comment_text(&self) -> &str {
        match &self.tok {
            Tok::LineComment { text, .. } | Tok::BlockComment { text, .. } => text,
            _ => "",
        }
    }

    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

struct Cursor<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Cursor<'s> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) -> usize {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
        self.pos - start
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex a complete source file into tokens. Unterminated constructs (string,
/// block comment) are closed at end of input rather than erroring — a linter
/// should keep walking the rest of the tree.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                let start = cur.pos;
                cur.eat_while(|c| c != b'\n');
                let text = src[start..cur.pos].to_string();
                let doc = (text.starts_with("///") && !text.starts_with("////"))
                    || text.starts_with("//!");
                out.push(Token {
                    tok: Tok::LineComment { doc, text },
                    line,
                    col,
                });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump();
                cur.bump();
                let doc = (cur.peek(0) == Some(b'*')
                    && cur.peek(1) != Some(b'*')
                    && cur.peek(1) != Some(b'/'))
                    || cur.peek(0) == Some(b'!');
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                let text = src[start..cur.pos].to_string();
                out.push(Token {
                    tok: Tok::BlockComment { doc, text },
                    line,
                    col,
                });
            }
            b'"' => {
                let body = lex_quoted_string(&mut cur);
                out.push(Token {
                    tok: Tok::StrLit(body),
                    line,
                    col,
                });
            }
            b'\'' => {
                let tok = lex_quote(&mut cur);
                out.push(Token { tok, line, col });
            }
            b'r' | b'b' if starts_string_prefix(&cur) => {
                let tok = lex_prefixed_string(&mut cur);
                out.push(Token { tok, line, col });
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                cur.eat_while(is_ident_cont);
                out.push(Token {
                    tok: Tok::Ident(src[start..cur.pos].to_string()),
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                let tok = lex_number(&mut cur, src);
                out.push(Token { tok, line, col });
            }
            _ => {
                cur.bump();
                out.push(Token {
                    tok: Tok::Punct(b as char),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// At an `r` or `b`: does a string/char prefix follow (`r"`, `r#"`, `br"`,
/// `b"`, `b'`, `r#ident`)? Raw identifiers are handled here too so `r#type`
/// does not get mistaken for a raw string opener.
fn starts_string_prefix(cur: &Cursor) -> bool {
    let b0 = cur.peek(0).unwrap_or(0);
    match b0 {
        b'b' => {
            matches!(cur.peek(1), Some(b'"') | Some(b'\''))
                || (cur.peek(1) == Some(b'r') && matches!(cur.peek(2), Some(b'"') | Some(b'#')))
        }
        b'r' => {
            match cur.peek(1) {
                Some(b'"') => true,
                Some(b'#') => {
                    // `r#"..."#` raw string vs `r#ident` raw identifier:
                    // scan past the `#` run and look at what it introduces.
                    let mut i = 1;
                    while cur.peek(i) == Some(b'#') {
                        i += 1;
                    }
                    cur.peek(i) == Some(b'"') || {
                        // `r#ident` — claim it so the ident path below
                        // strips the prefix.
                        i == 1
                            && cur.peek(1) == Some(b'#')
                            && cur.peek(2).is_some_and(is_ident_start)
                    }
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// Lex starting at `r`/`b`: raw string, byte string, byte char, or raw
/// identifier (the prefix check above guaranteed one of these).
fn lex_prefixed_string(cur: &mut Cursor) -> Tok {
    let b0 = cur.peek(0).unwrap_or(0);
    if b0 == b'b' {
        cur.bump(); // consume `b`
        match cur.peek(0) {
            Some(b'"') => return Tok::StrLit(lex_quoted_string(cur)),
            Some(b'\'') => return lex_quote(cur),
            Some(b'r') => {
                cur.bump(); // consume `r`, fall through to raw-string body
            }
            _ => {}
        }
    } else {
        cur.bump(); // consume `r`
    }
    // Either a raw string (`#`* then `"`) or a raw identifier (`#ident`).
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek(0) == Some(b'"') {
        cur.bump();
        let start = cur.pos;
        let end;
        loop {
            match cur.peek(0) {
                None => {
                    end = cur.pos;
                    break;
                }
                Some(b'"') => {
                    let mut ok = true;
                    for i in 0..hashes {
                        if cur.peek(1 + i) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        end = cur.pos;
                        cur.bump();
                        for _ in 0..hashes {
                            cur.bump();
                        }
                        break;
                    }
                    cur.bump();
                }
                Some(_) => {
                    cur.bump();
                }
            }
        }
        let body: String = cur.src[start..end].iter().map(|&c| c as char).collect();
        Tok::StrLit(body)
    } else {
        // raw identifier: `r#` already consumed one `#`.
        let start = cur.pos;
        cur.eat_while(is_ident_cont);
        let name: String = cur.src[start..cur.pos].iter().map(|&c| c as char).collect();
        Tok::Ident(name)
    }
}

/// Lex a `"`-quoted (non-raw) string; cursor sits on the opening quote.
/// Returns the raw body (escapes unprocessed).
fn lex_quoted_string(cur: &mut Cursor) -> String {
    cur.bump(); // opening quote
    let start = cur.pos;
    let end;
    loop {
        match cur.peek(0) {
            None => {
                end = cur.pos;
                break;
            }
            Some(b'\\') => {
                cur.bump();
                cur.bump();
            }
            Some(b'"') => {
                end = cur.pos;
                cur.bump();
                break;
            }
            Some(_) => {
                cur.bump();
            }
        }
    }
    cur.src[start..end].iter().map(|&c| c as char).collect()
}

/// Lex starting at a `'`: a char literal (`'x'`, `'\n'`, `'('`) or a
/// lifetime/label (`'a`, `'static`, `'outer`). The discriminator: after the
/// quote, an identifier run of length 1 followed by a closing `'` is a char
/// literal; a longer run (or no closing quote) is a lifetime.
fn lex_quote(cur: &mut Cursor) -> Tok {
    cur.bump(); // the `'`
    match cur.peek(0) {
        Some(b'\\') => {
            // Escaped char literal: consume escape then scan to closing `'`.
            cur.bump();
            cur.bump();
            while let Some(b) = cur.peek(0) {
                cur.bump();
                if b == b'\'' {
                    break;
                }
            }
            Tok::CharLit
        }
        Some(b) if is_ident_start(b) => {
            let start = cur.pos;
            cur.eat_while(is_ident_cont);
            let len = cur.pos - start;
            if len == 1 && cur.peek(0) == Some(b'\'') {
                cur.bump();
                Tok::CharLit
            } else {
                let name: String = cur.src[start..cur.pos].iter().map(|&c| c as char).collect();
                Tok::Lifetime(name)
            }
        }
        Some(_) => {
            // `'('`, `' '`, `'+'` … one char then the closing quote.
            cur.bump();
            if cur.peek(0) == Some(b'\'') {
                cur.bump();
            }
            Tok::CharLit
        }
        None => Tok::CharLit,
    }
}

/// Lex a numeric literal: integers (any base), floats with exponents, type
/// suffixes, `_` separators. Deliberately does not consume `..` (range).
fn lex_number(cur: &mut Cursor, src: &str) -> Tok {
    let start = cur.pos;
    if cur.peek(0) == Some(b'0') && matches!(cur.peek(1), Some(b'x') | Some(b'o') | Some(b'b')) {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == b'_');
        return Tok::NumLit(src[start..cur.pos].to_string());
    }
    cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
    }
    if matches!(cur.peek(0), Some(b'e') | Some(b'E'))
        && (cur.peek(1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(cur.peek(1), Some(b'+') | Some(b'-'))
                && cur.peek(2).is_some_and(|c| c.is_ascii_digit())))
    {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
    }
    // type suffix (`u64`, `f32`, `usize`)
    cur.eat_while(is_ident_cont);
    Tok::NumLit(src[start..cur.pos].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.b();");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::Punct('='),
                Tok::Ident("a".into()),
                Tok::Punct('.'),
                Tok::Ident("b".into()),
                Tok::Punct('('),
                Tok::Punct(')'),
                Tok::Punct(';'),
            ]
        );
    }

    #[test]
    fn line_and_col_positions() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_string_with_hashes() {
        let toks = kinds(r####"let s = r#"quote " inside"#;"####);
        assert!(toks.contains(&Tok::StrLit("quote \" inside".into())));
        // the `;` after the raw string is still lexed
        assert_eq!(toks.last(), Some(&Tok::Punct(';')));
    }

    #[test]
    fn raw_string_double_hash() {
        let toks = kinds("r##\"a \"# b\"##");
        assert_eq!(toks, vec![Tok::StrLit("a \"# b".into())]);
    }

    #[test]
    fn byte_string_and_byte_char() {
        let toks = kinds(r#"b"bytes" b'[' br"raw""#);
        assert_eq!(
            toks,
            vec![
                Tok::StrLit("bytes".into()),
                Tok::CharLit,
                Tok::StrLit("raw".into()),
            ]
        );
    }

    #[test]
    fn nested_block_comment() {
        let toks = lex("/* outer /* inner */ still outer */ x");
        assert_eq!(toks.len(), 2);
        assert!(matches!(toks[0].tok, Tok::BlockComment { doc: false, .. }));
        assert_eq!(toks[1].tok, Tok::Ident("x".into()));
        assert_eq!(
            toks[0].comment_text(),
            "/* outer /* inner */ still outer */"
        );
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let s = 'static; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t, Tok::Lifetime(_)))
            .collect();
        assert_eq!(
            lifetimes,
            vec![
                &Tok::Lifetime("a".into()),
                &Tok::Lifetime("a".into()),
                &Tok::Lifetime("static".into())
            ]
        );
        assert_eq!(
            toks.iter().filter(|t| **t == Tok::CharLit).count(),
            1,
            "'a' is a char literal, 'a and 'static are lifetimes"
        );
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"'\n' '\'' '\\' '\u{1F600}'");
        assert_eq!(toks, vec![Tok::CharLit; 4]);
    }

    #[test]
    fn punct_char_literal() {
        let toks = kinds("'(' ' '");
        assert_eq!(toks, vec![Tok::CharLit, Tok::CharLit]);
    }

    #[test]
    fn doc_comments_flagged() {
        let toks = lex("/// outer doc\n//! inner doc\n// plain\n//// rule of four\n/** block doc */\n/*! inner block */\n/* plain block */");
        let docs: Vec<bool> = toks
            .iter()
            .map(|t| match &t.tok {
                Tok::LineComment { doc, .. } | Tok::BlockComment { doc, .. } => *doc,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(docs, vec![true, true, false, false, true, true, false]);
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&Tok::Ident("type".into())));
    }

    #[test]
    fn numbers() {
        let toks = kinds("1_000 0xFF 1.5e-3 2u64 0..n 3.0f64");
        assert_eq!(
            toks,
            vec![
                Tok::NumLit("1_000".into()),
                Tok::NumLit("0xFF".into()),
                Tok::NumLit("1.5e-3".into()),
                Tok::NumLit("2u64".into()),
                Tok::NumLit("0".into()),
                Tok::Punct('.'),
                Tok::Punct('.'),
                Tok::Ident("n".into()),
                Tok::NumLit("3.0f64".into()),
            ]
        );
    }

    #[test]
    fn string_with_escaped_quote() {
        let toks = kinds(r#"let s = "a \" b"; x"#);
        assert!(toks.contains(&Tok::StrLit(r#"a \" b"#.into())));
        assert!(toks.contains(&Tok::Ident("x".into())));
    }

    #[test]
    fn unterminated_block_comment_does_not_hang() {
        let toks = lex("x /* never closed");
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn string_in_comment_not_lexed() {
        let toks = kinds("// not a \" string\nx");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], Tok::Ident("x".into()));
    }

    #[test]
    fn comment_in_string_not_lexed() {
        let toks = kinds(r#""has // no comment""#);
        assert_eq!(toks, vec![Tok::StrLit("has // no comment".into())]);
    }
}
