//! CLI driver: walk `crates/*/src`, run the rules, filter through the
//! committed `analyze.allow` baseline, print `path:line: rule: message`.
//!
//! Exit status is the contract: 0 when the tree is clean (every finding
//! matched by an allowlist entry and every allowlist entry used), nonzero
//! otherwise. CI runs `cargo run -p fairsel-analyze -- --deny-all` before
//! the build.

use fairsel_analyze::rules::{analyze_workspace, Finding};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct AllowEntry {
    rule: String,
    path: String,
    substr: String,
    line_no: usize,
}

fn parse_allow(text: &str) -> Vec<AllowEntry> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let rule = parts.next().unwrap_or("").to_string();
        let path = parts.next().unwrap_or("").to_string();
        let substr = parts.next().unwrap_or("").trim().to_string();
        out.push(AllowEntry {
            rule,
            path,
            substr,
            line_no: i + 1,
        });
    }
    out
}

fn matches(entry: &AllowEntry, f: &Finding) -> bool {
    entry.rule == f.rule
        && entry.path == f.path
        && (entry.substr.is_empty() || f.msg.contains(&entry.substr))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn workspace_root() -> PathBuf {
    // `cargo run -p fairsel-analyze` runs from the workspace root; fall back
    // to the manifest's grandparent when invoked from elsewhere.
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(cwd)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny_all = false;
    let mut allow_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny-all" => deny_all = true,
            "--allow" if i + 1 < args.len() => {
                i += 1;
                allow_path = Some(PathBuf::from(&args[i]));
            }
            "--root" if i + 1 < args.len() => {
                i += 1;
                root = Some(PathBuf::from(&args[i]));
            }
            other => {
                eprintln!("fairsel-analyze: unknown argument `{other}`");
                eprintln!("usage: fairsel-analyze [--deny-all] [--allow <file>] [--root <dir>]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let root = root.unwrap_or_else(workspace_root);
    let allow_path = allow_path.unwrap_or_else(|| root.join("analyze.allow"));

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = match std::fs::read_dir(&crates_dir) {
        Ok(rd) => rd.filter_map(Result::ok).map(|e| e.path()).collect(),
        Err(e) => {
            eprintln!("fairsel-analyze: cannot read {}: {e}", crates_dir.display());
            return ExitCode::from(2);
        }
    };
    crate_dirs.sort();
    let mut files: Vec<(String, String)> = Vec::new();
    for cdir in crate_dirs {
        let src_dir = cdir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        if collect_rs_files(&src_dir, &mut paths).is_err() {
            continue;
        }
        for p in paths {
            let rel = p
                .strip_prefix(&root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            match std::fs::read_to_string(&p) {
                Ok(src) => files.push((rel, src)),
                Err(e) => {
                    eprintln!("fairsel-analyze: cannot read {rel}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    let findings = analyze_workspace(&files);

    let allow_text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let allow = parse_allow(&allow_text);
    let mut allow_used = vec![false; allow.len()];
    let mut denied: Vec<&Finding> = Vec::new();
    let mut allowed = 0usize;
    for f in &findings {
        let mut hit = false;
        for (ai, entry) in allow.iter().enumerate() {
            if matches(entry, f) {
                allow_used[ai] = true;
                hit = true;
            }
        }
        if hit {
            allowed += 1;
        } else {
            denied.push(f);
        }
    }

    for f in &denied {
        println!("{f}");
    }
    let mut stale = 0usize;
    for (ai, used) in allow_used.iter().enumerate() {
        if !used {
            stale += 1;
            let e = &allow[ai];
            eprintln!(
                "fairsel-analyze: stale allowlist entry (line {}): {} {} {} — the \
                 allowlist must shrink, never grow; delete it",
                e.line_no, e.rule, e.path, e.substr
            );
        }
    }
    eprintln!(
        "fairsel-analyze: {} file(s), {} finding(s) ({} allowlisted), {} stale allow entr{}",
        files.len(),
        findings.len(),
        allowed,
        stale,
        if stale == 1 { "y" } else { "ies" }
    );

    let failed = !denied.is_empty() || (deny_all && stale > 0);
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
