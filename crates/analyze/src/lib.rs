//! `fairsel-analyze` — the workspace-native invariant linter.
//!
//! Every PR since the seed has pinned the same contract: batch / parallel /
//! grouped / remote execution byte-identical to serial, every cache bounded,
//! counters conserved. The dynamic property tests catch violations late and
//! only on exercised paths; this crate makes the contract machine-checked at
//! the *source* level, so a violating line fails CI before any test runs.
//!
//! The pass is std-only: a hand-rolled lexer ([`lexer`]) feeds a rule engine
//! ([`rules`]) of deny-by-default shape rules R1–R6. See the README's
//! "Static analysis" section for the rule catalog and annotation grammar,
//! and run it locally as:
//!
//! ```text
//! cargo run -p fairsel-analyze -- --deny-all
//! ```

pub mod lexer;
pub mod rules;

pub use rules::{analyze_file, analyze_workspace, Finding};
