//! The rule engine: deny-by-default source rules encoding the fairsel
//! determinism/boundedness contract.
//!
//! | rule | invariant |
//! |------|-----------|
//! | R1   | no `HashMap`/`HashSet` iteration escaping into ordered output — sort, collect into a `BTreeMap`, or annotate `// analyze: unordered-ok <reason>` |
//! | R2   | no unbounded memoization: cache-like struct fields outside `CappedCache` need `// analyze: bounded-by <reason>` |
//! | R3   | no wall-clock/thread-identity reads in deterministic crates (table/citest/engine/core) without `// analyze: wall-clock <reason>` |
//! | R4   | no `unwrap()`/`expect("...")` in the server crate request paths (panic confinement budget) |
//! | R5   | every `EngineStats` counter field is written by the stats JSON writer and checked by the bench validator |
//! | R6   | float `+=` in the bit-identity kernel files sits under an `// order:` annotation |
//!
//! Rules are shape patterns over the token stream from [`crate::lexer`], not
//! type analysis: name-based inventories (which identifiers are hash-typed)
//! and block-scoped annotations stand in for dataflow. That makes the pass
//! deliberately conservative — a same-named local shadows into the rule — and
//! the escape hatch is an annotation stating *why*, which is the artifact the
//! project actually wants in the source.

use crate::lexer::{lex, Tok, Token};

/// One lint finding, printed as `path:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Annotation grammar recognized in comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AnnKind {
    /// `// analyze: bounded-by <reason>` — R2 field escape.
    BoundedBy,
    /// `// analyze: wall-clock <reason>` — R3 telemetry escape.
    WallClock,
    /// `// analyze: unordered-ok <reason>` — R1 order-independence claim.
    UnorderedOk,
    /// `// order: <accumulation order>` — R6 documentation.
    Order,
}

struct Annotation {
    kind: AnnKind,
    /// Source lines the comment spans (inclusive).
    line_start: u32,
    line_end: u32,
    /// First code-token index after the comment.
    scope_start: usize,
    /// First code-token index where the enclosing block has closed.
    scope_end: usize,
}

/// Crates whose sources must be bit-reproducible: wall-clock and thread
/// identity are contraband without a `wall-clock` annotation (R3).
const DETERMINISTIC_CRATES: &[&str] = &["table", "citest", "engine", "core"];

/// Files holding the bit-identity float kernels (R6). Reassociating these
/// accumulations is the documented dead end; the annotation states the order.
const KERNEL_FILES: &[&str] = &["crates/mathx/src/linalg.rs", "crates/mathx/src/stats.rs"];

/// Types whose struct fields count as cache-like state for R2.
const CACHE_TYPES: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque"];

/// Iterator-producing methods whose order is the container's (R1).
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Per-file analysis context: token stream plus the derived structure the
/// rules share (brace depths, test-code spans, function bodies, annotations).
struct FileCtx<'a> {
    path: &'a str,
    crate_name: &'a str,
    toks: Vec<Token>,
    /// Indices into `toks` of non-comment tokens.
    code: Vec<usize>,
    /// Brace depth before each code token.
    depth: Vec<usize>,
    /// Code-index ranges (inclusive start, exclusive end) of `#[cfg(test)]`
    /// / `#[test]` items — exempt from every rule.
    excluded: Vec<(usize, usize)>,
    /// Code-index ranges of `use` statements (type mentions there are not
    /// reads — R3 skips them).
    use_spans: Vec<(usize, usize)>,
    /// `fn` bodies as (name, code-index range of `{..}` inclusive).
    fns: Vec<(String, usize, usize)>,
    annotations: Vec<Annotation>,
}

impl<'a> FileCtx<'a> {
    fn build(path: &'a str, src: &str) -> Self {
        let toks = lex(src);
        let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        let mut depth = Vec::with_capacity(code.len());
        let mut d = 0usize;
        for &ti in &code {
            depth.push(d);
            match toks[ti].tok {
                Tok::Punct('{') => d += 1,
                Tok::Punct('}') => d = d.saturating_sub(1),
                _ => {}
            }
        }
        let crate_name = crate_of(path);
        let mut ctx = FileCtx {
            path,
            crate_name,
            toks,
            code,
            depth,
            excluded: Vec::new(),
            use_spans: Vec::new(),
            fns: Vec::new(),
            annotations: Vec::new(),
        };
        ctx.find_excluded();
        ctx.find_use_spans();
        ctx.find_fns();
        ctx.find_annotations();
        ctx
    }

    fn ct(&self, ci: usize) -> &Token {
        &self.toks[self.code[ci]]
    }

    fn ident_at(&self, ci: usize) -> Option<&str> {
        self.code
            .get(ci)
            .map(|&ti| &self.toks[ti])
            .and_then(Token::ident)
    }

    fn punct_at(&self, ci: usize, c: char) -> bool {
        self.code
            .get(ci)
            .is_some_and(|&ti| self.toks[ti].is_punct(c))
    }

    fn in_ranges(ranges: &[(usize, usize)], ci: usize) -> bool {
        ranges.iter().any(|&(s, e)| s <= ci && ci < e)
    }

    fn is_excluded(&self, ci: usize) -> bool {
        Self::in_ranges(&self.excluded, ci)
    }

    /// Matching close-brace code index for the open brace at `open`.
    fn match_brace(&self, open: usize) -> usize {
        let mut d = 0usize;
        let mut ci = open;
        while ci < self.code.len() {
            match self.ct(ci).tok {
                Tok::Punct('{') => d += 1,
                Tok::Punct('}') => {
                    d -= 1;
                    if d == 0 {
                        return ci;
                    }
                }
                _ => {}
            }
            ci += 1;
        }
        self.code.len().saturating_sub(1)
    }

    /// `#[cfg(test)]` mods and `#[test]`/`#[cfg(test)]` fns are dynamic-test
    /// territory — the rules police production code only.
    fn find_excluded(&mut self) {
        let mut ci = 0usize;
        while ci < self.code.len() {
            if self.punct_at(ci, '#') && self.punct_at(ci + 1, '[') {
                let attr_start = ci;
                let mut d = 0usize;
                let mut j = ci + 1;
                let mut test_attr = false;
                while j < self.code.len() {
                    match self.ct(j).tok {
                        Tok::Punct('[') => d += 1,
                        Tok::Punct(']') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        Tok::Ident(ref s) if s == "test" => test_attr = true,
                        _ => {}
                    }
                    j += 1;
                }
                if test_attr {
                    // Skip any further attributes, then exclude the item.
                    let mut k = j + 1;
                    while self.punct_at(k, '#') && self.punct_at(k + 1, '[') {
                        let mut dd = 0usize;
                        while k < self.code.len() {
                            match self.ct(k).tok {
                                Tok::Punct('[') => dd += 1,
                                Tok::Punct(']') => {
                                    dd -= 1;
                                    if dd == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        k += 1;
                    }
                    // Find the item body `{..}` (or a terminating `;`).
                    while k < self.code.len() {
                        match self.ct(k).tok {
                            Tok::Punct('{') => {
                                let close = self.match_brace(k);
                                self.excluded.push((attr_start, close + 1));
                                ci = close;
                                break;
                            }
                            Tok::Punct(';') => {
                                self.excluded.push((attr_start, k + 1));
                                ci = k;
                                break;
                            }
                            _ => k += 1,
                        }
                    }
                }
                ci = ci.max(j);
            }
            ci += 1;
        }
    }

    fn find_use_spans(&mut self) {
        let mut ci = 0usize;
        while ci < self.code.len() {
            if self.ident_at(ci) == Some("use") {
                let start = ci;
                while ci < self.code.len() && !self.punct_at(ci, ';') {
                    ci += 1;
                }
                self.use_spans.push((start, ci + 1));
            }
            ci += 1;
        }
    }

    fn find_fns(&mut self) {
        let mut ci = 0usize;
        while ci < self.code.len() {
            if self.ident_at(ci) == Some("fn") {
                if let Some(name) = self.ident_at(ci + 1).map(str::to_string) {
                    // Scan the signature for the body brace; a `;` at paren
                    // depth 0 first means a bodiless trait method.
                    let mut j = ci + 2;
                    let mut paren = 0usize;
                    while j < self.code.len() {
                        match self.ct(j).tok {
                            Tok::Punct('(') => paren += 1,
                            Tok::Punct(')') => paren = paren.saturating_sub(1),
                            Tok::Punct('{') if paren == 0 => {
                                let close = self.match_brace(j);
                                self.fns.push((name, j, close + 1));
                                break;
                            }
                            Tok::Punct(';') if paren == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
            ci += 1;
        }
    }

    /// Innermost function body containing code index `ci`.
    fn enclosing_fn(&self, ci: usize) -> Option<&(String, usize, usize)> {
        self.fns
            .iter()
            .filter(|(_, s, e)| *s <= ci && ci < *e)
            .min_by_key(|(_, s, e)| e - s)
    }

    fn find_annotations(&mut self) {
        // Map each comment to the next code token to anchor block scope.
        let mut next_code = vec![self.code.len(); self.toks.len()];
        let mut code_iter = self.code.iter().copied().peekable();
        for (ti, slot) in next_code.iter_mut().enumerate() {
            while let Some(&c) = code_iter.peek() {
                if c < ti {
                    code_iter.next();
                } else {
                    break;
                }
            }
            *slot = code_iter
                .peek()
                .map_or(self.code.len(), |&c| self.code.partition_point(|&x| x < c));
        }
        for (ti, tok) in self.toks.iter().enumerate() {
            if !tok.is_comment() {
                continue;
            }
            let text = tok.comment_text();
            let body = text
                .trim_start_matches('/')
                .trim_start_matches('*')
                .trim_start_matches('!')
                .trim();
            let kind = if body.contains("analyze: bounded-by") {
                Some(AnnKind::BoundedBy)
            } else if body.contains("analyze: wall-clock") {
                Some(AnnKind::WallClock)
            } else if body.contains("analyze: unordered-ok") {
                Some(AnnKind::UnorderedOk)
            } else if body.starts_with("order:") {
                Some(AnnKind::Order)
            } else {
                None
            };
            let Some(kind) = kind else { continue };
            let scope_start = next_code[ti];
            let d = self.depth.get(scope_start).copied().unwrap_or(0);
            let mut scope_end = self.code.len();
            for j in scope_start..self.code.len() {
                if self.depth[j] < d {
                    scope_end = j;
                    break;
                }
            }
            let line_end = tok.line + text.matches('\n').count() as u32;
            self.annotations.push(Annotation {
                kind,
                line_start: tok.line,
                line_end,
                scope_start,
                scope_end,
            });
        }
    }

    /// Is code index `ci` (at source line `line`) covered by an annotation
    /// of `kind`? Coverage is same-line or rest-of-enclosing-block.
    fn covered(&self, kind: AnnKind, ci: usize, line: u32) -> bool {
        self.annotations.iter().any(|a| {
            a.kind == kind
                && ((a.line_start <= line && line <= a.line_end)
                    || (a.scope_start <= ci && ci < a.scope_end)
                    || (a.line_end + 1 == line && a.scope_start == ci))
        })
    }

    /// Is a struct field declared at `line` annotated with `kind`, either on
    /// its own line or in the contiguous comment block directly above it?
    fn field_annotated(&self, kind: AnnKind, line: u32) -> bool {
        // Collect comment line coverage once per call; files are small.
        let mut has_ann = std::collections::BTreeSet::new();
        let mut has_comment = std::collections::BTreeSet::new();
        for a in &self.annotations {
            for l in a.line_start..=a.line_end {
                has_ann.insert((a.kind as u8, l));
            }
        }
        for t in &self.toks {
            if t.is_comment() {
                let end = t.line + t.comment_text().matches('\n').count() as u32;
                for l in t.line..=end {
                    has_comment.insert(l);
                }
            }
        }
        if has_ann.contains(&(kind as u8, line)) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l > 0 && has_comment.contains(&l) {
            if has_ann.contains(&(kind as u8, l)) {
                return true;
            }
            l -= 1;
        }
        false
    }

    fn finding(&self, rule: &'static str, line: u32, msg: String) -> Finding {
        Finding {
            path: self.path.to_string(),
            line,
            rule,
            msg,
        }
    }
}

fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    while let Some(p) = parts.next() {
        if p == "crates" {
            return parts.next().unwrap_or("");
        }
    }
    ""
}

/// A struct field: name, source line, code index of the name token, and the
/// idents appearing in its type.
struct Field {
    name: String,
    line: u32,
    ci: usize,
    type_idents: Vec<String>,
}

/// Scan struct bodies for named fields. Tuple structs are skipped (no field
/// names to annotate); that is acceptable because every long-lived cache in
/// this workspace lives in a named field.
fn struct_fields(ctx: &FileCtx) -> Vec<Field> {
    let mut out = Vec::new();
    let mut ci = 0usize;
    while ci < ctx.code.len() {
        if ctx.ident_at(ci) == Some("struct") {
            let Some(_) = ctx.ident_at(ci + 1) else {
                ci += 1;
                continue;
            };
            // Find the body `{` before any `;` (unit/tuple struct) at
            // paren/bracket depth 0.
            let mut j = ci + 2;
            let mut paren = 0usize;
            let mut body = None;
            while j < ctx.code.len() {
                match ctx.ct(j).tok {
                    Tok::Punct('(') | Tok::Punct('[') => paren += 1,
                    Tok::Punct(')') | Tok::Punct(']') => paren = paren.saturating_sub(1),
                    Tok::Punct('{') if paren == 0 => {
                        body = Some(j);
                        break;
                    }
                    Tok::Punct(';') if paren == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = body else {
                ci += 1;
                continue;
            };
            let close = ctx.match_brace(open);
            let field_depth = ctx.depth[open] + 1;
            let mut k = open + 1;
            while k < close {
                // Skip attributes on the field.
                while ctx.punct_at(k, '#') && ctx.punct_at(k + 1, '[') {
                    let mut dd = 0usize;
                    while k < close {
                        match ctx.ct(k).tok {
                            Tok::Punct('[') => dd += 1,
                            Tok::Punct(']') => {
                                dd -= 1;
                                if dd == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // Skip visibility.
                if ctx.ident_at(k) == Some("pub") {
                    k += 1;
                    if ctx.punct_at(k, '(') {
                        while k < close && !ctx.punct_at(k, ')') {
                            k += 1;
                        }
                        k += 1;
                    }
                }
                let Some(name) = ctx.ident_at(k).map(str::to_string) else {
                    k += 1;
                    continue;
                };
                if !ctx.punct_at(k + 1, ':') {
                    k += 1;
                    continue;
                }
                let name_ci = k;
                let line = ctx.ct(k).line;
                // Type region: until `,` at field depth (outside any
                // nesting) or the struct's closing brace.
                let mut t = k + 2;
                let mut type_idents = Vec::new();
                let mut nest = 0isize;
                while t < close {
                    match ctx.ct(t).tok {
                        Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => nest += 1,
                        Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']') => nest -= 1,
                        Tok::Punct(',') if nest <= 0 && ctx.depth[t] == field_depth => break,
                        Tok::Ident(ref s) => type_idents.push(s.clone()),
                        _ => {}
                    }
                    t += 1;
                }
                out.push(Field {
                    name,
                    line,
                    ci: name_ci,
                    type_idents,
                });
                k = t + 1;
            }
            ci = close;
        }
        ci += 1;
    }
    out
}

/// Names in this file that are hash-ordered containers: struct fields
/// (scope `None` — visible file-wide through `self.`) and `let` bindings
/// with `HashMap`/`HashSet` in their type or initializer, plus bindings
/// initialized from a function this file declares with a hash-ordered
/// return type. Let bindings carry the body start of their enclosing
/// function so a `counts: Vec<_>` in one function is never poisoned by a
/// `counts: HashMap<_, _>` in another.
fn hash_named(ctx: &FileCtx, fields: &[Field]) -> Vec<(Option<usize>, String)> {
    let mut names: Vec<(Option<usize>, String)> = Vec::new();
    let mut hash_fns: Vec<String> = Vec::new();
    for f in fields {
        if f.type_idents
            .iter()
            .any(|t| t == "HashMap" || t == "HashSet")
        {
            names.push((None, f.name.clone()));
        }
    }
    // Functions returning hash-ordered containers.
    for (name, body_start, _) in &ctx.fns {
        // Walk the signature backwards from the body for a `->` return type.
        let mut j = *body_start;
        let mut saw_arrow = false;
        while j > 0 {
            j -= 1;
            if ctx.ident_at(j) == Some("fn") {
                break;
            }
            if ctx.punct_at(j, '>') && ctx.punct_at(j.wrapping_sub(1), '-') {
                saw_arrow = true;
                break;
            }
        }
        if saw_arrow {
            for k in j..*body_start {
                if matches!(ctx.ident_at(k), Some("HashMap") | Some("HashSet")) {
                    hash_fns.push(name.clone());
                    break;
                }
            }
        }
    }
    // `let` bindings.
    let mut ci = 0usize;
    while ci < ctx.code.len() {
        if ctx.ident_at(ci) == Some("let") {
            let mut j = ci + 1;
            if ctx.ident_at(j) == Some("mut") {
                j += 1;
            }
            if let Some(bound) = ctx.ident_at(j).map(str::to_string) {
                let let_depth = ctx.depth[ci];
                let mut t = j + 1;
                let mut hashy = false;
                while t < ctx.code.len() {
                    if ctx.punct_at(t, ';') && ctx.depth[t] == let_depth {
                        break;
                    }
                    if let Some(id) = ctx.ident_at(t) {
                        if id == "HashMap" || id == "HashSet" || hash_fns.iter().any(|f| f == id) {
                            hashy = true;
                        }
                    }
                    t += 1;
                }
                if hashy {
                    let scope = ctx.enclosing_fn(ci).map(|(_, s, _)| *s);
                    names.push((scope, bound));
                }
                ci = t;
            }
        }
        ci += 1;
    }
    names.sort();
    names.dedup();
    names
}

/// R1: iteration over a hash-ordered name must be sorted downstream in the
/// same function, collected into an ordered map, or annotated
/// `// analyze: unordered-ok <reason>`.
fn rule_r1(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let fields = struct_fields(ctx);
    let names = hash_named(ctx, &fields);
    if names.is_empty() {
        return;
    }
    // A name is hash-ordered at `ci` if it is a hash-typed struct field
    // (file-wide) or a hash-bound `let` in the same enclosing function.
    let is_hash_name = |s: &str, ci: usize| {
        let scope_here = ctx.enclosing_fn(ci).map(|(_, start, _)| *start);
        names
            .iter()
            .any(|(scope, n)| n == s && (scope.is_none() || *scope == scope_here))
    };
    let mut sites: Vec<(usize, String)> = Vec::new();
    for ci in 0..ctx.code.len() {
        // `name.iter()` / `self.name.values()` …
        if ctx.punct_at(ci, '.') {
            if let (Some(recv), Some(m)) = (ctx.ident_at(ci.wrapping_sub(1)), ctx.ident_at(ci + 1))
            {
                if ctx.punct_at(ci + 2, '(')
                    && HASH_ITER_METHODS.contains(&m)
                    && is_hash_name(recv, ci)
                {
                    sites.push((ci + 1, format!("{recv}.{m}()")));
                }
            }
        }
        // `for x in name` / `for x in &name` (not followed by `.` — that
        // form is caught above or is a method producing something else).
        if ctx.ident_at(ci) == Some("for") {
            let mut j = ci + 1;
            // skip the pattern up to `in` (patterns never contain `in`).
            while j < ctx.code.len() && ctx.ident_at(j) != Some("in") {
                j += 1;
            }
            let mut k = j + 1;
            while ctx.punct_at(k, '&') || ctx.ident_at(k) == Some("mut") {
                k += 1;
            }
            if let Some(head) = ctx.ident_at(k) {
                if is_hash_name(head, ci) && ctx.punct_at(k + 1, '{') {
                    sites.push((k, format!("for _ in {head}")));
                }
            }
        }
    }
    for (ci, what) in sites {
        if ctx.is_excluded(ci) {
            continue;
        }
        let line = ctx.ct(ci).line;
        if ctx.covered(AnnKind::UnorderedOk, ci, line) {
            continue;
        }
        // Ordered-collect evidence: `BTreeMap`/`BTreeSet` anywhere in the
        // same statement — scanned from the statement start, since the
        // ordered type usually appears in a `let out: BTreeMap<..> = ...`
        // annotation *before* the iteration call.
        let let_depth = ctx.depth[ci];
        let mut start = ci;
        while start > 0 {
            let p = start - 1;
            if (ctx.punct_at(p, ';') || ctx.punct_at(p, '{') || ctx.punct_at(p, '}'))
                && ctx.depth[p] <= let_depth
            {
                break;
            }
            start = p;
        }
        let mut t = start;
        let mut ordered_collect = false;
        while t < ctx.code.len() {
            if t > ci && ctx.punct_at(t, ';') && ctx.depth[t] <= let_depth {
                break;
            }
            if matches!(ctx.ident_at(t), Some("BTreeMap") | Some("BTreeSet")) {
                ordered_collect = true;
                break;
            }
            t += 1;
        }
        if ordered_collect {
            continue;
        }
        // Sorting evidence anywhere in the enclosing function counts:
        // a rebind-then-iterate (`let v: Vec<_> = set.into_iter().collect();
        // v.sort(); for x in v`) puts the sort *before* the loop.
        let sorted_in_fn = ctx.enclosing_fn(ci).is_some_and(|(_, start, end)| {
            (*start..*end).any(|j| ctx.ident_at(j).is_some_and(|id| id.starts_with("sort")))
        });
        if sorted_in_fn {
            continue;
        }
        findings.push(ctx.finding(
            "R1",
            line,
            format!(
                "hash-ordered iteration `{what}` without a downstream sort, ordered \
                 collect, or `// analyze: unordered-ok <reason>` annotation"
            ),
        ));
    }
}

/// R2: cache-like struct fields must be `CappedCache` or carry
/// `// analyze: bounded-by <reason>`.
fn rule_r2(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for f in struct_fields(ctx) {
        if ctx.is_excluded(f.ci) {
            continue;
        }
        let cache_like = f
            .type_idents
            .iter()
            .any(|t| CACHE_TYPES.contains(&t.as_str()));
        let capped = f.type_idents.iter().any(|t| t == "CappedCache");
        if cache_like && !capped && !ctx.field_annotated(AnnKind::BoundedBy, f.line) {
            findings.push(ctx.finding(
                "R2",
                f.line,
                format!(
                    "field `{}` has cache-like type ({}) outside CappedCache; annotate \
                     `// analyze: bounded-by <reason>` or bound it",
                    f.name,
                    f.type_idents
                        .iter()
                        .find(|t| CACHE_TYPES.contains(&t.as_str()))
                        .map(String::as_str)
                        .unwrap_or("?")
                ),
            ));
        }
    }
}

/// R3: `Instant`/`SystemTime`/thread-identity in deterministic crates.
fn rule_r3(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if !DETERMINISTIC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for ci in 0..ctx.code.len() {
        if ctx.is_excluded(ci) || FileCtx::in_ranges(&ctx.use_spans, ci) {
            continue;
        }
        let Some(id) = ctx.ident_at(ci) else { continue };
        let hit = match id {
            "Instant" | "SystemTime" | "ThreadId" => Some(id.to_string()),
            "thread"
                if ctx.punct_at(ci + 1, ':')
                    && ctx.punct_at(ci + 2, ':')
                    && ctx.ident_at(ci + 3) == Some("current") =>
            {
                Some("thread::current".to_string())
            }
            _ => None,
        };
        let Some(what) = hit else { continue };
        let line = ctx.ct(ci).line;
        if ctx.covered(AnnKind::WallClock, ci, line) {
            continue;
        }
        findings.push(ctx.finding(
            "R3",
            line,
            format!(
                "`{what}` in deterministic crate `{}`; telemetry-only reads need \
                 `// analyze: wall-clock <reason>`",
                ctx.crate_name
            ),
        ));
    }
}

/// R4: no `unwrap()` / `expect("...")` in server request paths. The string
/// literal requirement distinguishes `Result::expect` from the in-crate JSON
/// parser's `expect(b'[')` method.
fn rule_r4(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if ctx.crate_name != "server" {
        return;
    }
    for ci in 0..ctx.code.len() {
        if !ctx.punct_at(ci, '.') {
            continue;
        }
        let Some(m) = ctx.ident_at(ci + 1) else {
            continue;
        };
        let bad = match m {
            "unwrap" => ctx.punct_at(ci + 2, '(') && ctx.punct_at(ci + 3, ')'),
            "expect" => {
                ctx.punct_at(ci + 2, '(')
                    && ctx
                        .code
                        .get(ci + 3)
                        .is_some_and(|&ti| matches!(ctx.toks[ti].tok, Tok::StrLit(_)))
            }
            _ => false,
        };
        if !bad || ctx.is_excluded(ci) {
            continue;
        }
        let line = ctx.ct(ci).line;
        findings.push(ctx.finding(
            "R4",
            line,
            format!(
                "`.{m}(..)` in server request path — the panic confinement budget \
                 is catch_unwind only; recover (poison-tolerant lock, error frame) instead"
            ),
        ));
    }
}

/// R6: float `+=` in the bit-identity kernel files needs `// order:`.
/// Integer-literal steps (`i += 1`) are exempt — exact in any order.
fn rule_r6(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if !KERNEL_FILES.iter().any(|k| ctx.path.ends_with(k)) {
        return;
    }
    for ci in 0..ctx.code.len().saturating_sub(1) {
        let (a, b) = (ctx.ct(ci), ctx.ct(ci + 1));
        if !(a.is_punct('+') && b.is_punct('=') && a.line == b.line && b.col == a.col + 1) {
            continue;
        }
        if ctx.is_excluded(ci) {
            continue;
        }
        // `+= <integer literal>` is an index step, not accumulation.
        if let Some(&ti) = ctx.code.get(ci + 2) {
            if let Tok::NumLit(ref n) = ctx.toks[ti].tok {
                let int_step = !n.contains('.') && !n.contains('f');
                if int_step
                    && ctx
                        .code
                        .get(ci + 3)
                        .is_some_and(|&t2| ctx.toks[t2].is_punct(';'))
                {
                    continue;
                }
            }
        }
        let line = a.line;
        if ctx.covered(AnnKind::Order, ci, line) {
            continue;
        }
        findings.push(
            ctx.finding(
                "R6",
                line,
                "float `+=` accumulation in a bit-identity kernel file without an \
             `// order: <accumulation order>` annotation (reassociation is the \
             documented dead end)"
                    .to_string(),
            ),
        );
    }
}

/// Analyze one file with every single-file rule that applies to its path.
pub fn analyze_file(path: &str, src: &str) -> Vec<Finding> {
    let ctx = FileCtx::build(path, src);
    let mut findings = Vec::new();
    rule_r1(&ctx, &mut findings);
    rule_r2(&ctx, &mut findings);
    rule_r3(&ctx, &mut findings);
    rule_r4(&ctx, &mut findings);
    rule_r6(&ctx, &mut findings);
    findings
}

/// R5 (cross-file): every `EngineStats` counter field must appear quoted in
/// the stats JSON writer (session.rs, where `to_json` lives) and in the
/// bench validator file — the counter is only real if it is serialized and
/// smoke-checked.
pub fn rule_r5(files: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let session = files
        .iter()
        .find(|(p, _)| p.ends_with("crates/engine/src/session.rs"));
    let bench = files
        .iter()
        .find(|(p, _)| p.ends_with("crates/bench/src/lib.rs"));
    let (Some((spath, ssrc)), Some((_, bsrc))) = (session, bench) else {
        return findings;
    };
    let ctx = FileCtx::build(spath, ssrc);
    // Locate the EngineStats struct body so only *its* fields are checked
    // (session.rs declares other structs with their own serialization).
    let mut stats_span = None;
    for ci in 0..ctx.code.len() {
        if ctx.ident_at(ci) == Some("struct") && ctx.ident_at(ci + 1) == Some("EngineStats") {
            let mut j = ci + 2;
            while j < ctx.code.len() && !ctx.punct_at(j, '{') {
                j += 1;
            }
            if j < ctx.code.len() {
                stats_span = Some((j, ctx.match_brace(j)));
            }
            break;
        }
    }
    let mut counters: Vec<(String, u32)> = Vec::new();
    if let Some((open, close)) = stats_span {
        for f in struct_fields(&ctx) {
            if f.ci <= open || f.ci >= close {
                continue;
            }
            // Only the counter fields (plain unsigned scalars); nested
            // structures like `phases: Vec<PhaseStats>` have their own
            // serialization shape.
            let scalar = f.type_idents.len() == 1
                && matches!(f.type_idents[0].as_str(), "u64" | "u32" | "usize");
            if scalar {
                counters.push((f.name, f.line));
            }
        }
    }
    for (name, line) in counters {
        let quoted = format!("\"{name}\"");
        if !ssrc.contains(&quoted) {
            findings.push(Finding {
                path: spath.clone(),
                line,
                rule: "R5",
                msg: format!(
                    "EngineStats counter `{name}` is not written by the stats JSON \
                     writer (no {quoted} key in session.rs)"
                ),
            });
        } else if !bsrc.contains(&quoted) {
            findings.push(Finding {
                path: spath.clone(),
                line,
                rule: "R5",
                msg: format!(
                    "EngineStats counter `{name}` is not checked by the bench \
                     validator (no {quoted} key in crates/bench/src/lib.rs)"
                ),
            });
        }
    }
    findings
}

/// Analyze the whole workspace: per-file rules plus the cross-file R5.
/// Findings are sorted by (path, line, rule).
pub fn analyze_workspace(files: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (path, src) in files {
        findings.extend(analyze_file(path, src));
    }
    findings.extend(rule_r5(files));
    findings.sort();
    findings
}
