//! `fairsel` — CSV → causal feature selection → classifier → fairness
//! report, end to end, with engine telemetry.
//!
//! ```text
//! fairsel gen    --fixture 1a --rows 4000 --out data.csv
//! fairsel gen    --synthetic 64 --biased 0.1 --rows 4000 --out data.csv
//! fairsel select --csv data.csv --algo grpsel --workers 4
//! fairsel methods --csv data.csv
//! ```
//!
//! CSV headers are role-annotated (`name:catK[role]` / `name:num[role]`),
//! the format `fairsel_table::csv` round-trips; `fairsel gen` produces
//! them from the paper's fixtures or the synthetic workload generator.

use fairsel_ci::{FisherZ, GTest};
use fairsel_core::{
    run_all_methods, run_pipeline_batched, ClassifierKind, PipelineConfig, Problem, SelectConfig,
    SelectionAlgo, TesterSpec,
};
use fairsel_datasets::fixtures;
use fairsel_datasets::sim::sample_table;
use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
use fairsel_engine::{default_workers, EngineStats};
use fairsel_table::{csv, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
fairsel — causal feature selection for algorithmic fairness

USAGE:
  fairsel gen     --out <file.csv> [--fixture 1a|1b|1c|6] [--synthetic N]
                  [--biased F] [--rows N] [--seed N] [--strength W]
  fairsel select  --csv <file.csv> [--algo seqsel|grpsel] [--tester gtest|fisherz]
                  [--alpha F] [--classifier logistic|tree|forest|adaboost|nb]
                  [--workers N] [--max-group N|auto] [--train-frac F] [--seed N]
                  [--stats-out <file.json>]
  fairsel methods --csv <file.csv> [--tester gtest|fisherz] [--alpha F]
                  [--classifier ...] [--max-group N|auto] [--train-frac F] [--seed N]

`gen` writes a role-annotated CSV sampled from a paper fixture (default 1a)
or from a fairness-structured synthetic DAG (--synthetic <n_features>).
`select` runs the full pipeline — GrpSel frontiers batched through the
columnar EncodedTable layer — and prints selection, fairness report, and
engine telemetry (including encode-cache reuse). `methods` sweeps the
baseline pipelines (a-only, all, seqsel, grpsel, fair-pc) on one split.
`--max-group auto` pre-splits GrpSel's root group to width log2(train rows),
restoring group-test power on wide discrete data.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "select" => cmd_select(&opts),
        "methods" => cmd_methods(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command: {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed `--key value` options.
struct Opts {
    pairs: Vec<(String, String)>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(k) = it.next() {
            let key = k
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {k}"))?;
            let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            pairs.push((key.to_owned(), val.clone()));
        }
        Ok(Opts { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad value {v:?}")),
        }
    }
}

fn cmd_gen(opts: &Opts) -> Result<(), String> {
    let out = opts.get("out").ok_or("gen: --out is required")?;
    let rows: usize = opts.num("rows", 4000)?;
    let seed: u64 = opts.num("seed", 7)?;
    let strength: f64 = opts.num("strength", 1.5)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let (table, origin) = if let Some(n) = opts.get("synthetic") {
        let n_features: usize = n.parse().map_err(|_| "--synthetic: bad count")?;
        let biased: f64 = opts.num("biased", 0.1)?;
        let cfg = SyntheticConfig {
            n_features,
            biased_fraction: biased,
            ..Default::default()
        };
        let inst = synthetic_instance(&mut rng, &cfg);
        let scm = synthetic_scm(&mut rng, &inst, strength);
        let table = sample_table(&scm, &inst.roles, rows, &mut rng);
        (table, format!("synthetic n={n_features} biased={biased}"))
    } else {
        let id = opts.get("fixture").unwrap_or("1a");
        let fixture = match id {
            "1a" => fixtures::figure_1a(),
            "1b" => fixtures::figure_1b(),
            "1c" => fixtures::figure_1c(),
            "6" => fixtures::figure_6(),
            other => return Err(format!("unknown fixture: {other} (1a|1b|1c|6)")),
        };
        let scm = fixture.scm(strength);
        let table = sample_table(&scm, &fixture.roles, rows, &mut rng);
        (table, format!("figure {id}"))
    };
    csv::write_csv(&table, Path::new(out)).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} rows x {} cols from {origin}\nschema: {}",
        table.n_rows(),
        table.n_cols(),
        table.schema_string()
    );
    Ok(())
}

/// Shared select/methods setup: load CSV, split, read common options.
struct Workload {
    train: Table,
    test: Table,
    cfg: PipelineConfig,
    tester: String,
    alpha: f64,
}

fn load_workload(opts: &Opts) -> Result<Workload, String> {
    let path = opts.get("csv").ok_or("--csv is required")?;
    let table = csv::read_csv(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    if table.n_rows() < 10 {
        return Err(format!("{path}: too few rows ({})", table.n_rows()));
    }
    let train_frac: f64 = opts.num("train-frac", 0.7)?;
    let seed: u64 = opts.num("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let (train, test) = table.split_train_test(&mut rng, train_frac);

    let algo = match opts.get("algo").unwrap_or("grpsel") {
        "seqsel" => SelectionAlgo::SeqSel,
        "grpsel" => SelectionAlgo::GrpSel { seed: Some(seed) },
        other => return Err(format!("unknown --algo: {other}")),
    };
    let classifier = ClassifierKind::parse(opts.get("classifier").unwrap_or("logistic"))
        .ok_or("unknown --classifier")?;
    let workers: usize = opts.num("workers", default_workers())?;
    let max_group = match opts.get("max-group") {
        None => None,
        Some("auto") => Some(SelectConfig::auto_max_group(train.n_rows())),
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("--max-group: bad value {v:?} (number or 'auto')"))
                .and_then(|w| {
                    if w == 0 {
                        Err("--max-group must be >= 1".to_owned())
                    } else {
                        Ok(w)
                    }
                })?,
        ),
    };
    let cfg = PipelineConfig {
        select: SelectConfig {
            max_group,
            ..SelectConfig::default()
        },
        algo,
        classifier,
        workers,
        model_seed: seed,
    };
    let tester = opts.get("tester").unwrap_or("gtest").to_owned();
    let alpha: f64 = opts.num("alpha", 0.01)?;
    Ok(Workload {
        train,
        test,
        cfg,
        tester,
        alpha,
    })
}

fn cmd_select(opts: &Opts) -> Result<(), String> {
    let w = load_workload(opts)?;
    let out = match w.tester.as_str() {
        "gtest" => {
            let tester = GTest::new(&w.train, w.alpha);
            run_pipeline_batched(tester, &w.train, &w.test, &w.cfg)
        }
        "fisherz" => {
            let tester = FisherZ::new(&w.train, w.alpha);
            run_pipeline_batched(tester, &w.train, &w.test, &w.cfg)
        }
        other => return Err(format!("unknown --tester: {other} (gtest|fisherz)")),
    };

    let name = |c: usize| w.train.col(c).name.clone();
    println!("== selection ({:?}) ==", w.cfg.algo);
    println!(
        "c1 (no new sensitive info): {:?}",
        ids_to_names(&out.selection.c1, &name)
    );
    println!(
        "c2 (screened from target):  {:?}",
        ids_to_names(&out.selection.c2, &name)
    );
    println!(
        "rejected:                   {:?}",
        ids_to_names(&out.selection.rejected, &name)
    );
    println!(
        "model columns:              {:?}",
        ids_to_names(&out.model_cols, &name)
    );
    println!();
    println!(
        "== fairness report ({:?}, test split n={}) ==",
        w.cfg.classifier,
        w.test.n_rows()
    );
    let r = &out.report;
    println!("accuracy                    {:.4}", r.accuracy);
    println!("abs odds difference         {:.4}", r.abs_odds_difference);
    println!(
        "statistical parity diff     {:.4}",
        r.statistical_parity_difference
    );
    println!("disparate impact            {:.4}", r.disparate_impact);
    println!(
        "equal opportunity diff      {:.4}",
        r.equal_opportunity_difference
    );
    println!("CMI(S; Yhat | A)            {:.6}", r.cmi_s_pred_given_a);
    println!();
    print_engine_stats(&out.engine, w.cfg.workers);

    if let Some(path) = opts.get("stats-out") {
        std::fs::write(path, out.engine.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nengine stats written to {path}");
    }
    Ok(())
}

fn cmd_methods(opts: &Opts) -> Result<(), String> {
    let w = load_workload(opts)?;
    let spec = match w.tester.as_str() {
        "gtest" => TesterSpec::GTest { alpha: w.alpha },
        "fisherz" => TesterSpec::FisherZ { alpha: w.alpha },
        other => return Err(format!("unknown --tester: {other} (gtest|fisherz)")),
    };
    let outs = run_all_methods(&spec, None, &w.train, &w.test, &w.cfg);
    let problem = Problem::from_table(&w.train);
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>10} {:>10} {:>12}",
        "method", "selected", "tests", "issued", "accuracy", "odds-diff", "cmi"
    );
    for out in &outs {
        println!(
            "{:<10} {:>6}/{:<2} {:>9} {:>9} {:>10.4} {:>10.4} {:>12.6}",
            out.method.name(),
            out.selected.len(),
            problem.n_features(),
            out.tests_used,
            out.engine.issued,
            out.report.accuracy,
            out.report.abs_odds_difference,
            out.report.cmi_s_pred_given_a,
        );
    }
    Ok(())
}

fn ids_to_names(ids: &[usize], name: &dyn Fn(usize) -> String) -> Vec<String> {
    ids.iter().map(|&c| name(c)).collect()
}

fn print_engine_stats(stats: &EngineStats, workers: usize) {
    println!("== engine telemetry (workers={workers}) ==");
    println!("queries requested           {}", stats.requested);
    println!("tests issued                {}", stats.issued);
    println!("cache hits                  {}", stats.cache_hits);
    println!("dedup rate                  {:.4}", stats.dedup_rate());
    println!(
        "batches (parallel/batched)  {} ({}/{})",
        stats.batches, stats.parallel_batches, stats.batched_batches
    );
    println!(
        "encode cache hits/misses    {}/{}",
        stats.encode_cache_hits, stats.encode_cache_misses
    );
    println!("ci wall time                {:.2} ms", stats.wall_ms);
    for p in &stats.phases {
        println!(
            "  {:<24} requested {:>6}  issued {:>6}  hits {:>6}  {:>9.2} ms",
            p.name, p.requested, p.issued, p.cache_hits, p.wall_ms
        );
    }
}
