//! `fairsel` — CSV → causal feature selection → classifier → fairness
//! report, end to end, with engine telemetry.
//!
//! ```text
//! fairsel gen    --fixture 1a --rows 4000 --out data.csv
//! fairsel gen    --synthetic 64 --biased 0.1 --rows 4000 --out data.csv
//! fairsel select --csv data.csv --algo grpsel --workers 4
//! fairsel select --csv data.csv --dag graph.txt        # oracle tester
//! fairsel methods --csv data.csv
//! fairsel serve  --addr 127.0.0.1:4990 --cache-cap 8192
//! fairsel select --csv data.csv --remote 127.0.0.1:4990
//! ```
//!
//! CSV headers are role-annotated (`name:catK[role]` / `name:num[role]`),
//! the format `fairsel_table::csv` round-trips; `fairsel gen` produces
//! them from the paper's fixtures or the synthetic workload generator.

use fairsel_ci::{FisherZ, GTest, OracleCi};
use fairsel_core::{
    render_methods_report, render_pipeline_report, run_all_methods, run_pipeline_batched,
    ClassifierKind, PipelineConfig, PipelineResult, Problem, SelectConfig, SelectionAlgo,
    TesterSpec,
};
use fairsel_datasets::fixtures;
use fairsel_datasets::sim::sample_table;
use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
use fairsel_engine::{default_workers, EngineStats};
use fairsel_graph::{dag_from_text, Dag};
use fairsel_server::{
    DatasetRef, Json, MaxGroupSpec, RegistryConfig, Request, Response, ServeConfig, Server,
    WorkloadRequest,
};
use fairsel_table::{csv, EncodedTable, Table, DEFAULT_CACHE_CAP};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
fairsel — causal feature selection for algorithmic fairness

USAGE:
  fairsel gen     --out <file.csv> [--fixture 1a|1b|1c|6] [--synthetic N]
                  [--biased F] [--rows N] [--seed N] [--strength W]
                  [--append-batches N --batch-rows M]
  fairsel select  --csv <file.csv> [--algo seqsel|grpsel] [--tester gtest|fisherz]
                  [--dag <graph.txt>] [--alpha F]
                  [--classifier logistic|tree|forest|adaboost|nb]
                  [--workers N] [--max-group N|auto] [--speculate true|false]
                  [--train-frac F] [--seed N]
                  [--cache-cap N] [--stats-out <file.json>]
                  [--report-out <file.txt>] [--remote <host:port>]
  fairsel methods --csv <file.csv> [--tester gtest|fisherz] [--dag <graph.txt>]
                  [--alpha F] [--classifier ...] [--max-group N|auto]
                  [--train-frac F] [--seed N] [--remote <host:port>]
  fairsel serve   [--addr <host:port>] [--cache-cap N] [--max-datasets N]
                  [--conn-workers N] [--max-conns N] [--trace true|false]
  fairsel append  --remote <host:port> --csv <batch.csv>
                  (--fp <16-hex> | --base <base.csv>)
  fairsel stats   --remote <host:port> [--prom] [--watch SECS [--iters N]]
  fairsel trace   --remote <host:port> [--last N] [--trace-out <spans.jsonl>]

`gen` writes a role-annotated CSV sampled from a paper fixture (default 1a)
or from a fairness-structured synthetic DAG (--synthetic <n_features>).
`--append-batches N --batch-rows M` additionally writes N batch files
(`<out>.batch1.csv`, …) of M rows each, drawn from the *same* generator
state the base rows came from — streaming-append fodder for
`fairsel append`.
`append` streams a row batch to a running server: the parent dataset is
addressed fingerprint-first (`--fp`, or `--base file.csv` to fingerprint
a local copy), only the batch travels the wire (binary codec), and the
server answers with the *child* dataset fingerprint. The recorded
parent→child lineage means the first `select --remote` on the child is
born warm from the parent's session — its tester scaffolds are extended
over the appended rows, not rebuilt.
`select` runs the full pipeline — GrpSel frontiers partitioned by
conditioning set and evaluated through the Z-grouped scheduler on a
persistent worker pool — and prints selection, fairness report, and
engine telemetry (encode-cache reuse, speculation counters).
`--speculate true` issues each frontier level's predictable follow-up
queries ahead of demand (selections are byte-identical either way; the
speculative_* counters measure the policy). `methods` sweeps the
baseline pipelines (a-only, all, seqsel, grpsel, fair-pc) on one split;
with --remote the sweep runs inside the server's shared per-dataset
session and reports post-dedup test counts.
`--max-group auto` pre-splits GrpSel's root group to width log2(train rows),
restoring group-test power on wide discrete data.
`--dag graph.txt` answers CI queries from ground-truth d-separation on the
given graph (line format: `a -> b` edges, bare names for isolated nodes,
`#` comments; node names must cover the CSV columns — extra latent nodes
are fine). `--report-out` writes just the deterministic selection +
fairness report (the byte-compared artifact in CI).
`serve` starts the long-lived session service: requests from many clients
share one encode pass and one CI-outcome cache per dataset fingerprint,
LRU-bounded by --cache-cap (per-dataset encodings) and --max-datasets.
Connections are served by a bounded handler pool (--conn-workers, default
max(4, cores)); past --max-conns concurrently admitted connections the
server sheds new ones with a structured busy error instead of queueing.
`select --remote host:port` addresses the dataset by fingerprint on the
wire (warm requests are a few hundred bytes), uploads it once via the
binary column codec only when the server does not hold it yet, falls
back to inline CSV against servers without fingerprint support, and to
local execution when the server is unreachable or busy. `stats --remote` prints the server's registry and
connection telemetry (active/shed connections, bytes moved, per-command
latency percentiles, admission queue wait) as one JSON object; `--prom`
renders the same data in the Prometheus text format, `--watch SECS`
polls it and prints one delta line per interval (`--iters N` bounds the
loop; default runs until interrupted). `trace --remote` fetches the
server's most recent completed spans (engine phases and the request
lifecycle) as JSON lines — `--last N` picks how many, `--trace-out`
writes them to a file instead of stdout.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "select" => cmd_select(&opts),
        "methods" => cmd_methods(&opts),
        "append" => cmd_append(&opts),
        "serve" => cmd_serve(&opts),
        "stats" => cmd_stats(&opts),
        "trace" => cmd_trace(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command: {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed `--key value` options.
struct Opts {
    pairs: Vec<(String, String)>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(k) = it.next() {
            let key = k
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {k}"))?;
            // A flag followed by another flag (or by nothing) is a bare
            // boolean: `--prom` reads as `--prom true`.
            let val = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
                _ => "true".to_owned(),
            };
            pairs.push((key.to_owned(), val));
        }
        Ok(Opts { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad value {v:?}")),
        }
    }
}

fn cmd_gen(opts: &Opts) -> Result<(), String> {
    let out = opts.get("out").ok_or("gen: --out is required")?;
    let rows: usize = opts.num("rows", 4000)?;
    let seed: u64 = opts.num("seed", 7)?;
    let strength: f64 = opts.num("strength", 1.5)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let (scm, roles, origin) = if let Some(n) = opts.get("synthetic") {
        let n_features: usize = n.parse().map_err(|_| "--synthetic: bad count")?;
        let biased: f64 = opts.num("biased", 0.1)?;
        let cfg = SyntheticConfig {
            n_features,
            biased_fraction: biased,
            ..Default::default()
        };
        let inst = synthetic_instance(&mut rng, &cfg);
        let scm = synthetic_scm(&mut rng, &inst, strength);
        (
            scm,
            inst.roles,
            format!("synthetic n={n_features} biased={biased}"),
        )
    } else {
        let id = opts.get("fixture").unwrap_or("1a");
        let fixture = match id {
            "1a" => fixtures::figure_1a(),
            "1b" => fixtures::figure_1b(),
            "1c" => fixtures::figure_1c(),
            "6" => fixtures::figure_6(),
            other => return Err(format!("unknown fixture: {other} (1a|1b|1c|6)")),
        };
        let scm = fixture.scm(strength);
        (scm, fixture.roles, format!("figure {id}"))
    };
    let table = sample_table(&scm, &roles, rows, &mut rng);
    csv::write_csv(&table, Path::new(out)).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} rows x {} cols from {origin}\nschema: {}",
        table.n_rows(),
        table.n_cols(),
        table.schema_string()
    );
    // Streaming-append fodder: continue drawing from the *same* generator
    // state, so base + batches are one long sample — exactly the rows a
    // single `gen --rows base+N*M` run would have produced.
    let batches: usize = opts.num("append-batches", 0)?;
    if batches > 0 {
        let batch_rows: usize = opts.num("batch-rows", 0)?;
        if batch_rows == 0 {
            return Err("--append-batches requires --batch-rows M (M >= 1)".into());
        }
        let stem = out.strip_suffix(".csv").unwrap_or(out);
        for b in 1..=batches {
            let batch = sample_table(&scm, &roles, batch_rows, &mut rng);
            let path = format!("{stem}.batch{b}.csv");
            csv::write_csv(&batch, Path::new(&path)).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote {path}: {batch_rows} rows (append batch {b}/{batches})");
        }
    }
    Ok(())
}

/// `fairsel append`: stream a row batch to a running server,
/// fingerprint-first. The parent is addressed by `--fp` (16 hex chars,
/// as printed by a previous put/append) or by `--base file.csv`
/// (fingerprinted locally — no upload). Only the batch rows travel, as
/// the binary column codec; the server answers with the child dataset
/// fingerprint, which later `select --remote` requests resolve warm.
fn cmd_append(opts: &Opts) -> Result<(), String> {
    let addr = opts
        .get("remote")
        .ok_or("append: --remote <host:port> is required")?;
    let path = opts
        .get("csv")
        .ok_or("append: --csv <batch.csv> is required")?;
    let batch = csv::read_csv(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    if batch.n_rows() == 0 {
        return Err(format!("{path}: batch has no rows"));
    }
    let fp = match (opts.get("fp"), opts.get("base")) {
        (Some(hex), _) => u64::from_str_radix(hex, 16)
            .map_err(|_| format!("--fp: bad fingerprint {hex:?} (expect 16 hex chars)"))?,
        (None, Some(base)) => {
            let table =
                csv::read_csv(Path::new(base)).map_err(|e| format!("reading {base}: {e}"))?;
            fairsel_server::fingerprint_table(&table)
        }
        (None, None) => return Err("append: --fp <16-hex> or --base <base.csv> is required".into()),
    };
    let bytes = fairsel_table::encode_row_batch(&batch);
    let resp = fairsel_server::append_rows(addr, fp, &bytes).map_err(|e| format!("{addr}: {e}"))?;
    match resp {
        Response::Ok { body, stats, .. } => {
            println!("child fingerprint           {body}");
            println!("parent fingerprint          {fp:016x}");
            println!(
                "batch                       {} rows, {} bytes on the wire",
                batch.n_rows(),
                bytes.len()
            );
            if let Some(s) = stats {
                if let Some(rows) = s.get_u64("rows") {
                    println!("child rows                  {rows}");
                }
            }
            Ok(())
        }
        Response::Busy => Err("server busy: connection limit reached".into()),
        Response::Err(e) => Err(e),
    }
}

/// Shared select/methods setup: load CSV, split, read common options.
struct Workload {
    train: Table,
    test: Table,
    cfg: PipelineConfig,
    tester: String,
    alpha: f64,
}

fn load_workload(opts: &Opts) -> Result<Workload, String> {
    let path = opts.get("csv").ok_or("--csv is required")?;
    let table = csv::read_csv(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    if table.n_rows() < 10 {
        return Err(format!("{path}: too few rows ({})", table.n_rows()));
    }
    let train_frac: f64 = opts.num("train-frac", 0.7)?;
    let seed: u64 = opts.num("seed", 0)?;
    // Row-stable split — the same membership rule the server registry
    // uses, so a local run and a `--remote` run of the same workload
    // stay byte-identical (and appended datasets split into the parent's
    // split plus the new rows).
    let split = table.split_rows_stable(seed, train_frac);
    let (train, test) = (split.train, split.test);

    let algo = match opts.get("algo").unwrap_or("grpsel") {
        "seqsel" => SelectionAlgo::SeqSel,
        "grpsel" => SelectionAlgo::GrpSel { seed: Some(seed) },
        other => return Err(format!("unknown --algo: {other}")),
    };
    let classifier = ClassifierKind::parse(opts.get("classifier").unwrap_or("logistic"))
        .ok_or("unknown --classifier")?;
    let workers: usize = opts.num("workers", default_workers())?;
    let max_group = match opts.get("max-group") {
        None => None,
        Some("auto") => Some(SelectConfig::auto_max_group(train.n_rows())),
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("--max-group: bad value {v:?} (number or 'auto')"))
                .and_then(|w| {
                    if w == 0 {
                        Err("--max-group must be >= 1".to_owned())
                    } else {
                        Ok(w)
                    }
                })?,
        ),
    };
    let speculate: bool = opts.num("speculate", false)?;
    let cfg = PipelineConfig {
        select: SelectConfig {
            max_group,
            speculate,
            ..SelectConfig::default()
        },
        algo,
        classifier,
        workers,
        model_seed: seed,
    };
    let tester = opts.get("tester").unwrap_or("gtest").to_owned();
    let alpha: f64 = opts.num("alpha", 0.01)?;
    Ok(Workload {
        train,
        test,
        cfg,
        tester,
        alpha,
    })
}

fn cmd_select(opts: &Opts) -> Result<(), String> {
    if let Some(addr) = opts.get("remote") {
        if opts.get("dag").is_some() {
            return Err("--dag cannot be combined with --remote (oracle runs locally)".into());
        }
        match remote_select(addr, opts) {
            Ok(()) => return Ok(()),
            Err(RemoteError::Unreachable(e)) => {
                eprintln!(
                    "warning: server {addr} unreachable ({e}); falling back to local execution"
                );
            }
            Err(RemoteError::Server(e)) => return Err(format!("remote {addr}: {e}")),
        }
    }

    let w = load_workload(opts)?;
    let cache_cap: usize = opts.num("cache-cap", DEFAULT_CACHE_CAP)?;
    let out = if let Some(path) = opts.get("dag") {
        let dag = load_dag(path)?;
        let aligned = align_dag_to_table(&dag, &w.train)?;
        run_pipeline_batched(OracleCi::from_dag(aligned), &w.train, &w.test, &w.cfg)
    } else {
        let enc = Arc::new(EncodedTable::from_arc_with_cap(
            Arc::new(w.train.clone()),
            cache_cap,
        ));
        match w.tester.as_str() {
            "gtest" => run_pipeline_batched(GTest::over(enc, w.alpha), &w.train, &w.test, &w.cfg),
            "fisherz" => {
                run_pipeline_batched(FisherZ::over(enc, w.alpha), &w.train, &w.test, &w.cfg)
            }
            other => return Err(format!("unknown --tester: {other} (gtest|fisherz)")),
        }
    };

    let report = render_pipeline_report(&out, &w.train, &w.cfg, w.test.n_rows());
    print!("{report}");
    println!();
    print_engine_stats(&out.engine, w.cfg.workers);
    write_outputs(opts, &report, &out)?;
    Ok(())
}

/// Remote execution failure, split by whether falling back locally is the
/// right reaction (connection trouble) or not (the server understood the
/// request and rejected it).
enum RemoteError {
    Unreachable(String),
    Server(String),
}

/// Build the wire workload from the CLI options (same defaults as the
/// local path) and the raw CSV file bytes.
fn workload_request(opts: &Opts) -> Result<WorkloadRequest, String> {
    let path = opts.get("csv").ok_or("--csv is required")?;
    let csv_text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let max_group = match opts.get("max-group") {
        None => MaxGroupSpec::None,
        Some("auto") => MaxGroupSpec::Auto,
        Some(v) => MaxGroupSpec::Width(
            v.parse::<usize>()
                .ok()
                .filter(|&w| w >= 1)
                .ok_or_else(|| format!("--max-group: bad value {v:?} (number or 'auto')"))?,
        ),
    };
    Ok(WorkloadRequest {
        dataset: DatasetRef::Csv(csv_text),
        algo: opts.get("algo").unwrap_or("grpsel").to_owned(),
        tester: opts.get("tester").unwrap_or("gtest").to_owned(),
        alpha: opts.num("alpha", 0.01)?,
        workers: opts.num("workers", default_workers())?,
        max_group,
        speculate: opts.num("speculate", false)?,
        train_frac: opts.num("train-frac", 0.7)?,
        seed: opts.num("seed", 0)?,
        classifier: opts.get("classifier").unwrap_or("logistic").to_owned(),
    })
}

/// How the workload's dataset traveled to the server.
enum Transport {
    /// Fingerprint-addressed; `put_bytes` is the one-time codec upload
    /// (`0` when the server already held the dataset — the warm case,
    /// where the whole exchange is a few hundred bytes).
    FpAddressed { put_bytes: usize },
    /// Shipped inline as CSV text (older server, or the upload failed).
    InlineCsv,
}

/// Serialize once, send, and report the frame size alongside the
/// response (the transport telemetry must not cost a second
/// serialization of a multi-megabyte request).
fn send_request(addr: &str, wire: &Request) -> Result<(Response, usize), RemoteError> {
    let payload = wire.to_json().to_string();
    let resp = fairsel_server::request_raw(addr, payload.as_bytes())
        .map_err(|e| RemoteError::Unreachable(e.to_string()))?;
    Ok((resp, payload.len() + 4))
}

/// Swap a workload request's dataset reference.
fn with_dataset(wire: Request, dataset: DatasetRef) -> Request {
    match wire {
        Request::Select(mut w) => {
            w.dataset = dataset;
            Request::Select(w)
        }
        Request::Methods(mut w) => {
            w.dataset = dataset;
            Request::Methods(w)
        }
        other => other,
    }
}

/// Issue one workload request, negotiating the fingerprint-addressed
/// transport **fingerprint-first**: compute the dataset fingerprint
/// locally and send the tiny `fp` request straight away — a warm server
/// already holds the dataset and no bytes beyond the frame move. Only an
/// `unknown dataset fingerprint` answer triggers the one-time `put`
/// upload (then the fp request is retried); servers that know neither
/// `fp` nor `put` get the dataset re-shipped as inline CSV.
fn remote_workload(
    addr: &str,
    mut req: WorkloadRequest,
    wrap: fn(WorkloadRequest) -> Request,
) -> Result<(Response, Transport, usize), RemoteError> {
    // Rewrite csv → fp, keeping the CSV text (moved, not copied) for the
    // inline fallback and the parsed table for the (rare) upload path.
    let mut csv_backup = None;
    let mut parsed = None;
    if let Some(table) = req
        .dataset
        .as_csv()
        .and_then(|t| csv::from_csv_string(t).ok())
    {
        let fp = fairsel_server::fingerprint_table(&table);
        parsed = Some(table);
        if let DatasetRef::Csv(text) = std::mem::replace(&mut req.dataset, DatasetRef::Fp(fp)) {
            csv_backup = Some(text);
        }
    }
    let fp_first = csv_backup.is_some();
    let wire = wrap(req);
    let (mut resp, mut frame_bytes) = send_request(addr, &wire)?;
    let mut transport = if fp_first {
        Transport::FpAddressed { put_bytes: 0 }
    } else {
        Transport::InlineCsv
    };

    // Cold server: upload the dataset once, retry the same fp frame. The
    // codec payload is encoded only here — the warm path (server already
    // holds the dataset) never materializes it.
    if fp_first && matches!(&resp, Response::Err(e) if e.contains("unknown dataset fingerprint")) {
        let uploaded = parsed.as_ref().and_then(|table| {
            let bytes = fairsel_table::encode_table(table);
            match fairsel_server::put_dataset(addr, &bytes) {
                Ok(Response::Ok { .. }) => Some(bytes.len()),
                _ => None,
            }
        });
        if let Some(put_bytes) = uploaded {
            (resp, frame_bytes) = send_request(addr, &wire)?;
            transport = Transport::FpAddressed { put_bytes };
        }
    }

    // Still failing on the fp transport (a server without `put`, or one
    // that predates `fp` entirely and answers "missing csv"): re-ship
    // the dataset inline, which every server understands.
    if fp_first
        && matches!(&resp, Response::Err(e) if e.contains("unknown dataset fingerprint")
            || e.contains("missing csv"))
    {
        if let Some(text) = csv_backup {
            let wire = with_dataset(wire, DatasetRef::Csv(text));
            (resp, frame_bytes) = send_request(addr, &wire)?;
            transport = Transport::InlineCsv;
        }
    }
    Ok((resp, transport, frame_bytes))
}

/// Describe how the dataset traveled (grep-able by the CI smoke step).
fn print_transport(transport: &Transport, frame_bytes: usize) {
    match transport {
        Transport::FpAddressed { put_bytes: 0 } => println!(
            "transport                   fp-addressed \
             (dataset already resident; request frame {frame_bytes} bytes)"
        ),
        Transport::FpAddressed { put_bytes } => println!(
            "transport                   fp-addressed \
             (uploaded {put_bytes} bytes once; request frame {frame_bytes} bytes)"
        ),
        Transport::InlineCsv => {
            println!("transport                   inline csv (request frame {frame_bytes} bytes)")
        }
    }
}

fn remote_select(addr: &str, opts: &Opts) -> Result<(), RemoteError> {
    let req = workload_request(opts).map_err(RemoteError::Server)?;
    let (resp, transport, frame_bytes) = remote_workload(addr, req, Request::Select)?;
    match resp {
        Response::Ok { body, stats, cache } => {
            print!("{body}");
            println!();
            println!("== served by {addr} ==");
            print_transport(&transport, frame_bytes);
            if let Some(c) = cache {
                println!("dataset fingerprint         {:016x}", c.fingerprint);
                println!("sessions served             {}", c.sessions_served);
                println!("shared memo hits            {}", c.shared_hits);
                println!(
                    "encode cache hits/misses    {}/{} (evictions {})",
                    c.encode_hits, c.encode_misses, c.encode_evictions
                );
                println!("dataset evictions           {}", c.dataset_evictions);
            }
            if let Some(path) = opts.get("report-out") {
                std::fs::write(path, &body)
                    .map_err(|e| RemoteError::Server(format!("writing {path}: {e}")))?;
                println!("report written to {path}");
            }
            if let Some(path) = opts.get("stats-out") {
                let text = stats.map(|s| s.to_string()).unwrap_or_else(|| "{}".into());
                std::fs::write(path, text)
                    .map_err(|e| RemoteError::Server(format!("writing {path}: {e}")))?;
                println!("engine stats written to {path}");
            }
            Ok(())
        }
        Response::Busy => Err(RemoteError::Unreachable(
            "server busy (connection limit reached)".into(),
        )),
        Response::Err(e) => Err(RemoteError::Server(e)),
    }
}

fn write_outputs(opts: &Opts, report: &str, out: &PipelineResult) -> Result<(), String> {
    if let Some(path) = opts.get("report-out") {
        std::fs::write(path, report).map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nreport written to {path}");
    }
    if let Some(path) = opts.get("stats-out") {
        std::fs::write(path, out.engine.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nengine stats written to {path}");
    }
    Ok(())
}

fn load_dag(path: &str) -> Result<Dag, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    dag_from_text(&text).map_err(|e| format!("{path}: {e}"))
}

/// Rebuild `dag` with node ids aligned to the table's column order (so
/// variable `i` *is* column `i` for the d-separation oracle); graph nodes
/// not present as columns — latent variables — keep their edges and are
/// appended after the columns. Every column must name a graph node.
fn align_dag_to_table(dag: &Dag, table: &Table) -> Result<Dag, String> {
    let mut aligned = Dag::new();
    for col in table.columns() {
        if dag.node(&col.name).is_none() {
            return Err(format!(
                "--dag: graph has no node named {:?} (every CSV column must map to a node)",
                col.name
            ));
        }
        aligned
            .add_node(col.name.clone())
            .map_err(|e| format!("--dag: {e}"))?;
    }
    for v in dag.nodes() {
        let name = dag.name(v);
        if aligned.node(name).is_none() {
            aligned.add_node(name.to_owned()).expect("fresh name");
        }
    }
    for (f, t) in dag.edges() {
        let from = aligned.expect_node(dag.name(f));
        let to = aligned.expect_node(dag.name(t));
        aligned
            .add_edge(from, to)
            .map_err(|e| format!("--dag: {e}"))?;
    }
    Ok(aligned)
}

/// `methods` against a running server: the sweep executes inside the
/// server's per-dataset registry session, so it shares dedup with every
/// other request on the same dataset (the per-method tests/issued columns
/// report post-dedup costs — a warm sweep issues almost nothing).
fn remote_methods(addr: &str, opts: &Opts) -> Result<(), RemoteError> {
    let req = workload_request(opts).map_err(RemoteError::Server)?;
    let (resp, transport, frame_bytes) = remote_workload(addr, req, Request::Methods)?;
    match resp {
        Response::Ok { body, cache, .. } => {
            print!("{body}");
            println!("\n== served by {addr} ==");
            print_transport(&transport, frame_bytes);
            if let Some(c) = cache {
                println!("dataset fingerprint         {:016x}", c.fingerprint);
                println!("sessions served             {}", c.sessions_served);
                println!("shared memo hits            {}", c.shared_hits);
            }
            Ok(())
        }
        Response::Busy => Err(RemoteError::Unreachable(
            "server busy (connection limit reached)".into(),
        )),
        Response::Err(e) => Err(RemoteError::Server(e)),
    }
}

fn cmd_serve(opts: &Opts) -> Result<(), String> {
    let addr = opts.get("addr").unwrap_or("127.0.0.1:4990");
    let max_conns = match opts.get("max-conns") {
        // Auto: twice the handler pool (resolved by `Server::bind`).
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("--max-conns: bad value {v:?} (must be >= 1)"))?,
    };
    let cfg = ServeConfig {
        registry: RegistryConfig {
            cache_cap: opts.num("cache-cap", DEFAULT_CACHE_CAP)?,
            max_datasets: opts.num("max-datasets", RegistryConfig::default().max_datasets)?,
        },
        conn_workers: opts.num("conn-workers", 0)?,
        max_conns,
        trace_spans: opts.get("trace").is_none_or(|v| v != "false"),
    };
    let server = Server::bind(addr, cfg).map_err(|e| format!("binding {addr}: {e}"))?;
    println!(
        "fairsel serve listening on {} (cache-cap {}, max-datasets {}, \
         conn-workers {}, max-conns {})",
        server.local_addr(),
        cfg.registry.cache_cap,
        cfg.registry.max_datasets,
        server.conn_workers(),
        server.max_conns()
    );
    server.run().map_err(|e| format!("serve: {e}"))
}

/// Print a running server's registry + connection telemetry as one JSON
/// object (the CI smoke step greps `shed_conns` / `bytes_rx` out of it).
/// `--prom` renders it as Prometheus text; `--watch SECS` polls and
/// prints per-interval deltas instead.
fn cmd_stats(opts: &Opts) -> Result<(), String> {
    let addr = opts
        .get("remote")
        .ok_or("stats: --remote <host:port> is required")?;
    if let Some(secs) = opts.get("watch") {
        let secs: f64 = secs
            .parse()
            .map_err(|_| format!("--watch: bad interval {secs:?}"))?;
        if secs <= 0.0 || !secs.is_finite() {
            return Err("--watch: interval must be positive".into());
        }
        let iters: u64 = opts.num("iters", 0)?;
        return watch_stats(addr, secs, iters);
    }
    let s = fetch_stats(addr)?;
    if opts.get("prom").is_some_and(|v| v != "false") {
        print!("{}", fairsel_server::render_prom(&s));
    } else {
        println!("{s}");
    }
    Ok(())
}

/// One `stats` round trip, unwrapped to the JSON object.
fn fetch_stats(addr: &str) -> Result<Json, String> {
    let resp =
        fairsel_server::request(addr, &Request::Stats).map_err(|e| format!("{addr}: {e}"))?;
    match resp {
        Response::Ok { stats: Some(s), .. } => Ok(s),
        Response::Ok { .. } => Err("server returned no stats".into()),
        Response::Busy => Err("server busy: connection limit reached".into()),
        Response::Err(e) => Err(e),
    }
}

/// Poll `stats` every `secs` seconds and print one line per interval:
/// request/connection deltas plus the current latency percentiles.
/// `iters == 0` polls until interrupted.
fn watch_stats(addr: &str, secs: f64, iters: u64) -> Result<(), String> {
    let field = |s: &Json, k: &str| s.get_num(k).unwrap_or(0.0);
    let mut prev: Option<Json> = None;
    let mut n = 0u64;
    loop {
        let s = fetch_stats(addr)?;
        let delta = |k: &str| {
            let before = prev.as_ref().map_or(0.0, |p| field(p, k));
            field(&s, k) - before
        };
        println!(
            "requests +{:<5} wall p50/p95/p99 {:.2}/{:.2}/{:.2} ms  \
             qwait p95 {:.2} ms  active {}  shed +{}  rx +{}B tx +{}B",
            delta("requests_handled"),
            field(&s, "request_wall_p50_ms"),
            field(&s, "request_wall_p95_ms"),
            field(&s, "request_wall_p99_ms"),
            field(&s, "queue_wait_p95_ms"),
            field(&s, "active_conns"),
            delta("shed_conns"),
            delta("bytes_rx"),
            delta("bytes_tx"),
        );
        prev = Some(s);
        n += 1;
        if iters > 0 && n >= iters {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
    }
}

/// Fetch a running server's most recent completed spans and print them
/// as JSON lines (one span object per line), oldest first. `--trace-out`
/// redirects the lines to a file and prints a one-line summary instead.
fn cmd_trace(opts: &Opts) -> Result<(), String> {
    let addr = opts
        .get("remote")
        .ok_or("trace: --remote <host:port> is required")?;
    let last: usize = opts.num("last", fairsel_server::proto::DEFAULT_TRACE_LAST)?;
    let resp = fairsel_server::request(addr, &Request::Trace { last })
        .map_err(|e| format!("{addr}: {e}"))?;
    let stats = match resp {
        Response::Ok { stats: Some(s), .. } => s,
        Response::Ok { .. } => return Err("server returned no trace".into()),
        Response::Busy => return Err("server busy: connection limit reached".into()),
        Response::Err(e) => return Err(e),
    };
    let Some(Json::Arr(spans)) = stats.get("spans") else {
        return Err("trace response carried no spans array".into());
    };
    let dropped = stats.get_num("spans_dropped").unwrap_or(0.0) as u64;
    let enabled = stats.get_bool("trace_enabled").unwrap_or(false);
    let mut lines = String::new();
    for span in spans {
        lines.push_str(&span.to_string());
        lines.push('\n');
    }
    match opts.get("trace-out") {
        Some(path) => {
            std::fs::write(path, &lines).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "{} spans written to {path} (spans_dropped {dropped}, trace_enabled {enabled})",
                spans.len()
            );
        }
        None => {
            print!("{lines}");
            eprintln!(
                "{} spans (spans_dropped {dropped}, trace_enabled {enabled})",
                spans.len()
            );
        }
    }
    Ok(())
}

fn cmd_methods(opts: &Opts) -> Result<(), String> {
    if let Some(addr) = opts.get("remote") {
        if opts.get("dag").is_some() {
            return Err("--dag cannot be combined with --remote (oracle runs locally)".into());
        }
        match remote_methods(addr, opts) {
            Ok(()) => return Ok(()),
            Err(RemoteError::Unreachable(e)) => {
                eprintln!(
                    "warning: server {addr} unreachable ({e}); falling back to local execution"
                );
            }
            Err(RemoteError::Server(e)) => return Err(format!("remote {addr}: {e}")),
        }
    }
    let w = load_workload(opts)?;
    let aligned_dag = match opts.get("dag") {
        Some(path) => Some(align_dag_to_table(&load_dag(path)?, &w.train)?),
        None => None,
    };
    let spec = if aligned_dag.is_some() {
        TesterSpec::Oracle
    } else {
        match w.tester.as_str() {
            "gtest" => TesterSpec::GTest { alpha: w.alpha },
            "fisherz" => TesterSpec::FisherZ { alpha: w.alpha },
            other => return Err(format!("unknown --tester: {other} (gtest|fisherz)")),
        }
    };
    let outs = run_all_methods(&spec, aligned_dag.as_ref(), &w.train, &w.test, &w.cfg);
    let problem = Problem::from_table(&w.train);
    print!("{}", render_methods_report(&outs, problem.n_features()));
    Ok(())
}

fn print_engine_stats(stats: &EngineStats, workers: usize) {
    println!("== engine telemetry (workers={workers}) ==");
    println!("queries requested           {}", stats.requested);
    println!("tests issued                {}", stats.issued);
    println!("cache hits                  {}", stats.cache_hits);
    println!("dedup rate                  {:.4}", stats.dedup_rate());
    println!(
        "batches (par/batched/grp)   {} ({}/{}/{})",
        stats.batches, stats.parallel_batches, stats.batched_batches, stats.grouped_batches
    );
    println!(
        "speculative issued/hits     {}/{} (wasted {})",
        stats.speculative_issued,
        stats.speculative_hits,
        stats.speculative_wasted()
    );
    println!(
        "encode cache hits/misses    {}/{} (evictions {})",
        stats.encode_cache_hits, stats.encode_cache_misses, stats.encode_cache_evictions
    );
    if stats.memoized_before > 0 {
        println!(
            "memo patched/invalidated    {}/{} of {} (patch hits {})",
            stats.memo_patched,
            stats.memo_invalidated,
            stats.memoized_before,
            stats.memo_patch_hits
        );
    }
    println!("ci wall time                {:.2} ms", stats.wall_ms);
    for p in &stats.phases {
        println!(
            "  {:<24} requested {:>6}  issued {:>6}  hits {:>6}  {:>9.2} ms",
            p.name, p.requested, p.issued, p.cache_hits, p.wall_ms
        );
    }
}
