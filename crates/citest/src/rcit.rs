//! RCIT: the Randomized Conditional Independence Test (Strobl, Zhang &
//! Visweswaran 2019), the tester the paper uses for all real-dataset
//! experiments (§5.1: "We use RCIT [50] package in R for CI tests").
//!
//! The approach approximates a kernel conditional-independence test with
//! random Fourier features so its cost is linear in the sample size and
//! mild in the conditioning-set dimension — exactly the scaling Figure 3(b)
//! of the paper measures (runtime vs. conditioning-set size 1..256):
//!
//! 1. standardize `X`, `Y`, `Z` and pick RBF bandwidths by the median
//!    heuristic on a subsample;
//! 2. map each block through random Fourier features
//!    `f(v) = √(2/D)·cos(vW/σ + b)`;
//! 3. residualize `f(X)` and `f(Y)` on `f(Z)` with ridge regression
//!    (the conditional-covariance operator trick);
//! 4. statistic `S = n·‖Cov(e_x, e_y)‖²_F`, whose null is a weighted sum
//!    of χ²₁; the tail is approximated by moment-matching a gamma
//!    distribution (Satterthwaite–Welch).
//!
//! With an empty conditioning set this reduces to RIT, an unconditional
//! kernel independence test.
//!
//! Randomness (the Fourier frequencies `W` and phases `b`) is drawn from a
//! stream *derived per query* ([`crate::derived_query_seed`]) rather than
//! one mutable stream, so any two evaluations of the same query —
//! sequential, batched, across worker threads, in any order — consume
//! identical randomness and return byte-identical outcomes. That makes
//! RCIT [`crate::CiTestShared`]/[`crate::CiTestBatch`]-capable, and its
//! column extraction reads through the shared [`EncodedTable`] layer so
//! repeated columns are materialized once per session.

use crate::{CiOutcome, CiTest, VarId};
use fairsel_math::dist::sample_std_normal;
use fairsel_math::special::gamma_sf;
use fairsel_math::stats::{median_pairwise_distance, standardize};
use fairsel_math::Mat;
use fairsel_table::{CappedCache, EncodedTable, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The query-independent part of a conditioning block: the standardized
/// `Z` matrix and its median-heuristic bandwidth.
type ZContext = (Mat, f64);

/// RCIT hyperparameters.
#[derive(Clone, Debug)]
pub struct RcitConfig {
    /// Random Fourier features for the X and Y blocks (RCIT default: 5).
    pub num_features_xy: usize,
    /// Random Fourier features for the conditioning block (RCIT default: 25).
    pub num_features_z: usize,
    /// Rows subsampled for the median-distance bandwidth heuristic.
    pub median_sample: usize,
    /// Ridge regularization for the residualization step.
    pub ridge: f64,
    /// Significance level.
    pub alpha: f64,
}

impl Default for RcitConfig {
    fn default() -> Self {
        Self {
            num_features_xy: 5,
            num_features_z: 25,
            median_sample: 500,
            ridge: 1e-3,
            alpha: 0.01,
        }
    }
}

/// RCIT tester over table columns (categorical codes read as numeric, as
/// the R package does with factor levels).
pub struct Rcit {
    enc: Arc<EncodedTable>,
    cfg: RcitConfig,
    seed: u64,
    /// Memoized conditioning contexts for grouped evaluation, keyed by
    /// canonical set and bounded like every other data-path cache — so
    /// concurrent chunks of one Z-group (and later frontier levels)
    /// share one standardization + bandwidth pass.
    zctx: CappedCache<Vec<VarId>, Arc<ZContext>>,
}

impl Rcit {
    pub fn new(table: &Table, cfg: RcitConfig, seed: u64) -> Self {
        Self::over(Arc::new(EncodedTable::new(table)), cfg, seed)
    }

    /// Build over a shared encoding layer (see [`crate::GTest::over`]);
    /// materialized numeric columns are shared with every other tester on
    /// the same layer.
    pub fn over(enc: Arc<EncodedTable>, cfg: RcitConfig, seed: u64) -> Self {
        assert!(cfg.num_features_xy > 0 && cfg.num_features_z > 0);
        assert!(cfg.ridge > 0.0, "ridge must be positive");
        let cap = enc.cache_cap();
        Self {
            enc,
            cfg,
            seed,
            zctx: CappedCache::new(cap),
        }
    }

    /// Build a tester over an extended (appended-to) dataset. Nothing
    /// carries over beyond configuration and seed: every RCIT scaffold is
    /// a whole-sample standardization plus median-heuristic bandwidth,
    /// both of which change with `n`, so conditioning contexts are rebuilt
    /// on demand — which also makes them trivially bit-identical to cold.
    pub fn extended_from(parent: &Rcit, enc: Arc<EncodedTable>) -> Rcit {
        Rcit::over(enc, parent.cfg.clone(), parent.seed)
    }

    /// Conditioning context for the canonical set `zs`, memoized.
    fn z_context(&self, zs: &[VarId]) -> Arc<ZContext> {
        if self.enc.caching() {
            if let Some(hit) = self.zctx.get(zs) {
                return hit;
            }
            let zm = self.extract(zs);
            let sz = self.bandwidth(&zm);
            self.zctx.insert(zs.to_vec(), Arc::new((zm, sz)))
        } else {
            self.zctx.note_miss();
            let zm = self.extract(zs);
            let sz = self.bandwidth(&zm);
            Arc::new((zm, sz))
        }
    }

    /// Tester with default hyperparameters at level `alpha`.
    pub fn with_alpha(table: &Table, alpha: f64, seed: u64) -> Self {
        Self::new(
            table,
            RcitConfig {
                alpha,
                ..Default::default()
            },
            seed,
        )
    }

    /// The shared encoding layer.
    pub fn encoded(&self) -> &Arc<EncodedTable> {
        &self.enc
    }

    fn table(&self) -> &Table {
        self.enc.table()
    }

    /// Extract columns as a standardized `n × d` matrix (shared
    /// materialized columns, standardized into a private buffer).
    fn extract(&self, cols: &[VarId]) -> Mat {
        let n = self.table().n_rows();
        let d = cols.len();
        let mut buf = vec![0.0; n * d];
        for (j, &c) in cols.iter().enumerate() {
            let mut col = (*self.enc.numeric_col(c)).clone();
            standardize(&mut col);
            for i in 0..n {
                buf[i * d + j] = col[i];
            }
        }
        Mat::from_vec(n, d, buf)
    }

    /// Random Fourier feature map of `data` with RBF bandwidth `sigma`,
    /// drawing frequencies and phases from the query's private stream.
    fn fourier_features(rng: &mut StdRng, data: &Mat, num: usize, sigma: f64) -> Mat {
        let n = data.rows();
        let d = data.cols();
        // W ~ N(0, 1/σ²) entrywise, b ~ U[0, 2π).
        let mut w = Mat::zeros(d, num);
        for i in 0..d {
            for j in 0..num {
                w[(i, j)] = sample_std_normal(rng) / sigma;
            }
        }
        let b: Vec<f64> = (0..num)
            .map(|_| rng.gen::<f64>() * 2.0 * std::f64::consts::PI)
            .collect();
        let mut proj = data.matmul(&w);
        let scale = (2.0 / num as f64).sqrt();
        for i in 0..n {
            let row = proj.row_mut(i);
            for (v, &bj) in row.iter_mut().zip(&b) {
                *v = scale * (*v + bj).cos();
            }
        }
        proj
    }

    fn bandwidth(&self, data: &Mat) -> f64 {
        median_pairwise_distance(
            data.as_slice(),
            data.rows(),
            data.cols(),
            self.cfg.median_sample,
        )
    }

    /// Full test, returning `(statistic, p_value)`.
    ///
    /// Sides are canonicalized ([`crate::canonical_sides`], `z` sorted and
    /// deduplicated) and all randomness comes from a stream seeded by the
    /// canonical query, so every spelling of one query is byte-identical —
    /// the [`crate::CiTestBatch`] contract.
    pub fn test(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> (f64, f64) {
        let (x, y) = crate::canonical_sides(x, y);
        self.test_canonical(&x, &y, &crate::canonical_set(z), None)
    }

    /// The test over canonicalized sides, optionally reusing a prepared
    /// conditioning context `(standardized Z matrix, bandwidth)` — the
    /// query-independent part of the computation a Z-group shares. The
    /// context never touches the per-query RNG stream, so a prepared run
    /// is byte-identical to an unprepared one.
    fn test_canonical(
        &self,
        x: &[VarId],
        y: &[VarId],
        z: &[VarId],
        zctx: Option<&(Mat, f64)>,
    ) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(crate::derived_query_seed(self.seed, x, y, z));
        let n = self.table().n_rows();
        if n < 8 {
            return (0.0, 1.0);
        }
        let xm = self.extract(x);
        let ym = self.extract(y);
        let sx = self.bandwidth(&xm);
        let sy = self.bandwidth(&ym);
        let mut fx = Self::fourier_features(&mut rng, &xm, self.cfg.num_features_xy, sx);
        let mut fy = Self::fourier_features(&mut rng, &ym, self.cfg.num_features_xy, sy);
        fx.center_cols();
        fy.center_cols();
        let (ex, ey) = if z.is_empty() {
            (fx, fy)
        } else {
            let local;
            let (zm, sz) = match zctx {
                Some((zm, sz)) => (zm, *sz),
                None => {
                    let zm = self.extract(z);
                    let sz = self.bandwidth(&zm);
                    local = zm;
                    (&local, sz)
                }
            };
            let mut fz = Self::fourier_features(&mut rng, zm, self.cfg.num_features_z, sz);
            fz.center_cols();
            let wx = Mat::ridge_solve(&fz, &fx, self.cfg.ridge);
            let wy = Mat::ridge_solve(&fz, &fy, self.cfg.ridge);
            let mut ex = fx.sub(&fz.matmul(&wx));
            let mut ey = fy.sub(&fz.matmul(&wy));
            ex.center_cols();
            ey.center_cols();
            (ex, ey)
        };
        let dx = ex.cols();
        let dy = ey.cols();
        // Cross-covariance of residual features and the statistic.
        let cxy = ex.t_matmul(&ey).scale(1.0 / n as f64);
        let stat = n as f64 * cxy.frob_sq();

        // Null moments via the covariance of per-sample feature products
        // v_t = vec(e_x[t] ⊗ e_y[t]).
        let d = dx * dy;
        let mut vbar = vec![0.0; d];
        let mut prods = Mat::zeros(n, d);
        for t in 0..n {
            let exr = ex.row(t);
            let eyr = ey.row(t);
            let prow = prods.row_mut(t);
            let mut k = 0;
            for &a in exr {
                for &b in eyr {
                    prow[k] = a * b;
                    vbar[k] += a * b;
                    k += 1;
                }
            }
        }
        for v in &mut vbar {
            *v /= n as f64;
        }
        for t in 0..n {
            let prow = prods.row_mut(t);
            for (p, &m) in prow.iter_mut().zip(&vbar) {
                *p -= m;
            }
        }
        let sigma = prods.t_matmul(&prods).scale(1.0 / n as f64);
        let mean_null = sigma.trace();
        let var_null = 2.0 * sigma.frob_sq();
        if mean_null <= 1e-12 || var_null <= 1e-20 {
            // Degenerate null: the residual products are (near-)constant,
            // which happens under *deterministic* relationships (e.g. X a
            // copy of Y). A positive statistic then has no sampling
            // variability at all — reject outright; otherwise accept.
            return if stat > 1e-8 * n as f64 {
                (stat, 0.0)
            } else {
                (stat, 1.0)
            };
        }
        // Satterthwaite–Welch: gamma with k = mean²/var·2, θ = var/(2·mean)
        // (for a gamma, mean = kθ and var = kθ²).
        let shape = mean_null * mean_null / var_null;
        let scale = var_null / mean_null;
        let p = gamma_sf(stat, shape, scale);
        (stat, p)
    }
}

impl CiTest for Rcit {
    fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        crate::CiTestShared::ci_shared(self, x, y, z)
    }

    fn n_vars(&self) -> usize {
        self.table().n_cols()
    }

    fn name(&self) -> &'static str {
        "rcit"
    }
}

impl crate::CiTestShared for Rcit {
    fn ci_shared(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        if x.is_empty() || y.is_empty() {
            return CiOutcome::decided(true);
        }
        let (stat, p) = self.test(x, y, z);
        CiOutcome {
            independent: p > self.cfg.alpha,
            p_value: p,
            statistic: stat,
        }
    }
}

/// Batch evaluation uses the per-query default (each query re-derives its
/// own RNG stream, so there is no cross-query randomness to amortize);
/// the Z-grouped entry point shares the query-*independent* conditioning
/// work — the standardized `Z` matrix and its median-heuristic bandwidth,
/// `O(n·|Z|)` per query in the Figure 3(b) regime — across the group.
impl crate::CiTestBatch for Rcit {
    fn eval_z_group(&self, z: &[VarId], queries: &[crate::CiQueryRef<'_>]) -> Vec<CiOutcome> {
        let zs = crate::canonical_set(z);
        let n = self.table().n_rows();
        let zctx = if zs.is_empty() || n < 8 {
            None
        } else {
            Some(self.z_context(&zs))
        };
        queries
            .iter()
            .map(|q| {
                if q.x.is_empty() || q.y.is_empty() {
                    return CiOutcome::decided(true);
                }
                let (x, y) = crate::canonical_sides(q.x, q.y);
                let (stat, p) = self.test_canonical(&x, &y, &zs, zctx.as_deref());
                CiOutcome {
                    independent: p > self.cfg.alpha,
                    p_value: p,
                    statistic: stat,
                }
            })
            .collect()
    }

    fn encode_cache_stats(&self) -> crate::EncodeStats {
        self.enc.stats().merged(self.zctx.stats())
    }

    fn extend_over(
        &self,
        child: Arc<EncodedTable>,
    ) -> Option<Box<dyn crate::CiTestBatch + Send + Sync>> {
        Some(Box::new(Rcit::extended_from(self, child)))
    }

    fn scaffold_stats(&self) -> crate::ScaffoldStats {
        // No scaffold survives extension (whole-sample standardization),
        // so `extended` is structurally zero here.
        crate::ScaffoldStats {
            extended: 0,
            rebuilt: self.zctx.inserted(),
            resident: self.zctx.len() as u64,
            evictions: self.zctx.evictions(),
            // Random-feature moment sums reassociate floats under append:
            // never patched, always rebuilt.
            ..crate::ScaffoldStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_graph::DagBuilder;
    use fairsel_scm::GaussianScmBuilder;
    use fairsel_table::{Column, Role};

    fn gauss_table(edges: &[(&str, &str, f64)], nodes: &[&str], n: usize, seed: u64) -> Table {
        let mut b = DagBuilder::new().nodes(nodes.iter().copied());
        for &(f, t, _) in edges {
            b = b.edge(f, t);
        }
        let g = b.build();
        let mut sb = GaussianScmBuilder::new(g.clone());
        for &(f, t, w) in edges {
            sb = sb.weight(g.expect_node(f), g.expect_node(t), w);
        }
        let scm = sb.build();
        let mut rng = StdRng::seed_from_u64(seed);
        let cols = scm.sample(&mut rng, n);
        Table::new(
            nodes
                .iter()
                .map(|&name| {
                    Column::num(
                        name,
                        Role::Feature,
                        cols[g.expect_node(name).index()].clone(),
                    )
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn detects_linear_dependence() {
        let t = gauss_table(&[("x", "y", 0.8)], &["x", "y"], 1000, 1);
        let mut r = Rcit::with_alpha(&t, 0.01, 42);
        let out = r.ci(&[0], &[1], &[]);
        assert!(
            !out.independent,
            "strong dependence missed, p={}",
            out.p_value
        );
    }

    #[test]
    fn accepts_independence() {
        let t = gauss_table(&[], &["x", "y"], 1000, 2);
        let mut r = Rcit::with_alpha(&t, 0.01, 42);
        let out = r.ci(&[0], &[1], &[]);
        assert!(out.independent, "independent rejected, p={}", out.p_value);
    }

    #[test]
    fn conditional_independence_in_chain() {
        // x -> m -> y: x ⊥ y | m.
        let t = gauss_table(
            &[("x", "m", 1.0), ("m", "y", 1.0)],
            &["x", "m", "y"],
            1500,
            3,
        );
        let mut r = Rcit::with_alpha(&t, 0.01, 7);
        assert!(
            !r.ci(&[0], &[2], &[]).independent,
            "marginal dependence missed"
        );
        let out = r.ci(&[0], &[2], &[1]);
        assert!(out.independent, "chain CI missed, p={}", out.p_value);
    }

    #[test]
    fn detects_nonlinear_dependence() {
        // y = x² + noise: zero linear correlation, kernel test must catch it.
        use fairsel_math::dist::sample_std_normal;
        let mut rng = StdRng::seed_from_u64(4);
        let n = 1200;
        let x: Vec<f64> = (0..n).map(|_| sample_std_normal(&mut rng)).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| v * v + 0.3 * sample_std_normal(&mut rng))
            .collect();
        let t = Table::new(vec![
            Column::num("x", Role::Feature, x),
            Column::num("y", Role::Feature, y),
        ])
        .unwrap();
        let mut r = Rcit::with_alpha(&t, 0.01, 11);
        let out = r.ci(&[0], &[1], &[]);
        assert!(
            !out.independent,
            "nonlinear dependence missed, p={}",
            out.p_value
        );
    }

    #[test]
    fn conditional_dependence_detected() {
        // Collider x -> c <- y: conditioning on c induces dependence.
        let t = gauss_table(
            &[("x", "c", 1.0), ("y", "c", 1.0)],
            &["x", "y", "c"],
            1500,
            5,
        );
        let mut r = Rcit::with_alpha(&t, 0.01, 13);
        assert!(
            r.ci(&[0], &[1], &[]).independent,
            "collider marginal should be independent"
        );
        let out = r.ci(&[0], &[1], &[2]);
        assert!(
            !out.independent,
            "collider conditioning missed, p={}",
            out.p_value
        );
    }

    #[test]
    fn multivariate_group_sides() {
        // z -> x1, z -> x2, z -> y: group {x1, x2} dependent on y
        // marginally, independent given z.
        let t = gauss_table(
            &[("z", "x1", 1.0), ("z", "x2", 1.0), ("z", "y", 1.0)],
            &["z", "x1", "x2", "y"],
            2000,
            6,
        );
        let mut r = Rcit::with_alpha(&t, 0.01, 17);
        assert!(!r.ci(&[1, 2], &[3], &[]).independent);
        let out = r.ci(&[1, 2], &[3], &[0]);
        assert!(
            out.independent,
            "group CI given z missed, p={}",
            out.p_value
        );
    }

    #[test]
    fn null_calibration_reasonable() {
        // Independent pairs: rejection rate at alpha=0.05 should be small
        // (the gamma approximation is slightly conservative).
        let mut rejections = 0;
        let trials = 120;
        for seed in 0..trials {
            let t = gauss_table(&[], &["x", "y"], 300, 100 + seed);
            let mut r = Rcit::with_alpha(&t, 0.05, seed);
            if !r.ci(&[0], &[1], &[]).independent {
                rejections += 1;
            }
        }
        let rate = rejections as f64 / trials as f64;
        assert!(rate <= 0.12, "null rejection rate too high: {rate}");
    }

    #[test]
    fn tiny_sample_returns_independent() {
        let t = gauss_table(&[("x", "y", 2.0)], &["x", "y"], 4, 9);
        let mut r = Rcit::with_alpha(&t, 0.01, 3);
        assert!(r.ci(&[0], &[1], &[]).independent);
    }

    /// An extended RCIT rebuilds everything (whole-sample standardization
    /// invalidates all scaffolds) yet stays bit-identical to a cold tester
    /// on the concatenated table, and its ledger stays conserved.
    #[test]
    fn extended_tester_matches_cold_and_conserves_scaffolds() {
        use crate::{CiQueryRef, CiTestBatch, CiTestShared};
        let parent_t = gauss_table(
            &[("x", "m", 1.0), ("m", "y", 1.0)],
            &["x", "m", "y"],
            600,
            31,
        );
        let batch = gauss_table(
            &[("x", "m", 1.0), ("m", "y", 1.0)],
            &["x", "m", "y"],
            200,
            32,
        );
        let parent = Rcit::with_alpha(&parent_t, 0.01, 7);
        // Warm a conditioning context on the parent via the grouped path.
        let x: [usize; 1] = [0];
        let y: [usize; 1] = [2];
        let z: [usize; 1] = [1];
        let q = [CiQueryRef {
            x: &x,
            y: &y,
            z: &z,
        }];
        parent.eval_z_group(&z, &q);
        let child_enc = Arc::new(parent.encoded().extend(&batch).unwrap());
        let ext = Rcit::extended_from(&parent, child_enc);
        let birth = ext.scaffold_stats();
        assert_eq!((birth.extended, birth.rebuilt), (0, 0));
        assert!(birth.conserved(), "{birth:?}");

        let concat = parent_t.concat(&batch).unwrap();
        let cold = Rcit::with_alpha(&concat, 0.01, 7);
        for (x, y, z) in [
            (vec![0], vec![2], vec![1]),
            (vec![0], vec![2], vec![]),
            (vec![0, 1], vec![2], vec![1]),
        ] {
            let a = ext.ci_shared(&x, &y, &z);
            let b = cold.ci_shared(&x, &y, &z);
            assert_eq!(
                a.p_value.to_bits(),
                b.p_value.to_bits(),
                "{x:?} {y:?} {z:?}"
            );
            assert_eq!(
                a.statistic.to_bits(),
                b.statistic.to_bits(),
                "{x:?} {y:?} {z:?}"
            );
        }
        // The grouped path on the extended tester rebuilds the context.
        let a = ext.eval_z_group(&z, &q);
        let b = cold.eval_z_group(&z, &q);
        assert_eq!(a[0].p_value.to_bits(), b[0].p_value.to_bits());
        let s = ext.scaffold_stats();
        assert_eq!(s.extended, 0);
        assert_eq!(s.rebuilt, 1, "context rebuilt once on the child");
        assert!(s.conserved(), "{s:?}");
    }

    #[test]
    fn works_on_categorical_codes() {
        // Binary S copied into X: RCIT reads codes numerically and must
        // flag dependence.
        let codes: Vec<u32> = (0..600).map(|i| (i % 2) as u32).collect();
        let t = Table::new(vec![
            Column::cat("s", Role::Sensitive, codes.clone(), 2),
            Column::cat("x", Role::Feature, codes, 2),
        ])
        .unwrap();
        let mut r = Rcit::with_alpha(&t, 0.01, 21);
        assert!(!r.ci(&[0], &[1], &[]).independent);
    }

    #[test]
    fn large_conditioning_set_runs() {
        // Smoke test for the Figure 3(b) regime: |Z| = 64.
        let nodes: Vec<String> = (0..66).map(|i| format!("v{i}")).collect();
        let names: Vec<&str> = nodes.iter().map(String::as_str).collect();
        let t = gauss_table(&[], &names, 400, 10);
        let mut r = Rcit::with_alpha(&t, 0.01, 5);
        let z: Vec<usize> = (2..66).collect();
        let out = r.ci(&[0], &[1], &z);
        assert!(out.p_value >= 0.0 && out.p_value <= 1.0);
    }
}
