//! Oracle CI testers backed by ground-truth d-separation.
//!
//! Under the faithfulness assumption (Assumption 1), conditional
//! independence in the data coincides with d-separation in the generating
//! graph, so a tester that answers queries straight from the graph is the
//! *ideal* CI test. The complexity experiments (Figures 4-5) count tests
//! issued against this oracle; [`NoisyOracleCi`] additionally flips each
//! answer with a small probability to model the spurious correlations that
//! finite-sample testers produce when too many tests are run (§5.3,
//! "Advantages of Group-testing").

use crate::{CiOutcome, CiTest, VarId};
use fairsel_graph::{d_separated, Dag, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exact d-separation oracle. Variable `i` maps to graph node `vars[i]`.
pub struct OracleCi {
    dag: Dag,
    vars: Vec<NodeId>,
}

impl OracleCi {
    /// Oracle with an explicit variable → node mapping.
    pub fn new(dag: Dag, vars: Vec<NodeId>) -> Self {
        assert!(
            vars.iter().all(|v| v.index() < dag.len()),
            "variable map references missing node"
        );
        Self { dag, vars }
    }

    /// Oracle where variable `i` is node `i`.
    pub fn from_dag(dag: Dag) -> Self {
        let vars = dag.nodes().collect();
        Self { dag, vars }
    }

    /// The underlying graph.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    fn map(&self, vs: &[VarId]) -> Vec<NodeId> {
        vs.iter().map(|&v| self.vars[v]).collect()
    }

    /// Answer a query through a shared reference (d-separation is a pure
    /// function of the graph, so no mutation is ever needed).
    pub fn ci_ref(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        let sep = d_separated(&self.dag, &self.map(x), &self.map(y), &self.map(z));
        CiOutcome::decided(sep)
    }
}

impl CiTest for OracleCi {
    fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        self.ci_ref(x, y, z)
    }

    fn n_vars(&self) -> usize {
        self.vars.len()
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

impl crate::CiTestShared for OracleCi {
    fn ci_shared(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        self.ci_ref(x, y, z)
    }
}

/// The oracle has no per-batch work to amortize, but implementing the
/// batch trait (per-query default) lets it drop into every batched entry
/// point — e.g. `fairsel select --dag`, which routes the oracle through
/// the same pipeline as the data testers.
impl crate::CiTestBatch for OracleCi {}

/// Oracle with per-test error: each answer is flipped independently with
/// probability `flip_prob`. With `q` tests, the expected number of
/// spurious answers is `q · flip_prob` — which is precisely why GrpSel's
/// `O(k log n)` tests yield fewer spurious results than SeqSel's `O(n)`
/// (the paper's §5.3 spuriousness experiment).
pub struct NoisyOracleCi {
    inner: OracleCi,
    flip_prob: f64,
    rng: StdRng,
    flips: u64,
}

impl NoisyOracleCi {
    pub fn new(inner: OracleCi, flip_prob: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&flip_prob), "flip_prob in [0,1)");
        Self {
            inner,
            flip_prob,
            rng: StdRng::seed_from_u64(seed),
            flips: 0,
        }
    }

    /// How many answers have been flipped so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }
}

impl CiTest for NoisyOracleCi {
    fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        let truth = self.inner.ci(x, y, z);
        if self.rng.gen::<f64>() < self.flip_prob {
            self.flips += 1;
            CiOutcome::decided(!truth.independent)
        } else {
            truth
        }
    }

    fn n_vars(&self) -> usize {
        self.inner.n_vars()
    }

    fn name(&self) -> &'static str {
        "noisy-oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountingCi;
    use fairsel_graph::DagBuilder;

    fn chain() -> Dag {
        DagBuilder::new()
            .nodes(["a", "b", "c"])
            .edge("a", "b")
            .edge("b", "c")
            .build()
    }

    #[test]
    fn oracle_answers_match_dsep() {
        let mut o = OracleCi::from_dag(chain());
        assert!(!o.ci(&[0], &[2], &[]).independent);
        assert!(o.ci(&[0], &[2], &[1]).independent);
        assert_eq!(o.n_vars(), 3);
    }

    #[test]
    fn oracle_with_submapping() {
        // Map variables [0,1] onto nodes a and c only.
        let dag = chain();
        let a = dag.expect_node("a");
        let c = dag.expect_node("c");
        let mut o = OracleCi::new(dag, vec![a, c]);
        assert_eq!(o.n_vars(), 2);
        assert!(!o.ci(&[0], &[1], &[]).independent);
    }

    #[test]
    #[should_panic(expected = "missing node")]
    fn bad_mapping_panics() {
        OracleCi::new(chain(), vec![NodeId(99)]);
    }

    #[test]
    fn noisy_oracle_flip_rate() {
        let mut noisy = NoisyOracleCi::new(OracleCi::from_dag(chain()), 0.25, 7);
        let trials = 4000;
        for _ in 0..trials {
            noisy.ci(&[0], &[2], &[1]);
        }
        let rate = noisy.flips() as f64 / trials as f64;
        assert!(
            (0.20..=0.30).contains(&rate),
            "flip rate {rate} far from 0.25"
        );
    }

    #[test]
    fn zero_noise_is_exact() {
        let mut noisy = NoisyOracleCi::new(OracleCi::from_dag(chain()), 0.0, 7);
        for _ in 0..100 {
            assert!(noisy.ci(&[0], &[2], &[1]).independent);
        }
        assert_eq!(noisy.flips(), 0);
    }

    #[test]
    fn counting_composes_with_oracle() {
        let mut counted = CountingCi::new(OracleCi::from_dag(chain()));
        counted.ci(&[0], &[1], &[]);
        counted.ci(&[0], &[2], &[1]);
        assert_eq!(counted.count(), 2);
    }
}
