//! Conditional-independence (CI) testing.
//!
//! The paper's algorithms are *oracle algorithms*: they assume a procedure
//! answering "is X ⊥ Y | Z?" and they differ only in which and how many
//! queries they issue (SeqSel: `O(n)`, GrpSel: `O(k log n)`, §4.3). This
//! crate supplies the oracles:
//!
//! * [`GTest`] — likelihood-ratio (G) test on discrete data with adaptive
//!   degrees of freedom; the workhorse for categorical tables and the PC
//!   algorithm.
//! * [`PermutationCmi`] — plug-in conditional mutual information with a
//!   within-stratum permutation null; slower but assumption-free.
//! * [`FisherZ`] — partial-correlation test for (linear-)Gaussian data.
//! * [`Rcit`] — the paper's choice for real datasets (§5.1 uses the RCIT R
//!   package): random Fourier features + ridge residualization + a
//!   Satterthwaite–Welch gamma tail approximation. Handles multivariate
//!   `X`, `Y`, `Z` of mixed type, which is what group testing needs.
//! * [`OracleCi`] / [`NoisyOracleCi`] — answer queries from ground-truth
//!   d-separation on a known causal graph, optionally with per-test error
//!   to model the spurious correlations that §5.3 attributes to running
//!   too many tests.
//!
//! All testers implement [`CiTest`]; [`CountingCi`] wraps any of them to
//! produce the test counts reported in Table 2 and Figures 4-5.
//!
//! The data-driven testers ([`GTest`], [`PermutationCmi`], [`FisherZ`],
//! [`Rcit`]) additionally implement [`CiTestBatch`]: they evaluate whole
//! *batches* of queries through a shared [`fairsel_table::EncodedTable`]
//! so one columnar encoding pass (or one residualization, for Fisher-z)
//! is amortized across every query of a GrpSel frontier level — and, via
//! the Z-grouped entry point ([`CiTestBatch::eval_z_group`]), amortize
//! the whole per-conditioning-set scaffold: one stratification for the
//! discrete testers, one blocked ridge factorization for Fisher-z, one
//! standardized conditioning block for RCIT, all byte-identical to
//! per-query evaluation. The randomized testers derive a private RNG
//! stream per canonical query ([`derived_query_seed`]), which is what
//! makes them shareable at all.

pub mod cmi;
mod contingency;
pub mod fisher_z;
pub mod gtest;
pub mod oracle;
pub mod rcit;

pub use cmi::{cmi_discrete, PermutationCmi};
pub use fisher_z::FisherZ;
pub use gtest::GTest;
pub use oracle::{NoisyOracleCi, OracleCi};
pub use rcit::{Rcit, RcitConfig};

pub use fairsel_table::{EncodeStats, EncodedTable};

use std::sync::Arc;

/// Conservation ledger for a tester's per-conditioning-set scaffolds
/// (stratifications, design matrices, standardized conditioning blocks)
/// across a dataset extension ([`CiTestBatch::extend_over`]).
///
/// Every scaffold a tester holds was either *extended* (structurally
/// carried over from the parent tester and appended to) or *rebuilt*
/// (computed from scratch on the child table), and every scaffold that
/// ever took cache residency is still resident or was evicted. The exact
/// law — enforced by the append property tests:
///
/// `extended + rebuilt == resident + evictions`
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScaffoldStats {
    /// Scaffolds transferred from a parent tester and extended in place.
    pub extended: u64,
    /// Scaffolds computed from scratch (cache inserts minus transfers).
    pub rebuilt: u64,
    /// Scaffolds currently resident in the tester's caches.
    pub resident: u64,
    /// Scaffolds evicted by the cache bound since construction.
    pub evictions: u64,
    /// Sufficient-statistic tables (retained per-query contingency counts,
    /// discrete testers only) currently resident. Kept out of the scaffold
    /// conservation law above — suff tables have their own lifecycle (they
    /// are dropped, not rebuilt, when patching preconditions fail).
    pub suff_tables: u64,
    /// Sufficient-statistic tables evicted by their cache bound.
    pub suff_evictions: u64,
}

impl ScaffoldStats {
    /// Does the conservation law hold?
    pub fn conserved(&self) -> bool {
        self.extended + self.rebuilt == self.resident + self.evictions
    }

    /// Sum two ledgers (a tester with several scaffold caches).
    pub fn merged(&self, other: ScaffoldStats) -> ScaffoldStats {
        ScaffoldStats {
            extended: self.extended + other.extended,
            rebuilt: self.rebuilt + other.rebuilt,
            resident: self.resident + other.resident,
            evictions: self.evictions + other.evictions,
            suff_tables: self.suff_tables + other.suff_tables,
            suff_evictions: self.suff_evictions + other.suff_evictions,
        }
    }
}

/// Variables are identified by opaque indices; each tester defines what an
/// index means (a table column, a graph node, ...).
pub type VarId = usize;

/// Which counting-kernel generation a discrete tester runs.
///
/// Both produce bit-identical statistics and p-values; the reference path
/// exists so benchmarks can measure the narrow/arena kernels against the
/// pre-existing implementation and so property tests can pin the
/// bit-identity. Not a correctness knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelMode {
    /// Arity-narrowed code widths + reusable dense counting arenas
    /// (hashed fallback when the cell space is too large).
    #[default]
    Narrow,
    /// The pre-kernel implementation: codes widened to `u32`, hashed
    /// counting structures allocated per query.
    Reference,
}

/// Result of one CI test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CiOutcome {
    /// The decision at the tester's significance level.
    pub independent: bool,
    /// p-value under the null of independence (1.0 for oracle testers that
    /// answer "independent", 0.0 otherwise).
    pub p_value: f64,
    /// The raw test statistic (tester-specific; 0.0 for oracles).
    pub statistic: f64,
}

impl CiOutcome {
    /// Outcome for an oracle-style decision without a statistic.
    pub fn decided(independent: bool) -> Self {
        Self {
            independent,
            p_value: if independent { 1.0 } else { 0.0 },
            statistic: 0.0,
        }
    }
}

/// A conditional-independence tester over variables `0..n_vars()`.
///
/// `&mut self` lets implementations cache, count, and consume randomness.
pub trait CiTest {
    /// Test `X ⊥ Y | Z`. Sets may be multi-variable; implementations that
    /// only support scalar sides document the restriction.
    fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome;

    /// Number of variables in scope.
    fn n_vars(&self) -> usize;

    /// Short human-readable name for experiment logs.
    fn name(&self) -> &'static str {
        "ci"
    }
}

/// CI testers that can also answer queries through a *shared* reference.
///
/// This is the capability the execution engine's parallel batch scheduler
/// needs: a batch of independent queries is fanned out across worker
/// threads that all borrow the tester immutably. Testers that are pure
/// functions of their inputs (d-separation oracle, G-test, Fisher-z)
/// implement it directly; randomized testers ([`PermutationCmi`],
/// [`Rcit`]) qualify by deriving a private RNG stream per query
/// ([`derived_query_seed`]) instead of mutating a shared stream. Only
/// [`NoisyOracleCi`] — whose per-call flips are *deliberately*
/// order-dependent — falls back to the engine's sequential path.
///
/// Contract: `ci_shared` must return exactly what [`CiTest::ci`] would.
pub trait CiTestShared: CiTest + Sync {
    /// Test `X ⊥ Y | Z` without mutating the tester.
    fn ci_shared(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome;
}

impl<T: CiTestShared + ?Sized> CiTestShared for &mut T {
    fn ci_shared(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        (**self).ci_shared(x, y, z)
    }
}

/// A shared reference to a shared-capable tester is itself a tester:
/// `ci` routes through `ci_shared` (they agree by the [`CiTestShared`]
/// contract), so sessions can borrow testers immutably.
impl<T: CiTestShared + ?Sized> CiTest for &T {
    fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        (**self).ci_shared(x, y, z)
    }
    fn n_vars(&self) -> usize {
        (**self).n_vars()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<T: CiTestShared + ?Sized> CiTestShared for &T {
    fn ci_shared(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        (**self).ci_shared(x, y, z)
    }
}

/// One query of a batch, borrowing its sides from the caller.
#[derive(Clone, Copy, Debug)]
pub struct CiQueryRef<'q> {
    pub x: &'q [VarId],
    pub y: &'q [VarId],
    pub z: &'q [VarId],
}

/// Canonical test sides: each sorted and deduplicated, the
/// lexicographically smaller one first — the same quotient the engine's
/// cache key uses. Testers that want byte-identical outcomes across all
/// spellings of one query (the [`CiTestBatch`] contract) canonicalize
/// through this single definition.
pub fn canonical_sides(x: &[VarId], y: &[VarId]) -> (Vec<VarId>, Vec<VarId>) {
    fn canon(side: &[VarId]) -> Vec<VarId> {
        let mut v = side.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    }
    let xs = canon(x);
    let ys = canon(y);
    if ys < xs {
        (ys, xs)
    } else {
        (xs, ys)
    }
}

/// Canonical conditioning set: sorted and deduplicated — the same
/// quotient the engine's cache key, the derived RNG seeds, and the
/// Z-grouped scheduler all use. The single definition every tester
/// canonicalizes through, so the byte-identity contract has one spelling
/// of "same `Z`".
pub fn canonical_set(z: &[VarId]) -> Vec<VarId> {
    let mut zs = z.to_vec();
    zs.sort_unstable();
    zs.dedup();
    zs
}

/// Seed for a *per-query* private RNG stream: `base` mixed with a stable
/// hash of the canonicalized query (sides via [`canonical_sides`], `z`
/// sorted and deduplicated).
///
/// Stochastic testers ([`PermutationCmi`], [`Rcit`]) draw all their
/// randomness from a stream seeded here instead of one mutable stream: any
/// two evaluations of the same query — sequential, batched, across worker
/// threads, in any order — consume identical randomness and return
/// byte-identical outcomes. That is what makes a randomized tester
/// [`CiTestShared`]/[`CiTestBatch`]-capable.
///
/// FNV-1a over the canonical sides with separators, then a splitmix-style
/// finalizer; stable across platforms and runs.
pub fn derived_query_seed(base: u64, x: &[VarId], y: &[VarId], z: &[VarId]) -> u64 {
    let (xs, ys) = canonical_sides(x, y);
    let zs = canonical_set(z);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
    let mut byte = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for side in [&xs, &ys, &zs] {
        for &v in side.iter() {
            byte(v as u64 + 1);
        }
        byte(0); // side separator
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// CI testers that can evaluate a whole *batch* of queries at once.
///
/// This is the capability GrpSel's level-synchronous frontiers want: all
/// queries of a level share structure (one conditioning set, nested group
/// sides), so a batch-aware tester amortizes its per-variable-set work —
/// joint encodings, residualizations — across the batch instead of
/// re-deriving it per query.
///
/// # Contract
///
/// * `eval_batch(qs)[i]` must be **byte-identical** to
///   `ci_shared(qs[i].x, qs[i].y, qs[i].z)` — same `independent` flag,
///   same `p_value` and `statistic` bits. The engine relies on this to
///   route frontiers through whichever path is fastest without changing
///   selections (see the `batch_equivalence` property tests in
///   `fairsel-tests`).
/// * Results must not depend on the order of queries within the batch, on
///   how a batch is split across calls, or on how many worker threads
///   evaluate chunks concurrently (implementations share caches behind
///   locks; cached values must equal freshly computed ones).
/// * `encode_cache_stats` reports cumulative shared-cache telemetry
///   (encoding/residual cache hits and misses) for the engine's
///   `encode_cache_*` counters; testers without a cache keep the default.
///
/// The default `eval_batch` is the per-query fallback: correct for every
/// [`CiTestShared`] tester, it simply forgoes batch-level amortization.
///
/// # Z-grouped evaluation
///
/// `eval_z_group` is the *grouped* entry point the engine's Z-grouped
/// scheduler drives: the caller partitions a batch by canonical
/// conditioning set and hands each group over with its shared `z`, so the
/// tester can build the per-`Z` scaffold — stratification, design-matrix
/// factorization, standardized conditioning block — **once** and evaluate
/// every `(x, y)` pair of the group against it. The same byte-identity
/// contract applies: `eval_z_group(z, qs)[i]` must equal
/// `ci_shared(qs[i].x, qs[i].y, qs[i].z)` bit for bit, and callers must be
/// free to split one group across concurrent calls (a giant stratum is
/// chunked so it cannot serialize a frontier level). The default is the
/// per-query fallback.
pub trait CiTestBatch: CiTestShared {
    /// Evaluate a batch of independent queries, results in input order.
    fn eval_batch(&self, queries: &[CiQueryRef<'_>]) -> Vec<CiOutcome> {
        queries
            .iter()
            .map(|q| self.ci_shared(q.x, q.y, q.z))
            .collect()
    }

    /// Evaluate queries that all share the canonical conditioning set `z`
    /// (sorted, deduplicated; each `queries[i].z` canonicalizes to it).
    /// Implementations amortize per-`Z` scaffolding across the group.
    fn eval_z_group(&self, z: &[VarId], queries: &[CiQueryRef<'_>]) -> Vec<CiOutcome> {
        debug_assert!(queries.iter().all(|q| canonical_set(q.z) == z));
        queries
            .iter()
            .map(|q| self.ci_shared(q.x, q.y, q.z))
            .collect()
    }

    /// Cumulative shared-cache telemetry (hits/misses of the columnar
    /// encoding or residual caches backing this tester).
    fn encode_cache_stats(&self) -> EncodeStats {
        EncodeStats::default()
    }

    /// Rebuild this tester over an *extended* encoding layer (`child` is
    /// the result of [`fairsel_table::EncodedTable::extend`] on the layer
    /// this tester reads), carrying over whatever per-conditioning-set
    /// scaffolds stay valid under row append and extending them in place.
    ///
    /// Contract: the returned tester must be **byte-identical** to a cold
    /// construction over the child table with the same configuration —
    /// extension changes where scaffolds come from, never what any query
    /// answers. Outcomes themselves are *not* carried over (every p-value
    /// changes with `n`); memo invalidation is the session's job.
    ///
    /// The default declines (`None`), which tells callers to rebuild cold;
    /// the data-driven testers override it.
    fn extend_over(&self, child: Arc<EncodedTable>) -> Option<Box<dyn CiTestBatch + Send + Sync>> {
        let _ = child;
        None
    }

    /// On a tester produced by [`CiTestBatch::extend_over`]: answer the
    /// query from a *patched* sufficient statistic — the memoized
    /// contingency table carried over from the parent with only the
    /// appended rows counted in — instead of re-evaluating from scratch.
    ///
    /// Contract: a `Some` outcome must be **byte-identical** to what
    /// `ci_shared` on this tester (equivalently, on a cold tester over the
    /// concatenated table) would return for the same query. `None` means
    /// the query cannot be patched — the statistic was never retained, was
    /// evicted, its encoding isn't provably append-stable, or the tester's
    /// statistic fundamentally doesn't patch (Fisher-z / RCIT moment sums
    /// reassociate floating point when split at the append boundary) —
    /// and the caller must fall back to invalidation. The default declines
    /// every query.
    fn patched_outcome(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> Option<CiOutcome> {
        let _ = (x, y, z);
        None
    }

    /// Conservation ledger for this tester's scaffold caches (see
    /// [`ScaffoldStats`]). Testers without scaffolds keep the default
    /// all-zero ledger, which is trivially conserved.
    fn scaffold_stats(&self) -> ScaffoldStats {
        ScaffoldStats::default()
    }
}

impl<T: CiTestBatch + ?Sized> CiTestBatch for &mut T {
    fn eval_batch(&self, queries: &[CiQueryRef<'_>]) -> Vec<CiOutcome> {
        (**self).eval_batch(queries)
    }
    fn eval_z_group(&self, z: &[VarId], queries: &[CiQueryRef<'_>]) -> Vec<CiOutcome> {
        (**self).eval_z_group(z, queries)
    }
    fn encode_cache_stats(&self) -> EncodeStats {
        (**self).encode_cache_stats()
    }
    fn extend_over(&self, child: Arc<EncodedTable>) -> Option<Box<dyn CiTestBatch + Send + Sync>> {
        (**self).extend_over(child)
    }
    fn scaffold_stats(&self) -> ScaffoldStats {
        (**self).scaffold_stats()
    }
    fn patched_outcome(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> Option<CiOutcome> {
        (**self).patched_outcome(x, y, z)
    }
}

impl<T: CiTestBatch + ?Sized> CiTestBatch for &T {
    fn eval_batch(&self, queries: &[CiQueryRef<'_>]) -> Vec<CiOutcome> {
        (**self).eval_batch(queries)
    }
    fn eval_z_group(&self, z: &[VarId], queries: &[CiQueryRef<'_>]) -> Vec<CiOutcome> {
        (**self).eval_z_group(z, queries)
    }
    fn encode_cache_stats(&self) -> EncodeStats {
        (**self).encode_cache_stats()
    }
    fn extend_over(&self, child: Arc<EncodedTable>) -> Option<Box<dyn CiTestBatch + Send + Sync>> {
        (**self).extend_over(child)
    }
    fn scaffold_stats(&self) -> ScaffoldStats {
        (**self).scaffold_stats()
    }
    fn patched_outcome(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> Option<CiOutcome> {
        (**self).patched_outcome(x, y, z)
    }
}

/// Forward through mutable references so algorithms can take `&mut dyn CiTest`.
impl<T: CiTest + ?Sized> CiTest for &mut T {
    fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        (**self).ci(x, y, z)
    }
    fn n_vars(&self) -> usize {
        (**self).n_vars()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Forward through boxes so factories can hand out `Box<dyn CiTest>`.
impl<T: CiTest + ?Sized> CiTest for Box<T> {
    fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        (**self).ci(x, y, z)
    }
    fn n_vars(&self) -> usize {
        (**self).n_vars()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Boxed shared testers stay shared — what lets the session service hold
/// heterogeneous testers as `Box<dyn CiTestBatch + Send + Sync>`.
impl<T: CiTestShared + ?Sized> CiTestShared for Box<T>
where
    Box<T>: Sync,
{
    fn ci_shared(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        (**self).ci_shared(x, y, z)
    }
}

impl<T: CiTestBatch + ?Sized> CiTestBatch for Box<T>
where
    Box<T>: Sync,
{
    fn eval_batch(&self, queries: &[CiQueryRef<'_>]) -> Vec<CiOutcome> {
        (**self).eval_batch(queries)
    }
    fn eval_z_group(&self, z: &[VarId], queries: &[CiQueryRef<'_>]) -> Vec<CiOutcome> {
        (**self).eval_z_group(z, queries)
    }
    fn encode_cache_stats(&self) -> EncodeStats {
        (**self).encode_cache_stats()
    }
    fn extend_over(&self, child: Arc<EncodedTable>) -> Option<Box<dyn CiTestBatch + Send + Sync>> {
        (**self).extend_over(child)
    }
    fn scaffold_stats(&self) -> ScaffoldStats {
        (**self).scaffold_stats()
    }
    fn patched_outcome(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> Option<CiOutcome> {
        (**self).patched_outcome(x, y, z)
    }
}

/// Wrapper that counts tests — the instrument behind Table 2 and
/// Figures 4-5 of the paper.
pub struct CountingCi<T> {
    inner: T,
    count: u64,
}

impl<T: CiTest> CountingCi<T> {
    pub fn new(inner: T) -> Self {
        Self { inner, count: 0 }
    }

    /// Number of CI tests issued so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Reset the counter (e.g. between experiment repetitions).
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// Unwrap the inner tester.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Borrow the inner tester.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: CiTest> CiTest for CountingCi<T> {
    fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        self.count += 1;
        self.inner.ci(x, y, z)
    }

    fn n_vars(&self) -> usize {
        self.inner.n_vars()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysIndependent(usize);
    impl CiTest for AlwaysIndependent {
        fn ci(&mut self, _: &[VarId], _: &[VarId], _: &[VarId]) -> CiOutcome {
            CiOutcome::decided(true)
        }
        fn n_vars(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn counting_wrapper_counts() {
        let mut c = CountingCi::new(AlwaysIndependent(3));
        assert_eq!(c.count(), 0);
        c.ci(&[0], &[1], &[]);
        c.ci(&[0], &[2], &[1]);
        assert_eq!(c.count(), 2);
        c.reset();
        assert_eq!(c.count(), 0);
        assert_eq!(c.n_vars(), 3);
    }

    #[test]
    fn decided_outcome_pvalues() {
        assert_eq!(CiOutcome::decided(true).p_value, 1.0);
        assert_eq!(CiOutcome::decided(false).p_value, 0.0);
    }

    #[test]
    fn trait_object_via_mut_ref() {
        let mut t = AlwaysIndependent(2);
        let dynref: &mut dyn CiTest = &mut t;
        let mut counted = CountingCi::new(dynref);
        counted.ci(&[0], &[1], &[]);
        assert_eq!(counted.count(), 1);
    }
}
