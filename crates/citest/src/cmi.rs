//! Conditional mutual information: the plug-in estimator (used for the
//! fairness audit in Table 2, `CMI(S; Y′ | A)`) and a permutation CI test
//! built on it.
//!
//! Lemma 2 of the paper: `I(Y′; S | A) = 0` is a *sufficient* condition for
//! causal fairness, so the audit metric the paper reports is exactly this
//! estimator. Slightly negative plug-in estimates are truncated to 0
//! following Mukherjee et al. [39], as footnote 3 of the paper prescribes.

use crate::{CiOutcome, CiTest, VarId};
use fairsel_table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Plug-in conditional mutual information `I(X; Y | Z)` in nats from joint
/// codes. Equals `G / (2n)` for the same contingency tables.
pub fn cmi_from_codes(x: &[u32], y: &[u32], z: &[u32]) -> f64 {
    let n = x.len();
    assert_eq!(n, y.len(), "cmi: length mismatch");
    assert_eq!(n, z.len(), "cmi: length mismatch");
    if n == 0 {
        return 0.0;
    }
    #[derive(Default)]
    struct Stratum {
        cells: HashMap<(u32, u32), f64>,
        xm: HashMap<u32, f64>,
        ym: HashMap<u32, f64>,
        total: f64,
    }
    let mut strata: HashMap<u32, Stratum> = HashMap::new();
    for i in 0..n {
        let s = strata.entry(z[i]).or_default();
        *s.cells.entry((x[i], y[i])).or_insert(0.0) += 1.0;
        *s.xm.entry(x[i]).or_insert(0.0) += 1.0;
        *s.ym.entry(y[i]).or_insert(0.0) += 1.0;
        s.total += 1.0;
    }
    let nf = n as f64;
    let mut cmi = 0.0;
    for s in strata.values() {
        for (&(xv, yv), &nxy) in &s.cells {
            let nx = s.xm[&xv];
            let ny = s.ym[&yv];
            cmi += (nxy / nf) * ((nxy * s.total) / (nx * ny)).ln();
        }
    }
    // Truncate tiny negatives (footnote 3 of the paper, after [39]).
    cmi.max(0.0)
}

/// Plug-in CMI over table columns (joint-coded sets).
pub fn cmi_discrete(table: &Table, x: &[VarId], y: &[VarId], z: &[VarId]) -> f64 {
    let (xc, _) = table.joint_codes_dense(x);
    let (yc, _) = table.joint_codes_dense(y);
    let (zc, _) = table.joint_codes_dense(z);
    cmi_from_codes(&xc, &yc, &zc)
}

/// Permutation CI test: the null distribution of the CMI statistic is
/// produced by permuting `X` *within each stratum of Z*, which preserves
/// both marginals `P(X|Z)` and `P(Y|Z)` while destroying any conditional
/// association. Assumption-free but `B`× the cost of one statistic.
pub struct PermutationCmi<'a> {
    table: &'a Table,
    alpha: f64,
    permutations: usize,
    rng: StdRng,
}

impl<'a> PermutationCmi<'a> {
    /// `permutations` controls null resolution (p-values are quantized to
    /// `1/(B+1)`); 99–499 is typical.
    pub fn new(table: &'a Table, alpha: f64, permutations: usize, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
        assert!(permutations > 0, "need at least one permutation");
        Self {
            table,
            alpha,
            permutations,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl CiTest for PermutationCmi<'_> {
    fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        if x.is_empty() || y.is_empty() {
            return CiOutcome::decided(true);
        }
        let (xc, _) = self.table.joint_codes_dense(x);
        let (yc, _) = self.table.joint_codes_dense(y);
        let (zc, _) = self.table.joint_codes_dense(z);
        let observed = cmi_from_codes(&xc, &yc, &zc);

        // Pre-compute row indices per stratum for within-stratum shuffles.
        let mut strata: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, &zv) in zc.iter().enumerate() {
            strata.entry(zv).or_default().push(i);
        }
        let mut xperm = xc.clone();
        let mut at_least = 1usize; // the observed statistic counts itself
        for _ in 0..self.permutations {
            for rows in strata.values() {
                // Fisher-Yates within the stratum.
                for i in (1..rows.len()).rev() {
                    let j = self.rng.gen_range(0..=i);
                    xperm.swap(rows[i], rows[j]);
                }
            }
            if cmi_from_codes(&xperm, &yc, &zc) >= observed {
                at_least += 1;
            }
        }
        let p = at_least as f64 / (self.permutations + 1) as f64;
        CiOutcome {
            independent: p > self.alpha,
            p_value: p,
            statistic: observed,
        }
    }

    fn n_vars(&self) -> usize {
        self.table.n_cols()
    }

    fn name(&self) -> &'static str {
        "perm-cmi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_math::assert_close;
    use fairsel_table::{Column, Role};

    #[test]
    fn cmi_of_identical_binary_is_entropy() {
        // X == Y uniform binary: I(X;Y) = H(X) = ln 2.
        let codes: Vec<u32> = (0..1000).map(|i| (i % 2) as u32).collect();
        let z = vec![0u32; 1000];
        let cmi = cmi_from_codes(&codes, &codes, &z);
        assert_close!(cmi, std::f64::consts::LN_2, 1e-9);
    }

    #[test]
    fn cmi_of_independent_is_near_zero() {
        // Deterministic interleaving that makes X and Y exactly independent.
        let x: Vec<u32> = (0..1000).map(|i| ((i / 2) % 2) as u32).collect();
        let y: Vec<u32> = (0..1000).map(|i| (i % 2) as u32).collect();
        let z = vec![0u32; 1000];
        assert_close!(cmi_from_codes(&x, &y, &z), 0.0, 1e-9);
    }

    #[test]
    fn cmi_never_negative() {
        let x = vec![0, 1, 0, 1, 1, 0];
        let y = vec![1, 0, 1, 1, 0, 0];
        let z = vec![0, 0, 1, 1, 2, 2];
        assert!(cmi_from_codes(&x, &y, &z) >= 0.0);
    }

    #[test]
    fn conditioning_on_mediator_removes_information() {
        // X -> Z -> Y deterministic: I(X;Y|Z) = 0 but I(X;Y) = ln 2.
        let x: Vec<u32> = (0..2000).map(|i| (i % 2) as u32).collect();
        let z = x.clone();
        let y = z.clone();
        let zeros = vec![0u32; 2000];
        assert_close!(cmi_from_codes(&x, &y, &zeros), std::f64::consts::LN_2, 1e-9);
        assert_close!(cmi_from_codes(&x, &y, &z), 0.0, 1e-9);
    }

    fn xor_table(n: usize) -> Table {
        // y = x1 XOR x2 with uniform inputs: pairwise independent, jointly
        // dependent — the case marginal tests miss but group tests catch.
        let mut x1 = Vec::with_capacity(n);
        let mut x2 = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..n {
            let a: u32 = rng.gen_range(0..2);
            let b: u32 = rng.gen_range(0..2);
            x1.push(a);
            x2.push(b);
            y.push(a ^ b);
        }
        Table::new(vec![
            Column::cat("x1", Role::Feature, x1, 2),
            Column::cat("x2", Role::Feature, x2, 2),
            Column::cat("y", Role::Target, y, 2),
        ])
        .unwrap()
    }

    #[test]
    fn permutation_test_detects_xor_jointly() {
        let t = xor_table(1500);
        let mut tester = PermutationCmi::new(&t, 0.05, 99, 7);
        // Marginal: x1 ⊥ y.
        assert!(tester.ci(&[0], &[2], &[]).independent);
        // Joint: {x1, x2} ̸⊥ y.
        assert!(!tester.ci(&[0, 1], &[2], &[]).independent);
        // Conditional: x1 ̸⊥ y | x2.
        assert!(!tester.ci(&[0], &[2], &[1]).independent);
    }

    #[test]
    fn permutation_pvalue_reasonable_under_null() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(21);
        let n = 400;
        let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        let b: Vec<u32> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        let t = Table::new(vec![
            Column::cat("a", Role::Feature, a, 2),
            Column::cat("b", Role::Feature, b, 2),
        ])
        .unwrap();
        let mut tester = PermutationCmi::new(&t, 0.05, 199, 3);
        let out = tester.ci(&[0], &[1], &[]);
        assert!(out.p_value > 0.05, "independent data should not reject");
    }

    #[test]
    fn cmi_discrete_on_table_matches_codes() {
        let t = xor_table(500);
        let via_table = cmi_discrete(&t, &[0, 1], &[2], &[]);
        let (xc, _) = t.joint_codes(&[0, 1]);
        let (yc, _) = t.joint_codes(&[2]);
        let via_codes = cmi_from_codes(&xc, &yc, &vec![0; 500]);
        assert_close!(via_table, via_codes, 1e-12);
    }
}
