//! Conditional mutual information: the plug-in estimator (used for the
//! fairness audit in Table 2, `CMI(S; Y′ | A)`) and a permutation CI test
//! built on it.
//!
//! Lemma 2 of the paper: `I(Y′; S | A) = 0` is a *sufficient* condition for
//! causal fairness, so the audit metric the paper reports is exactly this
//! estimator. Slightly negative plug-in estimates are truncated to 0
//! following Mukherjee et al. [39], as footnote 3 of the paper prescribes.

use crate::contingency::{
    dense_cell_space, DenseArena, Strata, StratumRows, SuffKey, SuffTable, ZPartition,
};
use crate::{CiOutcome, CiTest, KernelMode, VarId};
use fairsel_table::{with_codes, CappedCache, CodeValue, EncodedTable, Encoding, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A conditioning set's stratification plus its CSR per-stratum row
/// layout — the scaffold one Z-group (and all `B + 1` statistic
/// computations of each of its queries) shares.
type CmiScaffold = (ZPartition, StratumRows);

/// Plug-in conditional mutual information `I(X; Y | Z)` in nats from joint
/// codes. Equals `G / (2n)` for the same contingency tables. Accumulation
/// order is first-occurrence (deterministic in the codes).
pub fn cmi_from_codes(x: &[u32], y: &[u32], z: &[u32]) -> f64 {
    let n = x.len();
    if n == 0 {
        assert!(y.is_empty() && z.is_empty(), "cmi: length mismatch");
        return 0.0;
    }
    cmi_from_strata(&Strata::count(x, y, z), n)
}

/// CMI from finished contingency counts — shared by the per-query path
/// and the Z-grouped scaffold path ([`Strata::count_within`]); both order
/// strata and cells identically, so the accumulation is byte-identical.
fn cmi_from_strata(strata: &Strata, n: usize) -> f64 {
    let nf = n as f64;
    let mut cmi = 0.0;
    for s in &strata.strata {
        for &((xv, yv), nxy) in &s.cells {
            let nx = s.xm[&xv];
            let ny = s.ym[&yv];
            cmi += (nxy / nf) * ((nxy * s.total) / (nx * ny)).ln();
        }
    }
    // Truncate tiny negatives (footnote 3 of the paper, after [39]).
    cmi.max(0.0)
}

/// Plug-in CMI over table columns (joint-coded sets).
pub fn cmi_discrete(table: &Table, x: &[VarId], y: &[VarId], z: &[VarId]) -> f64 {
    let (xc, _) = table.joint_codes_dense(x);
    let (yc, _) = table.joint_codes_dense(y);
    let (zc, _) = table.joint_codes_dense(z);
    cmi_from_codes(&xc, &yc, &zc)
}

/// Permutation CI test: the null distribution of the CMI statistic is
/// produced by permuting `X` *within each stratum of Z*, which preserves
/// both marginals `P(X|Z)` and `P(Y|Z)` while destroying any conditional
/// association. Assumption-free but `B`× the cost of one statistic.
///
/// Randomness is drawn from a stream *derived per query* (base seed mixed
/// with the canonicalized query), not from one mutable stream: any two
/// evaluations of the same query — sequential, batched, across worker
/// threads, in any order — consume identical randomness and return
/// byte-identical outcomes. That is what makes this tester
/// [`crate::CiTestShared`]/[`crate::CiTestBatch`]-capable despite being a
/// permutation test (the ROADMAP's "per-worker RNG streams keyed by
/// canonical query").
pub struct PermutationCmi {
    enc: Arc<EncodedTable>,
    alpha: f64,
    permutations: usize,
    seed: u64,
    degenerate: AtomicU64,
    kernel: KernelMode,
    /// Cells zeroed+filled by the dense counting arena (telemetry:
    /// `dense_count_cells`).
    dense_cells: AtomicU64,
    /// Memoized conditioning-set scaffolds, keyed by canonical set and
    /// bounded like every other data-path cache — so concurrent chunks of
    /// one Z-group (and later frontier levels) share one stratification.
    partitions: CappedCache<Vec<VarId>, Arc<CmiScaffold>>,
    /// Retained sufficient statistics — the observed-data contingency
    /// table of each evaluated query, keyed by the canonical query
    /// triple. On dataset extension each resident table is patched with
    /// the appended rows ([`SuffTable::patch`]), so re-answering the
    /// query costs O(batch) counting for the observed statistic (the `B`
    /// permutation replicates still recount — their tables depend on the
    /// permuted codes, not on retained state).
    suff: CappedCache<SuffKey, Arc<SuffTable>>,
    /// Scaffolds carried over from a parent tester on dataset extension
    /// (see [`PermutationCmi::extended_from`]).
    extended_scaffolds: u64,
}

impl PermutationCmi {
    /// `permutations` controls null resolution (p-values are quantized to
    /// `1/(B+1)`); 99–499 is typical.
    pub fn new(table: &Table, alpha: f64, permutations: usize, seed: u64) -> Self {
        Self::over(
            Arc::new(EncodedTable::new(table)),
            alpha,
            permutations,
            seed,
        )
    }

    /// Build over a shared encoding layer (see [`crate::GTest::over`]).
    pub fn over(enc: Arc<EncodedTable>, alpha: f64, permutations: usize, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
        assert!(permutations > 0, "need at least one permutation");
        let cap = enc.cache_cap();
        Self {
            enc,
            alpha,
            permutations,
            seed,
            degenerate: AtomicU64::new(0),
            kernel: KernelMode::default(),
            dense_cells: AtomicU64::new(0),
            partitions: CappedCache::new(cap),
            suff: CappedCache::new(cap),
            extended_scaffolds: 0,
        }
    }

    /// Build a tester over an extended (appended-to) dataset, carrying the
    /// parent's memoized conditioning scaffolds forward: each resident
    /// stratification is extended over the appended rows
    /// ([`ZPartition::extend`]) and its CSR row layout rebuilt from the
    /// extended partition — deterministic, so every transferred scaffold
    /// is bit-identical to what a cold tester on the concatenated table
    /// would derive. Test configuration (alpha, permutation count, base
    /// seed, kernel mode) is inherited; evaluation telemetry starts fresh,
    /// matching a cold run's counters.
    pub fn extended_from(parent: &PermutationCmi, enc: Arc<EncodedTable>) -> PermutationCmi {
        let mut child = PermutationCmi::over(enc, parent.alpha, parent.permutations, parent.seed)
            .with_kernel_mode(parent.kernel);
        if child.enc.caching() {
            let mut snap = parent.partitions.snapshot();
            snap.sort_by(|a, b| a.0.cmp(&b.0));
            for (zkey, scaffold) in snap {
                let ze = child.enc.encode(&zkey);
                let part = ZPartition::extend(&scaffold.0, &ze);
                let rows = StratumRows::from_partition(&part);
                child
                    .partitions
                    .insert_transferred(zkey, Arc::new((part, rows)));
                child.extended_scaffolds += 1;
            }
            // Carry retained observed-data tables over, patching each
            // with the appended rows now (O(batch) integer counting per
            // table). Tables failing the patch preconditions are dropped;
            // their queries take the invalidate path instead.
            let mut tables = parent.suff.snapshot();
            tables.sort_by(|a, b| a.0.cmp(&b.0));
            for (key, t) in tables {
                let patched =
                    crate::contingency::patch_suff_table(&child.enc, &child.partitions, &key.2, &t);
                if let Some(patched) = patched {
                    child.suff.insert_transferred(key, Arc::new(patched));
                }
            }
        }
        child
    }

    /// Select the counting-kernel generation (default: the narrow/arena
    /// kernels). Outcomes are bit-identical either way; the reference
    /// mode exists for benchmarking and bit-identity property tests.
    pub fn with_kernel_mode(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Scaffold for the canonical conditioning set `zkey`, memoized.
    fn z_scaffold(&self, zkey: &[VarId], ze: &Encoding) -> Arc<CmiScaffold> {
        if self.enc.caching() {
            if let Some(hit) = self.partitions.get(zkey) {
                return hit;
            }
            let part = ZPartition::from_encoding(ze);
            let rows = StratumRows::from_partition(&part);
            self.partitions
                .insert(zkey.to_vec(), Arc::new((part, rows)))
        } else {
            self.partitions.note_miss();
            let part = ZPartition::from_encoding(ze);
            let rows = StratumRows::from_partition(&part);
            Arc::new((part, rows))
        }
    }

    /// The shared encoding layer.
    pub fn encoded(&self) -> &Arc<EncodedTable> {
        &self.enc
    }

    /// Queries short-circuited on all-singleton conditioning strata.
    pub fn degenerate_short_circuits(&self) -> u64 {
        self.degenerate.load(Ordering::Relaxed)
    }

    /// One query against a prepared conditioning scaffold. `x`/`y` arrive
    /// in caller spelling (canonicalized here, so the derived RNG stream
    /// matches every other spelling); `zkey` is the canonical conditioning
    /// set; `part`/`rows` are its stratification. The observed statistic
    /// *and* every permutation replicate count against the scaffold — the
    /// same arithmetic in the same order as the unscaffolded path, derived
    /// once instead of `B + 1` times per query.
    fn eval_prepared(
        &self,
        x: &[VarId],
        y: &[VarId],
        zkey: &[VarId],
        ze: &Encoding,
        part: &ZPartition,
        rows: &StratumRows,
    ) -> CiOutcome {
        let (x, y) = crate::canonical_sides(x, y);
        let (x, y) = (x.as_slice(), y.as_slice());
        let xe = self.enc.encode(x);
        let ye = self.enc.encode(y);
        let n = ze.codes.len();
        let seed = crate::derived_query_seed(self.seed, x, y, zkey);
        let (observed, p) = if self.kernel == KernelMode::Reference {
            permute_and_count_reference(
                &xe.codes.to_u32_vec(),
                &ye.codes.to_u32_vec(),
                part,
                rows,
                n,
                seed,
                self.permutations,
            )
        } else {
            let (xa, ya) = (xe.arity.max(1) as usize, ye.arity.max(1) as usize);
            // Sides are already canonical here, so the retained table's
            // as-evaluated spelling *is* the canonical cache key.
            let retain_key: Option<SuffKey> = self
                .enc
                .caching()
                .then(|| (x.to_vec(), y.to_vec(), zkey.to_vec()))
                .filter(|k| self.suff.peek(k).is_none());
            let mut retained: Option<SuffTable> = None;
            let (observed, p) = with_codes!(&xe.codes, |xc| with_codes!(&ye.codes, |yc| {
                let (observed, p, cells) = permute_and_count_narrow(
                    xc,
                    xa,
                    yc,
                    ya,
                    part,
                    rows,
                    n,
                    seed,
                    self.permutations,
                    retain_key.is_some().then_some(&mut retained),
                );
                if cells > 0 {
                    self.dense_cells.fetch_add(cells, Ordering::Relaxed);
                }
                (observed, p)
            }));
            if let (Some(key), Some(mut t)) = (retain_key, retained) {
                t.xset = x.to_vec();
                t.yset = y.to_vec();
                self.suff.insert(key, Arc::new(t));
            }
            (observed, p)
        };
        CiOutcome {
            independent: p > self.alpha,
            p_value: p,
            statistic: observed,
        }
    }
}

/// The observed statistic and permutation p-value through the narrow/arena
/// kernels: one reusable dense arena (hashed fallback when the cell space
/// is too large) serves the observed statistic and all `B` replicates, and
/// the permutation runs at the codes' native width. The statistic values —
/// and therefore the `>= observed` comparisons and the p-value — are
/// bit-identical to [`permute_and_count_reference`]. Returns
/// `(observed, p, dense cells used)`.
#[allow(clippy::too_many_arguments)]
fn permute_and_count_narrow<X: CodeValue, Y: CodeValue>(
    xcodes: &[X],
    xa: usize,
    ycodes: &[Y],
    ya: usize,
    part: &ZPartition,
    rows: &StratumRows,
    n: usize,
    seed: u64,
    permutations: usize,
    suff_out: Option<&mut Option<SuffTable>>,
) -> (f64, f64, u64) {
    let dense = dense_cell_space(n, part.n_strata, xa, ya);
    let mut arena = DenseArena::new();
    let observed = match dense {
        Some(cells) => {
            arena.fill(xcodes, ycodes, xa, ya, part, rows, cells);
            arena.cmi_walk(n)
        }
        None => cmi_from_strata(&Strata::count_within(xcodes, ycodes, part), n),
    };
    // Snapshot the observed-data counts before the replicates refill the
    // arena — the table a later dataset extension can patch.
    if let (Some(out), Some(_)) = (suff_out, dense) {
        *out = Some(arena.snapshot_suff(n));
    }
    let (p, replicate_cells) = replicate_pvalue(
        observed,
        xcodes,
        ycodes,
        xa,
        ya,
        part,
        rows,
        n,
        seed,
        permutations,
        &mut arena,
    );
    let cells_used = dense.map(|c| c as u64).unwrap_or(0) + replicate_cells;
    (observed, p, cells_used)
}

/// The permutation-null tail probability of `observed`: run the `B`
/// within-strata replicates and count those whose statistic is
/// `>= observed` (the observed statistic counts itself). The replicate
/// stream — randomness, counting arithmetic, comparisons — depends only
/// on `(seed, codes, scaffold)`, never on *how* `observed` was produced,
/// so the cold path and the append-patched path (observed from a patched
/// [`SuffTable`] walk) consume identical randomness and return identical
/// bits. Returns `(p, dense cells counted by the replicates)`.
#[allow(clippy::too_many_arguments)]
fn replicate_pvalue<X: CodeValue, Y: CodeValue>(
    observed: f64,
    xcodes: &[X],
    ycodes: &[Y],
    xa: usize,
    ya: usize,
    part: &ZPartition,
    rows: &StratumRows,
    n: usize,
    seed: u64,
    permutations: usize,
    arena: &mut DenseArena,
) -> (f64, u64) {
    let dense = dense_cell_space(n, part.n_strata, xa, ya);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xperm: Vec<X> = xcodes.to_vec();
    let mut at_least = 1usize; // the observed statistic counts itself
    for _ in 0..permutations {
        shuffle_within_strata(&mut xperm, rows, &mut rng);
        let stat = match dense {
            Some(cells) => {
                arena.fill(&xperm, ycodes, xa, ya, part, rows, cells);
                arena.cmi_walk(n)
            }
            None => cmi_from_strata(&Strata::count_within(&xperm, ycodes, part), n),
        };
        if stat >= observed {
            at_least += 1;
        }
    }
    let p = at_least as f64 / (permutations + 1) as f64;
    let cells = dense.map(|c| c as u64 * permutations as u64).unwrap_or(0);
    (p, cells)
}

/// The pre-kernel implementation, kept as the [`KernelMode::Reference`]
/// path: full-width codes, hashed counting per replicate.
fn permute_and_count_reference(
    xcodes: &[u32],
    ycodes: &[u32],
    part: &ZPartition,
    rows: &StratumRows,
    n: usize,
    seed: u64,
    permutations: usize,
) -> (f64, f64) {
    let observed = cmi_from_strata(&Strata::count_within(xcodes, ycodes, part), n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xperm = xcodes.to_vec();
    let mut at_least = 1usize; // the observed statistic counts itself
    for _ in 0..permutations {
        shuffle_within_strata(&mut xperm, rows, &mut rng);
        if cmi_from_strata(&Strata::count_within(&xperm, ycodes, part), n) >= observed {
            at_least += 1;
        }
    }
    (observed, at_least as f64 / (permutations + 1) as f64)
}

/// Fisher-Yates within each stratum, strata in first-occurrence order,
/// rows ascending — the CSR layout reproduces the old per-stratum row
/// lists exactly, so the same randomness is consumed in the same order
/// regardless of code width or kernel mode.
fn shuffle_within_strata<T: Copy>(xperm: &mut [T], rows: &StratumRows, rng: &mut StdRng) {
    for s in 0..rows.n_strata() {
        let stratum = rows.stratum(s);
        for i in (1..stratum.len()).rev() {
            let j = rng.gen_range(0..=i);
            xperm.swap(stratum[i] as usize, stratum[j] as usize);
        }
    }
}

impl CiTest for PermutationCmi {
    fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        crate::CiTestShared::ci_shared(self, x, y, z)
    }

    fn n_vars(&self) -> usize {
        self.enc.table().n_cols()
    }

    fn name(&self) -> &'static str {
        "perm-cmi"
    }
}

impl crate::CiTestShared for PermutationCmi {
    fn ci_shared(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        if x.is_empty() || y.is_empty() {
            return CiOutcome::decided(true);
        }
        let zkey = crate::canonical_set(z);
        let ze = self.enc.encode(&zkey);
        if ze.all_singletons() {
            // One row per stratum: the observed CMI is exactly 0 and every
            // within-stratum permutation is the identity, so p = 1 without
            // any contingency storage or randomness.
            self.degenerate.fetch_add(1, Ordering::Relaxed);
            return CiOutcome {
                independent: true,
                p_value: 1.0,
                statistic: 0.0,
            };
        }
        // Shared scaffold: the stratification is derived once per
        // conditioning set and reused by the observed statistic and all B
        // permutation replicates (sides are canonicalized inside, so
        // every spelling — including the symmetric swap — permutes the
        // same side with the same randomness and returns byte-identical
        // outcomes).
        let scaffold = self.z_scaffold(&zkey, &ze);
        self.eval_prepared(x, y, &zkey, &ze, &scaffold.0, &scaffold.1)
    }
}

impl crate::CiTestBatch for PermutationCmi {
    /// Z-grouped evaluation: one stratification (and one row-list layout)
    /// for the whole group, shared by every query's `B + 1` statistic
    /// computations. Byte-identical to the per-query path, which runs the
    /// same [`PermutationCmi::eval_prepared`] on a privately derived
    /// scaffold.
    fn eval_z_group(&self, z: &[VarId], queries: &[crate::CiQueryRef<'_>]) -> Vec<CiOutcome> {
        let zkey = crate::canonical_set(z);
        type Scaffold = (Arc<Encoding>, Option<Arc<CmiScaffold>>);
        let mut scaffold: Option<Scaffold> = None;
        queries
            .iter()
            .map(|q| {
                if q.x.is_empty() || q.y.is_empty() {
                    return CiOutcome::decided(true);
                }
                let (ze, rest) = scaffold.get_or_insert_with(|| {
                    let ze = self.enc.encode(&zkey);
                    let rest = if ze.all_singletons() {
                        None
                    } else {
                        Some(self.z_scaffold(&zkey, &ze))
                    };
                    (ze, rest)
                });
                let Some(sc) = rest else {
                    self.degenerate.fetch_add(1, Ordering::Relaxed);
                    return CiOutcome {
                        independent: true,
                        p_value: 1.0,
                        statistic: 0.0,
                    };
                };
                self.eval_prepared(q.x, q.y, &zkey, ze, &sc.0, &sc.1)
            })
            .collect()
    }

    fn encode_cache_stats(&self) -> crate::EncodeStats {
        self.enc
            .stats()
            .merged(self.partitions.stats())
            .merged(crate::EncodeStats {
                dense_count_cells: self.dense_cells.load(Ordering::Relaxed),
                ..crate::EncodeStats::default()
            })
    }

    fn extend_over(
        &self,
        child: Arc<EncodedTable>,
    ) -> Option<Box<dyn crate::CiTestBatch + Send + Sync>> {
        Some(Box::new(PermutationCmi::extended_from(self, child)))
    }

    fn scaffold_stats(&self) -> crate::ScaffoldStats {
        crate::ScaffoldStats {
            extended: self.extended_scaffolds,
            rebuilt: self
                .partitions
                .inserted()
                .saturating_sub(self.extended_scaffolds),
            resident: self.partitions.len() as u64,
            evictions: self.partitions.evictions(),
            suff_tables: self.suff.len() as u64,
            suff_evictions: self.suff.evictions(),
        }
    }

    /// Answer a memoized query from its retained-and-patched observed
    /// table: the observed statistic is one [`SuffTable::cmi`] walk over
    /// the already-patched counts (O(batch) counting happened at
    /// extension); the `B` permutation replicates re-run against the
    /// extended scaffold with the query's derived seed — the identical
    /// randomness and arithmetic a cold evaluation consumes, so every
    /// output bit matches. `None` routes the query to the invalidate
    /// path.
    fn patched_outcome(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> Option<CiOutcome> {
        if self.kernel == KernelMode::Reference {
            return None;
        }
        if x.is_empty() || y.is_empty() {
            return Some(CiOutcome::decided(true));
        }
        let zkey = crate::canonical_set(z);
        let ze = self.enc.encode(&zkey);
        if ze.all_singletons() {
            // Degenerate on the extended rows too — the same short-circuit
            // a cold evaluation takes.
            return Some(CiOutcome {
                independent: true,
                p_value: 1.0,
                statistic: 0.0,
            });
        }
        let (x, y) = crate::canonical_sides(x, y);
        let n = ze.codes.len();
        let t = self.suff.peek(&(x.clone(), y.clone(), zkey.clone()))?;
        if t.n_rows != n {
            return None;
        }
        let sc = self.partitions.peek(&zkey)?;
        let xe = self.enc.encode(&x);
        let ye = self.enc.encode(&y);
        let seed = crate::derived_query_seed(self.seed, &x, &y, &zkey);
        let observed = t.cmi(n);
        let mut arena = DenseArena::new();
        let (p, cells) = with_codes!(&xe.codes, |xc| with_codes!(&ye.codes, |yc| {
            replicate_pvalue(
                observed,
                xc,
                yc,
                t.xa,
                t.ya,
                &sc.0,
                &sc.1,
                n,
                seed,
                self.permutations,
                &mut arena,
            )
        }));
        if cells > 0 {
            self.dense_cells.fetch_add(cells, Ordering::Relaxed);
        }
        Some(CiOutcome {
            independent: p > self.alpha,
            p_value: p,
            statistic: observed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_math::assert_close;
    use fairsel_table::{Column, Role};

    #[test]
    fn cmi_of_identical_binary_is_entropy() {
        // X == Y uniform binary: I(X;Y) = H(X) = ln 2.
        let codes: Vec<u32> = (0..1000).map(|i| (i % 2) as u32).collect();
        let z = vec![0u32; 1000];
        let cmi = cmi_from_codes(&codes, &codes, &z);
        assert_close!(cmi, std::f64::consts::LN_2, 1e-9);
    }

    #[test]
    fn cmi_of_independent_is_near_zero() {
        // Deterministic interleaving that makes X and Y exactly independent.
        let x: Vec<u32> = (0..1000).map(|i| ((i / 2) % 2) as u32).collect();
        let y: Vec<u32> = (0..1000).map(|i| (i % 2) as u32).collect();
        let z = vec![0u32; 1000];
        assert_close!(cmi_from_codes(&x, &y, &z), 0.0, 1e-9);
    }

    #[test]
    fn cmi_never_negative() {
        let x = vec![0, 1, 0, 1, 1, 0];
        let y = vec![1, 0, 1, 1, 0, 0];
        let z = vec![0, 0, 1, 1, 2, 2];
        assert!(cmi_from_codes(&x, &y, &z) >= 0.0);
    }

    #[test]
    fn conditioning_on_mediator_removes_information() {
        // X -> Z -> Y deterministic: I(X;Y|Z) = 0 but I(X;Y) = ln 2.
        let x: Vec<u32> = (0..2000).map(|i| (i % 2) as u32).collect();
        let z = x.clone();
        let y = z.clone();
        let zeros = vec![0u32; 2000];
        assert_close!(cmi_from_codes(&x, &y, &zeros), std::f64::consts::LN_2, 1e-9);
        assert_close!(cmi_from_codes(&x, &y, &z), 0.0, 1e-9);
    }

    fn xor_table(n: usize) -> Table {
        // y = x1 XOR x2 with uniform inputs: pairwise independent, jointly
        // dependent — the case marginal tests miss but group tests catch.
        let mut x1 = Vec::with_capacity(n);
        let mut x2 = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..n {
            let a: u32 = rng.gen_range(0..2);
            let b: u32 = rng.gen_range(0..2);
            x1.push(a);
            x2.push(b);
            y.push(a ^ b);
        }
        Table::new(vec![
            Column::cat("x1", Role::Feature, x1, 2),
            Column::cat("x2", Role::Feature, x2, 2),
            Column::cat("y", Role::Target, y, 2),
        ])
        .unwrap()
    }

    #[test]
    fn permutation_test_detects_xor_jointly() {
        let t = xor_table(1500);
        let mut tester = PermutationCmi::new(&t, 0.05, 99, 7);
        // Marginal: x1 ⊥ y.
        assert!(tester.ci(&[0], &[2], &[]).independent);
        // Joint: {x1, x2} ̸⊥ y.
        assert!(!tester.ci(&[0, 1], &[2], &[]).independent);
        // Conditional: x1 ̸⊥ y | x2.
        assert!(!tester.ci(&[0], &[2], &[1]).independent);
    }

    #[test]
    fn permutation_pvalue_reasonable_under_null() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(21);
        let n = 400;
        let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        let b: Vec<u32> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        let t = Table::new(vec![
            Column::cat("a", Role::Feature, a, 2),
            Column::cat("b", Role::Feature, b, 2),
        ])
        .unwrap();
        let mut tester = PermutationCmi::new(&t, 0.05, 199, 3);
        let out = tester.ci(&[0], &[1], &[]);
        assert!(out.p_value > 0.05, "independent data should not reject");
    }

    #[test]
    fn kernel_modes_agree_bit_for_bit() {
        use crate::CiTestShared;
        let t = xor_table(800);
        let narrow = PermutationCmi::new(&t, 0.05, 49, 7);
        let reference =
            PermutationCmi::new(&t, 0.05, 49, 7).with_kernel_mode(crate::KernelMode::Reference);
        for (x, y, z) in [
            (vec![0], vec![2], vec![]),
            (vec![0, 1], vec![2], vec![]),
            (vec![0], vec![2], vec![1]),
            (vec![1], vec![0], vec![2]),
        ] {
            let a = narrow.ci_shared(&x, &y, &z);
            let b = reference.ci_shared(&x, &y, &z);
            assert_eq!(
                a.p_value.to_bits(),
                b.p_value.to_bits(),
                "{x:?} {y:?} {z:?}"
            );
            assert_eq!(
                a.statistic.to_bits(),
                b.statistic.to_bits(),
                "{x:?} {y:?} {z:?}"
            );
            assert_eq!(a.independent, b.independent);
        }
        use crate::CiTestBatch;
        assert!(narrow.encode_cache_stats().dense_count_cells > 0);
        assert_eq!(reference.encode_cache_stats().dense_count_cells, 0);
    }

    /// A tester extended over appended rows consumes the same derived
    /// randomness and returns bit-identical outcomes to a cold tester on
    /// the concatenated table, with the scaffold ledger conserved.
    #[test]
    fn extended_tester_matches_cold_and_conserves_scaffolds() {
        use crate::{CiTestBatch, CiTestShared};
        let parent_t = xor_table(700);
        let batch = xor_table(300);
        let parent = PermutationCmi::new(&parent_t, 0.05, 29, 7);
        let warm: [(Vec<usize>, Vec<usize>, Vec<usize>); 2] =
            [(vec![0], vec![2], vec![]), (vec![0], vec![2], vec![1])];
        for (x, y, z) in &warm {
            parent.ci_shared(x, y, z);
        }
        let child_enc = Arc::new(parent.encoded().extend(&batch).unwrap());
        let ext = PermutationCmi::extended_from(&parent, child_enc);
        let birth = ext.scaffold_stats();
        assert_eq!(birth.extended, 2);
        assert_eq!(birth.rebuilt, 0);
        assert!(birth.conserved(), "{birth:?}");

        let concat = parent_t.concat(&batch).unwrap();
        let cold = PermutationCmi::new(&concat, 0.05, 29, 7);
        // Every warmed query's observed table was retained and patched at
        // extension; its patched outcome — one table walk plus the
        // replicate stream — is bit-identical to the cold evaluation.
        assert_eq!(birth.suff_tables, 2, "{birth:?}");
        assert!(ext.patched_outcome(&[1], &[2], &[0]).is_none());
        for (x, y, z) in &warm {
            let got = ext.patched_outcome(x, y, z).expect("patched table answers");
            let want = cold.ci_shared(x, y, z);
            assert_eq!(got.statistic.to_bits(), want.statistic.to_bits());
            assert_eq!(got.p_value.to_bits(), want.p_value.to_bits());
            assert_eq!(got.independent, want.independent);
        }
        let mut queries = warm.to_vec();
        queries.push((vec![1], vec![2], vec![0])); // fresh conditioning set
        for (x, y, z) in &queries {
            let a = ext.ci_shared(x, y, z);
            let b = cold.ci_shared(x, y, z);
            assert_eq!(
                a.p_value.to_bits(),
                b.p_value.to_bits(),
                "{x:?} {y:?} {z:?}"
            );
            assert_eq!(
                a.statistic.to_bits(),
                b.statistic.to_bits(),
                "{x:?} {y:?} {z:?}"
            );
        }
        let s = ext.scaffold_stats();
        assert_eq!((s.extended, s.rebuilt), (2, 1));
        assert!(s.conserved(), "{s:?}");
    }

    #[test]
    fn cmi_discrete_on_table_matches_codes() {
        let t = xor_table(500);
        let via_table = cmi_discrete(&t, &[0, 1], &[2], &[]);
        let (xc, _) = t.joint_codes(&[0, 1]);
        let (yc, _) = t.joint_codes(&[2]);
        let via_codes = cmi_from_codes(&xc, &yc, &vec![0; 500]);
        assert_close!(via_table, via_codes, 1e-12);
    }
}
