//! Deterministic stratified contingency counting shared by the discrete
//! testers (G-test, plug-in CMI).
//!
//! Strata and cells are accumulated in *first-occurrence order* (hash maps
//! are used only as indexes into insertion-ordered vectors), so the
//! floating-point accumulation order of any statistic built on top is a
//! pure function of the input codes. That determinism is what lets the
//! engine promise byte-identical outcomes across the per-query, batched,
//! and worker-pool execution paths.
//!
//! Two kernel generations coexist here. The hashed structures
//! ([`Strata`]) are the reference: exact, width-generic, allocation-heavy.
//! The arena structures ([`StratumRows`], [`DenseArena`]) are the
//! hardware-shaped fast path: CSR row layout, flat `stratum × xa × ya`
//! count tables filled by an unrolled loop, reused across the queries (and
//! permutation replicates) of a Z-group. Every statistic the arena
//! produces is bit-identical to the hashed path: strata keep
//! first-occurrence order, cells accumulate in first-occurrence row order,
//! marginals are exact integer sums, and the statistic walk visits the
//! same cells in the same order.

use fairsel_table::{with_codes, CappedCache, CodeValue, EncodedTable, Encoding};
use std::collections::HashMap;
use std::sync::Arc;

/// Precomputed stratification of a conditioning-set encoding — the shared
/// scaffold of a *Z-group*: every query of a GrpSel frontier level
/// conditions on the same set, so its strata structure can be derived once
/// and reused by every `(x, y)` pair (and, for the permutation test, by
/// every permutation replicate).
///
/// Strata are numbered in first-occurrence order of the `z` codes — the
/// exact order [`Strata::count`] discovers them — so statistics computed
/// through [`Strata::count_within`] accumulate in the same floating-point
/// order and come out byte-identical.
pub(crate) struct ZPartition {
    /// Per-row stratum index. (The fill loops stream the CSR row layout
    /// ([`StratumRows`]) rather than this per-row array; this stays for
    /// the reference kernels, the hashed fallback, and append patching.)
    pub stratum_of: Vec<u32>,
    /// Number of distinct strata.
    pub n_strata: usize,
    /// Rows per stratum — a property of the partition alone, computed
    /// once here so the arena fill loops never pay a per-row total
    /// increment. Exact integer counts, bit-identical to `n` accumulated
    /// `+= 1.0` increments when converted.
    pub sizes: Vec<u64>,
}

impl ZPartition {
    fn from_stratum_of(stratum_of: Vec<u32>, n_strata: usize) -> ZPartition {
        let mut sizes = vec![0u64; n_strata];
        for &s in &stratum_of {
            sizes[s as usize] += 1;
        }
        ZPartition {
            stratum_of,
            n_strata,
            sizes,
        }
    }
}

impl ZPartition {
    /// Build from per-row conditioning codes (hashed first-occurrence
    /// numbering, any code width).
    pub fn from_codes<C: CodeValue>(z: &[C]) -> ZPartition {
        let mut index: HashMap<u32, u32> = HashMap::new();
        let mut stratum_of = Vec::with_capacity(z.len());
        for &zv in z {
            let next = index.len() as u32;
            stratum_of.push(*index.entry(zv.widen()).or_insert(next));
        }
        let n_strata = index.len();
        Self::from_stratum_of(stratum_of, n_strata)
    }

    /// Build from a conditioning-set encoding at its native width. When
    /// the code space is small relative to the row count the
    /// first-occurrence numbering runs on a flat array instead of a hash
    /// map — the numbering (and therefore every downstream bit) is
    /// identical either way.
    pub fn from_encoding(ze: &Encoding) -> ZPartition {
        with_codes!(&ze.codes, |c| Self::from_codes_bounded(c, ze.arity))
    }

    /// Extend a parent partition to an appended table's conditioning
    /// encoding. Stratum numbering is first-occurrence over rows and an
    /// extended table's prefix rows *are* the parent's rows, so the
    /// parent's `stratum_of` carries over verbatim (this holds even when
    /// the parent and child encodings chose different code
    /// *representations* for the same joint values — the induced row
    /// partition is representation-independent). The code→stratum map is
    /// replayed from the child codes against the parent numbering, and
    /// strata first appearing in the appended suffix are numbered from
    /// `n_strata` on — exactly the numbering [`ZPartition::from_encoding`]
    /// on the full child produces, so the result is bit-identical to a
    /// cold build. The narrow `strata` copy re-widens automatically when
    /// new strata push `n_strata` past a width boundary.
    pub fn extend(parent: &ZPartition, child_ze: &Encoding) -> ZPartition {
        with_codes!(&child_ze.codes, |c| Self::extend_from_codes(parent, c))
    }

    fn extend_from_codes<C: CodeValue>(parent: &ZPartition, z: &[C]) -> ZPartition {
        let n_parent = parent.stratum_of.len();
        debug_assert!(z.len() >= n_parent, "child must not shrink the table");
        let mut stratum_of = Vec::with_capacity(z.len());
        stratum_of.extend_from_slice(&parent.stratum_of);
        let mut index: HashMap<u32, u32> = HashMap::with_capacity(parent.n_strata);
        for (i, &zv) in z[..n_parent].iter().enumerate() {
            index.entry(zv.widen()).or_insert(parent.stratum_of[i]);
        }
        let mut n_strata = parent.n_strata as u32;
        for &zv in &z[n_parent..] {
            let s = match index.get(&zv.widen()) {
                Some(&s) => s,
                None => {
                    index.insert(zv.widen(), n_strata);
                    n_strata += 1;
                    n_strata - 1
                }
            };
            stratum_of.push(s);
        }
        Self::from_stratum_of(stratum_of, n_strata as usize)
    }

    fn from_codes_bounded<C: CodeValue>(z: &[C], arity: u32) -> ZPartition {
        if (arity as usize) > z.len().saturating_mul(4).max(1024) {
            return Self::from_codes(z);
        }
        let mut index = vec![u32::MAX; arity as usize];
        let mut n_strata = 0u32;
        let mut stratum_of = Vec::with_capacity(z.len());
        for &zv in z {
            let slot = &mut index[zv.index()];
            if *slot == u32::MAX {
                *slot = n_strata;
                n_strata += 1;
            }
            stratum_of.push(*slot);
        }
        Self::from_stratum_of(stratum_of, n_strata as usize)
    }
}

/// CSR (offsets + row indices) layout of a partition's per-stratum rows:
/// strata in first-occurrence order, rows ascending within each stratum —
/// exactly the order the old per-stratum `Vec<Vec<usize>>` materialization
/// produced, so the within-stratum permutation consumes identical
/// randomness. Two flat allocations regardless of the stratum count.
pub(crate) struct StratumRows {
    offsets: Vec<u32>,
    rows: Vec<u32>,
}

impl StratumRows {
    /// Build by counting sort over the partition's stratum indices.
    pub fn from_partition(part: &ZPartition) -> StratumRows {
        let n = part.stratum_of.len();
        assert!(n <= u32::MAX as usize, "row count exceeds u32 CSR layout");
        let mut offsets = vec![0u32; part.n_strata + 1];
        for &s in &part.stratum_of {
            offsets[s as usize + 1] += 1;
        }
        for s in 0..part.n_strata {
            offsets[s + 1] += offsets[s];
        }
        let mut cursor: Vec<u32> = offsets[..part.n_strata].to_vec();
        let mut rows = vec![0u32; n];
        for (i, &s) in part.stratum_of.iter().enumerate() {
            let c = &mut cursor[s as usize];
            rows[*c as usize] = i as u32;
            *c += 1;
        }
        StratumRows { offsets, rows }
    }

    /// Number of strata.
    pub fn n_strata(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Row indices of stratum `s`, ascending.
    pub fn stratum(&self, s: usize) -> &[u32] {
        &self.rows[self.offsets[s] as usize..self.offsets[s + 1] as usize]
    }
}

/// Dense-counting threshold: the flat table is worth it only while the
/// cell space stays within a small multiple of the row count (beyond
/// that, zeroing the table dominates and the hashed path wins).
pub(crate) fn dense_cell_space(n: usize, n_strata: usize, xa: usize, ya: usize) -> Option<usize> {
    let cells = (n_strata as u64) * (xa as u64) * (ya as u64);
    (cells <= (8 * n as u64).max(4096)).then_some(cells as usize)
}

/// Reusable dense counting arena: flat `stratum × xa × ya` cell counts,
/// per-stratum first-occurrence cell order, totals and marginals. One
/// arena serves every query of a Z-group (and every permutation replicate
/// of a CMI query) — buffers are resized once and zeroed per fill instead
/// of reallocated.
#[derive(Default)]
pub(crate) struct DenseArena {
    /// Integer cell counts: an integer increment retires in one cycle
    /// where the former `f64 += 1.0` serialized on FP-add latency for
    /// hot cells, and the 4-byte width halves the cache footprint of the
    /// randomly-addressed table. Counts are exact integers (a cell holds
    /// at most the row count, bounded `u32` by the CSR layout), so
    /// converting at walk time yields bit-for-bit the values the float
    /// accumulation produced.
    counts: Vec<u32>,
    totals: Vec<u64>,
    xm: Vec<f64>,
    ym: Vec<f64>,
    /// Per-stratum `(x, y)` cells in first-occurrence order — the order
    /// every statistic walk must follow.
    cell_order: Vec<Vec<(u32, u32)>>,
    xa: usize,
    ya: usize,
    n_strata: usize,
}

impl DenseArena {
    pub fn new() -> DenseArena {
        DenseArena::default()
    }

    /// Count `(x, y)` cells per stratum into the flat table. `cells` must
    /// come from [`dense_cell_space`] for the same shape.
    ///
    /// The multi-stratum loop iterates the partition's CSR stratum rows
    /// (`rows`) stratum by stratum: the flat-index base `s·xa·ya` is a
    /// loop constant, no per-row stratum index is ever read, and the
    /// per-stratum body is unrolled by 8 lanes — the SIMD-shaped layout
    /// the ROADMAP headroom note asked for (the flat-index computation
    /// over a lane of gathered codes auto-vectorizes; the scatter
    /// increments stay scalar, applied in row order so same-cell
    /// collisions within a lane accumulate sequentially). Within a
    /// stratum the CSR rows ascend, so a cell's first occurrence is found
    /// at the same row the global row sweep found it at — per-stratum
    /// `cell_order` is identical, counts are exact integers, and every
    /// downstream statistic stays bit-identical.
    #[allow(clippy::too_many_arguments)]
    pub fn fill<X: CodeValue, Y: CodeValue>(
        &mut self,
        x: &[X],
        y: &[Y],
        xa: usize,
        ya: usize,
        part: &ZPartition,
        rows: &StratumRows,
        cells: usize,
    ) {
        let n = x.len();
        assert_eq!(n, y.len(), "contingency: length mismatch");
        assert_eq!(n, part.stratum_of.len(), "contingency: partition mismatch");
        assert!(n <= u32::MAX as usize, "row count exceeds u32 cell counts");
        self.xa = xa;
        self.ya = ya;
        self.n_strata = part.n_strata;
        resize_zeroed(&mut self.counts, cells);
        // Stratum totals come precomputed from the partition — no per-row
        // accumulation in the fill loops.
        self.totals.clear();
        self.totals.extend_from_slice(&part.sizes);
        resize_zeroed(&mut self.xm, part.n_strata * xa);
        resize_zeroed(&mut self.ym, part.n_strata * ya);
        if self.cell_order.len() < part.n_strata {
            self.cell_order.resize_with(part.n_strata, Vec::new);
        }
        for order in &mut self.cell_order[..part.n_strata] {
            order.clear();
        }
        if part.n_strata == 1 {
            // Single stratum (empty or constant Z — a large share of real
            // frontiers): the row sweep is already stratum-contiguous.
            for r in 0..n {
                let flat = x[r].index() * ya + y[r].index();
                if self.counts[flat] == 0 {
                    self.cell_order[0].push((x[r].widen(), y[r].widen()));
                }
                self.counts[flat] += 1;
            }
            return;
        }
        debug_assert_eq!(rows.n_strata(), part.n_strata, "CSR/partition mismatch");
        for s in 0..part.n_strata {
            let base = s * xa * ya;
            let idx = rows.stratum(s);
            let order = &mut self.cell_order[s];
            let mut flats = [0usize; 8];
            let mut i = 0;
            while i + 8 <= idx.len() {
                for (k, f) in flats.iter_mut().enumerate() {
                    let r = idx[i + k] as usize;
                    *f = base + x[r].index() * ya + y[r].index();
                }
                for (k, &flat) in flats.iter().enumerate() {
                    let r = idx[i + k] as usize;
                    if self.counts[flat] == 0 {
                        order.push((x[r].widen(), y[r].widen()));
                    }
                    self.counts[flat] += 1;
                }
                i += 8;
            }
            while i < idx.len() {
                let r = idx[i] as usize;
                let flat = base + x[r].index() * ya + y[r].index();
                if self.counts[flat] == 0 {
                    order.push((x[r].widen(), y[r].widen()));
                }
                self.counts[flat] += 1;
                i += 1;
            }
        }
    }

    /// The G statistic and degrees of freedom from filled counts —
    /// bit-identical to the hashed walk: integer cell counts convert
    /// exactly to the `f64` values float accumulation would have built,
    /// marginals are exact integer sums from the finished cells, the G
    /// summation visits each stratum's cells in first-occurrence order,
    /// df counts strata with more than one observed row and column value.
    pub fn g_walk(&mut self) -> (f64, usize) {
        let (xa, ya) = (self.xa, self.ya);
        let mut g = 0.0;
        let mut df = 0usize;
        for s in 0..self.n_strata {
            let mut r = 0usize;
            let mut c = 0usize;
            for &(xv, yv) in &self.cell_order[s] {
                let nxy = self.counts[(s * xa + xv as usize) * ya + yv as usize] as f64;
                let xslot = &mut self.xm[s * xa + xv as usize];
                if *xslot == 0.0 {
                    r += 1;
                }
                *xslot += nxy;
                let yslot = &mut self.ym[s * ya + yv as usize];
                if *yslot == 0.0 {
                    c += 1;
                }
                *yslot += nxy;
            }
            let total = self.totals[s] as f64;
            for &(xv, yv) in &self.cell_order[s] {
                let nxy = self.counts[(s * xa + xv as usize) * ya + yv as usize] as f64;
                let nx = self.xm[s * xa + xv as usize];
                let ny = self.ym[s * ya + yv as usize];
                g += 2.0 * nxy * ((nxy * total) / (nx * ny)).ln();
            }
            if r > 1 && c > 1 {
                df += (r - 1) * (c - 1);
            }
        }
        (g, df)
    }

    /// Snapshot the filled counts as a retainable [`SuffTable`] (the
    /// statistic walks leave counts and cell order intact, so this is
    /// valid any time after a fill). `n_rows` is the row count the fill
    /// ran over; the caller stamps the side sets.
    pub fn snapshot_suff(&self, n_rows: usize) -> SuffTable {
        SuffTable {
            xset: Vec::new(),
            yset: Vec::new(),
            xa: self.xa,
            ya: self.ya,
            n_strata: self.n_strata,
            n_rows,
            counts: self.counts.clone(),
            totals: self.totals.clone(),
            cell_order: self.cell_order[..self.n_strata].to_vec(),
        }
    }

    /// Plug-in CMI from filled counts — the same walk order as
    /// [`DenseArena::g_walk`] with the CMI weighting, bit-identical to the
    /// hashed `cmi_from_strata` accumulation.
    pub fn cmi_walk(&mut self, n: usize) -> f64 {
        let nf = n as f64;
        let (xa, ya) = (self.xa, self.ya);
        let mut cmi = 0.0;
        for s in 0..self.n_strata {
            for &(xv, yv) in &self.cell_order[s] {
                let nxy = self.counts[(s * xa + xv as usize) * ya + yv as usize] as f64;
                let xslot = &mut self.xm[s * xa + xv as usize];
                *xslot += nxy;
                let yslot = &mut self.ym[s * ya + yv as usize];
                *yslot += nxy;
            }
            let total = self.totals[s] as f64;
            for &(xv, yv) in &self.cell_order[s] {
                let nxy = self.counts[(s * xa + xv as usize) * ya + yv as usize] as f64;
                let nx = self.xm[s * xa + xv as usize];
                let ny = self.ym[s * ya + yv as usize];
                cmi += (nxy / nf) * ((nxy * total) / (nx * ny)).ln();
            }
        }
        cmi.max(0.0)
    }
}

/// Resize to `len` and zero every element (keeping capacity across fills).
fn resize_zeroed<T: Copy + Default>(buf: &mut Vec<T>, len: usize) {
    buf.clear();
    buf.resize(len, T::default());
}

/// Cache key of a retained sufficient statistic: the canonical query
/// triple (sides via `canonical_sides`, conditioning set via
/// `canonical_set`) — the same quotient the engine's memo key uses, so a
/// session's patch loop can address tables by memoized query.
pub(crate) type SuffKey = (Vec<crate::VarId>, Vec<crate::VarId>, Vec<crate::VarId>);

/// The retained sufficient statistic of one memoized discrete-tester
/// query: the per-stratum integer contingency table, its first-occurrence
/// cell order, and the shape it was counted at. On dataset extension the
/// table is *patched* — only the appended rows are counted — instead of
/// refilled from scratch, which is what turns an appended re-select's
/// statistical work from O(workload·n) into O(batch).
///
/// Patching is exact: counts are integers (integer adds never round),
/// the flat cell index `(s·xa + x)·ya + y` is independent of the stratum
/// count (grown strata extend the table without relayout), and appended
/// rows are visited in ascending order, so a cell first observed in the
/// batch joins `cell_order` exactly where a cold fill over the
/// concatenated rows would discover it. The statistic walks below then
/// visit the same cells in the same order as [`DenseArena::g_walk`] /
/// [`DenseArena::cmi_walk`] — bit-identical to a cold evaluation.
#[derive(Clone)]
pub(crate) struct SuffTable {
    /// Side variable sets exactly as the statistic was evaluated — the
    /// spelling re-encoded against the extended table when patching.
    pub xset: Vec<crate::VarId>,
    pub yset: Vec<crate::VarId>,
    /// Arities the flat table is laid out at. Patching requires the
    /// extended encodings to still have these arities (a batch that
    /// introduces new category values relays the cell space out — the
    /// table must be rebuilt, not patched).
    pub xa: usize,
    pub ya: usize,
    /// Strata counted so far.
    pub n_strata: usize,
    /// Rows counted so far.
    pub n_rows: usize,
    counts: Vec<u32>,
    totals: Vec<u64>,
    cell_order: Vec<Vec<(u32, u32)>>,
}

impl SuffTable {
    /// Count only the appended rows `self.n_rows..` of the extended codes
    /// into a copy of this table, against the extended partition (whose
    /// prefix numbering equals the partition this table was counted
    /// over — [`ZPartition::extend`] guarantees it).
    pub fn patch<X: CodeValue, Y: CodeValue>(
        &self,
        x: &[X],
        y: &[Y],
        part: &ZPartition,
    ) -> SuffTable {
        let n = x.len();
        debug_assert_eq!(n, y.len(), "suff patch: length mismatch");
        debug_assert_eq!(n, part.stratum_of.len(), "suff patch: partition mismatch");
        debug_assert!(part.n_strata >= self.n_strata, "strata cannot shrink");
        debug_assert!(self.n_rows <= n, "rows cannot shrink");
        let (xa, ya) = (self.xa, self.ya);
        let mut counts = vec![0u32; part.n_strata * xa * ya];
        counts[..self.counts.len()].copy_from_slice(&self.counts);
        let mut cell_order: Vec<Vec<(u32, u32)>> = Vec::with_capacity(part.n_strata);
        cell_order.extend(self.cell_order.iter().cloned());
        cell_order.resize_with(part.n_strata, Vec::new);
        for r in self.n_rows..n {
            let s = part.stratum_of[r] as usize;
            let flat = (s * xa + x[r].index()) * ya + y[r].index();
            if counts[flat] == 0 {
                cell_order[s].push((x[r].widen(), y[r].widen()));
            }
            counts[flat] += 1;
        }
        SuffTable {
            xset: self.xset.clone(),
            yset: self.yset.clone(),
            xa,
            ya,
            n_strata: part.n_strata,
            n_rows: n,
            counts,
            // Totals are a property of the partition alone — exact
            // integers, identical to what a cold fill copies in.
            totals: part.sizes.clone(),
            cell_order,
        }
    }

    /// The G statistic and degrees of freedom from the retained counts —
    /// the [`DenseArena::g_walk`] loop verbatim against local marginal
    /// scratch, so the accumulation order (and every output bit) is
    /// identical to a cold arena walk over the same counts.
    pub fn g(&self) -> (f64, usize) {
        let (xa, ya) = (self.xa, self.ya);
        let mut xm = vec![0.0f64; self.n_strata * xa];
        let mut ym = vec![0.0f64; self.n_strata * ya];
        let mut g = 0.0;
        let mut df = 0usize;
        for s in 0..self.n_strata {
            let mut r = 0usize;
            let mut c = 0usize;
            for &(xv, yv) in &self.cell_order[s] {
                let nxy = self.counts[(s * xa + xv as usize) * ya + yv as usize] as f64;
                let xslot = &mut xm[s * xa + xv as usize];
                if *xslot == 0.0 {
                    r += 1;
                }
                *xslot += nxy;
                let yslot = &mut ym[s * ya + yv as usize];
                if *yslot == 0.0 {
                    c += 1;
                }
                *yslot += nxy;
            }
            let total = self.totals[s] as f64;
            for &(xv, yv) in &self.cell_order[s] {
                let nxy = self.counts[(s * xa + xv as usize) * ya + yv as usize] as f64;
                let nx = xm[s * xa + xv as usize];
                let ny = ym[s * ya + yv as usize];
                g += 2.0 * nxy * ((nxy * total) / (nx * ny)).ln();
            }
            if r > 1 && c > 1 {
                df += (r - 1) * (c - 1);
            }
        }
        (g, df)
    }

    /// Plug-in CMI from the retained counts — the [`DenseArena::cmi_walk`]
    /// loop verbatim, bit-identical to a cold arena walk.
    pub fn cmi(&self, n: usize) -> f64 {
        let nf = n as f64;
        let (xa, ya) = (self.xa, self.ya);
        let mut xm = vec![0.0f64; self.n_strata * xa];
        let mut ym = vec![0.0f64; self.n_strata * ya];
        let mut cmi = 0.0;
        for s in 0..self.n_strata {
            for &(xv, yv) in &self.cell_order[s] {
                let nxy = self.counts[(s * xa + xv as usize) * ya + yv as usize] as f64;
                xm[s * xa + xv as usize] += nxy;
                ym[s * ya + yv as usize] += nxy;
            }
            let total = self.totals[s] as f64;
            for &(xv, yv) in &self.cell_order[s] {
                let nxy = self.counts[(s * xa + xv as usize) * ya + yv as usize] as f64;
                let nx = xm[s * xa + xv as usize];
                let ny = ym[s * ya + yv as usize];
                cmi += (nxy / nf) * ((nxy * total) / (nx * ny)).ln();
            }
        }
        cmi.max(0.0)
    }
}

/// Verify the preconditions that make O(batch) patching exact against an
/// *extended* tester, then patch the retained table with only the
/// appended rows ([`SuffTable::patch`]). `None` means the table cannot be
/// patched — its query must be re-evaluated from scratch:
///
/// - the table must cover exactly the parent rows (`enc.base_rows()`);
/// - both side encodings must be provably *prefix-stable* under the
///   append (the retained counts index cells by the parent's codes — a
///   renumbered extension would scatter them differently);
/// - the conditioning scaffold must be resident in the child's partition
///   cache (probed with `peek`, leaving the hit/miss ledger untouched);
/// - the side arities must be unchanged (a batch introducing new category
///   values relays the flat cell space out);
/// - the cell space must still be dense at the new row count (a resource
///   bound: patching is exact either way, but the retained-table budget
///   tracks the dense arena's).
///
/// Shared by both discrete testers — their scaffold caches store the same
/// `(ZPartition, StratumRows)` tuple.
pub(crate) fn patch_suff_table(
    enc: &EncodedTable,
    partitions: &CappedCache<Vec<crate::VarId>, Arc<(ZPartition, StratumRows)>>,
    zkey: &[crate::VarId],
    t: &SuffTable,
) -> Option<SuffTable> {
    if t.n_rows != enc.base_rows() {
        return None;
    }
    if !enc.prefix_stable(&t.xset) || !enc.prefix_stable(&t.yset) {
        return None;
    }
    let sc = partitions.peek(zkey)?;
    let part = &sc.0;
    let xe = enc.encode(&t.xset);
    let ye = enc.encode(&t.yset);
    if (xe.arity.max(1) as usize, ye.arity.max(1) as usize) != (t.xa, t.ya) {
        return None;
    }
    dense_cell_space(enc.n_rows(), part.n_strata, t.xa, t.ya)?;
    Some(with_codes!(&xe.codes, |xc| with_codes!(&ye.codes, |yc| {
        t.patch(xc, yc, part)
    })))
}

/// Counts for one stratum of the conditioning variables.
#[derive(Default)]
pub(crate) struct Stratum {
    // analyze: bounded-by distinct (x, y) cells of one stratum, capped by the joint arity
    cell_index: HashMap<(u32, u32), usize>,
    /// `(x, y) -> count`, in first-occurrence order.
    pub cells: Vec<((u32, u32), f64)>,
    /// Marginal counts per x value.
    // analyze: bounded-by distinct x values, capped by the column arity
    pub xm: HashMap<u32, f64>,
    /// Marginal counts per y value.
    // analyze: bounded-by distinct y values, capped by the column arity
    pub ym: HashMap<u32, f64>,
    /// Rows in this stratum.
    pub total: f64,
}

/// Stratified contingency counts over parallel code slices, strata in
/// first-occurrence order.
pub(crate) struct Strata {
    // analyze: bounded-by one entry per stratum of the conditioning set (joint arity)
    index: HashMap<u32, usize>,
    pub strata: Vec<Stratum>,
}

impl Strata {
    /// Count `(x, y)` pairs within each stratum of `z`.
    ///
    /// # Panics
    /// Panics when the slices disagree in length.
    pub fn count(x: &[u32], y: &[u32], z: &[u32]) -> Strata {
        let n = x.len();
        assert_eq!(n, y.len(), "contingency: length mismatch");
        assert_eq!(n, z.len(), "contingency: length mismatch");
        let mut out = Strata {
            index: HashMap::new(),
            strata: Vec::new(),
        };
        for i in 0..n {
            let si = match out.index.get(&z[i]) {
                Some(&si) => si,
                None => {
                    out.index.insert(z[i], out.strata.len());
                    out.strata.push(Stratum::default());
                    out.strata.len() - 1
                }
            };
            let s = &mut out.strata[si];
            let key = (x[i], y[i]);
            match s.cell_index.get(&key) {
                Some(&ci) => s.cells[ci].1 += 1.0,
                None => {
                    s.cell_index.insert(key, s.cells.len());
                    s.cells.push((key, 1.0));
                }
            }
            *s.xm.entry(x[i]).or_insert(0.0) += 1.0;
            *s.ym.entry(y[i]).or_insert(0.0) += 1.0;
            s.total += 1.0;
        }
        out
    }

    /// Count `(x, y)` pairs against a precomputed stratification.
    ///
    /// Produces a `Strata` with the same strata order, cell order, and
    /// float values as [`Strata::count`] over the codes the partition was
    /// built from: strata were numbered in first-occurrence order, cells
    /// accumulate in first-occurrence row order, and the marginals —
    /// derived here from the finished cells instead of row by row — are
    /// sums of small integers, which float addition performs exactly in
    /// either order. The scaffold removes the per-query conditioning-set
    /// hashing (one array index instead of three hash-map updates per
    /// row), which is where a Z-grouped batch spends most of its time.
    ///
    /// # Panics
    /// Panics when the slices disagree in length with the partition.
    pub fn count_within<X: CodeValue, Y: CodeValue>(x: &[X], y: &[Y], part: &ZPartition) -> Strata {
        let n = x.len();
        assert_eq!(n, y.len(), "contingency: length mismatch");
        assert_eq!(n, part.stratum_of.len(), "contingency: partition mismatch");
        let mut strata: Vec<Stratum> = (0..part.n_strata).map(|_| Stratum::default()).collect();
        for i in 0..n {
            let s = &mut strata[part.stratum_of[i] as usize];
            let key = (x[i].widen(), y[i].widen());
            match s.cell_index.get(&key) {
                Some(&ci) => s.cells[ci].1 += 1.0,
                None => {
                    s.cell_index.insert(key, s.cells.len());
                    s.cells.push((key, 1.0));
                }
            }
            s.total += 1.0;
        }
        for s in &mut strata {
            for &((xv, yv), nxy) in &s.cells {
                *s.xm.entry(xv).or_insert(0.0) += nxy;
                *s.ym.entry(yv).or_insert(0.0) += nxy;
            }
        }
        Strata {
            index: HashMap::new(),
            strata,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_in_first_occurrence_order() {
        let x = [1, 0, 1, 1];
        let y = [0, 0, 0, 1];
        let z = [7, 3, 7, 3];
        let s = Strata::count(&x, &y, &z);
        assert_eq!(s.strata.len(), 2);
        // Stratum of z=7 first (row 0), then z=3 (row 1).
        assert_eq!(s.strata[0].total, 2.0);
        assert_eq!(s.strata[0].cells, vec![((1, 0), 2.0)]);
        assert_eq!(s.strata[1].total, 2.0);
        assert_eq!(s.strata[1].cells, vec![((0, 0), 1.0), ((1, 1), 1.0)]);
        assert_eq!(s.strata[1].xm[&0], 1.0);
        assert_eq!(s.strata[1].ym[&1], 1.0);
    }

    #[test]
    fn empty_input_is_empty() {
        let s = Strata::count(&[], &[], &[]);
        assert!(s.strata.is_empty());
    }

    #[test]
    fn count_within_matches_count() {
        // Irregular codes with repeats and a stratum of size one.
        let x = [1u32, 0, 1, 1, 2, 0, 1, 2];
        let y = [0u32, 0, 0, 1, 1, 2, 0, 1];
        let z = [7u32, 3, 7, 3, 9, 7, 3, 7];
        let part = ZPartition::from_codes(&z);
        assert_eq!(part.n_strata, 3);
        let csr = StratumRows::from_partition(&part);
        assert_eq!(csr.n_strata(), 3);
        assert_eq!(csr.stratum(0), &[0, 2, 5, 7]); // stratum of z=7 first
        assert_eq!(csr.stratum(1), &[1, 3, 6]);
        assert_eq!(csr.stratum(2), &[4]);
        let a = Strata::count(&x, &y, &z);
        let b = Strata::count_within(&x, &y, &part);
        assert_eq!(a.strata.len(), b.strata.len());
        for (sa, sb) in a.strata.iter().zip(&b.strata) {
            assert_eq!(sa.cells, sb.cells);
            assert_eq!(sa.total, sb.total);
            assert_eq!(sa.xm, sb.xm);
            assert_eq!(sa.ym, sb.ym);
        }
    }

    #[test]
    fn narrow_widths_count_identically() {
        let x8 = [1u8, 0, 1, 1, 2, 0, 1, 2];
        let x32: Vec<u32> = x8.iter().map(|&v| v as u32).collect();
        let y16 = [0u16, 0, 0, 1, 1, 2, 0, 1];
        let y32: Vec<u32> = y16.iter().map(|&v| v as u32).collect();
        let z = [7u32, 3, 7, 3, 9, 7, 3, 7];
        let part = ZPartition::from_codes(&z);
        let narrow = Strata::count_within(&x8, &y16, &part);
        let wide = Strata::count_within(x32.as_slice(), y32.as_slice(), &part);
        for (sa, sb) in narrow.strata.iter().zip(&wide.strata) {
            assert_eq!(sa.cells, sb.cells);
            assert_eq!(sa.xm, sb.xm);
            assert_eq!(sa.ym, sb.ym);
        }
    }

    #[test]
    fn dense_bounded_partition_matches_hashed() {
        // from_encoding's flat-array numbering must equal the hashed
        // first-occurrence numbering.
        let codes = [5u32, 2, 5, 9, 2, 0, 9, 5];
        let enc = Encoding {
            codes: fairsel_table::Codes::from_slice(&codes, 10),
            arity: 10,
            distinct: 4,
        };
        let dense = ZPartition::from_encoding(&enc);
        let hashed = ZPartition::from_codes(&codes);
        assert_eq!(dense.stratum_of, hashed.stratum_of);
        assert_eq!(dense.n_strata, hashed.n_strata);
    }

    #[test]
    fn extend_matches_cold_partition_past_width_boundary() {
        // Parent: 300 rows over 200 distinct codes. Child appends 200
        // rows introducing 100 fresh codes, pushing n_strata past the
        // u8 boundary to 300 — every field must match a cold build bit
        // for bit (numbering, stratum count, sizes).
        let parent_codes: Vec<u32> = (0..300).map(|i| (i % 200) as u32).collect();
        let mut child_codes = parent_codes.clone();
        child_codes.extend((0..200).map(|i| 1000 + (i % 100) as u32));
        let parent = ZPartition::from_codes(&parent_codes);
        assert_eq!(parent.n_strata, 200);
        let child_ze = Encoding {
            codes: fairsel_table::Codes::from_slice(&child_codes, 2000),
            arity: 2000,
            distinct: 300,
        };
        let ext = ZPartition::extend(&parent, &child_ze);
        let cold = ZPartition::from_encoding(&child_ze);
        assert_eq!(ext.stratum_of, cold.stratum_of);
        assert_eq!(ext.n_strata, cold.n_strata);
        assert_eq!(ext.sizes, cold.sizes);
    }

    #[test]
    fn arena_walks_match_hashed_statistics() {
        // The dense arena's G and CMI walks must be bit-identical to the
        // hashed reference on irregular data.
        let x = [1u32, 0, 1, 1, 2, 0, 1, 2, 0, 1];
        let y = [0u32, 0, 0, 1, 1, 2, 0, 1, 2, 2];
        let z = [7u32, 3, 7, 3, 9, 7, 3, 7, 9, 3];
        let part = ZPartition::from_codes(&z);
        let rows = StratumRows::from_partition(&part);
        let (xa, ya) = (3usize, 3usize);
        let cells = dense_cell_space(x.len(), part.n_strata, xa, ya).unwrap();
        let mut arena = DenseArena::new();
        arena.fill(&x, &y, xa, ya, &part, &rows, cells);
        let (g_dense, df_dense) = arena.g_walk();
        let hashed = Strata::count_within(&x, &y, &part);
        let mut g = 0.0;
        let mut df = 0usize;
        for s in &hashed.strata {
            for &((xv, yv), nxy) in &s.cells {
                g += 2.0 * nxy * ((nxy * s.total) / (s.xm[&xv] * s.ym[&yv])).ln();
            }
            if s.xm.len() > 1 && s.ym.len() > 1 {
                df += (s.xm.len() - 1) * (s.ym.len() - 1);
            }
        }
        assert_eq!(g_dense.to_bits(), g.to_bits());
        assert_eq!(df_dense, df);
        // Refill (arena reuse) and take the CMI walk.
        arena.fill(&x, &y, xa, ya, &part, &rows, cells);
        let cmi_dense = arena.cmi_walk(x.len());
        let nf = x.len() as f64;
        let mut cmi = 0.0;
        for s in &hashed.strata {
            for &((xv, yv), nxy) in &s.cells {
                cmi += (nxy / nf) * ((nxy * s.total) / (s.xm[&xv] * s.ym[&yv])).ln();
            }
        }
        assert_eq!(cmi_dense.to_bits(), cmi.max(0.0).to_bits());
    }

    /// Patching a retained sufficient table with only the appended rows —
    /// new cells and a brand-new stratum included — reproduces the cold
    /// fill over the concatenated rows cell for cell, and both statistic
    /// walks come out bit-identical to the cold arena walks.
    #[test]
    fn suff_patch_matches_cold_fill_and_walks() {
        let x = [1u32, 0, 1, 1, 2, 0, 1, 2, 0, 1, 2, 2, 0, 1];
        let y = [0u32, 0, 0, 1, 1, 2, 0, 1, 2, 2, 0, 2, 1, 1];
        // Appended suffix (last 5 rows) introduces the fresh stratum z=4
        // and revisits existing strata with previously unseen cells.
        let z = [7u32, 3, 7, 3, 9, 7, 3, 7, 9, 3, 4, 4, 7, 9];
        let n_parent = 9;
        let (xa, ya) = (3usize, 3usize);

        let parent_part = ZPartition::from_codes(&z[..n_parent]);
        let parent_rows = StratumRows::from_partition(&parent_part);
        let cells = dense_cell_space(n_parent, parent_part.n_strata, xa, ya).unwrap();
        let mut arena = DenseArena::new();
        arena.fill(
            &x[..n_parent],
            &y[..n_parent],
            xa,
            ya,
            &parent_part,
            &parent_rows,
            cells,
        );
        let snap = arena.snapshot_suff(n_parent);

        // First-occurrence numbering over the full rows extends the
        // parent numbering (prefix rows are the parent rows).
        let full_part = ZPartition::from_codes(&z);
        let full_rows = StratumRows::from_partition(&full_part);
        let patched = snap.patch(&x[..], &y[..], &full_part);
        assert_eq!(patched.n_rows, x.len());
        assert_eq!(patched.n_strata, full_part.n_strata);

        let full_cells = dense_cell_space(x.len(), full_part.n_strata, xa, ya).unwrap();
        arena.fill(&x, &y, xa, ya, &full_part, &full_rows, full_cells);
        let cold = arena.snapshot_suff(x.len());
        assert_eq!(patched.counts, cold.counts, "cell-for-cell equality");
        assert_eq!(patched.cell_order, cold.cell_order, "walk order equality");
        assert_eq!(patched.totals, cold.totals);

        let (g_cold, df_cold) = arena.g_walk();
        let (g_patched, df_patched) = patched.g();
        assert_eq!(g_patched.to_bits(), g_cold.to_bits());
        assert_eq!(df_patched, df_cold);
        arena.fill(&x, &y, xa, ya, &full_part, &full_rows, full_cells);
        let cmi_cold = arena.cmi_walk(x.len());
        assert_eq!(patched.cmi(x.len()).to_bits(), cmi_cold.to_bits());
        // An empty patch (no appended rows) is the identity.
        let noop = patched.patch(&x[..], &y[..], &full_part);
        assert_eq!(noop.counts, patched.counts);
        assert_eq!(noop.cell_order, patched.cell_order);
    }
}
