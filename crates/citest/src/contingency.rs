//! Deterministic stratified contingency counting shared by the discrete
//! testers (G-test, plug-in CMI).
//!
//! Strata and cells are accumulated in *first-occurrence order* (hash maps
//! are used only as indexes into insertion-ordered vectors), so the
//! floating-point accumulation order of any statistic built on top is a
//! pure function of the input codes. That determinism is what lets the
//! engine promise byte-identical outcomes across the per-query, batched,
//! and worker-pool execution paths.

use std::collections::HashMap;

/// Counts for one stratum of the conditioning variables.
#[derive(Default)]
pub(crate) struct Stratum {
    cell_index: HashMap<(u32, u32), usize>,
    /// `(x, y) -> count`, in first-occurrence order.
    pub cells: Vec<((u32, u32), f64)>,
    /// Marginal counts per x value.
    pub xm: HashMap<u32, f64>,
    /// Marginal counts per y value.
    pub ym: HashMap<u32, f64>,
    /// Rows in this stratum.
    pub total: f64,
}

/// Stratified contingency counts over parallel code slices, strata in
/// first-occurrence order.
pub(crate) struct Strata {
    index: HashMap<u32, usize>,
    pub strata: Vec<Stratum>,
}

impl Strata {
    /// Count `(x, y)` pairs within each stratum of `z`.
    ///
    /// # Panics
    /// Panics when the slices disagree in length.
    pub fn count(x: &[u32], y: &[u32], z: &[u32]) -> Strata {
        let n = x.len();
        assert_eq!(n, y.len(), "contingency: length mismatch");
        assert_eq!(n, z.len(), "contingency: length mismatch");
        let mut out = Strata {
            index: HashMap::new(),
            strata: Vec::new(),
        };
        for i in 0..n {
            let si = match out.index.get(&z[i]) {
                Some(&si) => si,
                None => {
                    out.index.insert(z[i], out.strata.len());
                    out.strata.push(Stratum::default());
                    out.strata.len() - 1
                }
            };
            let s = &mut out.strata[si];
            let key = (x[i], y[i]);
            match s.cell_index.get(&key) {
                Some(&ci) => s.cells[ci].1 += 1.0,
                None => {
                    s.cell_index.insert(key, s.cells.len());
                    s.cells.push((key, 1.0));
                }
            }
            *s.xm.entry(x[i]).or_insert(0.0) += 1.0;
            *s.ym.entry(y[i]).or_insert(0.0) += 1.0;
            s.total += 1.0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_in_first_occurrence_order() {
        let x = [1, 0, 1, 1];
        let y = [0, 0, 0, 1];
        let z = [7, 3, 7, 3];
        let s = Strata::count(&x, &y, &z);
        assert_eq!(s.strata.len(), 2);
        // Stratum of z=7 first (row 0), then z=3 (row 1).
        assert_eq!(s.strata[0].total, 2.0);
        assert_eq!(s.strata[0].cells, vec![((1, 0), 2.0)]);
        assert_eq!(s.strata[1].total, 2.0);
        assert_eq!(s.strata[1].cells, vec![((0, 0), 1.0), ((1, 1), 1.0)]);
        assert_eq!(s.strata[1].xm[&0], 1.0);
        assert_eq!(s.strata[1].ym[&1], 1.0);
    }

    #[test]
    fn empty_input_is_empty() {
        let s = Strata::count(&[], &[], &[]);
        assert!(s.strata.is_empty());
    }
}
