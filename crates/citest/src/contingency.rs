//! Deterministic stratified contingency counting shared by the discrete
//! testers (G-test, plug-in CMI).
//!
//! Strata and cells are accumulated in *first-occurrence order* (hash maps
//! are used only as indexes into insertion-ordered vectors), so the
//! floating-point accumulation order of any statistic built on top is a
//! pure function of the input codes. That determinism is what lets the
//! engine promise byte-identical outcomes across the per-query, batched,
//! and worker-pool execution paths.

use std::collections::HashMap;

/// Precomputed stratification of a conditioning-set encoding — the shared
/// scaffold of a *Z-group*: every query of a GrpSel frontier level
/// conditions on the same set, so its strata structure can be derived once
/// and reused by every `(x, y)` pair (and, for the permutation test, by
/// every permutation replicate).
///
/// Strata are numbered in first-occurrence order of the `z` codes — the
/// exact order [`Strata::count`] discovers them — so statistics computed
/// through [`Strata::count_within`] accumulate in the same floating-point
/// order and come out byte-identical.
pub(crate) struct ZPartition {
    /// Per-row stratum index.
    pub stratum_of: Vec<u32>,
    /// Number of distinct strata.
    pub n_strata: usize,
}

impl ZPartition {
    /// Build from per-row conditioning codes.
    pub fn from_codes(z: &[u32]) -> ZPartition {
        let mut index: HashMap<u32, u32> = HashMap::new();
        let mut stratum_of = Vec::with_capacity(z.len());
        for &zv in z {
            let next = index.len() as u32;
            stratum_of.push(*index.entry(zv).or_insert(next));
        }
        ZPartition {
            stratum_of,
            n_strata: index.len(),
        }
    }

    /// Row indices per stratum, strata in first-occurrence order, rows
    /// ascending — the layout the within-stratum permutation needs.
    pub fn rows(&self) -> Vec<Vec<usize>> {
        let mut rows = vec![Vec::new(); self.n_strata];
        for (i, &s) in self.stratum_of.iter().enumerate() {
            rows[s as usize].push(i);
        }
        rows
    }
}

/// Counts for one stratum of the conditioning variables.
#[derive(Default)]
pub(crate) struct Stratum {
    cell_index: HashMap<(u32, u32), usize>,
    /// `(x, y) -> count`, in first-occurrence order.
    pub cells: Vec<((u32, u32), f64)>,
    /// Marginal counts per x value.
    pub xm: HashMap<u32, f64>,
    /// Marginal counts per y value.
    pub ym: HashMap<u32, f64>,
    /// Rows in this stratum.
    pub total: f64,
}

/// Stratified contingency counts over parallel code slices, strata in
/// first-occurrence order.
pub(crate) struct Strata {
    index: HashMap<u32, usize>,
    pub strata: Vec<Stratum>,
}

impl Strata {
    /// Count `(x, y)` pairs within each stratum of `z`.
    ///
    /// # Panics
    /// Panics when the slices disagree in length.
    pub fn count(x: &[u32], y: &[u32], z: &[u32]) -> Strata {
        let n = x.len();
        assert_eq!(n, y.len(), "contingency: length mismatch");
        assert_eq!(n, z.len(), "contingency: length mismatch");
        let mut out = Strata {
            index: HashMap::new(),
            strata: Vec::new(),
        };
        for i in 0..n {
            let si = match out.index.get(&z[i]) {
                Some(&si) => si,
                None => {
                    out.index.insert(z[i], out.strata.len());
                    out.strata.push(Stratum::default());
                    out.strata.len() - 1
                }
            };
            let s = &mut out.strata[si];
            let key = (x[i], y[i]);
            match s.cell_index.get(&key) {
                Some(&ci) => s.cells[ci].1 += 1.0,
                None => {
                    s.cell_index.insert(key, s.cells.len());
                    s.cells.push((key, 1.0));
                }
            }
            *s.xm.entry(x[i]).or_insert(0.0) += 1.0;
            *s.ym.entry(y[i]).or_insert(0.0) += 1.0;
            s.total += 1.0;
        }
        out
    }

    /// Count `(x, y)` pairs against a precomputed stratification.
    ///
    /// Produces a `Strata` with the same strata order, cell order, and
    /// float values as [`Strata::count`] over the codes the partition was
    /// built from: strata were numbered in first-occurrence order, cells
    /// accumulate in first-occurrence row order, and the marginals —
    /// derived here from the finished cells instead of row by row — are
    /// sums of small integers, which float addition performs exactly in
    /// either order. The scaffold removes the per-query conditioning-set
    /// hashing (one array index instead of three hash-map updates per
    /// row), which is where a Z-grouped batch spends most of its time.
    ///
    /// # Panics
    /// Panics when the slices disagree in length with the partition.
    pub fn count_within(x: &[u32], y: &[u32], part: &ZPartition) -> Strata {
        let n = x.len();
        assert_eq!(n, y.len(), "contingency: length mismatch");
        assert_eq!(n, part.stratum_of.len(), "contingency: partition mismatch");
        let mut strata: Vec<Stratum> = (0..part.n_strata).map(|_| Stratum::default()).collect();
        for i in 0..n {
            let s = &mut strata[part.stratum_of[i] as usize];
            let key = (x[i], y[i]);
            match s.cell_index.get(&key) {
                Some(&ci) => s.cells[ci].1 += 1.0,
                None => {
                    s.cell_index.insert(key, s.cells.len());
                    s.cells.push((key, 1.0));
                }
            }
            s.total += 1.0;
        }
        for s in &mut strata {
            for &((xv, yv), nxy) in &s.cells {
                *s.xm.entry(xv).or_insert(0.0) += nxy;
                *s.ym.entry(yv).or_insert(0.0) += nxy;
            }
        }
        Strata {
            index: HashMap::new(),
            strata,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_in_first_occurrence_order() {
        let x = [1, 0, 1, 1];
        let y = [0, 0, 0, 1];
        let z = [7, 3, 7, 3];
        let s = Strata::count(&x, &y, &z);
        assert_eq!(s.strata.len(), 2);
        // Stratum of z=7 first (row 0), then z=3 (row 1).
        assert_eq!(s.strata[0].total, 2.0);
        assert_eq!(s.strata[0].cells, vec![((1, 0), 2.0)]);
        assert_eq!(s.strata[1].total, 2.0);
        assert_eq!(s.strata[1].cells, vec![((0, 0), 1.0), ((1, 1), 1.0)]);
        assert_eq!(s.strata[1].xm[&0], 1.0);
        assert_eq!(s.strata[1].ym[&1], 1.0);
    }

    #[test]
    fn empty_input_is_empty() {
        let s = Strata::count(&[], &[], &[]);
        assert!(s.strata.is_empty());
    }

    #[test]
    fn count_within_matches_count() {
        // Irregular codes with repeats and a stratum of size one.
        let x = [1, 0, 1, 1, 2, 0, 1, 2];
        let y = [0, 0, 0, 1, 1, 2, 0, 1];
        let z = [7, 3, 7, 3, 9, 7, 3, 7];
        let part = ZPartition::from_codes(&z);
        assert_eq!(part.n_strata, 3);
        assert_eq!(part.rows()[0], vec![0, 2, 5, 7]); // stratum of z=7 first
        let a = Strata::count(&x, &y, &z);
        let b = Strata::count_within(&x, &y, &part);
        assert_eq!(a.strata.len(), b.strata.len());
        for (sa, sb) in a.strata.iter().zip(&b.strata) {
            assert_eq!(sa.cells, sb.cells);
            assert_eq!(sa.total, sb.total);
            assert_eq!(sa.xm, sb.xm);
            assert_eq!(sa.ym, sb.ym);
        }
    }
}
