//! The G-test (log-likelihood-ratio test) of conditional independence for
//! discrete data.
//!
//! For each stratum `z` of the conditioning variables the statistic
//! accumulates `2 Σ n_xyz · ln(n_xyz n_z / (n_xz n_yz))`, which is
//! asymptotically χ² with `Σ_z (r_z − 1)(c_z − 1)` degrees of freedom.
//! Degrees of freedom are computed *adaptively* from the categories
//! actually observed per stratum (the convention of pcalg/tetrad), which
//! keeps the test calibrated on sparse strata — important here because
//! group testing multiplies arities together.

use crate::contingency::{
    dense_cell_space, DenseArena, Strata, StratumRows, SuffKey, SuffTable, ZPartition,
};
use crate::{CiOutcome, CiTest, KernelMode, VarId};
use fairsel_math::special::chi2_sf;
use fairsel_table::{with_codes, CappedCache, CodeValue, EncodedTable, Table};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// G-test over the categorical columns of a [`Table`], reading every
/// joint encoding through a shared [`EncodedTable`] so repeated variable
/// sets — a frontier's common conditioning set, nested group sides — are
/// encoded once per session rather than once per query.
///
/// Variables are table column ids; all referenced columns must be
/// categorical (the paper's discrete synthetic benchmarks and simulated
/// datasets are generated categorically).
///
/// Besides the per-query path, the tester implements the Z-grouped batch
/// entry point ([`crate::CiTestBatch::eval_z_group`]): the conditioning
/// set's stratification is derived once per group (and memoized per
/// canonical set, so concurrent chunks of one giant group share it) and
/// every `(x, y)` pair counts against that scaffold — byte-identical to
/// the per-query statistic, at a fraction of the per-row hashing.
pub struct GTest {
    enc: Arc<EncodedTable>,
    alpha: f64,
    degenerate: AtomicU64,
    kernel: KernelMode,
    /// Cells zeroed+filled by the dense counting arena (telemetry:
    /// `dense_count_cells`).
    dense_cells: AtomicU64,
    /// Memoized conditioning-set stratifications (partition + CSR stratum
    /// rows) for grouped evaluation, keyed by the canonical (sorted,
    /// deduplicated) variable set and bounded like every other data-path
    /// cache.
    partitions: CappedCache<Vec<VarId>, Arc<GScaffold>>,
    /// Retained sufficient statistics — the per-query contingency tables —
    /// keyed by the canonical query triple. On dataset extension each
    /// resident table is patched with the appended rows
    /// ([`SuffTable::patch`]) so the re-evaluated query costs O(batch)
    /// counting instead of O(n).
    suff: CappedCache<SuffKey, Arc<SuffTable>>,
    /// Stratifications carried over (and extended) from a parent tester
    /// by [`GTest::extended_from`] — the `extended` side of the scaffold
    /// conservation ledger.
    extended_scaffolds: u64,
}

/// A conditioning set's memoized evaluation scaffold: the stratification
/// and its CSR row layout (the arena fill iterates the CSR rows).
type GScaffold = (ZPartition, StratumRows);

impl GTest {
    /// Create a tester at significance level `alpha` (paper default: 0.01,
    /// swept to 0.05 in §5.2 with stable results), with a private
    /// encoding cache.
    pub fn new(table: &Table, alpha: f64) -> Self {
        Self::over(Arc::new(EncodedTable::new(table)), alpha)
    }

    /// Create a tester sharing an existing encoding layer — how several
    /// testers (G-test + CMI audit) amortize one cache.
    pub fn over(enc: Arc<EncodedTable>, alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
        let cap = enc.cache_cap();
        Self {
            enc,
            alpha,
            degenerate: AtomicU64::new(0),
            kernel: KernelMode::default(),
            dense_cells: AtomicU64::new(0),
            partitions: CappedCache::new(cap),
            suff: CappedCache::new(cap),
            extended_scaffolds: 0,
        }
    }

    /// Build the tester a dataset *extension* warrants: same configuration
    /// as `parent`, reading the extended encoding layer `enc`, with every
    /// resident conditioning-set stratification carried over and extended
    /// ([`ZPartition::extend`]) instead of rebuilt. Query outcomes are
    /// byte-identical to a cold `GTest::over(enc, alpha)` — only where the
    /// scaffolds come from changes. Telemetry (degenerate short-circuits,
    /// dense-arena cells) starts fresh, matching a cold tester's counters.
    pub fn extended_from(parent: &GTest, enc: Arc<EncodedTable>) -> GTest {
        let mut child = GTest::over(enc, parent.alpha).with_kernel_mode(parent.kernel);
        if child.enc.caching() {
            let mut snap = parent.partitions.snapshot();
            snap.sort_by(|a, b| a.0.cmp(&b.0));
            for (zkey, sc) in snap {
                let ze = child.enc.encode(&zkey);
                let part = ZPartition::extend(&sc.0, &ze);
                let rows = StratumRows::from_partition(&part);
                child
                    .partitions
                    .insert_transferred(zkey, Arc::new((part, rows)));
                child.extended_scaffolds += 1;
            }
            // Carry retained sufficient statistics over, patching each
            // with the appended rows now — O(batch) integer counting per
            // table. Tables whose preconditions fail (conditioning
            // scaffold evicted, side encodings not provably append-stable,
            // arity grown by the batch, cell space no longer dense) are
            // dropped: their queries take the invalidate path instead.
            let mut tables = parent.suff.snapshot();
            tables.sort_by(|a, b| a.0.cmp(&b.0));
            for (key, t) in tables {
                let patched =
                    crate::contingency::patch_suff_table(&child.enc, &child.partitions, &key.2, &t);
                if let Some(patched) = patched {
                    child.suff.insert_transferred(key, Arc::new(patched));
                }
            }
        }
        child
    }

    /// Select the counting-kernel generation (default: the narrow/arena
    /// kernels). Outcomes are bit-identical either way; the reference
    /// mode exists for benchmarking and bit-identity property tests.
    pub fn with_kernel_mode(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        self.enc.table()
    }

    /// The shared encoding layer.
    pub fn encoded(&self) -> &Arc<EncodedTable> {
        &self.enc
    }

    /// How many queries short-circuited on an all-singleton conditioning
    /// stratum structure (p = 1 without building contingency tables).
    pub fn degenerate_short_circuits(&self) -> u64 {
        self.degenerate.load(Ordering::Relaxed)
    }

    /// Raw statistic and p-value for `X ⊥ Y | Z` without thresholding.
    pub fn g_statistic(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> (f64, f64) {
        // Encodings are dense where needed: group queries can multiply
        // arities past u32 (32 binary features already overflow); the G
        // statistic only depends on the induced partition, so dense
        // re-encoding is exact.
        let zkey = crate::canonical_set(z);
        let ze = self.enc.encode(&zkey);
        if ze.all_singletons() {
            // Every row its own stratum: no stratum can be informative
            // (df = 0), so the full computation would return (0, 1) after
            // allocating a contingency entry per row. Skip it.
            self.degenerate.fetch_add(1, Ordering::Relaxed);
            return (0.0, 1.0);
        }
        let xe = self.enc.encode(x);
        let ye = self.enc.encode(y);
        if self.kernel == KernelMode::Reference {
            return g_test_from_codes(
                &xe.codes.to_u32_vec(),
                &ye.codes.to_u32_vec(),
                &ze.codes.to_u32_vec(),
            );
        }
        // The per-query path runs the same grouped kernel against the
        // (memoized) stratification scaffold — bit-identical to the hashed
        // per-query statistic (see `grouped_statistic_is_byte_identical`).
        let sc = self.z_partition(&zkey, &ze);
        let mut arena = DenseArena::new();
        self.grouped_kernel(&xe, &ye, &sc, &mut arena, Some((x, y, &zkey)))
    }

    /// Dispatch the narrow grouped kernel over the encodings' native code
    /// widths, accounting dense-arena traffic. When the dense path ran
    /// and `retain` names the query, the filled counts are snapshot as
    /// the query's sufficient statistic for later append-patching.
    fn grouped_kernel(
        &self,
        xe: &fairsel_table::Encoding,
        ye: &fairsel_table::Encoding,
        sc: &GScaffold,
        arena: &mut DenseArena,
        retain: Option<(&[VarId], &[VarId], &[VarId])>,
    ) -> (f64, f64) {
        let (part, rows) = sc;
        let (g, p, cells) = with_codes!(&xe.codes, |xc| with_codes!(&ye.codes, |yc| {
            g_test_grouped_narrow(xc, xe.arity, yc, ye.arity, part, rows, arena)
        }));
        if cells > 0 {
            self.dense_cells.fetch_add(cells, Ordering::Relaxed);
            if let Some((x, y, zkey)) = retain {
                self.retain_suff(x, y, zkey, arena, part.stratum_of.len());
            }
        }
        (g, p)
    }

    /// Retain the arena's just-filled counts (the statistic walk leaves
    /// them intact) as the query's sufficient statistic, so the next
    /// dataset extension can patch them with only the appended rows
    /// instead of recounting from scratch.
    fn retain_suff(&self, x: &[VarId], y: &[VarId], zkey: &[VarId], arena: &DenseArena, n: usize) {
        if !self.enc.caching() {
            return;
        }
        let (xs, ys) = crate::canonical_sides(x, y);
        let key = (xs, ys, zkey.to_vec());
        if self.suff.peek(&key).is_some() {
            return;
        }
        let mut t = arena.snapshot_suff(n);
        t.xset = x.to_vec();
        t.yset = y.to_vec();
        self.suff.insert(key, Arc::new(t));
    }

    /// Stratification of the canonical conditioning set `zkey`, memoized
    /// so concurrent chunks of one Z-group (and later levels re-using the
    /// set) share a single scaffold.
    fn z_partition(&self, zkey: &[VarId], ze: &fairsel_table::Encoding) -> Arc<GScaffold> {
        if self.enc.caching() {
            if let Some(hit) = self.partitions.get(zkey) {
                return hit;
            }
            let part = ZPartition::from_encoding(ze);
            let rows = StratumRows::from_partition(&part);
            self.partitions
                .insert(zkey.to_vec(), Arc::new((part, rows)))
        } else {
            self.partitions.note_miss();
            let part = ZPartition::from_encoding(ze);
            let rows = StratumRows::from_partition(&part);
            Arc::new((part, rows))
        }
    }
}

impl CiTest for GTest {
    fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        crate::CiTestShared::ci_shared(self, x, y, z)
    }

    fn n_vars(&self) -> usize {
        self.table().n_cols()
    }

    fn name(&self) -> &'static str {
        "g-test"
    }
}

impl crate::CiTestShared for GTest {
    fn ci_shared(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        if x.is_empty() || y.is_empty() {
            return CiOutcome::decided(true);
        }
        let (g, p) = self.g_statistic(x, y, z);
        CiOutcome {
            independent: p > self.alpha,
            p_value: p,
            statistic: g,
        }
    }
}

impl crate::CiTestBatch for GTest {
    /// Z-grouped evaluation: one stratification scaffold per group, every
    /// pair counted against it. Byte-identical to [`GTest::g_statistic`]
    /// (same strata order, same cell order, same float accumulation — see
    /// [`Strata::count_within`]).
    fn eval_z_group(&self, z: &[VarId], queries: &[crate::CiQueryRef<'_>]) -> Vec<CiOutcome> {
        let zkey = crate::canonical_set(z);
        // Built lazily so a group of empty-sided queries never encodes.
        // One arena serves every query of the group.
        let mut scaffold: Option<(Arc<fairsel_table::Encoding>, Option<Arc<GScaffold>>)> = None;
        let mut arena = DenseArena::new();
        queries
            .iter()
            .map(|q| {
                if q.x.is_empty() || q.y.is_empty() {
                    return CiOutcome::decided(true);
                }
                let (_, part) = scaffold.get_or_insert_with(|| {
                    let ze = self.enc.encode(&zkey);
                    let part = if ze.all_singletons() {
                        None
                    } else {
                        Some(self.z_partition(&zkey, &ze))
                    };
                    (ze, part)
                });
                let Some(sc) = part else {
                    // Degenerate conditioning: p = 1 without contingency
                    // work, exactly as the per-query short-circuit.
                    self.degenerate.fetch_add(1, Ordering::Relaxed);
                    return CiOutcome {
                        independent: true,
                        p_value: 1.0,
                        statistic: 0.0,
                    };
                };
                let xe = self.enc.encode(q.x);
                let ye = self.enc.encode(q.y);
                let (g, p) = if self.kernel == KernelMode::Reference {
                    g_test_grouped_reference(
                        &xe.codes.to_u32_vec(),
                        xe.arity,
                        &ye.codes.to_u32_vec(),
                        ye.arity,
                        &sc.0,
                    )
                } else {
                    self.grouped_kernel(&xe, &ye, sc, &mut arena, Some((q.x, q.y, &zkey)))
                };
                CiOutcome {
                    independent: p > self.alpha,
                    p_value: p,
                    statistic: g,
                }
            })
            .collect()
    }

    fn encode_cache_stats(&self) -> crate::EncodeStats {
        self.enc
            .stats()
            .merged(self.partitions.stats())
            .merged(crate::EncodeStats {
                dense_count_cells: self.dense_cells.load(Ordering::Relaxed),
                ..crate::EncodeStats::default()
            })
    }

    fn extend_over(
        &self,
        child: Arc<EncodedTable>,
    ) -> Option<Box<dyn crate::CiTestBatch + Send + Sync>> {
        Some(Box::new(GTest::extended_from(self, child)))
    }

    fn scaffold_stats(&self) -> crate::ScaffoldStats {
        crate::ScaffoldStats {
            extended: self.extended_scaffolds,
            rebuilt: self
                .partitions
                .inserted()
                .saturating_sub(self.extended_scaffolds),
            resident: self.partitions.len() as u64,
            evictions: self.partitions.evictions(),
            suff_tables: self.suff.len() as u64,
            suff_evictions: self.suff.evictions(),
        }
    }

    /// Answer a memoized query from its retained-and-patched sufficient
    /// statistic: the table already holds the concatenated counts (the
    /// extension constructor patched it), so only the statistic walk —
    /// identical, bit for bit, to a cold arena walk — runs here. `None`
    /// routes the query to the invalidate path.
    fn patched_outcome(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> Option<CiOutcome> {
        if self.kernel == KernelMode::Reference {
            // The reference kernels never fill the arena, so nothing was
            // retained; decline rather than diverge from the cold path's
            // counter accounting.
            return None;
        }
        if x.is_empty() || y.is_empty() {
            return Some(CiOutcome::decided(true));
        }
        let zkey = crate::canonical_set(z);
        let ze = self.enc.encode(&zkey);
        if ze.all_singletons() {
            // Degenerate on the *extended* rows too — same short-circuit
            // a cold evaluation takes (the counter is deliberately not
            // bumped: patched answers do no contingency work to skip).
            return Some(CiOutcome {
                independent: true,
                p_value: 1.0,
                statistic: 0.0,
            });
        }
        let (xs, ys) = crate::canonical_sides(x, y);
        let t = self.suff.peek(&(xs, ys, zkey))?;
        if t.n_rows != self.enc.n_rows() {
            return None;
        }
        let (g, df) = t.g();
        let (g, p) = finish_g(g, df);
        Some(CiOutcome {
            independent: p > self.alpha,
            p_value: p,
            statistic: g,
        })
    }
}

/// Core G computation from pre-encoded joint codes. Returns `(G, p_value)`.
///
/// Strata are formed over distinct observed `z` codes; within each stratum
/// counts are accumulated sparsely so high-arity joint codes stay cheap.
/// Strata and cells accumulate in first-occurrence order, so the result is
/// a deterministic function of the codes — the property the batched and
/// worker-pool execution paths rely on for byte-identical outcomes.
pub fn g_test_from_codes(x: &[u32], y: &[u32], z: &[u32]) -> (f64, f64) {
    if x.is_empty() {
        assert!(y.is_empty() && z.is_empty(), "g_test: length mismatch");
        return (0.0, 1.0);
    }
    g_from_strata(&Strata::count(x, y, z))
}

/// The narrow/arena Z-grouped G computation. When the dense cell space
/// `n_strata × xa × ya` is small relative to the row count, counting runs
/// on the reusable flat arena — no hashing, no per-query allocation;
/// otherwise it falls back to the hashed scaffold counter
/// ([`Strata::count_within`]), generic over the stored code width either
/// way. Both paths are byte-identical to [`g_test_from_codes`] and to
/// [`g_test_grouped_reference`]: strata keep the partition's
/// first-occurrence order, cells accumulate in first-occurrence row
/// order, marginals are exact integer sums, and the G summation walks the
/// same cells in the same order. Returns `(G, p, dense cells used)`.
fn g_test_grouped_narrow<X: CodeValue, Y: CodeValue>(
    x: &[X],
    xa: u32,
    y: &[Y],
    ya: u32,
    part: &ZPartition,
    rows: &StratumRows,
    arena: &mut DenseArena,
) -> (f64, f64, u64) {
    let n = x.len();
    if n == 0 {
        return (0.0, 1.0, 0);
    }
    let (xa, ya) = (xa.max(1) as usize, ya.max(1) as usize);
    match dense_cell_space(n, part.n_strata, xa, ya) {
        Some(cells) => {
            arena.fill(x, y, xa, ya, part, rows, cells);
            let (g, df) = arena.g_walk();
            let (g, p) = finish_g(g, df);
            (g, p, cells as u64)
        }
        None => {
            let (g, p) = g_from_strata(&Strata::count_within(x, y, part));
            (g, p, 0)
        }
    }
}

/// Finish the G statistic: df = 0 cannot reject; tiny negative G from
/// float cancellation is clamped before the χ² tail.
fn finish_g(g: f64, df: usize) -> (f64, f64) {
    if df == 0 {
        return (0.0, 1.0);
    }
    let g = g.max(0.0);
    (g, chi2_sf(g, df as f64))
}

/// The pre-arena Z-grouped G computation, kept verbatim as the
/// [`KernelMode::Reference`] implementation: full-width codes, per-query
/// scratch allocation. Byte-identical to [`g_test_grouped_narrow`] — the
/// property the kernel-mode tests pin.
fn g_test_grouped_reference(
    x: &[u32],
    xa: u32,
    y: &[u32],
    ya: u32,
    part: &ZPartition,
) -> (f64, f64) {
    let n = x.len();
    if n == 0 {
        return (0.0, 1.0);
    }
    let (xa, ya) = (xa.max(1) as usize, ya.max(1) as usize);
    let cell_space = (part.n_strata as u64) * (xa as u64) * (ya as u64);
    if cell_space > (8 * n as u64).max(4096) {
        return g_from_strata(&Strata::count_within(x, y, part));
    }
    let cell_space = cell_space as usize;
    // Cell counts indexed (stratum, x, y), plus each stratum's cells in
    // first-occurrence order — the order the G sum must walk.
    let mut counts = vec![0.0f64; cell_space];
    let mut cell_order: Vec<Vec<(u32, u32)>> = vec![Vec::new(); part.n_strata];
    let mut totals = vec![0.0f64; part.n_strata];
    for i in 0..n {
        let s = part.stratum_of[i] as usize;
        let flat = (s * xa + x[i] as usize) * ya + y[i] as usize;
        if counts[flat] == 0.0 {
            cell_order[s].push((x[i], y[i]));
        }
        counts[flat] += 1.0;
        totals[s] += 1.0;
    }
    // Marginals from finished cells (exact integer sums, identical to
    // per-row accumulation), tracking distinct observed values for df.
    let mut xm = vec![0.0f64; part.n_strata * xa];
    let mut ym = vec![0.0f64; part.n_strata * ya];
    let mut g = 0.0;
    let mut df = 0usize;
    for s in 0..part.n_strata {
        let mut r = 0usize;
        let mut c = 0usize;
        for &(xv, yv) in &cell_order[s] {
            let nxy = counts[(s * xa + xv as usize) * ya + yv as usize];
            let xslot = &mut xm[s * xa + xv as usize];
            if *xslot == 0.0 {
                r += 1;
            }
            *xslot += nxy;
            let yslot = &mut ym[s * ya + yv as usize];
            if *yslot == 0.0 {
                c += 1;
            }
            *yslot += nxy;
        }
        for &(xv, yv) in &cell_order[s] {
            let nxy = counts[(s * xa + xv as usize) * ya + yv as usize];
            let nx = xm[s * xa + xv as usize];
            let ny = ym[s * ya + yv as usize];
            g += 2.0 * nxy * ((nxy * totals[s]) / (nx * ny)).ln();
        }
        if r > 1 && c > 1 {
            df += (r - 1) * (c - 1);
        }
    }
    if df == 0 {
        return (0.0, 1.0);
    }
    let g = g.max(0.0);
    (g, chi2_sf(g, df as f64))
}

/// The G statistic and p-value from finished contingency counts. Shared by
/// the per-query path ([`Strata::count`]) and the Z-grouped path
/// ([`Strata::count_within`]); both produce identically ordered strata, so
/// the accumulation here is byte-identical between them.
fn g_from_strata(strata: &Strata) -> (f64, f64) {
    let mut g = 0.0;
    let mut df = 0usize;
    for s in &strata.strata {
        for &((xv, yv), nxy) in &s.cells {
            let nx = s.xm[&xv];
            let ny = s.ym[&yv];
            // nxy > 0 by construction.
            g += 2.0 * nxy * ((nxy * s.total) / (nx * ny)).ln();
        }
        let r = s.xm.len();
        let c = s.ym.len();
        if r > 1 && c > 1 {
            df += (r - 1) * (c - 1);
        }
    }
    if df == 0 {
        // No informative stratum: cannot reject independence.
        return (0.0, 1.0);
    }
    let g = g.max(0.0); // guard tiny negative from float cancellation
    (g, chi2_sf(g, df as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_graph::DagBuilder;
    use fairsel_scm::DiscreteScmBuilder;
    use fairsel_table::{Column, Role, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Sample the chain S -> X -> Y and wrap as a table.
    fn chain_table(n: usize, seed: u64) -> Table {
        let g = DagBuilder::new()
            .nodes(["S", "X", "Y"])
            .edge("S", "X")
            .edge("X", "Y")
            .build();
        let s = g.expect_node("S");
        let x = g.expect_node("X");
        let y = g.expect_node("Y");
        let scm = DiscreteScmBuilder::uniform_arity(g.clone(), 2)
            .cpt(s, vec![0.5, 0.5])
            .unwrap()
            .cpt(x, vec![0.9, 0.1, 0.1, 0.9])
            .unwrap()
            .cpt(y, vec![0.85, 0.15, 0.2, 0.8])
            .unwrap()
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let cols = scm.sample(&mut rng, n);
        Table::new(vec![
            Column::cat("S", Role::Sensitive, cols[s.index()].clone(), 2),
            Column::cat("X", Role::Feature, cols[x.index()].clone(), 2),
            Column::cat("Y", Role::Target, cols[y.index()].clone(), 2),
        ])
        .unwrap()
    }

    #[test]
    fn detects_marginal_dependence() {
        let t = chain_table(4000, 1);
        let mut g = GTest::new(&t, 0.01);
        // S and Y dependent marginally.
        assert!(!g.ci(&[0], &[2], &[]).independent);
        // S and X dependent.
        assert!(!g.ci(&[0], &[1], &[]).independent);
    }

    #[test]
    fn detects_conditional_independence() {
        let t = chain_table(4000, 2);
        let mut g = GTest::new(&t, 0.01);
        // S ⊥ Y | X in the chain.
        let out = g.ci(&[0], &[2], &[1]);
        assert!(out.independent, "chain CI should hold, p={}", out.p_value);
    }

    #[test]
    fn independent_columns_pass() {
        let mut rng = StdRng::seed_from_u64(3);
        use rand::Rng;
        let n = 3000;
        let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        let b: Vec<u32> = (0..n).map(|_| rng.gen_range(0..4)).collect();
        let t = Table::new(vec![
            Column::cat("a", Role::Feature, a, 3),
            Column::cat("b", Role::Feature, b, 4),
        ])
        .unwrap();
        let mut g = GTest::new(&t, 0.01);
        assert!(g.ci(&[0], &[1], &[]).independent);
    }

    #[test]
    fn deterministic_copy_is_dependent() {
        let codes: Vec<u32> = (0..500).map(|i| (i % 2) as u32).collect();
        let t = Table::new(vec![
            Column::cat("a", Role::Feature, codes.clone(), 2),
            Column::cat("b", Role::Feature, codes, 2),
        ])
        .unwrap();
        let mut g = GTest::new(&t, 0.01);
        let out = g.ci(&[0], &[1], &[]);
        assert!(!out.independent);
        assert!(out.p_value < 1e-10);
    }

    #[test]
    fn conditioning_on_copy_gives_independence() {
        // a == z, b depends on z: a ⊥ b | z must hold (degenerate strata).
        let mut rng = StdRng::seed_from_u64(4);
        use rand::Rng;
        let n = 2000;
        let z: Vec<u32> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        let b: Vec<u32> = z
            .iter()
            .map(|&zv| if rng.gen::<f64>() < 0.8 { zv } else { 1 - zv })
            .collect();
        let t = Table::new(vec![
            Column::cat("a", Role::Feature, z.clone(), 2),
            Column::cat("b", Role::Feature, b, 2),
            Column::cat("z", Role::Feature, z, 2),
        ])
        .unwrap();
        let mut g = GTest::new(&t, 0.01);
        assert!(g.ci(&[0], &[1], &[2]).independent);
    }

    #[test]
    fn group_query_uses_joint_codes() {
        let t = chain_table(4000, 5);
        let mut g = GTest::new(&t, 0.01);
        // Group {X, Y} vs S: dependent (X depends on S).
        assert!(!g.ci(&[1, 2], &[0], &[]).independent);
    }

    #[test]
    fn empty_sides_are_independent() {
        let t = chain_table(100, 6);
        let mut g = GTest::new(&t, 0.01);
        assert!(g.ci(&[], &[0], &[]).independent);
        assert!(g.ci(&[0], &[], &[1]).independent);
    }

    #[test]
    fn calibration_under_null() {
        // Independent uniform pairs: rejection rate at alpha=0.05 should be
        // near 5%.
        use rand::Rng;
        let mut rejections = 0;
        let trials = 400;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let n = 300;
            let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..2)).collect();
            let b: Vec<u32> = (0..n).map(|_| rng.gen_range(0..2)).collect();
            let z: Vec<u32> = (0..n).map(|_| rng.gen_range(0..2)).collect();
            let (_, p) = g_test_from_codes(&a, &b, &z);
            if p <= 0.05 {
                rejections += 1;
            }
        }
        let rate = rejections as f64 / trials as f64;
        assert!(
            (0.01..=0.10).contains(&rate),
            "null rejection rate {rate} not near 0.05"
        );
    }

    #[test]
    fn zero_rows_is_independent() {
        let (g, p) = g_test_from_codes(&[], &[], &[]);
        assert_eq!(g, 0.0);
        assert_eq!(p, 1.0);
    }

    /// The arena grouped counter, the reference grouped counter, and the
    /// hashed fallback are bit-for-bit the per-query statistic, across
    /// arities small enough for the dense path, large enough to force the
    /// fallback, and at every narrowed code width.
    #[test]
    fn grouped_statistic_is_byte_identical() {
        use crate::contingency::{DenseArena, StratumRows, ZPartition};
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(17);
        let mut arena = DenseArena::new();
        for (xa, ya, za) in [(2u32, 3u32, 4u32), (40, 50, 60), (5000, 4000, 8)] {
            let n = 400;
            let x: Vec<u32> = (0..n).map(|_| rng.gen_range(0..xa)).collect();
            let y: Vec<u32> = (0..n).map(|_| rng.gen_range(0..ya)).collect();
            let z: Vec<u32> = (0..n).map(|_| rng.gen_range(0..za)).collect();
            let part = ZPartition::from_codes(z.as_slice());
            let rows = StratumRows::from_partition(&part);
            let reference = g_test_from_codes(&x, &y, &z);
            let grouped = g_test_grouped_reference(&x, xa, &y, ya, &part);
            assert_eq!(reference, grouped, "arities ({xa},{ya},{za})");
            // Arena kernel at full width (the arena is reused across cases).
            let (g, p, _) =
                g_test_grouped_narrow(x.as_slice(), xa, &y[..], ya, &part, &rows, &mut arena);
            assert_eq!(reference, (g, p), "narrow u32 ({xa},{ya},{za})");
            // Narrowed storage widths count identically.
            if xa <= 256 && ya <= 256 {
                let x8: Vec<u8> = x.iter().map(|&v| v as u8).collect();
                let y8: Vec<u8> = y.iter().map(|&v| v as u8).collect();
                let (g, p, _) =
                    g_test_grouped_narrow(&x8[..], xa, &y8[..], ya, &part, &rows, &mut arena);
                assert_eq!(reference, (g, p), "narrow u8 ({xa},{ya},{za})");
            }
            let x16: Vec<u16> = x.iter().map(|&v| v as u16).collect();
            if xa <= 65536 {
                let (g, p, _) =
                    g_test_grouped_narrow(&x16[..], xa, &y[..], ya, &part, &rows, &mut arena);
                assert_eq!(reference, (g, p), "narrow u16/u32 ({xa},{ya},{za})");
            }
        }
    }

    /// A tester extended over an appended dataset answers bit-for-bit what
    /// a cold tester on the concatenated table answers, its transferred
    /// stratifications included, and the scaffold ledger stays conserved.
    #[test]
    fn extended_tester_matches_cold_and_conserves_scaffolds() {
        use crate::CiTestBatch;
        let parent_t = chain_table(800, 31);
        let batch = chain_table(200, 32);
        let parent = GTest::new(&parent_t, 0.01);
        let warm: [(Vec<usize>, Vec<usize>, Vec<usize>); 3] = [
            (vec![0], vec![2], vec![]),
            (vec![0], vec![2], vec![1]),
            (vec![0, 1], vec![2], vec![1]),
        ];
        for (x, y, z) in &warm {
            parent.g_statistic(x, y, z);
        }
        let child_enc = Arc::new(parent.encoded().extend(&batch).unwrap());
        let ext = GTest::extended_from(&parent, child_enc);
        let birth = ext.scaffold_stats();
        assert_eq!(birth.extended, 2, "zkeys [] and [1] carried over");
        assert_eq!(birth.rebuilt, 0);
        assert!(birth.conserved(), "{birth:?}");

        let concat = parent_t.concat(&batch).unwrap();
        let cold = GTest::new(&concat, 0.01);
        // Every warmed query's sufficient statistic was retained and
        // patched at extension; it answers bit-for-bit what the cold
        // tester computes. A query never evaluated has nothing to patch.
        assert_eq!(birth.suff_tables, 3, "{birth:?}");
        assert!(ext.patched_outcome(&[1], &[2], &[0]).is_none());
        for (x, y, z) in &warm {
            let got = ext.patched_outcome(x, y, z).expect("patched table answers");
            let (cg, cp) = cold.g_statistic(x, y, z);
            assert_eq!(got.statistic.to_bits(), cg.to_bits(), "patched statistic");
            assert_eq!(got.p_value.to_bits(), cp.to_bits(), "patched p-value");
        }
        let mut queries = warm.to_vec();
        queries.push((vec![1], vec![2], vec![0])); // fresh conditioning set
        for (x, y, z) in &queries {
            let a = ext.g_statistic(x, y, z);
            let b = cold.g_statistic(x, y, z);
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "statistic {x:?} {y:?} {z:?}");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "p-value {x:?} {y:?} {z:?}");
        }
        let s = ext.scaffold_stats();
        assert_eq!(s.extended, 2);
        assert_eq!(s.rebuilt, 1, "the fresh conditioning set rebuilt once");
        assert!(s.conserved(), "{s:?}");
        // The trait entry point routes to the same construction.
        assert!(parent
            .extend_over(Arc::new(parent.encoded().extend(&batch).unwrap()))
            .is_some());
    }

    /// Per-query evaluation through both kernel modes returns identical
    /// bit patterns (and exercises the per-query arena routing).
    #[test]
    fn kernel_modes_agree_per_query() {
        let t = chain_table(2000, 9);
        let narrow = GTest::new(&t, 0.01);
        let reference = GTest::new(&t, 0.01).with_kernel_mode(crate::KernelMode::Reference);
        for (x, y, z) in [
            (vec![0], vec![2], vec![]),
            (vec![0], vec![2], vec![1]),
            (vec![1, 2], vec![0], vec![]),
            (vec![0, 1], vec![2], vec![1]),
        ] {
            let a = narrow.g_statistic(&x, &y, &z);
            let b = reference.g_statistic(&x, &y, &z);
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "statistic {x:?} {y:?} {z:?}");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "p-value {x:?} {y:?} {z:?}");
        }
        // The narrow path counted through the dense arena.
        use crate::CiTestBatch;
        assert!(narrow.encode_cache_stats().dense_count_cells > 0);
        assert_eq!(reference.encode_cache_stats().dense_count_cells, 0);
    }
}
