//! Fisher-z partial-correlation test for (linear-)Gaussian data.
//!
//! The classical test behind most PC-algorithm implementations: regress
//! `x` and `y` on the conditioning set, correlate the residuals, apply the
//! Fisher z-transform, and compare `√(n−|Z|−3)·atanh(r)` to a standard
//! normal. Exact for multivariate Gaussian data; a useful fast tester for
//! the linear-Gaussian SCM workloads.

use crate::{CiOutcome, CiTest, VarId};
use fairsel_math::special::{fisher_z, normal_two_sided_p};
use fairsel_math::stats::pearson;
use fairsel_math::Mat;
use fairsel_table::{CappedCache, ColId, EncodedTable, Table};
use std::sync::Arc;

/// Memoized residual vectors keyed by `(column, canonical z set)`,
/// bounded by the encoding layer's cache cap.
type ResidualCache = CappedCache<(ColId, Vec<ColId>), Arc<Vec<f64>>>;

/// Fisher-z tester over the columns of a [`Table`] (all columns are read
/// as `f64`; categorical codes are treated numerically).
///
/// Multivariate `X`/`Y` sides are handled by testing every `(xᵢ, yⱼ)` pair
/// and Bonferroni-combining: the set is declared dependent if any pair is
/// significant at `alpha / (|X|·|Y|)`.
///
/// Per-query work is amortized through shared caches: materialized `f64`
/// columns live in the [`EncodedTable`] layer, and for each conditioning
/// set the design matrix and per-column residuals are memoized — a GrpSel
/// frontier level conditions every query on the same `Z`, so the ridge
/// solves collapse from `O(batch)` to `O(distinct columns)`. Both caches
/// are bounded at the encoding layer's cap (LRU eviction), so a
/// long-lived service holding a FisherZ tester stays memory-bounded.
pub struct FisherZ {
    enc: Arc<EncodedTable>,
    alpha: f64,
    designs: CappedCache<Vec<ColId>, Arc<Mat>>,
    residuals: ResidualCache,
    /// Design matrices carried over from a parent tester on dataset
    /// extension (see [`FisherZ::extended_from`]).
    extended_scaffolds: u64,
}

impl FisherZ {
    pub fn new(table: &Table, alpha: f64) -> Self {
        Self::over(Arc::new(EncodedTable::new(table)), alpha)
    }

    /// Build over a shared encoding layer (see [`crate::GTest::over`]).
    pub fn over(enc: Arc<EncodedTable>, alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
        let cap = enc.cache_cap();
        Self {
            enc,
            alpha,
            designs: CappedCache::new(cap),
            residuals: CappedCache::new(cap),
            extended_scaffolds: 0,
        }
    }

    /// Build a tester over an extended (appended-to) dataset. Design
    /// matrices carry over — a design is the raw conditioning columns plus
    /// intercept, so appending the new rows reproduces exactly what a cold
    /// build over the concatenated table assembles. Residual vectors do
    /// **not** carry over: the ridge solution changes with `n`, so every
    /// residual is recomputed on demand (bit-identical to cold, because it
    /// is the cold computation).
    pub fn extended_from(parent: &FisherZ, enc: Arc<EncodedTable>) -> FisherZ {
        let mut child = FisherZ::over(enc, parent.alpha);
        if child.enc.caching() {
            let n_child = child.table().n_rows();
            let mut snap = parent.designs.snapshot();
            snap.sort_by(|a, b| a.0.cmp(&b.0));
            for (zkey, mat) in snap {
                let n_parent = mat.rows();
                let mut data = mat.as_slice().to_vec();
                data.reserve((n_child - n_parent) * (zkey.len() + 1));
                let cols: Vec<Arc<Vec<f64>>> =
                    zkey.iter().map(|&c| child.enc.numeric_col(c)).collect();
                for i in n_parent..n_child {
                    data.push(1.0);
                    for col in &cols {
                        data.push(col[i]);
                    }
                }
                let extended = Arc::new(Mat::from_vec(n_child, zkey.len() + 1, data));
                child.designs.insert_transferred(zkey, extended);
                child.extended_scaffolds += 1;
            }
        }
        child
    }

    /// The shared encoding layer.
    pub fn encoded(&self) -> &Arc<EncodedTable> {
        &self.enc
    }

    fn table(&self) -> &Table {
        self.enc.table()
    }

    /// Residualize a column on the conditioning design matrix (with
    /// intercept) via ridge-stabilized least squares.
    fn residualize(col: &[f64], design: &Mat) -> Vec<f64> {
        let n = col.len();
        let t = Mat::from_vec(n, 1, col.to_vec());
        let w = Mat::ridge_solve(design, &t, 1e-8);
        let fitted = design.matmul(&w);
        (0..n).map(|i| col[i] - fitted[(i, 0)]).collect()
    }

    /// Design matrix (intercept + columns of the canonical `z` set),
    /// memoized per conditioning set (unless the encoding layer runs
    /// uncached — the per-query benchmark baseline).
    fn design(&self, zkey: &[ColId]) -> Arc<Mat> {
        if self.enc.caching() {
            if let Some(hit) = self.designs.get(zkey) {
                return hit;
            }
        }
        let n = self.table().n_rows();
        let cols: Vec<Arc<Vec<f64>>> = zkey.iter().map(|&c| self.enc.numeric_col(c)).collect();
        let mut data = Vec::with_capacity(n * (zkey.len() + 1));
        for i in 0..n {
            data.push(1.0);
            for col in &cols {
                data.push(col[i]);
            }
        }
        let design = Arc::new(Mat::from_vec(n, zkey.len() + 1, data));
        if self.enc.caching() {
            self.designs.insert(zkey.to_vec(), design)
        } else {
            self.designs.note_miss();
            design
        }
    }

    /// Residuals of `col` on the canonical `z` set, memoized.
    fn residual(&self, col: ColId, zkey: &[ColId]) -> Arc<Vec<f64>> {
        let key = (col, zkey.to_vec());
        if self.enc.caching() {
            if let Some(hit) = self.residuals.get(&key) {
                return hit;
            }
        }
        let design = self.design(zkey);
        let vals = self.enc.numeric_col(col);
        let res = Arc::new(Self::residualize(&vals, &design));
        if self.enc.caching() {
            self.residuals.insert(key, res)
        } else {
            self.residuals.note_miss();
            res
        }
    }

    fn canonical_z(z: &[VarId]) -> Vec<ColId> {
        crate::canonical_set(z)
    }

    /// Z-grouped scaffold: residualize every column a group of queries
    /// needs on `zkey` in **one** ridge solve. The per-query path pays one
    /// `ZᵀZ` formation + Cholesky factorization per `(column, Z)` pair;
    /// here the factorization is shared across the whole group and only
    /// the right-hand sides multiply. Results are inserted into the same
    /// residual cache the per-query path reads.
    ///
    /// Byte-identity: `t_matmul`, `solve_spd`, and `matmul` all process
    /// right-hand-side columns independently (the elimination multipliers
    /// depend only on the design), so column `j` of the blocked solve is
    /// bit-for-bit the vector [`FisherZ::residualize`] computes for that
    /// column alone — the property the grouped-equivalence tests pin down.
    fn prefill_residuals(&self, zkey: &[ColId], queries: &[crate::CiQueryRef<'_>]) {
        let mut need: Vec<ColId> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for q in queries {
            if q.x.is_empty() || q.y.is_empty() {
                continue;
            }
            let (x, y) = crate::canonical_sides(q.x, q.y);
            for &c in x.iter().chain(&y) {
                if seen.insert(c) && self.residuals.get(&(c, zkey.to_vec())).is_none() {
                    need.push(c);
                }
            }
        }
        if need.is_empty() {
            return;
        }
        let design = self.design(zkey);
        let n = self.table().n_rows();
        let k = need.len();
        let cols: Vec<Arc<Vec<f64>>> = need.iter().map(|&c| self.enc.numeric_col(c)).collect();
        let mut data = vec![0.0; n * k];
        for i in 0..n {
            for (j, col) in cols.iter().enumerate() {
                data[i * k + j] = col[i];
            }
        }
        let t = Mat::from_vec(n, k, data);
        let w = Mat::ridge_solve(&design, &t, 1e-8);
        let fitted = design.matmul(&w);
        // Extract each residual column with a strided read over the
        // row-major fitted matrix. (A fused single pass filling all k
        // buffers at once measured *slower* at 500k rows under the worker
        // pool — too many concurrent write streams — so the per-column
        // walk is the kernel of record; the grouped win lives in the
        // shared ridge solve above and the fused [`pearson`] the
        // correlations run on afterwards.)
        for (j, (&c, col)) in need.iter().zip(&cols).enumerate() {
            let res: Vec<f64> = (0..n).map(|i| col[i] - fitted[(i, j)]).collect();
            self.residuals.insert((c, zkey.to_vec()), Arc::new(res));
        }
    }

    /// Partial correlation of two scalar columns given `z` columns.
    pub fn partial_correlation(&self, x: VarId, y: VarId, z: &[VarId]) -> f64 {
        let zkey = Self::canonical_z(z);
        if zkey.is_empty() {
            return pearson(&self.enc.numeric_col(x), &self.enc.numeric_col(y));
        }
        let rx = self.residual(x, &zkey);
        let ry = self.residual(y, &zkey);
        pearson(&rx, &ry)
    }

    /// Scalar test returning `(statistic, p_value)`.
    pub fn test_pair(&self, x: VarId, y: VarId, z: &[VarId]) -> (f64, f64) {
        let n = self.table().n_rows() as f64;
        let dof = n - Self::canonical_z(z).len() as f64 - 3.0;
        if dof <= 0.0 {
            return (0.0, 1.0);
        }
        let r = self.partial_correlation(x, y, z);
        let stat = dof.sqrt() * fisher_z(r);
        (stat, normal_two_sided_p(stat))
    }
}

impl CiTest for FisherZ {
    fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        crate::CiTestShared::ci_shared(self, x, y, z)
    }

    fn n_vars(&self) -> usize {
        self.table().n_cols()
    }

    fn name(&self) -> &'static str {
        "fisher-z"
    }
}

impl crate::CiTestShared for FisherZ {
    fn ci_shared(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        if x.is_empty() || y.is_empty() {
            return CiOutcome::decided(true);
        }
        // Canonicalize the sides so every spelling of a query scans the
        // (xᵢ, yⱼ) pairs in one order — min-p ties then resolve to the
        // same statistic, keeping outcomes byte-identical across
        // spellings (the engine's cache quotient).
        let (x, y) = crate::canonical_sides(x, y);
        let (x, y) = (x.as_slice(), y.as_slice());
        let pairs = (x.len() * y.len()) as f64;
        let level = self.alpha / pairs;
        let mut min_p = 1.0f64;
        let mut max_stat = 0.0f64;
        for &xi in x {
            for &yj in y {
                let (stat, p) = self.test_pair(xi, yj, z);
                if p < min_p {
                    min_p = p;
                    max_stat = stat;
                }
            }
        }
        CiOutcome {
            independent: min_p > level,
            p_value: (min_p * pairs).min(1.0), // Bonferroni-adjusted
            statistic: max_stat,
        }
    }
}

impl crate::CiTestBatch for FisherZ {
    /// Z-grouped evaluation: prefill the design/residual caches with one
    /// blocked ridge solve for the whole group, then answer each query
    /// through the ordinary per-query path (which now only reads caches).
    /// Outcomes are trivially byte-identical — it *is* the per-query path,
    /// fed bit-identical residuals (see [`FisherZ::prefill_residuals`]).
    fn eval_z_group(&self, z: &[VarId], queries: &[crate::CiQueryRef<'_>]) -> Vec<CiOutcome> {
        let zkey = Self::canonical_z(z);
        if !zkey.is_empty() && self.enc.caching() {
            self.prefill_residuals(&zkey, queries);
        }
        queries
            .iter()
            .map(|q| crate::CiTestShared::ci_shared(self, q.x, q.y, q.z))
            .collect()
    }

    fn encode_cache_stats(&self) -> crate::EncodeStats {
        self.enc
            .stats()
            .merged(self.designs.stats())
            .merged(self.residuals.stats())
    }

    fn extend_over(
        &self,
        child: Arc<EncodedTable>,
    ) -> Option<Box<dyn crate::CiTestBatch + Send + Sync>> {
        Some(Box::new(FisherZ::extended_from(self, child)))
    }

    fn scaffold_stats(&self) -> crate::ScaffoldStats {
        // Two scaffold caches share one ledger: designs (extendable) and
        // residuals (always rebuilt — the solution changes with n).
        crate::ScaffoldStats {
            extended: self.extended_scaffolds,
            rebuilt: self
                .designs
                .inserted()
                .saturating_sub(self.extended_scaffolds)
                + self.residuals.inserted(),
            resident: (self.designs.len() + self.residuals.len()) as u64,
            evictions: self.designs.evictions() + self.residuals.evictions(),
            // Moment sums reassociate floats under append, so this tester
            // never retains patchable sufficient statistics.
            ..crate::ScaffoldStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_graph::DagBuilder;
    use fairsel_math::assert_close;
    use fairsel_scm::GaussianScmBuilder;
    use fairsel_table::{Column, Role};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Sample z -> x, z -> y (confounder) as a table.
    fn fork_table(n: usize, seed: u64) -> Table {
        let g = DagBuilder::new()
            .nodes(["z", "x", "y"])
            .edge("z", "x")
            .edge("z", "y")
            .build();
        let z = g.expect_node("z");
        let x = g.expect_node("x");
        let y = g.expect_node("y");
        let scm = GaussianScmBuilder::new(g)
            .weight(z, x, 1.2)
            .weight(z, y, -0.9)
            .build();
        let mut rng = StdRng::seed_from_u64(seed);
        let cols = scm.sample(&mut rng, n);
        Table::new(vec![
            Column::num("z", Role::Feature, cols[z.index()].clone()),
            Column::num("x", Role::Feature, cols[x.index()].clone()),
            Column::num("y", Role::Feature, cols[y.index()].clone()),
        ])
        .unwrap()
    }

    #[test]
    fn confounder_induces_marginal_dependence() {
        let t = fork_table(2000, 1);
        let mut f = FisherZ::new(&t, 0.01);
        assert!(!f.ci(&[1], &[2], &[]).independent);
    }

    #[test]
    fn conditioning_on_confounder_restores_independence() {
        let t = fork_table(2000, 2);
        let mut f = FisherZ::new(&t, 0.01);
        let out = f.ci(&[1], &[2], &[0]);
        assert!(out.independent, "x ⊥ y | z should hold, p={}", out.p_value);
    }

    #[test]
    fn partial_correlation_matches_theory() {
        let t = fork_table(60_000, 3);
        let f = FisherZ::new(&t, 0.01);
        // corr(x,y) = (1.2·-0.9) / (sqrt(1+1.44)·sqrt(1+0.81)) ≈ -0.516
        let r = f.partial_correlation(1, 2, &[]);
        assert_close!(r, -1.08 / (2.44f64.sqrt() * 1.81f64.sqrt()), 0.02);
        let rp = f.partial_correlation(1, 2, &[0]);
        assert_close!(rp, 0.0, 0.02);
    }

    #[test]
    fn multivariate_sides_bonferroni() {
        let t = fork_table(2000, 4);
        let mut f = FisherZ::new(&t, 0.01);
        // Group {x, y} vs z: dependent (both members depend on z).
        assert!(!f.ci(&[1, 2], &[0], &[]).independent);
    }

    #[test]
    fn tiny_sample_degrades_to_independent() {
        let t = fork_table(4, 5);
        let mut f = FisherZ::new(&t, 0.01);
        // dof <= 0 with |z|=1 and n=4: must not reject.
        assert!(f.ci(&[1], &[2], &[0]).independent);
    }

    /// An extended tester carries designs forward, rebuilds residuals, and
    /// answers bit-for-bit what a cold tester on the concatenated table
    /// answers; the scaffold ledger stays conserved.
    #[test]
    fn extended_tester_matches_cold_and_conserves_scaffolds() {
        use crate::{CiTestBatch, CiTestShared};
        let parent_t = fork_table(900, 11);
        let batch = fork_table(300, 12);
        let parent = FisherZ::new(&parent_t, 0.01);
        parent.ci_shared(&[1], &[2], &[0]); // warms design [0] + two residuals
        let child_enc = Arc::new(parent.encoded().extend(&batch).unwrap());
        let ext = FisherZ::extended_from(&parent, child_enc);
        let birth = ext.scaffold_stats();
        assert_eq!(birth.extended, 1, "one design matrix carried over");
        assert_eq!(birth.rebuilt, 0, "residuals must not carry over");
        assert!(birth.conserved(), "{birth:?}");

        let concat = parent_t.concat(&batch).unwrap();
        let cold = FisherZ::new(&concat, 0.01);
        for (x, y, z) in [
            (vec![1], vec![2], vec![0]),
            (vec![1], vec![2], vec![]),
            (vec![0], vec![1, 2], vec![]),
            (vec![2], vec![0], vec![1]), // fresh conditioning set
        ] {
            let a = ext.ci_shared(&x, &y, &z);
            let b = cold.ci_shared(&x, &y, &z);
            assert_eq!(
                a.p_value.to_bits(),
                b.p_value.to_bits(),
                "{x:?} {y:?} {z:?}"
            );
            assert_eq!(
                a.statistic.to_bits(),
                b.statistic.to_bits(),
                "{x:?} {y:?} {z:?}"
            );
        }
        let s = ext.scaffold_stats();
        assert_eq!(s.extended, 1);
        // Rebuilt: design [1] plus residuals (1,[0]), (2,[0]), (2,[1]), (0,[1]).
        assert_eq!(s.rebuilt, 5);
        assert!(s.conserved(), "{s:?}");
    }

    #[test]
    fn null_calibration() {
        // Independent Gaussians: rejection rate at alpha=0.05 ≈ 5%.
        use fairsel_math::dist::sample_std_normal;
        let mut rejections = 0;
        let trials = 300;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(9000 + seed);
            let n = 200;
            let a: Vec<f64> = (0..n).map(|_| sample_std_normal(&mut rng)).collect();
            let b: Vec<f64> = (0..n).map(|_| sample_std_normal(&mut rng)).collect();
            let t = Table::new(vec![
                Column::num("a", Role::Feature, a),
                Column::num("b", Role::Feature, b),
            ])
            .unwrap();
            let mut f = FisherZ::new(&t, 0.05);
            if !f.ci(&[0], &[1], &[]).independent {
                rejections += 1;
            }
        }
        let rate = rejections as f64 / trials as f64;
        assert!((0.01..=0.10).contains(&rate), "null rejection rate {rate}");
    }
}
