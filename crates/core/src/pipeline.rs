//! The end-to-end loop behind Figures 2–3 and Table 2: causal feature
//! selection → featurization → classifier → fairness report.
//!
//! All CI queries route through one engine [`CiSession`], whose telemetry
//! (tests issued, cache hits, dedup rate, per-phase wall time) is returned
//! in [`PipelineResult::engine`] — the numbers the paper reports alongside
//! accuracy and odds difference.

use crate::grpsel::{grpsel_batched_in, grpsel_in, grpsel_par_in};
use crate::problem::{Problem, SelectConfig, Selection};
use crate::seqsel::seqsel_in;
use fairsel_ci::{CiTest, CiTestBatch, CiTestShared};
use fairsel_engine::{CiSession, EngineStats};
use fairsel_ml::{
    AdaBoost, Classifier, DecisionTree, FairnessReport, Featurizer, LogisticRegression, NaiveBayes,
    RandomForest,
};
use fairsel_table::{ColId, Table};

/// Which selection algorithm the pipeline runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionAlgo {
    /// Algorithm 1 — one CI chain per feature.
    SeqSel,
    /// Algorithms 2–4 — group testing with recursive halving; `seed`
    /// shuffles the initial partition (None = table column order).
    GrpSel { seed: Option<u64> },
}

/// Classifier trained on the selected features (§5.1 "Model Selection").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassifierKind {
    Logistic,
    DecisionTree,
    RandomForest,
    AdaBoost,
    /// Table-native naive Bayes (no featurization step).
    NaiveBayes,
}

impl ClassifierKind {
    /// Parse a CLI-style name.
    pub fn parse(s: &str) -> Option<ClassifierKind> {
        match s {
            "logistic" => Some(Self::Logistic),
            "tree" => Some(Self::DecisionTree),
            "forest" => Some(Self::RandomForest),
            "adaboost" => Some(Self::AdaBoost),
            "nb" | "naive-bayes" => Some(Self::NaiveBayes),
            _ => None,
        }
    }
}

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    pub select: SelectConfig,
    pub algo: SelectionAlgo,
    pub classifier: ClassifierKind,
    /// Worker threads for engine batches (`<= 1` = sequential). Only the
    /// shared-tester entry point [`run_pipeline_par`] can exploit more.
    pub workers: usize,
    /// Seed for stochastic models (random forest).
    pub model_seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            select: SelectConfig::default(),
            algo: SelectionAlgo::SeqSel,
            classifier: ClassifierKind::Logistic,
            workers: 1,
            model_seed: 0,
        }
    }
}

/// Everything one pipeline run produces.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// The selection partition (C₁ / C₂ / rejected) over train columns.
    pub selection: Selection,
    /// Columns the model trained on: admissible ∪ selected, ascending.
    pub model_cols: Vec<ColId>,
    /// Test-split fairness and accuracy metrics.
    pub report: FairnessReport,
    /// Engine telemetry for the whole run.
    pub engine: EngineStats,
}

/// Run the full pipeline with any CI tester (commonly `&mut GTest`,
/// `&mut OracleCi`, ...). Sequential engine batches.
pub fn run_pipeline<T: CiTest>(
    tester: T,
    train: &Table,
    test: &Table,
    cfg: &PipelineConfig,
) -> PipelineResult {
    let problem = Problem::from_table(train);
    let mut session = CiSession::new(tester);
    let selection = match cfg.algo {
        SelectionAlgo::SeqSel => seqsel_in(&mut session, &problem, &cfg.select),
        SelectionAlgo::GrpSel { seed } => grpsel_in(&mut session, &problem, &cfg.select, seed),
    };
    let engine = session.stats().clone();
    train_and_score(train, test, &problem, selection, engine, cfg)
}

/// Like [`run_pipeline`] but fanning engine batches across
/// `cfg.workers` threads; requires a shared-capable tester.
pub fn run_pipeline_par<T: CiTestShared>(
    tester: T,
    train: &Table,
    test: &Table,
    cfg: &PipelineConfig,
) -> PipelineResult {
    let problem = Problem::from_table(train);
    let mut session = CiSession::new(tester);
    let selection = match cfg.algo {
        SelectionAlgo::SeqSel => seqsel_in(&mut session, &problem, &cfg.select),
        SelectionAlgo::GrpSel { seed } => grpsel_par_in(
            &mut session,
            &problem,
            &cfg.select,
            seed,
            cfg.workers.max(1),
        ),
    };
    let engine = session.stats().clone();
    train_and_score(train, test, &problem, selection, engine, cfg)
}

/// Like [`run_pipeline_par`] for batch-aware testers (`GTest`,
/// `PermutationCmi`, `FisherZ`): GrpSel frontiers route through
/// [`fairsel_ci::CiTestBatch::eval_batch`], so the whole selection shares
/// one columnar encoding pass per variable set and the engine telemetry
/// reports `encode_cache_*` counters. Selections are byte-identical to
/// the per-query pipelines.
pub fn run_pipeline_batched<T: CiTestBatch>(
    tester: T,
    train: &Table,
    test: &Table,
    cfg: &PipelineConfig,
) -> PipelineResult {
    let mut session = CiSession::new(tester);
    run_pipeline_batched_in(&mut session, train, test, cfg)
}

/// Like [`run_pipeline_batched`] but running inside an *existing* session:
/// memoized CI outcomes (and the tester's encoding caches) survive across
/// calls, so a repeated request costs hash lookups instead of tests. This
/// is the entry point the long-lived `fairsel-server` session registry
/// drives — one session per (dataset fingerprint, tester config), shared
/// by every request that maps to it. The returned telemetry is the
/// session's *cumulative* stats.
pub fn run_pipeline_batched_in<T: CiTestBatch>(
    session: &mut CiSession<T>,
    train: &Table,
    test: &Table,
    cfg: &PipelineConfig,
) -> PipelineResult {
    let problem = Problem::from_table(train);
    let selection = match cfg.algo {
        SelectionAlgo::SeqSel => seqsel_in(session, &problem, &cfg.select),
        SelectionAlgo::GrpSel { seed } => {
            grpsel_batched_in(session, &problem, &cfg.select, seed, cfg.workers.max(1))
        }
    };
    // SeqSel routes per-query, which doesn't sync the tester's
    // encode-cache counters; refresh so the telemetry is honest either way.
    session.refresh_encode_stats();
    let engine = session.stats().clone();
    train_and_score(train, test, &problem, selection, engine, cfg)
}

/// Render the *deterministic* part of a pipeline run — the selection
/// partition and the fairness report — exactly as `fairsel select` prints
/// it. Shared by the CLI and the session service so a remote request's
/// body is byte-identical to a local run (engine telemetry, which carries
/// wall times, is deliberately excluded).
pub fn render_pipeline_report(
    out: &PipelineResult,
    train: &Table,
    cfg: &PipelineConfig,
    test_rows: usize,
) -> String {
    use std::fmt::Write as _;
    let names =
        |ids: &[ColId]| -> Vec<String> { ids.iter().map(|&c| train.col(c).name.clone()).collect() };
    let mut s = String::new();
    writeln!(s, "== selection ({:?}) ==", cfg.algo).unwrap();
    writeln!(
        s,
        "c1 (no new sensitive info): {:?}",
        names(&out.selection.c1)
    )
    .unwrap();
    writeln!(
        s,
        "c2 (screened from target):  {:?}",
        names(&out.selection.c2)
    )
    .unwrap();
    writeln!(
        s,
        "rejected:                   {:?}",
        names(&out.selection.rejected)
    )
    .unwrap();
    writeln!(
        s,
        "model columns:              {:?}",
        names(&out.model_cols)
    )
    .unwrap();
    writeln!(s).unwrap();
    writeln!(
        s,
        "== fairness report ({:?}, test split n={test_rows}) ==",
        cfg.classifier
    )
    .unwrap();
    let r = &out.report;
    writeln!(s, "accuracy                    {:.4}", r.accuracy).unwrap();
    writeln!(
        s,
        "abs odds difference         {:.4}",
        r.abs_odds_difference
    )
    .unwrap();
    writeln!(
        s,
        "statistical parity diff     {:.4}",
        r.statistical_parity_difference
    )
    .unwrap();
    writeln!(s, "disparate impact            {:.4}", r.disparate_impact).unwrap();
    writeln!(
        s,
        "equal opportunity diff      {:.4}",
        r.equal_opportunity_difference
    )
    .unwrap();
    writeln!(s, "CMI(S; Yhat | A)            {:.6}", r.cmi_s_pred_given_a).unwrap();
    s
}

/// Train the configured classifier on `A ∪ C₁ ∪ C₂` and score the test
/// split. Shared by the pipeline entry points and the baselines module.
pub(crate) fn train_and_score(
    train: &Table,
    test: &Table,
    problem: &Problem,
    selection: Selection,
    engine: EngineStats,
    cfg: &PipelineConfig,
) -> PipelineResult {
    let model_cols = model_columns(problem, &selection.selected());
    let report = score_columns(train, test, problem, &model_cols, cfg);
    PipelineResult {
        selection,
        model_cols,
        report,
        engine,
    }
}

/// The columns a model trains on: admissible ∪ selected, ascending and
/// deduplicated. The single definition shared by the pipeline and every
/// baseline method.
pub(crate) fn model_columns(problem: &Problem, selected: &[ColId]) -> Vec<ColId> {
    let mut model_cols: Vec<ColId> = problem.admissible.clone();
    model_cols.extend(selected);
    model_cols.sort_unstable();
    model_cols.dedup();
    model_cols
}

/// Featurize → fit → predict → fairness metrics for an explicit column
/// set (also used directly by the ALL / A-only baselines).
pub(crate) fn score_columns(
    train: &Table,
    test: &Table,
    problem: &Problem,
    model_cols: &[ColId],
    cfg: &PipelineConfig,
) -> FairnessReport {
    let y_train = target_codes(train, problem.target);
    let y_test = target_codes(test, problem.target);
    let y_pred = if cfg.classifier == ClassifierKind::NaiveBayes {
        let mut nb = NaiveBayes::new(model_cols.to_vec());
        nb.fit_table(train, &y_train);
        nb.predict_table(test)
    } else if model_cols.is_empty() {
        // No usable features: predict the training majority class.
        let ones = y_train.iter().filter(|&&v| v == 1).count() * 2;
        vec![u32::from(ones > y_train.len()); test.n_rows()]
    } else {
        let featurizer = Featurizer::fit(train, model_cols);
        let x_train = featurizer.transform(train);
        let x_test = featurizer.transform(test);
        let mut model: Box<dyn Classifier> = match cfg.classifier {
            ClassifierKind::Logistic => Box::new(LogisticRegression::default_model()),
            ClassifierKind::DecisionTree => Box::new(DecisionTree::new(Default::default())),
            ClassifierKind::RandomForest => Box::new(RandomForest::default_model(cfg.model_seed)),
            ClassifierKind::AdaBoost => Box::new(AdaBoost::default_model()),
            ClassifierKind::NaiveBayes => unreachable!("handled above"),
        };
        model.fit(&x_train, &y_train, None);
        model.predict(&x_test)
    };
    let (s_codes, _) = test.joint_codes(&problem.sensitive);
    let (a_codes, _) = test.joint_codes(&problem.admissible);
    FairnessReport::compute(&y_test, &y_pred, &s_codes, &a_codes)
}

fn target_codes(table: &Table, target: ColId) -> Vec<u32> {
    table
        .col(target)
        .codes()
        .expect("pipeline: target column must be categorical")
        .to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_ci::{GTest, OracleCi};
    use fairsel_datasets::fixtures::figure_1a;
    use fairsel_datasets::sim::sample_table;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn figure_1a_splits(n: usize, seed: u64) -> (fairsel_graph::Dag, Table, Table) {
        let f = figure_1a();
        let scm = f.scm(1.5);
        let mut rng = StdRng::seed_from_u64(seed);
        let train = sample_table(&scm, &f.roles, n, &mut rng);
        let test = sample_table(&scm, &f.roles, n / 2, &mut rng);
        (f.dag, train, test)
    }

    #[test]
    fn oracle_pipeline_selects_and_scores() {
        let (dag, train, test) = figure_1a_splits(3000, 5);
        let cfg = PipelineConfig::default();
        let out = run_pipeline(&mut OracleCi::from_dag(dag), &train, &test, &cfg);
        // X2 (the biased feature) must not be among the model columns.
        let x2 = train.col_id("X2").unwrap();
        assert!(
            !out.model_cols.contains(&x2),
            "biased X2 leaked into the model"
        );
        // The admissible column is always present.
        let a1 = train.col_id("A1").unwrap();
        assert!(out.model_cols.contains(&a1));
        assert!(out.report.accuracy > 0.5, "model should beat chance");
        assert!(out.engine.issued > 0);
        assert_eq!(out.engine.issued, out.selection.tests_used);
    }

    #[test]
    fn data_pipeline_runs_with_gtest() {
        let (_, train, test) = figure_1a_splits(4000, 9);
        let cfg = PipelineConfig {
            algo: SelectionAlgo::GrpSel { seed: Some(1) },
            ..Default::default()
        };
        let out = run_pipeline(&mut GTest::new(&train, 0.01), &train, &test, &cfg);
        assert!(out.report.accuracy > 0.5);
        assert!(!out.model_cols.is_empty());
    }

    #[test]
    fn parallel_pipeline_matches_sequential() {
        let (_, train, test) = figure_1a_splits(3000, 11);
        let base = PipelineConfig {
            algo: SelectionAlgo::GrpSel { seed: Some(3) },
            ..Default::default()
        };
        let seq = run_pipeline(&mut GTest::new(&train, 0.01), &train, &test, &base);
        let par_cfg = PipelineConfig { workers: 4, ..base };
        let par = run_pipeline_par(GTest::new(&train, 0.01), &train, &test, &par_cfg);
        assert_eq!(seq.model_cols, par.model_cols);
        assert_eq!(seq.report.accuracy, par.report.accuracy);
        assert_eq!(
            seq.report.abs_odds_difference,
            par.report.abs_odds_difference
        );
        // CMI sums over HashMap iteration order, so it is only
        // reproducible up to float associativity.
        assert!((seq.report.cmi_s_pred_given_a - par.report.cmi_s_pred_given_a).abs() < 1e-9);
        assert_eq!(seq.engine.issued, par.engine.issued);
    }

    #[test]
    fn classifier_kinds_all_run() {
        let (_, train, test) = figure_1a_splits(800, 13);
        for kind in [
            ClassifierKind::Logistic,
            ClassifierKind::DecisionTree,
            ClassifierKind::RandomForest,
            ClassifierKind::AdaBoost,
            ClassifierKind::NaiveBayes,
        ] {
            let cfg = PipelineConfig {
                classifier: kind,
                ..Default::default()
            };
            let out = run_pipeline(&mut GTest::new(&train, 0.01), &train, &test, &cfg);
            assert!(
                out.report.accuracy > 0.4,
                "{kind:?} collapsed: {}",
                out.report.accuracy
            );
        }
    }

    #[test]
    fn classifier_kind_parsing() {
        assert_eq!(
            ClassifierKind::parse("logistic"),
            Some(ClassifierKind::Logistic)
        );
        assert_eq!(
            ClassifierKind::parse("forest"),
            Some(ClassifierKind::RandomForest)
        );
        assert_eq!(ClassifierKind::parse("nope"), None);
    }
}
