//! **Causal feature selection for algorithmic fairness** — a from-scratch
//! reproduction of Galhotra, Shanmugam, Sattigeri & Varshney (SIGMOD 2022).
//!
//! The setting: a training dataset `D = {S, A, Y}` (sensitive attributes,
//! admissible attributes, target) is about to be augmented — via data
//! integration — with candidate features `X₁..Xₙ`. Which of them can be
//! added *without making the dataset less causally fair* (Definition 1,
//! interventional fairness)? The paper answers with two algorithms that
//! need only conditional-independence tests, never the causal graph:
//!
//! * [`seqsel`] — Algorithm 1. Phase one admits every feature `X` with
//!   `X ⊥ S | A'` for some `A' ⊆ A` (the feature carries no *new* sensitive
//!   information); phase two admits every remaining feature with
//!   `X ⊥ Y | A ∪ C₁` (it carries sensitive information but the Bayes
//!   predictor cannot use it). `O(2^|A| · n)` tests.
//! * [`grpsel`] — Algorithms 2–4. The same two phases run on *groups* of
//!   features, recursively halving only on dependence. The graphoid
//!   decomposition/composition axioms (Lemmas 7–8) make group answers
//!   sound, giving `O(2^|A| · k log n)` tests for `k` unsafe features —
//!   and, empirically, far fewer spurious results (§5.3).
//!
//! Both selectors route every query through the execution engine
//! ([`fairsel_engine::CiSession`]): canonicalized keys, a memo cache, and
//! — for GrpSel — level-synchronous frontier batches a worker pool can
//! evaluate in parallel ([`grpsel::grpsel_par`]).
//!
//! Supporting modules:
//! * [`oracle`] — the Theorem 1 ground-truth classification computed from
//!   a known causal DAG (used to validate the algorithms and to score the
//!   synthetic-recovery experiments);
//! * [`baselines`] — comparison pipelines of §5: the A / ALL endpoints,
//!   SeqSel, GrpSel, and the Fair-PC causal-discovery baseline;
//! * [`pipeline`] — feature selection → featurization → classifier →
//!   fairness report, the loop behind Figures 2-3 and Table 2, with
//!   engine telemetry attached to every run.

pub mod baselines;
pub mod grpsel;
pub mod oracle;
pub mod pipeline;
pub mod problem;
pub mod seqsel;

pub use baselines::{
    render_methods_report, run_all_methods, run_all_methods_in, run_method, Method, MethodOutput,
    TesterSpec,
};
pub use grpsel::{
    grpsel, grpsel_batched, grpsel_batched_in, grpsel_in, grpsel_par, grpsel_par_in, grpsel_seeded,
    grpsel_ungrouped_in,
};
pub use oracle::{theorem1_classification, GroundTruth};
pub use pipeline::{
    render_pipeline_report, run_pipeline, run_pipeline_batched, run_pipeline_batched_in,
    run_pipeline_par, ClassifierKind, PipelineConfig, PipelineResult, SelectionAlgo,
};
pub use problem::{Problem, SelectConfig, Selection};
pub use seqsel::{seqsel, seqsel_in};
