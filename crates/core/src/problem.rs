//! The selection problem (Problem 1 of the paper) and shared plumbing:
//! variable roles, the ∃A′⊆A subset enumeration, and the [`Selection`]
//! result type.

use fairsel_ci::VarId;
use fairsel_table::{Role, Table};

/// An instance of Problem 1: partition of the variables into sensitive
/// `S`, admissible `A`, candidate features `X`, and the target `Y`.
///
/// Variable ids are opaque indices whose meaning is fixed by the CI tester
/// in use (table columns for data-driven testers, graph nodes for the
/// d-separation oracle).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Problem {
    pub sensitive: Vec<VarId>,
    pub admissible: Vec<VarId>,
    pub features: Vec<VarId>,
    pub target: VarId,
}

impl Problem {
    /// Build from a table's column roles (`Key` columns are ignored).
    ///
    /// # Panics
    /// Panics when the table has no sensitive column or not exactly one
    /// target column.
    pub fn from_table(table: &Table) -> Problem {
        let p = Problem {
            sensitive: table.sensitive_cols(),
            admissible: table.admissible_cols(),
            features: table.feature_cols(),
            target: table.target_col(),
        };
        assert!(!p.sensitive.is_empty(), "Problem: no sensitive columns");
        p
    }

    /// Build from a role slice indexed by variable id (for graph-backed
    /// problems where node `i` is variable `i`).
    pub fn from_roles(roles: &[Role]) -> Problem {
        let mut sensitive = Vec::new();
        let mut admissible = Vec::new();
        let mut features = Vec::new();
        let mut target = None;
        for (i, r) in roles.iter().enumerate() {
            match r {
                Role::Sensitive => sensitive.push(i),
                Role::Admissible => admissible.push(i),
                Role::Feature => features.push(i),
                Role::Target => {
                    assert!(target.is_none(), "Problem: multiple targets");
                    target = Some(i);
                }
                Role::Key => {}
            }
        }
        Problem {
            sensitive,
            admissible,
            features,
            target: target.expect("Problem: no target"),
        }
    }

    /// Total number of candidate features `n`.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }
}

/// Tuning knobs shared by SeqSel and GrpSel.
#[derive(Clone, Debug)]
pub struct SelectConfig {
    /// Maximum size of admissible subsets enumerated for the `∃A′ ⊆ A`
    /// condition. `usize::MAX` means all `2^|A|` subsets; smaller values
    /// trade completeness for test count (the paper notes |A| is a small
    /// constant in practice).
    pub max_admissible_subset: usize,
    /// Hard cap on `|A|` for full enumeration; above this only subsets up
    /// to `max_admissible_subset` are tried. Guards against accidental
    /// exponential blowup.
    pub admissible_guard: usize,
    /// Maximum width of GrpSel's *root* groups. `None` starts from the
    /// single all-features root (the paper's Algorithm 2). On finite
    /// samples a very wide discrete group is statistically vacuous — the
    /// joint side approaches one category per row, every stratum loses its
    /// degrees of freedom, and the G-test cannot reject, so the root
    /// "passes" and under-rejection follows. Pre-splitting into groups of
    /// width ≲ log₂(rows) ([`SelectConfig::auto_max_group`]) keeps each
    /// group's joint code space below the sample size. Oracle testers
    /// don't need this (group answers are exact at any width).
    pub max_group: Option<usize>,
    /// Speculative frontier scheduling for GrpSel's batched execution
    /// path: alongside each frontier level's demanded queries, issue the
    /// *predictable* follow-up work — the remaining `∃A′ ⊆ A` waves of the
    /// current groups and every non-singleton group's halves — in the same
    /// dispatch, so idle workers pre-warm the session cache. Selections
    /// are byte-identical with speculation on or off (speculative answers
    /// are the same deterministic outcomes, computed earlier); the cost
    /// and benefit are measured by the engine's `speculative_issued` /
    /// `speculative_hits` / `speculative_wasted` counters. Ignored by
    /// SeqSel and by the non-batched execution paths.
    pub speculate: bool,
    /// Adaptive gate on top of [`SelectConfig::speculate`]: skip a
    /// level's speculative wave when the session's observed waste rate
    /// (`speculative_wasted / speculative_issued`) says prediction isn't
    /// paying for itself, or when there are no idle workers to absorb
    /// the ride-along (`workers <= 1`). Selections stay byte-identical —
    /// the gate only changes *when* predictable work is computed, never
    /// what is answered — and the conservation law
    /// `issued + speculative_hits == issued_without_speculation` holds
    /// regardless. Off by default so ungated runs keep exercising the
    /// speculation ledger.
    pub adaptive_speculation: bool,
}

impl Default for SelectConfig {
    fn default() -> Self {
        Self {
            max_admissible_subset: usize::MAX,
            admissible_guard: 12,
            max_group: None,
            speculate: false,
            adaptive_speculation: false,
        }
    }
}

impl SelectConfig {
    /// The data-driven default for [`SelectConfig::max_group`]:
    /// `⌊log₂ rows⌋`, so a group of binary features has at most `rows`
    /// joint categories — the widest a G-test stratum can be before it
    /// degenerates.
    pub fn auto_max_group(rows: usize) -> usize {
        (usize::BITS - 1)
            .saturating_sub(rows.leading_zeros())
            .max(1) as usize
    }

    /// Enumerate the admissible subsets to try, in increasing size
    /// (∅ first, full set last). Size is capped by the config.
    pub fn admissible_subsets(&self, admissible: &[VarId]) -> Vec<Vec<VarId>> {
        let k = admissible.len();
        assert!(
            k <= self.admissible_guard,
            "admissible set of size {k} exceeds the enumeration guard ({}); \
             raise SelectConfig::admissible_guard explicitly if intended",
            self.admissible_guard
        );
        let max_size = self.max_admissible_subset.min(k);
        let mut subsets: Vec<Vec<VarId>> = Vec::new();
        for mask in 0u64..(1u64 << k) {
            if (mask.count_ones() as usize) <= max_size {
                let subset: Vec<VarId> = (0..k)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| admissible[i])
                    .collect();
                subsets.push(subset);
            }
        }
        subsets.sort_by_key(Vec::len);
        subsets
    }
}

/// Output of a selection run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Selection {
    /// Features admitted in phase 1 (`X ⊥ S | A'` for some `A' ⊆ A`).
    pub c1: Vec<VarId>,
    /// Features admitted in phase 2 (`X ⊥ Y | A ∪ C₁`).
    pub c2: Vec<VarId>,
    /// Features rejected as potentially bias-inducing.
    pub rejected: Vec<VarId>,
    /// Number of CI tests issued.
    pub tests_used: u64,
}

impl Selection {
    /// All admitted features (`C₁ ∪ C₂`), sorted.
    pub fn selected(&self) -> Vec<VarId> {
        let mut out: Vec<VarId> = self.c1.iter().chain(&self.c2).copied().collect();
        out.sort_unstable();
        out
    }

    /// Normalize internal ordering (the algorithms may emit in recursion
    /// order); useful before equality comparisons in tests.
    pub fn normalized(mut self) -> Selection {
        self.c1.sort_unstable();
        self.c2.sort_unstable();
        self.rejected.sort_unstable();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_table::{Column, Table};

    #[test]
    fn from_table_reads_roles() {
        let t = Table::new(vec![
            Column::cat("s", Role::Sensitive, vec![0, 1], 2),
            Column::cat("a", Role::Admissible, vec![0, 1], 2),
            Column::cat("x1", Role::Feature, vec![0, 1], 2),
            Column::cat("x2", Role::Feature, vec![1, 0], 2),
            Column::cat("y", Role::Target, vec![0, 1], 2),
        ])
        .unwrap();
        let p = Problem::from_table(&t);
        assert_eq!(p.sensitive, vec![0]);
        assert_eq!(p.admissible, vec![1]);
        assert_eq!(p.features, vec![2, 3]);
        assert_eq!(p.target, 4);
        assert_eq!(p.n_features(), 2);
    }

    #[test]
    fn from_roles_builds_problem() {
        let roles = [
            Role::Sensitive,
            Role::Admissible,
            Role::Feature,
            Role::Target,
            Role::Feature,
        ];
        let p = Problem::from_roles(&roles);
        assert_eq!(p.features, vec![2, 4]);
        assert_eq!(p.target, 3);
    }

    #[test]
    #[should_panic(expected = "no target")]
    fn missing_target_panics() {
        Problem::from_roles(&[Role::Sensitive, Role::Feature]);
    }

    #[test]
    fn subset_enumeration_increasing_size() {
        let cfg = SelectConfig::default();
        let subsets = cfg.admissible_subsets(&[10, 20]);
        assert_eq!(subsets.len(), 4);
        assert_eq!(subsets[0], Vec::<usize>::new());
        assert_eq!(subsets[3], vec![10, 20]);
        // sizes non-decreasing
        for w in subsets.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }

    #[test]
    fn subset_cap_respected() {
        let cfg = SelectConfig {
            max_admissible_subset: 1,
            ..Default::default()
        };
        let subsets = cfg.admissible_subsets(&[1, 2, 3]);
        // ∅ + three singletons
        assert_eq!(subsets.len(), 4);
        assert!(subsets.iter().all(|s| s.len() <= 1));
    }

    #[test]
    #[should_panic(expected = "enumeration guard")]
    fn guard_trips_on_large_admissible() {
        let cfg = SelectConfig::default();
        let many: Vec<usize> = (0..20).collect();
        cfg.admissible_subsets(&many);
    }

    #[test]
    fn selection_selected_sorted_union() {
        let s = Selection {
            c1: vec![5, 1],
            c2: vec![3],
            rejected: vec![],
            tests_used: 0,
        };
        assert_eq!(s.selected(), vec![1, 3, 5]);
    }
}
