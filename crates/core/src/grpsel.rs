//! GrpSel — Algorithms 2–4 of the paper: group testing for causal feature
//! selection.
//!
//! SeqSel issues one CI test chain per feature; when `n` is large the sheer
//! number of tests both costs time and — with finite-sample testers —
//! manufactures spurious dependence (§5.3). GrpSel instead tests whole
//! *groups* of features at once and recurses by halving only on failure,
//! which is sound by the graphoid axioms:
//!
//! * **Composition** (Lemma 1.2): if every member of `X` satisfies
//!   `Xᵢ ⊥ S | Z` then `X ⊥ S | Z` — so a passing group admits all its
//!   members at once.
//! * **Decomposition** (Lemma 1.1, = Lemmas 7–8): if `X ̸⊥ S | Z` then at
//!   least one member is dependent — so a failing group is worth splitting,
//!   and the recursion terminates at the offending singletons.
//!
//! With `k` unsafe features out of `n`, each phase costs `O(k log n)` group
//! tests (times the `2^|A|` subset factor in phase 1), versus `O(n)` for
//! SeqSel — the crossover measured in Figures 4 and 5.
//!
//! One paper erratum (DESIGN.md substitution 6): Algorithm 4 line 8 passes
//! `C2` as the conditioning set of the recursive call; Lemma 6 requires
//! conditioning on `A ∪ C₁`, which is what we do.

use crate::problem::{Problem, SelectConfig, Selection};
use fairsel_ci::{CiOutcome, CiTest, CiTestBatch, CiTestShared, VarId};
use fairsel_engine::{CiQuery, CiSession, HalvingPlanner};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Run GrpSel (Algorithm 2) with any CI tester. Groups are split at the
/// midpoint of the (caller-provided) feature order; use
/// [`grpsel_seeded`] to randomize the initial order, which is what the
/// paper's `random_partition` amounts to after the first shuffle.
///
/// Execution routes through the engine: each recursion level becomes a
/// *frontier* of independent group queries, issued as engine batches (see
/// [`fairsel_engine::HalvingPlanner`]). The query multiset — and therefore
/// [`Selection::tests_used`] — is identical to the depth-first recursion.
pub fn grpsel<T: CiTest + ?Sized>(
    tester: &mut T,
    problem: &Problem,
    cfg: &SelectConfig,
) -> Selection {
    let mut session = CiSession::new(tester);
    grpsel_in(&mut session, problem, cfg, None)
}

/// GrpSel with the feature order shuffled once under `seed` before the
/// recursive halving, making every split a uniform random partition.
pub fn grpsel_seeded<T: CiTest + ?Sized>(
    tester: &mut T,
    problem: &Problem,
    cfg: &SelectConfig,
    seed: u64,
) -> Selection {
    let mut session = CiSession::new(tester);
    grpsel_in(&mut session, problem, cfg, Some(seed))
}

/// GrpSel whose frontier batches fan out across `workers` threads — the
/// tester must support shared-reference evaluation ([`CiTestShared`]).
/// Results are byte-identical to [`grpsel`] / [`grpsel_seeded`].
pub fn grpsel_par<T: CiTestShared + ?Sized>(
    tester: &mut T,
    problem: &Problem,
    cfg: &SelectConfig,
    seed: Option<u64>,
    workers: usize,
) -> Selection {
    let mut session = CiSession::new(tester);
    grpsel_par_in(&mut session, problem, cfg, seed, workers)
}

/// Sequential GrpSel inside a caller-provided session.
pub fn grpsel_in<T: CiTest>(
    session: &mut CiSession<T>,
    problem: &Problem,
    cfg: &SelectConfig,
    seed: Option<u64>,
) -> Selection {
    run(
        problem,
        cfg,
        seed,
        1,
        &mut |s: &mut CiSession<T>, qs, _spec| s.run_batch(qs),
        session,
    )
}

/// Parallel GrpSel inside a caller-provided session.
pub fn grpsel_par_in<T: CiTestShared>(
    session: &mut CiSession<T>,
    problem: &Problem,
    cfg: &SelectConfig,
    seed: Option<u64>,
    workers: usize,
) -> Selection {
    run(
        problem,
        cfg,
        seed,
        workers,
        &mut |s: &mut CiSession<T>, qs, _spec| s.run_batch_parallel(qs, workers),
        session,
    )
}

/// GrpSel on the engine's **Z-grouped scheduler**: every frontier level's
/// unique queries are partitioned by canonical conditioning set and
/// evaluated through the tester's
/// [`fairsel_ci::CiTestBatch::eval_z_group`], so the per-`Z` scaffold
/// (stratification, design factorization) is built once per distinct set;
/// with `workers > 1` the groups become steal-able chunks on the
/// session's persistent worker pool, and with
/// [`SelectConfig::speculate`] the next level's predictable queries ride
/// along speculatively. Outcomes are byte-identical to [`grpsel`] /
/// [`grpsel_par`] at every worker count and speculation setting; only the
/// execution strategy changes.
pub fn grpsel_batched<T: CiTestBatch + ?Sized>(
    tester: &mut T,
    problem: &Problem,
    cfg: &SelectConfig,
    seed: Option<u64>,
    workers: usize,
) -> Selection {
    let mut session = CiSession::new(tester);
    grpsel_batched_in(&mut session, problem, cfg, seed, workers)
}

/// Z-grouped GrpSel inside a caller-provided session.
pub fn grpsel_batched_in<T: CiTestBatch>(
    session: &mut CiSession<T>,
    problem: &Problem,
    cfg: &SelectConfig,
    seed: Option<u64>,
    workers: usize,
) -> Selection {
    run(
        problem,
        cfg,
        seed,
        workers,
        &mut |s: &mut CiSession<T>, qs, spec| s.run_batch_grouped(qs, spec, workers),
        session,
    )
}

/// The pre-grouping batched scheduler: whole frontiers through
/// [`fairsel_ci::CiTestBatch::eval_batch`] (per-query evaluation over the
/// shared encoding caches, contiguous chunks when parallel), with no
/// conditioning-set partitioning and no speculation. Kept as the
/// benchmark baseline the Z-grouped scheduler is measured against
/// (`grpsel-batched` rows in `BENCH_engine.json`); production callers use
/// [`grpsel_batched_in`].
pub fn grpsel_ungrouped_in<T: CiTestBatch>(
    session: &mut CiSession<T>,
    problem: &Problem,
    cfg: &SelectConfig,
    seed: Option<u64>,
    workers: usize,
) -> Selection {
    run(
        problem,
        cfg,
        seed,
        workers,
        &mut |s: &mut CiSession<T>, qs, _spec| {
            if workers > 1 {
                s.run_batch_batched_parallel(qs, workers)
            } else {
                s.run_batch_batched(qs)
            }
        },
        session,
    )
}

/// How a batch of frontier queries is executed against the session —
/// sequentially, across the worker pool, or Z-grouped. The second slice
/// is speculative ride-along work; executors without speculation support
/// ignore it.
type BatchExec<'a, T> =
    &'a mut dyn FnMut(&mut CiSession<T>, &[CiQuery], &[CiQuery]) -> Vec<CiOutcome>;

/// Per-level cap on speculative queries: enough to keep `workers` busy
/// for several levels' worth of follow-up work, but a hard bound — the
/// phase-1 subset enumeration is `O(2^|A|)` per group, and speculation
/// must stay cheaper than the demanded search it accelerates. The
/// `speculative_wasted` telemetry measures how well the cap fits (see
/// the ROADMAP's policy-tuning item).
fn speculation_budget(workers: usize) -> usize {
    workers.max(1) * 16
}

/// Minimum speculative sample before the adaptive gate trusts the waste
/// rate — below this, keep speculating to gather evidence.
const SPECULATION_MIN_SAMPLE: u64 = 64;

/// Waste-rate threshold for the adaptive gate, as (numerator,
/// denominator): skip the wave once more than half of the speculative
/// work issued so far was never consumed.
const SPECULATION_MAX_WASTE: (u64, u64) = (1, 2);

/// The adaptive speculation gate ([`SelectConfig::adaptive_speculation`]):
/// should this level's speculative wave ride along?
///
/// * `workers <= 1`: never — there are no idle workers to absorb the
///   ride-along, so speculation can only delay the demanded batch.
/// * fewer than [`SPECULATION_MIN_SAMPLE`] speculated so far: yes —
///   the waste rate isn't informative yet.
/// * otherwise: yes iff the observed waste rate
///   (`speculative_wasted / speculative_issued`) is at most
///   [`SPECULATION_MAX_WASTE`].
///
/// Pure over the session's telemetry, so the decision is deterministic
/// for a fixed workload and worker count.
fn speculation_worthwhile(stats: &fairsel_engine::EngineStats, workers: usize) -> bool {
    if workers <= 1 {
        return false;
    }
    if stats.speculative_issued < SPECULATION_MIN_SAMPLE {
        return true;
    }
    let (num, den) = SPECULATION_MAX_WASTE;
    stats.speculative_wasted().saturating_mul(den) <= stats.speculative_issued.saturating_mul(num)
}

fn run<T: CiTest>(
    problem: &Problem,
    cfg: &SelectConfig,
    seed: Option<u64>,
    workers: usize,
    exec: BatchExec<'_, T>,
    session: &mut CiSession<T>,
) -> Selection {
    let issued_before = session.stats().issued;
    let mut features = problem.features.clone();
    if let Some(seed) = seed {
        features.shuffle(&mut StdRng::seed_from_u64(seed));
    }
    let subsets = cfg.admissible_subsets(&problem.admissible);
    let mut out = Selection::default();

    // Phase 1 (Algorithm 3): a frontier of groups seeking some A' ⊆ A
    // with group ⊥ S | A'. Each (frontier level × subset) wave is one
    // engine batch; groups certified at an earlier subset drop out of
    // later waves, mirroring the sequential ∃-search's early exit. With
    // `cfg.speculate`, the predictable follow-up work — this frontier's
    // later waves and the next frontier's halves — rides along with
    // wave 0 so idle workers pre-warm the cache. The candidate list is
    // ordered most-likely-needed first (wave by wave across the current
    // groups, then the halves subset by subset) and truncated to the
    // speculation budget: the subset enumeration is exponential in |A|,
    // and an unbounded policy would re-introduce exactly the blowup the
    // demanded search's early exit avoids.
    session.set_phase("grpsel/phase1");
    let budget = speculation_budget(workers);
    let mut remaining: Vec<VarId> = Vec::new();
    let mut planner = root_planner(&features, cfg);
    while !planner.is_done() {
        let speculate_now = cfg.speculate
            && (!cfg.adaptive_speculation || speculation_worthwhile(session.stats(), workers));
        let spec: Vec<CiQuery> = if speculate_now {
            let frontier = planner.frontier();
            let halves = planner.speculative_halves();
            let later_waves = subsets
                .iter()
                .skip(1)
                .flat_map(|a| frontier.iter().map(move |g| (g, a)));
            let next_level = halves
                .iter()
                .flat_map(|h| subsets.iter().map(move |a| (h, a)));
            later_waves
                .chain(next_level)
                .take(budget)
                .map(|(g, a)| CiQuery::new(g, &problem.sensitive, a))
                .collect()
        } else {
            Vec::new()
        };
        let verdicts = exists_over_frontier(
            session,
            exec,
            planner.frontier(),
            &problem.sensitive,
            &subsets,
            &spec,
        );
        let step = planner.advance(&verdicts);
        for group in step.admitted {
            out.c1.extend(group);
        }
        remaining.extend(step.exhausted);
    }
    // Level-order traversal exhausts singletons in BFS order; the
    // depth-first recursion this mirrors emits them left to right. Phase 2
    // halves over `remaining`, so its composition must match the DFS
    // reference exactly — restore feature order before continuing.
    {
        let exhausted: std::collections::HashSet<VarId> = remaining.iter().copied().collect();
        remaining = features
            .iter()
            .copied()
            .filter(|v| exhausted.contains(v))
            .collect();
    }

    // Phase 2 (Algorithm 4): remaining groups against Y given A ∪ C₁
    // (the Lemma-6 conditioning set; see the erratum note above). The
    // whole phase shares one conditioning set, so speculation here is
    // exactly the next frontier's halves.
    session.set_phase("grpsel/phase2");
    let mut cond: Vec<VarId> = problem.admissible.clone();
    cond.extend(&out.c1);
    let mut planner = root_planner(&remaining, cfg);
    while !planner.is_done() {
        let batch: Vec<CiQuery> = planner
            .frontier()
            .iter()
            .map(|g| CiQuery::new(g, &[problem.target], &cond))
            .collect();
        let speculate_now = cfg.speculate
            && (!cfg.adaptive_speculation || speculation_worthwhile(session.stats(), workers));
        let spec: Vec<CiQuery> = if speculate_now {
            planner
                .speculative_halves()
                .iter()
                .take(budget)
                .map(|h| CiQuery::new(h, &[problem.target], &cond))
                .collect()
        } else {
            Vec::new()
        };
        let outcomes = exec(session, &batch, &spec);
        let verdicts: Vec<bool> = outcomes.iter().map(|o| o.independent).collect();
        let step = planner.advance(&verdicts);
        for group in step.admitted {
            out.c2.extend(group);
        }
        out.rejected.extend(step.exhausted);
    }
    session.clear_phase();
    out.tests_used = session.stats().issued - issued_before;
    out
}

/// Root frontier for a phase: the single full group (Algorithm 2), or —
/// with [`SelectConfig::max_group`] set — contiguous subgroups of at most
/// that width, so finite-sample group tests never see a joint side whose
/// code space dwarfs the sample (the "wide-group power" fix).
fn root_planner(items: &[VarId], cfg: &SelectConfig) -> HalvingPlanner {
    match cfg.max_group {
        Some(w) => HalvingPlanner::from_groups(items.chunks(w.max(1)).map(<[VarId]>::to_vec)),
        None => HalvingPlanner::new(items),
    }
}

/// One frontier's ∃-search: wave `k` batches subset `k` for every group
/// not yet certified, with `spec` riding along on wave 0. Delegates to
/// the engine's wave machinery ([`fairsel_engine::exists_with_spec`]),
/// plugging in this run's batch dispatch (sequential, worker pool, or
/// Z-grouped).
fn exists_over_frontier<T: CiTest>(
    session: &mut CiSession<T>,
    exec: BatchExec<'_, T>,
    groups: &[Vec<VarId>],
    sensitive: &[VarId],
    subsets: &[Vec<VarId>],
    spec: &[CiQuery],
) -> Vec<bool> {
    fairsel_engine::exists_with_spec(groups, sensitive, subsets, spec, |qs, sp| {
        exec(session, qs, sp)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqsel::fixtures::*;
    use crate::seqsel::seqsel;
    use fairsel_ci::{CountingCi, OracleCi};
    use fairsel_datasets::synthetic::{synthetic_instance, SyntheticConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn names(dag: &fairsel_graph::Dag, vars: &[usize]) -> Vec<String> {
        vars.iter()
            .map(|&v| dag.name(fairsel_graph::NodeId(v as u32)).to_owned())
            .collect()
    }

    /// The adaptive gate's decision table: no idle workers → never;
    /// small sample → always; large sample → iff the waste rate is at
    /// most the threshold.
    #[test]
    fn adaptive_gate_decision_table() {
        let stats = |issued: u64, hits: u64| fairsel_engine::EngineStats {
            speculative_issued: issued,
            speculative_hits: hits,
            ..Default::default()
        };
        // workers <= 1: gated off regardless of telemetry.
        assert!(!speculation_worthwhile(&stats(0, 0), 1));
        assert!(!speculation_worthwhile(&stats(100, 100), 0));
        // Below the evidence threshold: speculate to learn.
        assert!(speculation_worthwhile(&stats(0, 0), 4));
        assert!(speculation_worthwhile(
            &stats(SPECULATION_MIN_SAMPLE - 1, 0),
            4
        ));
        // At or past the threshold: the waste rate decides. 100 issued /
        // 50 consumed is exactly the 1/2 bound (allowed); one fewer hit
        // tips it over.
        assert!(speculation_worthwhile(&stats(100, 50), 4));
        assert!(!speculation_worthwhile(&stats(100, 49), 4));
        assert!(speculation_worthwhile(&stats(1000, 1000), 4));
        assert!(!speculation_worthwhile(&stats(1000, 0), 4));
    }

    /// With the adaptive gate on, selections and the speculation
    /// conservation law are unchanged — the gate can only skip waves,
    /// never alter answers.
    #[test]
    fn adaptive_gate_preserves_selections() {
        let mut rng = StdRng::seed_from_u64(17);
        let inst = synthetic_instance(
            &mut rng,
            &SyntheticConfig {
                n_features: 12,
                biased_fraction: 0.3,
                ..Default::default()
            },
        );
        let problem = Problem::from_roles(&inst.roles);
        let base_cfg = SelectConfig {
            speculate: true,
            ..Default::default()
        };
        let adaptive_cfg = SelectConfig {
            adaptive_speculation: true,
            ..base_cfg.clone()
        };
        for workers in [1usize, 4] {
            let run = |cfg: &SelectConfig| {
                let mut tester = OracleCi::from_dag(inst.dag.clone());
                let mut session = CiSession::new(&mut tester);
                let sel =
                    grpsel_batched_in(&mut session, &problem, cfg, None, workers).normalized();
                (sel, session.stats().clone())
            };
            let (plain_sel, plain) = run(&base_cfg);
            let (gated_sel, gated) = run(&adaptive_cfg);
            assert_eq!(plain_sel.c1, gated_sel.c1, "workers={workers}");
            assert_eq!(plain_sel.c2, gated_sel.c2, "workers={workers}");
            assert_eq!(plain_sel.rejected, gated_sel.rejected, "workers={workers}");
            // Conservation: issued + consumed speculation is the same
            // total demanded work under both policies.
            assert_eq!(
                plain.issued + plain.speculative_hits,
                gated.issued + gated.speculative_hits,
                "workers={workers}"
            );
            if workers == 1 {
                assert_eq!(
                    gated.speculative_issued, 0,
                    "no idle workers: the gate must skip every wave"
                );
            }
        }
    }

    #[test]
    fn figure_1a_matches_seqsel() {
        let (dag, problem) = figure_1a();
        let cfg = SelectConfig::default();
        let s = seqsel(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg).normalized();
        let g = grpsel(&mut OracleCi::from_dag(dag), &problem, &cfg).normalized();
        assert_eq!(s.c1, g.c1);
        assert_eq!(s.c2, g.c2);
        assert_eq!(s.rejected, g.rejected);
    }

    #[test]
    fn figure_1b_all_admitted() {
        let (dag, problem) = figure_1b();
        let sel = grpsel(
            &mut OracleCi::from_dag(dag.clone()),
            &problem,
            &SelectConfig::default(),
        )
        .normalized();
        assert!(sel.rejected.is_empty(), "{:?}", names(&dag, &sel.rejected));
        let c2 = names(&dag, &sel.c2);
        assert!(
            c2.contains(&"X2".to_owned()),
            "X2 screened off from Y: {c2:?}"
        );
    }

    #[test]
    fn figure_1c_exists_search_over_groups() {
        let (dag, problem) = figure_1c();
        let sel = grpsel(
            &mut OracleCi::from_dag(dag.clone()),
            &problem,
            &SelectConfig::default(),
        )
        .normalized();
        let c1 = names(&dag, &sel.c1);
        assert!(c1.contains(&"X1".to_owned()));
        assert!(
            c1.contains(&"X3".to_owned()),
            "needs ∃A'⊆A at group level: {c1:?}"
        );
    }

    #[test]
    fn figure_6_limitation_shared_with_seqsel() {
        let (dag, problem) = figure_6();
        let sel = grpsel(
            &mut OracleCi::from_dag(dag.clone()),
            &problem,
            &SelectConfig::default(),
        )
        .normalized();
        let rejected = names(&dag, &sel.rejected);
        assert!(rejected.contains(&"X2".to_owned()));
    }

    /// SeqSel and GrpSel agree on every random fairness-structured DAG
    /// under the oracle — the soundness consequence of composition +
    /// decomposition.
    #[test]
    fn agrees_with_seqsel_on_random_dags() {
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = synthetic_instance(
                &mut rng,
                &SyntheticConfig {
                    n_features: 14,
                    biased_fraction: 0.3,
                    ..Default::default()
                },
            );
            let problem = Problem::from_roles(&inst.roles);
            let dag = inst.dag;
            let cfg = SelectConfig::default();
            let s = seqsel(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg).normalized();
            let g = grpsel(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg).normalized();
            assert_eq!(s.c1, g.c1, "C1 mismatch at seed {seed}");
            assert_eq!(s.c2, g.c2, "C2 mismatch at seed {seed}");
            assert_eq!(s.rejected, g.rejected, "rejected mismatch at seed {seed}");
        }
    }

    /// The parallel path must be byte-identical to the sequential one.
    #[test]
    fn parallel_matches_sequential_grpsel() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = synthetic_instance(
                &mut rng,
                &SyntheticConfig {
                    n_features: 40,
                    biased_fraction: 0.2,
                    ..Default::default()
                },
            );
            let problem = Problem::from_roles(&inst.roles);
            let dag = inst.dag;
            let cfg = SelectConfig::default();
            let seq = grpsel(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg);
            for workers in [2usize, 4] {
                let mut oracle = OracleCi::from_dag(dag.clone());
                let par = grpsel_par(&mut oracle, &problem, &cfg, None, workers);
                assert_eq!(seq.c1, par.c1, "seed {seed}, workers {workers}");
                assert_eq!(seq.c2, par.c2);
                assert_eq!(seq.rejected, par.rejected);
                assert_eq!(seq.tests_used, par.tests_used, "test counts must agree");
            }
        }
    }

    /// Shuffling the recursion order never changes the *set* outcome under
    /// an oracle tester, only the work done.
    #[test]
    fn seeded_partition_is_outcome_invariant() {
        let mut rng = StdRng::seed_from_u64(7);
        let inst = synthetic_instance(
            &mut rng,
            &SyntheticConfig {
                n_features: 20,
                biased_fraction: 0.25,
                ..Default::default()
            },
        );
        let problem = Problem::from_roles(&inst.roles);
        let dag = inst.dag;
        let cfg = SelectConfig::default();
        let base = grpsel(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg).normalized();
        for seed in 0..5 {
            let shuffled =
                grpsel_seeded(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg, seed)
                    .normalized();
            assert_eq!(base.c1, shuffled.c1);
            assert_eq!(base.c2, shuffled.c2);
            assert_eq!(base.rejected, shuffled.rejected);
        }
    }

    /// With few biased features GrpSel issues far fewer tests than SeqSel —
    /// the k log n vs n claim of §4.3 at a small scale.
    #[test]
    fn fewer_tests_than_seqsel_when_k_small() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = synthetic_instance(
            &mut rng,
            &SyntheticConfig {
                n_features: 64,
                biased_fraction: 0.05,
                ..Default::default()
            },
        );
        let problem = Problem::from_roles(&inst.roles);
        let dag = inst.dag;
        let cfg = SelectConfig::default();
        let mut sc = CountingCi::new(OracleCi::from_dag(dag.clone()));
        let s = seqsel(&mut sc, &problem, &cfg);
        let mut gc = CountingCi::new(OracleCi::from_dag(dag));
        let g = grpsel(&mut gc, &problem, &cfg);
        assert!(
            g.tests_used < s.tests_used,
            "grpsel {} !< seqsel {}",
            g.tests_used,
            s.tests_used
        );
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let (dag, problem) = figure_1c();
        let sel = grpsel(
            &mut OracleCi::from_dag(dag),
            &problem,
            &SelectConfig::default(),
        );
        let mut all: Vec<usize> = sel
            .c1
            .iter()
            .chain(&sel.c2)
            .chain(&sel.rejected)
            .copied()
            .collect();
        all.sort_unstable();
        let mut expected = problem.features.clone();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn empty_feature_set_is_trivial() {
        let (dag, mut problem) = figure_1a();
        problem.features.clear();
        let sel = grpsel(
            &mut OracleCi::from_dag(dag),
            &problem,
            &SelectConfig::default(),
        );
        assert_eq!(sel.tests_used, 0);
        assert!(sel.selected().is_empty());
    }
}
