//! GrpSel — Algorithms 2–4 of the paper: group testing for causal feature
//! selection.
//!
//! SeqSel issues one CI test chain per feature; when `n` is large the sheer
//! number of tests both costs time and — with finite-sample testers —
//! manufactures spurious dependence (§5.3). GrpSel instead tests whole
//! *groups* of features at once and recurses by halving only on failure,
//! which is sound by the graphoid axioms:
//!
//! * **Composition** (Lemma 1.2): if every member of `X` satisfies
//!   `Xᵢ ⊥ S | Z` then `X ⊥ S | Z` — so a passing group admits all its
//!   members at once.
//! * **Decomposition** (Lemma 1.1, = Lemmas 7–8): if `X ̸⊥ S | Z` then at
//!   least one member is dependent — so a failing group is worth splitting,
//!   and the recursion terminates at the offending singletons.
//!
//! With `k` unsafe features out of `n`, each phase costs `O(k log n)` group
//! tests (times the `2^|A|` subset factor in phase 1), versus `O(n)` for
//! SeqSel — the crossover measured in Figures 4 and 5.
//!
//! One paper erratum (DESIGN.md substitution 6): Algorithm 4 line 8 passes
//! `C2` as the conditioning set of the recursive call; Lemma 6 requires
//! conditioning on `A ∪ C₁`, which is what we do.

use crate::problem::{Problem, SelectConfig, Selection};
use fairsel_ci::{CiTest, VarId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Run GrpSel (Algorithm 2) with any CI tester. Groups are split at the
/// midpoint of the (caller-provided) feature order; use
/// [`grpsel_seeded`] to randomize the initial order, which is what the
/// paper's `random_partition` amounts to after the first shuffle.
pub fn grpsel<T: CiTest + ?Sized>(
    tester: &mut T,
    problem: &Problem,
    cfg: &SelectConfig,
) -> Selection {
    run(tester, problem, cfg, None)
}

/// GrpSel with the feature order shuffled once under `seed` before the
/// recursive halving, making every split a uniform random partition.
pub fn grpsel_seeded<T: CiTest + ?Sized>(
    tester: &mut T,
    problem: &Problem,
    cfg: &SelectConfig,
    seed: u64,
) -> Selection {
    run(tester, problem, cfg, Some(seed))
}

fn run<T: CiTest + ?Sized>(
    tester: &mut T,
    problem: &Problem,
    cfg: &SelectConfig,
    seed: Option<u64>,
) -> Selection {
    let mut features = problem.features.clone();
    if let Some(seed) = seed {
        features.shuffle(&mut StdRng::seed_from_u64(seed));
    }
    let subsets = cfg.admissible_subsets(&problem.admissible);
    let mut out = Selection::default();

    // Phase 1 (Algorithm 3): groups with X ⊥ S | A' for some A' ⊆ A.
    let mut remaining: Vec<VarId> = Vec::new();
    first_phase(tester, problem, &subsets, &features, &mut out, &mut remaining);

    // Phase 2 (Algorithm 4): remaining groups with X ⊥ Y | A ∪ C₁.
    let mut cond: Vec<VarId> = problem.admissible.clone();
    cond.extend(&out.c1);
    final_candidates(tester, problem, &cond, &remaining, &mut out);
    out
}

/// Algorithm 3. Admits whole groups into `C₁` when conditionally
/// independent of `S` given some admissible subset; splits on failure;
/// pushes failing singletons into `remaining` for phase 2.
fn first_phase<T: CiTest + ?Sized>(
    tester: &mut T,
    problem: &Problem,
    subsets: &[Vec<VarId>],
    group: &[VarId],
    out: &mut Selection,
    remaining: &mut Vec<VarId>,
) {
    if group.is_empty() {
        return;
    }
    for sub in subsets {
        out.tests_used += 1;
        if tester.ci(group, &problem.sensitive, sub).independent {
            out.c1.extend_from_slice(group);
            return;
        }
    }
    if group.len() == 1 {
        remaining.push(group[0]);
        return;
    }
    let (left, right) = group.split_at(group.len() / 2);
    first_phase(tester, problem, subsets, left, out, remaining);
    first_phase(tester, problem, subsets, right, out, remaining);
}

/// Algorithm 4 with the Lemma-6 conditioning set `A ∪ C₁`.
fn final_candidates<T: CiTest + ?Sized>(
    tester: &mut T,
    problem: &Problem,
    cond: &[VarId],
    group: &[VarId],
    out: &mut Selection,
) {
    if group.is_empty() {
        return;
    }
    out.tests_used += 1;
    if tester.ci(group, &[problem.target], cond).independent {
        out.c2.extend_from_slice(group);
        return;
    }
    if group.len() == 1 {
        out.rejected.push(group[0]);
        return;
    }
    let (left, right) = group.split_at(group.len() / 2);
    final_candidates(tester, problem, cond, left, out);
    final_candidates(tester, problem, cond, right, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqsel::fixtures::*;
    use crate::seqsel::seqsel;
    use fairsel_ci::{CountingCi, OracleCi};
    use fairsel_graph::{random_dag, RandomDagConfig};
    use fairsel_table::Role;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn names(dag: &fairsel_graph::Dag, vars: &[usize]) -> Vec<String> {
        vars.iter()
            .map(|&v| dag.name(fairsel_graph::NodeId(v as u32)).to_owned())
            .collect()
    }

    #[test]
    fn figure_1a_matches_seqsel() {
        let (dag, problem) = figure_1a();
        let cfg = SelectConfig::default();
        let s = seqsel(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg).normalized();
        let g = grpsel(&mut OracleCi::from_dag(dag), &problem, &cfg).normalized();
        assert_eq!(s.c1, g.c1);
        assert_eq!(s.c2, g.c2);
        assert_eq!(s.rejected, g.rejected);
    }

    #[test]
    fn figure_1b_all_admitted() {
        let (dag, problem) = figure_1b();
        let sel = grpsel(&mut OracleCi::from_dag(dag.clone()), &problem, &SelectConfig::default())
            .normalized();
        assert!(sel.rejected.is_empty(), "{:?}", names(&dag, &sel.rejected));
        let c2 = names(&dag, &sel.c2);
        assert!(c2.contains(&"X2".to_owned()), "X2 screened off from Y: {c2:?}");
    }

    #[test]
    fn figure_1c_exists_search_over_groups() {
        let (dag, problem) = figure_1c();
        let sel = grpsel(&mut OracleCi::from_dag(dag.clone()), &problem, &SelectConfig::default())
            .normalized();
        let c1 = names(&dag, &sel.c1);
        assert!(c1.contains(&"X1".to_owned()));
        assert!(c1.contains(&"X3".to_owned()), "needs ∃A'⊆A at group level: {c1:?}");
    }

    #[test]
    fn figure_6_limitation_shared_with_seqsel() {
        let (dag, problem) = figure_6();
        let sel = grpsel(&mut OracleCi::from_dag(dag.clone()), &problem, &SelectConfig::default())
            .normalized();
        let rejected = names(&dag, &sel.rejected);
        assert!(rejected.contains(&"X2".to_owned()));
    }

    /// SeqSel and GrpSel agree on every random DAG under the oracle — the
    /// soundness consequence of composition + decomposition.
    #[test]
    fn agrees_with_seqsel_on_random_dags() {
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let dag = random_dag(
                &mut rng,
                &RandomDagConfig { n_features: 14, biased_fraction: 0.3, ..Default::default() },
            );
            let problem = problem_from_generated(&dag);
            let cfg = SelectConfig::default();
            let s = seqsel(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg).normalized();
            let g = grpsel(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg).normalized();
            assert_eq!(s.c1, g.c1, "C1 mismatch at seed {seed}");
            assert_eq!(s.c2, g.c2, "C2 mismatch at seed {seed}");
            assert_eq!(s.rejected, g.rejected, "rejected mismatch at seed {seed}");
        }
    }

    /// Shuffling the recursion order never changes the *set* outcome under
    /// an oracle tester, only the work done.
    #[test]
    fn seeded_partition_is_outcome_invariant() {
        let mut rng = StdRng::seed_from_u64(7);
        let dag = random_dag(
            &mut rng,
            &RandomDagConfig { n_features: 20, biased_fraction: 0.25, ..Default::default() },
        );
        let problem = problem_from_generated(&dag);
        let cfg = SelectConfig::default();
        let base = grpsel(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg).normalized();
        for seed in 0..5 {
            let shuffled =
                grpsel_seeded(&mut OracleCi::from_dag(dag.clone()), &problem, &cfg, seed)
                    .normalized();
            assert_eq!(base.c1, shuffled.c1);
            assert_eq!(base.c2, shuffled.c2);
            assert_eq!(base.rejected, shuffled.rejected);
        }
    }

    /// With few biased features GrpSel issues far fewer tests than SeqSel —
    /// the k log n vs n claim of §4.3 at a small scale.
    #[test]
    fn fewer_tests_than_seqsel_when_k_small() {
        let mut rng = StdRng::seed_from_u64(3);
        let dag = random_dag(
            &mut rng,
            &RandomDagConfig { n_features: 64, biased_fraction: 0.05, ..Default::default() },
        );
        let problem = problem_from_generated(&dag);
        let cfg = SelectConfig::default();
        let mut sc = CountingCi::new(OracleCi::from_dag(dag.clone()));
        let s = seqsel(&mut sc, &problem, &cfg);
        let mut gc = CountingCi::new(OracleCi::from_dag(dag));
        let g = grpsel(&mut gc, &problem, &cfg);
        assert!(
            g.tests_used < s.tests_used,
            "grpsel {} !< seqsel {}",
            g.tests_used,
            s.tests_used
        );
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let (dag, problem) = figure_1c();
        let sel = grpsel(&mut OracleCi::from_dag(dag), &problem, &SelectConfig::default());
        let mut all: Vec<usize> =
            sel.c1.iter().chain(&sel.c2).chain(&sel.rejected).copied().collect();
        all.sort_unstable();
        let mut expected = problem.features.clone();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn empty_feature_set_is_trivial() {
        let (dag, mut problem) = figure_1a();
        problem.features.clear();
        let sel = grpsel(&mut OracleCi::from_dag(dag), &problem, &SelectConfig::default());
        assert_eq!(sel.tests_used, 0);
        assert!(sel.selected().is_empty());
    }

    /// Build a `Problem` from a generated DAG using its naming convention
    /// (`S*` sensitive, `A*` admissible, `Y` target, rest features).
    pub(crate) fn problem_from_generated(dag: &fairsel_graph::Dag) -> Problem {
        let roles: Vec<Role> = dag
            .nodes()
            .map(|v| match dag.name(v) {
                n if n.starts_with('S') => Role::Sensitive,
                n if n.starts_with('A') => Role::Admissible,
                "Y" => Role::Target,
                _ => Role::Feature,
            })
            .collect();
        Problem::from_roles(&roles)
    }
}
