//! Ground truth: the Theorem 1 classification of candidate features,
//! computed from a *known* causal DAG.
//!
//! Theorem 1 says a feature `X` is safe to add without violating causal
//! fairness iff
//!
//! 1. `X ⊥ S | A'` for some `A' ⊆ A` (it carries no new sensitive
//!    information — the phase-1 certificate), or
//! 2. `X ⊥ Y | C', A` where `C' ⊥ S | A` (it is screened off from the
//!    target — the phase-2 certificate), or
//! 3. `X` is not a descendant of `S` in `G_Ā` (the graph with incoming
//!    edges of `A` removed).
//!
//! Conditions (1) and (2) are testable from observational data; condition
//! (3) is not (Figure 6 of the paper exhibits a variable that satisfies
//! only (3)). The [`GroundTruth`] partition therefore distinguishes
//! `C1`/`C2` (CI-identifiable) from `NonDescendantOnly` (safe, but
//! invisible to any CI-based selector) — the gap the synthetic-recovery
//! experiment (§5.3, Figure 6) quantifies.

use crate::problem::{Problem, SelectConfig};
use fairsel_ci::VarId;
use fairsel_graph::{d_separated, Dag, NodeId};

/// Which clause of Theorem 1 (if any) certifies a feature.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FeatureClass {
    /// Clause (i): `X ⊥ S | A'` for some `A' ⊆ A`.
    C1,
    /// Clause (ii): `X ⊥ Y | A ∪ C₁` (and not clause (i)).
    C2,
    /// Clause (iii) only: not a descendant of `S` in `G_Ā`, yet no CI
    /// certificate exists. Safe, but unreachable by SeqSel/GrpSel.
    NonDescendantOnly,
    /// No clause applies: adding the feature can worsen causal fairness.
    Unsafe,
}

/// The exact Theorem-1 partition of a problem's candidate features.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroundTruth {
    /// Clause-(i) features, ascending.
    pub c1: Vec<VarId>,
    /// Clause-(ii) features, ascending.
    pub c2: Vec<VarId>,
    /// Clause-(iii)-only features, ascending.
    pub non_descendant_only: Vec<VarId>,
    /// Unsafe features, ascending.
    pub unsafe_vars: Vec<VarId>,
}

impl GroundTruth {
    /// Everything safe to add (union of the three safe classes), sorted.
    pub fn safe(&self) -> Vec<VarId> {
        let mut out: Vec<VarId> = self
            .c1
            .iter()
            .chain(&self.c2)
            .chain(&self.non_descendant_only)
            .copied()
            .collect();
        out.sort_unstable();
        out
    }

    /// The subset of safe features a CI-only selector can certify
    /// (`C₁ ∪ C₂`), sorted. This is the target SeqSel/GrpSel aim for.
    pub fn ci_identifiable(&self) -> Vec<VarId> {
        let mut out: Vec<VarId> = self.c1.iter().chain(&self.c2).copied().collect();
        out.sort_unstable();
        out
    }

    /// Class of a single feature.
    pub fn class_of(&self, x: VarId) -> Option<FeatureClass> {
        if self.c1.binary_search(&x).is_ok() {
            Some(FeatureClass::C1)
        } else if self.c2.binary_search(&x).is_ok() {
            Some(FeatureClass::C2)
        } else if self.non_descendant_only.binary_search(&x).is_ok() {
            Some(FeatureClass::NonDescendantOnly)
        } else if self.unsafe_vars.binary_search(&x).is_ok() {
            Some(FeatureClass::Unsafe)
        } else {
            None
        }
    }
}

/// Compute the Theorem-1 ground truth for `problem` against the true DAG.
///
/// Variable ids must coincide with node indices of `dag` (the convention
/// used by [`fairsel_ci::OracleCi`] and all generated datasets).
pub fn theorem1_classification(dag: &Dag, problem: &Problem, cfg: &SelectConfig) -> GroundTruth {
    let node = |v: VarId| NodeId(v as u32);
    let sensitive: Vec<NodeId> = problem.sensitive.iter().map(|&v| node(v)).collect();
    let admissible: Vec<NodeId> = problem.admissible.iter().map(|&v| node(v)).collect();
    let target = node(problem.target);
    let subsets = cfg.admissible_subsets(&problem.admissible);

    let mut truth = GroundTruth::default();

    // Clause (i) first — it also fixes the C₁ used by clause (ii).
    let mut remaining: Vec<VarId> = Vec::new();
    for &x in &problem.features {
        let certified = subsets.iter().any(|sub| {
            let z: Vec<NodeId> = sub.iter().map(|&v| node(v)).collect();
            d_separated(dag, &[node(x)], &sensitive, &z)
        });
        if certified {
            truth.c1.push(x);
        } else {
            remaining.push(x);
        }
    }

    // Clause (ii): X ⊥ Y | A ∪ C₁.
    let mut cond: Vec<NodeId> = admissible.clone();
    cond.extend(truth.c1.iter().map(|&v| node(v)));
    let mut rest: Vec<VarId> = Vec::new();
    for &x in &remaining {
        if d_separated(dag, &[node(x)], &[target], &cond) {
            truth.c2.push(x);
        } else {
            rest.push(x);
        }
    }

    // Clause (iii): descendant status in G_Ā.
    let g_bar = dag.intervene(&admissible);
    let descendant_of_s = g_bar.descendant_mask(&sensitive);
    for &x in &rest {
        if descendant_of_s[x] {
            truth.unsafe_vars.push(x);
        } else {
            truth.non_descendant_only.push(x);
        }
    }

    truth.c1.sort_unstable();
    truth.c2.sort_unstable();
    truth.non_descendant_only.sort_unstable();
    truth.unsafe_vars.sort_unstable();
    truth
}

/// Score a selection against ground truth: how many of the CI-identifiable
/// safe features were recovered, and how many unsafe features leaked in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryScore {
    /// Safe CI-identifiable features correctly selected.
    pub true_positives: usize,
    /// CI-identifiable features wrongly left out ("spurious drops").
    pub false_negatives: usize,
    /// Unsafe features wrongly selected.
    pub false_positives: usize,
    /// Clause-(iii)-only features (unreachable; reported separately).
    pub unreachable: usize,
}

impl RecoveryScore {
    /// Compare `selected` (any order) with the ground truth.
    pub fn of(truth: &GroundTruth, selected: &[VarId]) -> RecoveryScore {
        let sel: std::collections::HashSet<VarId> = selected.iter().copied().collect();
        let identifiable = truth.ci_identifiable();
        let mut score = RecoveryScore {
            unreachable: truth.non_descendant_only.len(),
            ..Default::default()
        };
        for x in &identifiable {
            if sel.contains(x) {
                score.true_positives += 1;
            } else {
                score.false_negatives += 1;
            }
        }
        for x in &truth.unsafe_vars {
            if sel.contains(x) {
                score.false_positives += 1;
            }
        }
        score
    }

    /// Fraction of CI-identifiable features recovered (1.0 when there are
    /// none to recover).
    pub fn recall(&self) -> f64 {
        let total = self.true_positives + self.false_negatives;
        if total == 0 {
            1.0
        } else {
            self.true_positives as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqsel::fixtures::*;
    use crate::seqsel::seqsel;
    use crate::SelectConfig;
    use fairsel_ci::OracleCi;

    fn name_of(dag: &Dag, v: VarId) -> &str {
        dag.name(NodeId(v as u32))
    }

    #[test]
    fn figure_1a_truth() {
        let (dag, problem) = figure_1a();
        let t = theorem1_classification(&dag, &problem, &SelectConfig::default());
        let c1: Vec<&str> = t.c1.iter().map(|&v| name_of(&dag, v)).collect();
        let unsafe_: Vec<&str> = t.unsafe_vars.iter().map(|&v| name_of(&dag, v)).collect();
        assert!(c1.contains(&"X1"));
        assert!(c1.contains(&"C1"));
        assert_eq!(unsafe_, vec!["X2"], "X2 is the biased variable");
    }

    #[test]
    fn figure_1b_truth_all_safe() {
        let (dag, problem) = figure_1b();
        let t = theorem1_classification(&dag, &problem, &SelectConfig::default());
        assert!(t.unsafe_vars.is_empty());
        let c2: Vec<&str> = t.c2.iter().map(|&v| name_of(&dag, v)).collect();
        assert_eq!(c2, vec!["X2"], "X2 certified only by clause (ii)");
    }

    #[test]
    fn figure_6_x2_is_clause_iii_only() {
        let (dag, problem) = figure_6();
        let t = theorem1_classification(&dag, &problem, &SelectConfig::default());
        let nd: Vec<&str> = t
            .non_descendant_only
            .iter()
            .map(|&v| name_of(&dag, v))
            .collect();
        assert_eq!(
            nd,
            vec!["X2"],
            "Figure 6's X2 is safe but not CI-identifiable"
        );
        assert!(t.unsafe_vars.is_empty());
    }

    #[test]
    fn classes_partition_features() {
        for (dag, problem) in [figure_1a(), figure_1b(), figure_1c(), figure_6()] {
            let t = theorem1_classification(&dag, &problem, &SelectConfig::default());
            let mut all: Vec<VarId> =
                t.c1.iter()
                    .chain(&t.c2)
                    .chain(&t.non_descendant_only)
                    .chain(&t.unsafe_vars)
                    .copied()
                    .collect();
            all.sort_unstable();
            let mut expected = problem.features.clone();
            expected.sort_unstable();
            assert_eq!(all, expected);
            for &x in &problem.features {
                assert!(t.class_of(x).is_some());
            }
        }
    }

    #[test]
    fn seqsel_under_oracle_matches_ci_identifiable() {
        for (dag, problem) in [figure_1a(), figure_1b(), figure_1c(), figure_6()] {
            let cfg = SelectConfig::default();
            let t = theorem1_classification(&dag, &problem, &cfg);
            let sel = seqsel(&mut OracleCi::from_dag(dag), &problem, &cfg);
            assert_eq!(sel.selected(), t.ci_identifiable());
        }
    }

    #[test]
    fn recovery_score_accounting() {
        let truth = GroundTruth {
            c1: vec![1, 2],
            c2: vec![3],
            non_descendant_only: vec![4],
            unsafe_vars: vec![5, 6],
        };
        let score = RecoveryScore::of(&truth, &[1, 3, 5]);
        assert_eq!(score.true_positives, 2);
        assert_eq!(score.false_negatives, 1);
        assert_eq!(score.false_positives, 1);
        assert_eq!(score.unreachable, 1);
        assert!((score.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recall_is_one_when_nothing_identifiable() {
        let truth = GroundTruth {
            unsafe_vars: vec![0],
            ..Default::default()
        };
        assert_eq!(RecoveryScore::of(&truth, &[]).recall(), 1.0);
    }
}
