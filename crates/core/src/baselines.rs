//! Comparison pipelines for the evaluation (§5): the trivial endpoints
//! (train on `A` only, train on everything), the paper's two selectors,
//! and the Fair-PC baseline that learns a CPDAG with the PC algorithm and
//! drops every feature that *may* descend from a sensitive attribute in
//! `G_Ā` (Theorem 1(iii) applied to the equivalence class).
//!
//! Every method that issues CI tests runs inside one engine
//! [`fairsel_engine::CiSession`], so a method's cost is reported in tests
//! *issued* (after caching) and methods sharing a session share answers —
//! e.g. Fair-PC's marginal-independence layer overlaps SeqSel's ∅-subset
//! queries.

use crate::pipeline::{score_columns, ClassifierKind, PipelineConfig, SelectionAlgo};
use crate::problem::{Problem, Selection};
use crate::{grpsel_batched_in, grpsel_in, seqsel_in};
use fairsel_ci::{CiTest, CiTestBatch, FisherZ, GTest, OracleCi};
use fairsel_engine::{CiSession, EngineStats};
use fairsel_graph::Dag;
use fairsel_ml::FairnessReport;
use fairsel_table::{ColId, EncodedTable, Table};
use std::sync::Arc;

/// A comparison pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Train on the admissible attributes only (the paper's "A").
    AdmissibleOnly,
    /// Train on every candidate feature (the paper's "ALL").
    All,
    /// Algorithm 1.
    SeqSel,
    /// Algorithms 2–4.
    GrpSel,
    /// PC-learned CPDAG + possible-descendant pruning.
    FairPc,
}

impl Method {
    /// All methods, in reporting order.
    pub fn all() -> [Method; 5] {
        [
            Method::AdmissibleOnly,
            Method::All,
            Method::SeqSel,
            Method::GrpSel,
            Method::FairPc,
        ]
    }

    /// Short name used in experiment logs and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Method::AdmissibleOnly => "a-only",
            Method::All => "all",
            Method::SeqSel => "seqsel",
            Method::GrpSel => "grpsel",
            Method::FairPc => "fair-pc",
        }
    }

    /// Parse a CLI-style name.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "a-only" | "a" => Some(Method::AdmissibleOnly),
            "all" => Some(Method::All),
            "seqsel" => Some(Method::SeqSel),
            "grpsel" => Some(Method::GrpSel),
            "fair-pc" | "fairpc" => Some(Method::FairPc),
            _ => None,
        }
    }
}

/// How to construct the CI tester a method runs against.
#[derive(Clone, Debug)]
pub enum TesterSpec {
    /// Ground-truth d-separation on a known DAG (requires `dag`).
    Oracle,
    /// Discrete G-test on the training table at significance `alpha`.
    GTest { alpha: f64 },
    /// Fisher-z partial-correlation test at significance `alpha`.
    FisherZ { alpha: f64 },
}

impl TesterSpec {
    /// One shared encoding layer for this spec's data testers (`None` for
    /// the oracle, which never touches the table). Sharing it across
    /// several `build_over` calls — as [`run_all_methods`] does — means
    /// the dataset is cloned into shared ownership once per sweep rather
    /// than once per method, and the methods amortize one encode cache.
    pub fn encoding_for(&self, train: &Table) -> Option<Arc<EncodedTable>> {
        match self {
            TesterSpec::Oracle => None,
            _ => Some(Arc::new(EncodedTable::new(train))),
        }
    }

    /// Instantiate the tester over the training table (and ground-truth
    /// DAG for [`TesterSpec::Oracle`]).
    ///
    /// # Panics
    /// Panics when `Oracle` is requested without a DAG.
    pub fn build(&self, train: &Table, dag: Option<&Dag>) -> Box<dyn CiTest> {
        self.build_over(self.encoding_for(train).as_ref(), train, dag)
    }

    /// Like [`TesterSpec::build`], reusing an existing encoding layer for
    /// the data testers (falls back to a private one when `enc` is
    /// `None`).
    pub fn build_over(
        &self,
        enc: Option<&Arc<EncodedTable>>,
        train: &Table,
        dag: Option<&Dag>,
    ) -> Box<dyn CiTest> {
        match *self {
            TesterSpec::Oracle => {
                let dag = dag.expect("TesterSpec::Oracle requires the ground-truth DAG");
                Box::new(OracleCi::from_dag(dag.clone()))
            }
            TesterSpec::GTest { alpha } => match enc {
                Some(enc) => Box::new(GTest::over(Arc::clone(enc), alpha)),
                None => Box::new(GTest::new(train, alpha)),
            },
            TesterSpec::FisherZ { alpha } => match enc {
                Some(enc) => Box::new(FisherZ::over(Arc::clone(enc), alpha)),
                None => Box::new(FisherZ::new(train, alpha)),
            },
        }
    }

    /// Short name for logs.
    pub fn name(&self) -> &'static str {
        match self {
            TesterSpec::Oracle => "oracle",
            TesterSpec::GTest { .. } => "g-test",
            TesterSpec::FisherZ { .. } => "fisher-z",
        }
    }
}

/// What one method produced.
#[derive(Clone, Debug)]
pub struct MethodOutput {
    pub method: Method,
    /// Features the method selected (excluding admissibles), ascending.
    pub selected: Vec<ColId>,
    /// Columns the classifier trained on (admissible ∪ selected).
    pub model_cols: Vec<ColId>,
    /// Test-split metrics.
    pub report: FairnessReport,
    /// CI tests actually issued (0 for the trivial endpoints).
    pub tests_used: u64,
    /// Engine telemetry (empty for the trivial endpoints).
    pub engine: EngineStats,
}

/// Maximum conditioning-set size the Fair-PC skeleton explores. Remark 3:
/// unbounded PC is exponential; bounding the depth is the standard
/// practical compromise.
pub const FAIR_PC_MAX_COND: usize = 3;

/// Run one comparison method end-to-end on a train/test split.
///
/// `cfg.classifier` / `cfg.select` apply to every method;
/// `cfg.algo` is ignored (the method determines the selector).
pub fn run_method(
    method: Method,
    spec: &TesterSpec,
    dag: Option<&Dag>,
    train: &Table,
    test: &Table,
    cfg: &PipelineConfig,
) -> MethodOutput {
    run_method_over(
        method,
        spec,
        spec.encoding_for(train).as_ref(),
        dag,
        train,
        test,
        cfg,
    )
}

/// [`run_method`] with an explicit (possibly shared) encoding layer.
fn run_method_over(
    method: Method,
    spec: &TesterSpec,
    enc: Option<&Arc<EncodedTable>>,
    dag: Option<&Dag>,
    train: &Table,
    test: &Table,
    cfg: &PipelineConfig,
) -> MethodOutput {
    let problem = Problem::from_table(train);
    let (selected, tests_used, engine) = match method {
        Method::AdmissibleOnly => (Vec::new(), 0, EngineStats::default()),
        Method::All => (problem.features.clone(), 0, EngineStats::default()),
        Method::SeqSel | Method::GrpSel => {
            let mut session = CiSession::new(spec.build_over(enc, train, dag));
            let sel: Selection = if method == Method::SeqSel {
                seqsel_in(&mut session, &problem, &cfg.select)
            } else {
                let seed = match cfg.algo {
                    SelectionAlgo::GrpSel { seed } => seed,
                    _ => None,
                };
                grpsel_in(&mut session, &problem, &cfg.select, seed)
            };
            (sel.selected(), sel.tests_used, session.stats().clone())
        }
        Method::FairPc => {
            let mut session = CiSession::new(spec.build_over(enc, train, dag));
            session.set_phase("fair-pc");
            let mut vars: Vec<ColId> = problem.sensitive.clone();
            vars.extend(&problem.admissible);
            vars.extend(&problem.features);
            vars.push(problem.target);
            vars.sort_unstable();
            let cpdag = fairsel_discovery::pc_in(&mut session, &vars, FAIR_PC_MAX_COND);
            let maybe_desc =
                cpdag.possible_descendants_avoiding(&problem.sensitive, &problem.admissible);
            let selected: Vec<ColId> = problem
                .features
                .iter()
                .copied()
                .filter(|&x| !maybe_desc[x])
                .collect();
            (selected, session.stats().issued, session.stats().clone())
        }
    };
    let model_cols = crate::pipeline::model_columns(&problem, &selected);
    let report = score_columns(train, test, &problem, &model_cols, cfg);
    MethodOutput {
        method,
        selected,
        model_cols,
        report,
        tests_used,
        engine,
    }
}

/// Run every method of [`Method::all`] on the same split with the same
/// tester spec and classifier — the Table 2 / Figure 2 sweep.
pub fn run_all_methods(
    spec: &TesterSpec,
    dag: Option<&Dag>,
    train: &Table,
    test: &Table,
    cfg: &PipelineConfig,
) -> Vec<MethodOutput> {
    // One shared encoding layer for the whole sweep: the dataset is cloned
    // into shared ownership once, and every method's tester amortizes the
    // same set-encoding cache.
    let enc = spec.encoding_for(train);
    Method::all()
        .into_iter()
        .map(|m| run_method_over(m, spec, enc.as_ref(), dag, train, test, cfg))
        .collect()
}

/// The method sweep *inside an existing session* — the entry point the
/// server's fingerprint-sharded registry drives, so a `methods` request
/// shares the per-dataset session's CI-outcome dedup (and the Z-grouped
/// batch path) with every other request on that dataset. Selections are
/// identical to [`run_all_methods`] (outcomes are deterministic per
/// query, however they are reached); the per-method `tests_used` /
/// `engine` telemetry reports what each method cost *after* cross-method
/// and cross-request dedup — e.g. GrpSel right after SeqSel issues far
/// fewer tests than it would cold, which is the point.
pub fn run_all_methods_in<T: CiTestBatch>(
    session: &mut CiSession<T>,
    train: &Table,
    test: &Table,
    cfg: &PipelineConfig,
) -> Vec<MethodOutput> {
    let problem = Problem::from_table(train);
    Method::all()
        .into_iter()
        .map(|method| {
            let before = session.stats().clone();
            let selected = match method {
                Method::AdmissibleOnly => Vec::new(),
                Method::All => problem.features.clone(),
                Method::SeqSel => seqsel_in(session, &problem, &cfg.select).selected(),
                Method::GrpSel => {
                    let seed = match cfg.algo {
                        SelectionAlgo::GrpSel { seed } => seed,
                        _ => None,
                    };
                    grpsel_batched_in(session, &problem, &cfg.select, seed, cfg.workers.max(1))
                        .selected()
                }
                Method::FairPc => {
                    session.set_phase("fair-pc");
                    let mut vars: Vec<ColId> = problem.sensitive.clone();
                    vars.extend(&problem.admissible);
                    vars.extend(&problem.features);
                    vars.push(problem.target);
                    vars.sort_unstable();
                    let cpdag = fairsel_discovery::pc_in(session, &vars, FAIR_PC_MAX_COND);
                    session.clear_phase();
                    let maybe_desc = cpdag
                        .possible_descendants_avoiding(&problem.sensitive, &problem.admissible);
                    problem
                        .features
                        .iter()
                        .copied()
                        .filter(|&x| !maybe_desc[x])
                        .collect()
                }
            };
            session.refresh_encode_stats();
            let engine = session.stats().delta_since(&before);
            let model_cols = crate::pipeline::model_columns(&problem, &selected);
            let report = score_columns(train, test, &problem, &model_cols, cfg);
            MethodOutput {
                method,
                selected,
                model_cols,
                report,
                tests_used: engine.issued,
                engine,
            }
        })
        .collect()
}

/// Render the `methods` sweep as the aligned table both `fairsel methods`
/// and the session service print — one definition, so remote output stays
/// byte-identical to local output.
pub fn render_methods_report(outs: &[MethodOutput], n_features: usize) -> String {
    use std::fmt::Write as _;
    let mut s = format!(
        "{:<10} {:>9} {:>9} {:>9} {:>10} {:>10} {:>12}\n",
        "method", "selected", "tests", "issued", "accuracy", "odds-diff", "cmi"
    );
    for out in outs {
        writeln!(
            s,
            "{:<10} {:>6}/{:<2} {:>9} {:>9} {:>10.4} {:>10.4} {:>12.6}",
            out.method.name(),
            out.selected.len(),
            n_features,
            out.tests_used,
            out.engine.issued,
            out.report.accuracy,
            out.report.abs_odds_difference,
            out.report.cmi_s_pred_given_a,
        )
        .expect("string write");
    }
    s
}

/// Convenience: default pipeline config with a chosen classifier.
pub fn method_config(classifier: ClassifierKind) -> PipelineConfig {
    PipelineConfig {
        classifier,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_datasets::fixtures::figure_1a;
    use fairsel_datasets::sim::sample_table;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn splits() -> (Dag, Table, Table) {
        let f = figure_1a();
        let scm = f.scm(1.5);
        let mut rng = StdRng::seed_from_u64(21);
        let train = sample_table(&scm, &f.roles, 3000, &mut rng);
        let test = sample_table(&scm, &f.roles, 1500, &mut rng);
        (f.dag, train, test)
    }

    #[test]
    fn endpoints_bracket_selection() {
        let (dag, train, test) = splits();
        let cfg = PipelineConfig::default();
        let spec = TesterSpec::Oracle;
        let a = run_method(
            Method::AdmissibleOnly,
            &spec,
            Some(&dag),
            &train,
            &test,
            &cfg,
        );
        let all = run_method(Method::All, &spec, Some(&dag), &train, &test, &cfg);
        assert!(a.selected.is_empty());
        assert_eq!(a.tests_used, 0);
        assert_eq!(all.selected.len(), Problem::from_table(&train).n_features());
        // ALL trains on more columns than A-only.
        assert!(all.model_cols.len() > a.model_cols.len());
    }

    #[test]
    fn selectors_exclude_biased_feature_under_oracle() {
        let (dag, train, test) = splits();
        let cfg = PipelineConfig::default();
        let x2 = train.col_id("X2").unwrap();
        for method in [Method::SeqSel, Method::GrpSel] {
            let out = run_method(method, &TesterSpec::Oracle, Some(&dag), &train, &test, &cfg);
            assert!(!out.selected.contains(&x2), "{:?} kept biased X2", method);
            assert!(out.tests_used > 0);
            assert_eq!(out.engine.issued, out.tests_used);
        }
    }

    #[test]
    fn fair_pc_runs_and_reports() {
        let (dag, train, test) = splits();
        let cfg = PipelineConfig::default();
        let out = run_method(
            Method::FairPc,
            &TesterSpec::Oracle,
            Some(&dag),
            &train,
            &test,
            &cfg,
        );
        // The oracle CPDAG of Figure 1a has X2 as a possible descendant of
        // S1 in G_Ā, so Fair-PC must drop it.
        let x2 = train.col_id("X2").unwrap();
        assert!(!out.selected.contains(&x2), "Fair-PC kept biased X2");
        assert!(out.tests_used > 0);
        assert!(out.engine.phases.iter().any(|p| p.name.starts_with("pc/")));
    }

    #[test]
    fn data_testers_run_all_methods() {
        let (_, train, test) = splits();
        let cfg = PipelineConfig::default();
        let outs = run_all_methods(
            &TesterSpec::GTest { alpha: 0.01 },
            None,
            &train,
            &test,
            &cfg,
        );
        assert_eq!(outs.len(), 5);
        for out in &outs {
            assert!(
                out.report.accuracy > 0.4,
                "{:?} collapsed: {}",
                out.method,
                out.report.accuracy
            );
        }
    }

    #[test]
    fn method_parsing_roundtrip() {
        for m in Method::all() {
            assert_eq!(Method::parse(m.name()), Some(m));
        }
        assert_eq!(Method::parse("bogus"), None);
    }
}
