//! SeqSel — Algorithm 1 of the paper.
//!
//! Sequentially tests each candidate feature:
//!
//! * **Phase 1** (lines 3–5): admit `X` into `C₁` when `X ⊥ S | A'` for
//!   some `A' ⊆ A`. Such a feature captures no information about the
//!   sensitive attributes beyond what the admissible attributes already
//!   carry, so by Lemma 5 adding it preserves causal fairness.
//! * **Phase 2** (lines 6–10): admit a remaining `X` into `C₂` when
//!   `X ⊥ Y | A ∪ C₁`. The feature is sensitive-laden but the Bayes
//!   optimal predictor over `A ∪ C₁ ∪ C₂` ignores it (Lemma 6).
//!
//! Everything else is rejected: by Theorem 1 those features (when they are
//! descendants of `S` in `G_Ā`) can worsen fairness.

use crate::problem::{Problem, SelectConfig, Selection};
use fairsel_ci::CiTest;
use fairsel_engine::CiSession;

/// Run SeqSel with any CI tester. Every query routes through a fresh
/// engine [`CiSession`] (memo cache + telemetry); the number of tests the
/// tester actually evaluated is returned in [`Selection::tests_used`].
pub fn seqsel<T: CiTest + ?Sized>(
    tester: &mut T,
    problem: &Problem,
    cfg: &SelectConfig,
) -> Selection {
    let mut session = CiSession::new(tester);
    seqsel_in(&mut session, problem, cfg)
}

/// SeqSel inside a caller-provided session, so repeated runs — or other
/// algorithms sharing the session — reuse each other's answers. The
/// returned [`Selection::tests_used`] counts only tests *issued* by this
/// call (cache hits are free).
pub fn seqsel_in<T: CiTest>(
    session: &mut CiSession<T>,
    problem: &Problem,
    cfg: &SelectConfig,
) -> Selection {
    let issued_before = session.stats().issued;
    let subsets = cfg.admissible_subsets(&problem.admissible);
    let mut out = Selection::default();

    // Phase 1: X ⊥ S | A' for some A' ⊆ A.
    session.set_phase("seqsel/phase1");
    let mut remaining = Vec::new();
    for &x in &problem.features {
        let mut admitted = false;
        for sub in &subsets {
            if session.query(&[x], &problem.sensitive, sub).independent {
                admitted = true;
                break;
            }
        }
        if admitted {
            out.c1.push(x);
        } else {
            remaining.push(x);
        }
    }

    // Phase 2: X ⊥ Y | A ∪ C1.
    session.set_phase("seqsel/phase2");
    let mut cond: Vec<usize> = problem.admissible.clone();
    cond.extend(&out.c1);
    for &x in &remaining {
        if session.query(&[x], &[problem.target], &cond).independent {
            out.c2.push(x);
        } else {
            out.rejected.push(x);
        }
    }
    session.clear_phase();
    out.tests_used = session.stats().issued - issued_before;
    out
}

#[cfg(test)]
pub(crate) mod fixtures {
    //! The example graphs of Figure 1 (and Figure 6), with variable ids
    //! equal to node indices so they plug straight into [`OracleCi`].

    use crate::problem::Problem;
    use fairsel_graph::{Dag, DagBuilder};
    use fairsel_table::Role;

    /// Figure 1(a): `S1 → A1 → X1 ← C1`, `S1 → X2`, `X1 → Y`, `X2 → Y`.
    /// X1 is fair (`X1 ⊥ S1 | A1`); X2 is biased.
    pub fn figure_1a() -> (Dag, Problem) {
        let g = DagBuilder::new()
            .nodes(["S1", "A1", "X1", "X2", "C1", "Y"])
            .edge("S1", "A1")
            .edge("S1", "X2")
            .edge("A1", "X1")
            .edge("C1", "X1")
            .edge("X1", "Y")
            .edge("X2", "Y")
            .build();
        let roles = roles_of(&g, &["S1"], &["A1"], &["X1", "X2", "X3", "C1", "C2"], "Y");
        (g, Problem::from_roles(&roles))
    }

    /// Figure 1(b): adds `X3 ⊥ S1` entirely (own cause C2) and makes X2 a
    /// pure sensitive proxy that is screened off from Y:
    /// `S1 → A1 → X1 ← C1`, `S1 → X2 ← C2`, `X3 → Y` with `X3 ⊥ S1`,
    /// `X1 → Y`. X1, X3 ∈ C1-type; X2 ∈ C2-type (X2 ⊥ Y | A1, X1, X3).
    pub fn figure_1b() -> (Dag, Problem) {
        let g = DagBuilder::new()
            .nodes(["S1", "A1", "X1", "X2", "X3", "C1", "C2", "Y"])
            .edge("S1", "A1")
            .edge("S1", "X2")
            .edge("C2", "X2")
            .edge("A1", "X1")
            .edge("C1", "X1")
            .edge("X3", "Y")
            .edge("X1", "Y")
            .build();
        let roles = roles_of(&g, &["S1"], &["A1"], &["X1", "X2", "X3", "C1", "C2"], "Y");
        (g, Problem::from_roles(&roles))
    }

    /// Figure 1(c): two admissible attributes; `X3 ⊥ S1 | A2` (but not
    /// given A1 alone), exercising the ∃A′⊆A search. `X2` carries
    /// sensitive information but is screened off from `Y` given
    /// `A ∪ C₁`, so phase 2 admits it into `C₂`.
    pub fn figure_1c() -> (Dag, Problem) {
        let g = DagBuilder::new()
            .nodes(["S1", "A1", "A2", "X1", "X2", "X3", "C1", "C2", "Y"])
            .edge("S1", "A1")
            .edge("S1", "A2")
            .edge("A1", "X1")
            .edge("A2", "X3")
            .edge("S1", "X2")
            .edge("C2", "X2")
            .edge("C1", "X1")
            .edge("X1", "Y")
            .build();
        let roles = roles_of(
            &g,
            &["S1"],
            &["A1", "A2"],
            &["X1", "X2", "X3", "C1", "C2"],
            "Y",
        );
        (g, Problem::from_roles(&roles))
    }

    /// Figure 6: `X2` is causally fair only by Theorem 1(iii) — it is an
    /// *ancestor* of `S1`, so it is not a descendant of `S1` in `G_Ā` —
    /// but the direct edge onto `S1` means `X2 ̸⊥ S1` under every
    /// conditioning set, so no CI pattern can certify it. Edges:
    /// `X2 → S1 → A1`, `X2 → Y`, `X3 → Y`.
    pub fn figure_6() -> (Dag, Problem) {
        let g = DagBuilder::new()
            .nodes(["S1", "A1", "X2", "X3", "Y"])
            .edge("X2", "S1")
            .edge("S1", "A1")
            .edge("X2", "Y")
            .edge("X3", "Y")
            .build();
        let roles = roles_of(&g, &["S1"], &["A1"], &["X2", "X3"], "Y");
        (g, Problem::from_roles(&roles))
    }

    /// Map node names to roles, defaulting to Feature for listed features
    /// that exist in the graph.
    fn roles_of(
        g: &Dag,
        sensitive: &[&str],
        admissible: &[&str],
        features: &[&str],
        target: &str,
    ) -> Vec<Role> {
        let mut roles = vec![Role::Feature; g.len()];
        for v in g.nodes() {
            let name = g.name(v);
            if sensitive.contains(&name) {
                roles[v.index()] = Role::Sensitive;
            } else if admissible.contains(&name) {
                roles[v.index()] = Role::Admissible;
            } else if name == target {
                roles[v.index()] = Role::Target;
            } else if features.contains(&name) {
                roles[v.index()] = Role::Feature;
            }
        }
        roles
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::*;
    use super::*;
    use fairsel_ci::{CountingCi, OracleCi};

    fn names(dag: &fairsel_graph::Dag, vars: &[usize]) -> Vec<String> {
        vars.iter()
            .map(|&v| dag.name(fairsel_graph::NodeId(v as u32)).to_owned())
            .collect()
    }

    #[test]
    fn figure_1a_classification() {
        let (dag, problem) = figure_1a();
        let mut oracle = OracleCi::from_dag(dag.clone());
        let sel = seqsel(&mut oracle, &problem, &SelectConfig::default()).normalized();
        let c1 = names(&dag, &sel.c1);
        let rejected = names(&dag, &sel.rejected);
        assert!(c1.contains(&"X1".to_owned()), "X1 ⊥ S1 | A1 -> C1");
        assert!(
            c1.contains(&"C1".to_owned()),
            "exogenous cause is independent of S"
        );
        assert!(
            rejected.contains(&"X2".to_owned()),
            "X2 is biased: {rejected:?}"
        );
    }

    #[test]
    fn figure_1b_classification() {
        let (dag, problem) = figure_1b();
        let mut oracle = OracleCi::from_dag(dag.clone());
        let sel = seqsel(&mut oracle, &problem, &SelectConfig::default()).normalized();
        let c1 = names(&dag, &sel.c1);
        let c2 = names(&dag, &sel.c2);
        assert!(c1.contains(&"X1".to_owned()));
        assert!(c1.contains(&"X3".to_owned()), "X3 ⊥ S1 outright");
        assert!(c2.contains(&"X2".to_owned()), "X2 ⊥ Y | A,C1: {c2:?}");
        assert!(sel.rejected.is_empty(), "everything is admissible in 1(b)");
    }

    #[test]
    fn figure_1c_exists_subset_search() {
        let (dag, problem) = figure_1c();
        let mut oracle = OracleCi::from_dag(dag.clone());
        let sel = seqsel(&mut oracle, &problem, &SelectConfig::default()).normalized();
        let c1 = names(&dag, &sel.c1);
        assert!(c1.contains(&"X1".to_owned()), "X1 ⊥ S1 | A1");
        assert!(
            c1.contains(&"X3".to_owned()),
            "X3 ⊥ S1 | A2 — needs the ∃ search"
        );
        let c2 = names(&dag, &sel.c2);
        assert!(c2.contains(&"X2".to_owned()), "X2 screened from Y: {c2:?}");
    }

    #[test]
    fn figure_1c_without_subset_search_misses_x3() {
        // Cap subsets at the full set only — wait, cap at size 2 includes
        // all; instead restrict to only the FULL admissible set by allowing
        // max size 2 but testing that with subsets of size <= 0 (∅ only)
        // X3 is missed.
        let (dag, problem) = figure_1c();
        let mut oracle = OracleCi::from_dag(dag.clone());
        let cfg = SelectConfig {
            max_admissible_subset: 0,
            ..Default::default()
        };
        let sel = seqsel(&mut oracle, &problem, &cfg).normalized();
        let c1 = names(&dag, &sel.c1);
        assert!(
            !c1.contains(&"X3".to_owned()),
            "∅-only search cannot certify X3"
        );
    }

    #[test]
    fn figure_6_x2_requires_interventional_data() {
        // The documented limitation: X2 is safe by Theorem 1(iii) but no
        // CI pattern certifies it, so SeqSel must reject it.
        let (dag, problem) = figure_6();
        let mut oracle = OracleCi::from_dag(dag.clone());
        let sel = seqsel(&mut oracle, &problem, &SelectConfig::default()).normalized();
        let rejected = names(&dag, &sel.rejected);
        assert!(
            rejected.contains(&"X2".to_owned()),
            "X2 must be missed by CI-only selection: {rejected:?}"
        );
        // X3 ⊥ S1 marginally: the only path X3 → Y ← X2 → S1 is blocked
        // at the collider Y. So X3 ∈ C1 via the ∅ subset.
        let c1 = names(&dag, &sel.c1);
        assert!(c1.contains(&"X3".to_owned()), "X3 ⊥ S1 marginally: {c1:?}");
    }

    #[test]
    fn test_count_linear_in_features() {
        let (dag, problem) = figure_1b();
        let mut counted = CountingCi::new(OracleCi::from_dag(dag));
        let sel = seqsel(&mut counted, &problem, &SelectConfig::default());
        assert_eq!(sel.tests_used, counted.count());
        // Upper bound: |X| · 2^|A| + |X|.
        let bound = (problem.n_features() as u64) * 2 + problem.n_features() as u64;
        assert!(sel.tests_used <= bound, "{} > {bound}", sel.tests_used);
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let (_, problem) = figure_1c();
        let (dag, _) = figure_1c();
        let mut oracle = OracleCi::from_dag(dag);
        let sel = seqsel(&mut oracle, &problem, &SelectConfig::default());
        let mut all: Vec<usize> = sel
            .c1
            .iter()
            .chain(&sel.c2)
            .chain(&sel.rejected)
            .copied()
            .collect();
        all.sort_unstable();
        let mut expected = problem.features.clone();
        expected.sort_unstable();
        assert_eq!(all, expected, "every feature classified exactly once");
    }

    #[test]
    fn empty_feature_set_is_trivial() {
        let (dag, mut problem) = figure_1a();
        problem.features.clear();
        let mut oracle = OracleCi::from_dag(dag);
        let sel = seqsel(&mut oracle, &problem, &SelectConfig::default());
        assert_eq!(sel.tests_used, 0);
        assert!(sel.selected().is_empty());
    }
}
