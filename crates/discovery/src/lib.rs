//! Causal structure discovery: the PC algorithm (Spirtes et al. [49]).
//!
//! The paper's Remark 3 contrasts SeqSel/GrpSel with full causal discovery
//! — PC needs a number of CI tests that is exponential in the worst case —
//! and its evaluation includes the **Fair-PC** baseline, which "learns the
//! causal graph using PC and uses it to infer features that ensure causal
//! fairness". This crate implements that machinery from scratch:
//!
//! * [`pc_skeleton`] — adjacency search with growing conditioning sets,
//!   recording separating sets;
//! * [`pc`] — skeleton + v-structure orientation + Meek rules R1–R3,
//!   producing a [`Cpdag`];
//! * [`Cpdag::possible_descendants_avoiding`] — the reachability query the
//!   Fair-PC baseline uses to drop every feature that *may* be a descendant
//!   of a sensitive attribute in `G_Ā` (Theorem 1(iii)).
//!
//! Because every tester implements `fairsel_ci::CiTest`, PC runs equally
//! against the d-separation oracle (for exact tests) or against data.

use fairsel_ci::{CiTest, VarId};
use fairsel_engine::CiSession;
use std::collections::{BTreeMap, BTreeSet};

/// A completed partially directed acyclic graph: the Markov equivalence
/// class the PC algorithm identifies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cpdag {
    n: usize,
    /// Directed edges `i -> j`.
    // analyze: bounded-by at most n^2 edges of the fixed n-variable graph
    directed: BTreeSet<(VarId, VarId)>,
    /// Undirected edges, stored with `i < j`.
    // analyze: bounded-by at most n(n-1)/2 edges of the fixed n-variable graph
    undirected: BTreeSet<(VarId, VarId)>,
}

impl Cpdag {
    /// Empty CPDAG over `n` variables.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            directed: BTreeSet::new(),
            undirected: BTreeSet::new(),
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n
    }

    /// Is there a directed edge `i -> j`?
    pub fn has_directed(&self, i: VarId, j: VarId) -> bool {
        self.directed.contains(&(i, j))
    }

    /// Is there an undirected edge between `i` and `j`?
    pub fn has_undirected(&self, i: VarId, j: VarId) -> bool {
        self.undirected.contains(&norm(i, j))
    }

    /// Are `i` and `j` adjacent (any edge type)?
    pub fn adjacent(&self, i: VarId, j: VarId) -> bool {
        self.has_undirected(i, j) || self.has_directed(i, j) || self.has_directed(j, i)
    }

    /// All directed edges.
    pub fn directed_edges(&self) -> impl Iterator<Item = (VarId, VarId)> + '_ {
        self.directed.iter().copied()
    }

    /// All undirected edges (with `i < j`).
    pub fn undirected_edges(&self) -> impl Iterator<Item = (VarId, VarId)> + '_ {
        self.undirected.iter().copied()
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.directed.len() + self.undirected.len()
    }

    fn add_undirected(&mut self, i: VarId, j: VarId) {
        assert!(i != j && i < self.n && j < self.n, "bad edge");
        self.undirected.insert(norm(i, j));
    }

    /// Orient the undirected edge `i - j` into `i -> j`.
    fn orient(&mut self, i: VarId, j: VarId) {
        if self.undirected.remove(&norm(i, j)) {
            self.directed.insert((i, j));
        }
    }

    /// Variables that *may* be descendants of `sources` in some member of
    /// the equivalence class: BFS along directed edges (forward only) and
    /// undirected edges (both ways). `avoid` nodes are not traversed
    /// *through* or *into* — this realizes the incoming-edge-removal of
    /// `G_Ā` when `avoid` is the admissible set.
    pub fn possible_descendants_avoiding(&self, sources: &[VarId], avoid: &[VarId]) -> Vec<bool> {
        let mut blocked = vec![false; self.n];
        for &a in avoid {
            blocked[a] = true;
        }
        // Adjacency for traversal.
        let mut next: Vec<Vec<VarId>> = vec![Vec::new(); self.n];
        for &(i, j) in &self.directed {
            next[i].push(j);
        }
        for &(i, j) in &self.undirected {
            next[i].push(j);
            next[j].push(i);
        }
        let mut seen = vec![false; self.n];
        let mut stack: Vec<VarId> = sources.to_vec();
        for &s in sources {
            seen[s] = true;
        }
        while let Some(v) = stack.pop() {
            for &w in &next[v] {
                if !seen[w] && !blocked[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        // Sources themselves are not their own descendants.
        for &s in sources {
            seen[s] = false;
        }
        seen
    }
}

#[inline]
fn norm(i: VarId, j: VarId) -> (VarId, VarId) {
    if i < j {
        (i, j)
    } else {
        (j, i)
    }
}

/// Separating sets discovered during skeleton search, keyed by the
/// normalized pair.
pub type SepSets = BTreeMap<(VarId, VarId), Vec<VarId>>;

/// PC skeleton search over variables `vars`, testing conditioning sets up
/// to size `max_cond`. Returns the undirected skeleton (as a CPDAG with
/// only undirected edges) and the separating sets.
///
/// Queries route through a fresh engine [`CiSession`] (memo cache +
/// telemetry); use [`pc_skeleton_in`] to share a session — and therefore
/// cached answers — with other algorithms (the Fair-PC baseline does).
pub fn pc_skeleton<T: CiTest + ?Sized>(
    tester: &mut T,
    vars: &[VarId],
    max_cond: usize,
) -> (Cpdag, SepSets) {
    let mut session = CiSession::new(tester);
    pc_skeleton_in(&mut session, vars, max_cond)
}

/// [`pc_skeleton`] inside a caller-provided engine session.
pub fn pc_skeleton_in<T: CiTest>(
    session: &mut CiSession<T>,
    vars: &[VarId],
    max_cond: usize,
) -> (Cpdag, SepSets) {
    let n_total = session.n_vars();
    let mut g = Cpdag::new(n_total);
    for (a, &i) in vars.iter().enumerate() {
        for &j in &vars[a + 1..] {
            g.add_undirected(i, j);
        }
    }
    let mut sepsets: SepSets = BTreeMap::new();
    let mut adj: BTreeMap<VarId, BTreeSet<VarId>> = BTreeMap::new();
    for &i in vars {
        adj.insert(i, vars.iter().copied().filter(|&j| j != i).collect());
    }

    for level in 0..=max_cond {
        session.set_phase(&format!("pc/skeleton-L{level}"));
        let mut removed_any = false;
        // Snapshot pairs at this level to keep iteration stable.
        let pairs: Vec<(VarId, VarId)> = g.undirected_edges().collect();
        for (i, j) in pairs {
            if !g.has_undirected(i, j) {
                continue;
            }
            // Candidate conditioning variables: neighbours of i or of j
            // excluding the pair itself.
            let mut found = false;
            for side in [i, j] {
                let other = if side == i { j } else { i };
                let candidates: Vec<VarId> =
                    adj[&side].iter().copied().filter(|&k| k != other).collect();
                if candidates.len() < level {
                    continue;
                }
                for subset in subsets_of_size(&candidates, level) {
                    if session.query(&[i], &[j], &subset).independent {
                        g.undirected.remove(&norm(i, j));
                        adj.get_mut(&i).expect("present").remove(&j);
                        adj.get_mut(&j).expect("present").remove(&i);
                        sepsets.insert(norm(i, j), subset);
                        found = true;
                        removed_any = true;
                        break;
                    }
                }
                if found {
                    break;
                }
            }
        }
        // Early exit: no node has enough neighbours for a larger level.
        let max_deg = adj.values().map(BTreeSet::len).max().unwrap_or(0);
        if !removed_any && max_deg <= level + 1 {
            break;
        }
    }
    session.clear_phase();
    (g, sepsets)
}

/// Enumerate all subsets of `items` with exactly `k` elements.
fn subsets_of_size(items: &[VarId], k: usize) -> Vec<Vec<VarId>> {
    let mut out = Vec::new();
    if k > items.len() {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| items[i]).collect());
        // Advance the combination.
        let mut pos = k;
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            if idx[pos] != pos + items.len() - k {
                break;
            }
        }
        idx[pos] += 1;
        for p in pos + 1..k {
            idx[p] = idx[p - 1] + 1;
        }
    }
}

/// Full PC: skeleton, v-structure orientation, and Meek rules R1–R3.
/// Queries route through a fresh engine session; see [`pc_in`].
pub fn pc<T: CiTest + ?Sized>(tester: &mut T, vars: &[VarId], max_cond: usize) -> Cpdag {
    let mut session = CiSession::new(tester);
    pc_in(&mut session, vars, max_cond)
}

/// [`pc`] inside a caller-provided engine session.
pub fn pc_in<T: CiTest>(session: &mut CiSession<T>, vars: &[VarId], max_cond: usize) -> Cpdag {
    let (mut g, sepsets) = pc_skeleton_in(session, vars, max_cond);

    // Orient v-structures: for every path i - k - j with i,j non-adjacent
    // and k not in sepset(i,j): i -> k <- j.
    let mut orientations: Vec<(VarId, VarId)> = Vec::new();
    for &i in vars {
        for &j in vars {
            if i >= j || g.adjacent(i, j) {
                continue;
            }
            for &k in vars {
                if k == i || k == j {
                    continue;
                }
                if g.has_undirected(i, k) && g.has_undirected(j, k) {
                    let sep = sepsets.get(&norm(i, j));
                    let k_in_sep = sep.is_none_or(|s| s.contains(&k));
                    if !k_in_sep {
                        orientations.push((i, k));
                        orientations.push((j, k));
                    }
                }
            }
        }
    }
    for (from, to) in orientations {
        g.orient(from, to);
    }

    // Meek rules to closure.
    loop {
        let mut changed = false;
        let undirected: Vec<(VarId, VarId)> = g.undirected_edges().collect();
        for (a, b) in undirected {
            if !g.has_undirected(a, b) {
                continue;
            }
            for (x, y) in [(a, b), (b, a)] {
                // R1: z -> x and z not adjacent to y  =>  x -> y.
                let r1 = (0..g.n).any(|z| z != y && g.has_directed(z, x) && !g.adjacent(z, y));
                // R2: x -> w -> y  =>  x -> y.
                let r2 = (0..g.n).any(|w| g.has_directed(x, w) && g.has_directed(w, y));
                // R3: x - z1 -> y, x - z2 -> y, z1 ≠ z2 non-adjacent  =>  x -> y.
                let r3 = {
                    let zs: Vec<VarId> = (0..g.n)
                        .filter(|&z| g.has_undirected(x, z) && g.has_directed(z, y))
                        .collect();
                    zs.iter()
                        .enumerate()
                        .any(|(ii, &z1)| zs[ii + 1..].iter().any(|&z2| !g.adjacent(z1, z2)))
                };
                if r1 || r2 || r3 {
                    g.orient(x, y);
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_ci::OracleCi;
    use fairsel_graph::DagBuilder;

    fn vars(n: usize) -> Vec<VarId> {
        (0..n).collect()
    }

    #[test]
    fn subsets_enumeration() {
        let items = vec![1, 2, 3];
        assert_eq!(subsets_of_size(&items, 0), vec![Vec::<usize>::new()]);
        assert_eq!(subsets_of_size(&items, 1).len(), 3);
        assert_eq!(subsets_of_size(&items, 2).len(), 3);
        assert_eq!(subsets_of_size(&items, 3).len(), 1);
        assert!(subsets_of_size(&items, 4).is_empty());
    }

    #[test]
    fn skeleton_of_chain() {
        // a -> b -> c: skeleton a-b-c without a-c.
        let dag = DagBuilder::new()
            .nodes(["a", "b", "c"])
            .edge("a", "b")
            .edge("b", "c")
            .build();
        let mut oracle = OracleCi::from_dag(dag);
        let (skel, seps) = pc_skeleton(&mut oracle, &vars(3), 2);
        assert!(skel.has_undirected(0, 1));
        assert!(skel.has_undirected(1, 2));
        assert!(!skel.adjacent(0, 2));
        assert_eq!(seps.get(&(0, 2)), Some(&vec![1]));
    }

    #[test]
    fn collider_is_oriented() {
        // a -> c <- b.
        let dag = DagBuilder::new()
            .nodes(["a", "b", "c"])
            .edge("a", "c")
            .edge("b", "c")
            .build();
        let mut oracle = OracleCi::from_dag(dag);
        let g = pc(&mut oracle, &vars(3), 2);
        assert!(g.has_directed(0, 2), "a -> c");
        assert!(g.has_directed(1, 2), "b -> c");
        assert!(!g.adjacent(0, 1));
    }

    #[test]
    fn chain_stays_undirected() {
        // Chain and fork are Markov equivalent: PC must leave both edges
        // undirected.
        let dag = DagBuilder::new()
            .nodes(["a", "b", "c"])
            .edge("a", "b")
            .edge("b", "c")
            .build();
        let mut oracle = OracleCi::from_dag(dag);
        let g = pc(&mut oracle, &vars(3), 2);
        assert!(g.has_undirected(0, 1));
        assert!(g.has_undirected(1, 2));
        assert_eq!(g.directed_edges().count(), 0);
    }

    #[test]
    fn meek_r1_propagates_orientation() {
        // a -> c <- b (v-structure), c - d: R1 orients c -> d because
        // a -> c and a not adjacent to d.
        let dag = DagBuilder::new()
            .nodes(["a", "b", "c", "d"])
            .edge("a", "c")
            .edge("b", "c")
            .edge("c", "d")
            .build();
        let mut oracle = OracleCi::from_dag(dag);
        let g = pc(&mut oracle, &vars(4), 3);
        assert!(g.has_directed(0, 2) && g.has_directed(1, 2));
        assert!(g.has_directed(2, 3), "Meek R1 should orient c -> d");
    }

    #[test]
    fn recovered_adjacencies_match_true_graph() {
        // Diamond: a -> b, a -> c, b -> d, c -> d.
        let dag = DagBuilder::new()
            .nodes(["a", "b", "c", "d"])
            .edge("a", "b")
            .edge("a", "c")
            .edge("b", "d")
            .edge("c", "d")
            .build();
        let mut oracle = OracleCi::from_dag(dag.clone());
        let g = pc(&mut oracle, &vars(4), 3);
        for i in 0..4usize {
            for j in (i + 1)..4 {
                let truly_adjacent = dag.edges().iter().any(|&(f, t)| {
                    (f.index(), t.index()) == (i, j) || (f.index(), t.index()) == (j, i)
                });
                assert_eq!(
                    g.adjacent(i, j),
                    truly_adjacent,
                    "adjacency mismatch on ({i},{j})"
                );
            }
        }
        // d's parents form a v-structure through non-adjacent b, c.
        assert!(g.has_directed(1, 3) && g.has_directed(2, 3));
    }

    #[test]
    fn possible_descendants_traversal() {
        let mut g = Cpdag::new(5);
        g.add_undirected(0, 1);
        g.orient(0, 1); // 0 -> 1
        g.add_undirected(1, 2); // 1 - 2 (either way possible)
        g.add_undirected(3, 4);
        g.orient(4, 3); // 4 -> 3
        let desc = g.possible_descendants_avoiding(&[0], &[]);
        assert!(desc[1] && desc[2], "1 directed, 2 possible via undirected");
        assert!(!desc[3] && !desc[4], "other component untouched");
    }

    #[test]
    fn possible_descendants_respects_avoid() {
        // 0 -> 1 -> 2; avoiding 1 cuts the path.
        let mut g = Cpdag::new(3);
        g.add_undirected(0, 1);
        g.orient(0, 1);
        g.add_undirected(1, 2);
        g.orient(1, 2);
        let desc = g.possible_descendants_avoiding(&[0], &[1]);
        assert!(!desc[1] && !desc[2]);
    }

    #[test]
    fn independent_variables_yield_empty_graph() {
        let dag = DagBuilder::new().nodes(["a", "b", "c"]).build();
        let mut oracle = OracleCi::from_dag(dag);
        let g = pc(&mut oracle, &vars(3), 2);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn pc_on_data_recovers_collider() {
        // Data-driven smoke test with the G-test on a sampled collider.
        use fairsel_ci::GTest;
        use fairsel_scm::DiscreteScmBuilder;
        use fairsel_table::{Column, Role, Table};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let dag = DagBuilder::new()
            .nodes(["a", "b", "c"])
            .edge("a", "c")
            .edge("b", "c")
            .build();
        let (a, b, c) = (
            dag.expect_node("a"),
            dag.expect_node("b"),
            dag.expect_node("c"),
        );
        let scm = DiscreteScmBuilder::uniform_arity(dag, 2)
            .cpt(a, vec![0.5, 0.5])
            .unwrap()
            .cpt(b, vec![0.5, 0.5])
            .unwrap()
            // c strongly depends on both parents (rows: a,b = 00,01,10,11)
            .cpt(c, vec![0.95, 0.05, 0.3, 0.7, 0.25, 0.75, 0.05, 0.95])
            .unwrap()
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let cols = scm.sample(&mut rng, 6000);
        let t = Table::new(vec![
            Column::cat("a", Role::Feature, cols[a.index()].clone(), 2),
            Column::cat("b", Role::Feature, cols[b.index()].clone(), 2),
            Column::cat("c", Role::Feature, cols[c.index()].clone(), 2),
        ])
        .unwrap();
        let mut tester = GTest::new(&t, 0.01);
        let g = pc(&mut tester, &vars(3), 2);
        assert!(g.has_directed(0, 2), "a -> c from data");
        assert!(g.has_directed(1, 2), "b -> c from data");
        assert!(!g.adjacent(0, 1));
    }
}
