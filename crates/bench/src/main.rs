//! Emit `BENCH_engine.json`: SeqSel vs GrpSel trajectories through the
//! execution engine (tests issued, cache hits, wall ms).
//!
//! ```text
//! cargo run --release -p fairsel-bench            # full suite
//! cargo run --release -p fairsel-bench -- --quick # CI-sized
//! cargo run --release -p fairsel-bench -- --out path.json
//! ```

use fairsel_bench::{default_suite, to_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_engine.json".to_owned());

    let results = default_suite(quick);
    for r in &results {
        println!(
            "{:<20} {:<14} issued {:>8}  hits {:>6}  {:>10.2} ms  selected {:>5}/{}",
            r.scenario, r.algo, r.issued, r.cache_hits, r.wall_ms, r.selected, r.n_features
        );
    }
    let json = to_json(&results);
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path} ({} runs)", results.len());
}
