//! Emit `BENCH_engine.json`: SeqSel vs GrpSel trajectories through the
//! execution engine (tests issued, cache hits, encode-cache reuse,
//! wall ms).
//!
//! ```text
//! cargo run --release -p fairsel-bench            # full suite
//! cargo run --release -p fairsel-bench -- --quick # CI-sized
//! cargo run --release -p fairsel-bench -- --smoke # data-tester smoke, validated
//! cargo run --release -p fairsel-bench -- --out path.json
//! ```
//!
//! `--smoke` runs only the data-tester scenarios on tiny inputs and exits
//! non-zero when the emitted JSON is malformed or the encode-cache hit
//! counters are absent — the CI guard for the batched execution path.

use fairsel_bench::{default_suite, smoke_suite, to_json, validate_bench_json};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_engine.json".to_owned());

    let results = if smoke {
        smoke_suite()
    } else {
        default_suite(quick)
    };
    for r in &results {
        let tail = if r.hist_total > 0 {
            format!(
                "  p50/p95/p99 {:.2}/{:.2}/{:.2} ms (n={})",
                r.p50_ms, r.p95_ms, r.p99_ms, r.hist_total
            )
        } else if r.rows > 0 {
            format!("  {:.1} ns/row  hash {}", r.ns_per_row, r.pvalue_hash)
        } else {
            String::new()
        };
        println!(
            "{:<30} {:<20} issued {:>6}  hits {:>5}  spec {:>4}/{:<4}  enc-hits {:>6}  {:>9.2} ms  selected {:>4}/{}{}",
            r.scenario,
            r.algo,
            r.issued,
            r.cache_hits,
            r.speculative_hits,
            r.speculative_issued,
            r.encode_hits,
            r.wall_ms,
            r.selected,
            r.n_features,
            tail
        );
    }
    let json = to_json(&results);
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path} ({} runs)", results.len());

    if smoke {
        if let Err(e) = validate_bench_json(&json) {
            eprintln!("smoke validation FAILED: {e}");
            return ExitCode::FAILURE;
        }
        println!("smoke validation passed");
    }
    ExitCode::SUCCESS
}
