//! Dependency-light timing harness: SeqSel vs GrpSel through the
//! execution engine, on oracle and data testers, over the synthetic
//! fixtures — the numbers behind `BENCH_engine.json`.
//!
//! Everything is measured with `std::time::Instant`; no external
//! benchmarking framework. Each scenario reports CI tests issued (the
//! paper's complexity currency), engine cache behavior, and wall time.

use fairsel_ci::{CiTest, GTest, OracleCi};
use fairsel_core::{grpsel_in, grpsel_par_in, seqsel_in, Problem, SelectConfig};
use fairsel_datasets::sim::sample_table;
use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
use fairsel_engine::{default_workers, CiSession};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One measured run.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Scenario label, e.g. `oracle/n=256`.
    pub scenario: String,
    /// Algorithm label, e.g. `grpsel-par4`.
    pub algo: String,
    /// Number of candidate features in the instance.
    pub n_features: usize,
    /// Logical queries routed through the engine.
    pub requested: u64,
    /// CI tests actually issued (post-cache).
    pub issued: u64,
    /// Cache hits (memo + in-batch dedup).
    pub cache_hits: u64,
    /// End-to-end selection wall time, milliseconds.
    pub wall_ms: f64,
    /// Features the run selected.
    pub selected: usize,
}

impl BenchResult {
    fn json(&self) -> String {
        format!(
            "{{\"scenario\":\"{}\",\"algo\":\"{}\",\"n_features\":{},\
             \"requested\":{},\"issued\":{},\"cache_hits\":{},\
             \"wall_ms\":{:.3},\"selected\":{}}}",
            self.scenario,
            self.algo,
            self.n_features,
            self.requested,
            self.issued,
            self.cache_hits,
            self.wall_ms,
            self.selected
        )
    }
}

/// Serialize a suite to a JSON document (an object with a `runs` array),
/// ready to be written as `BENCH_engine.json`.
pub fn to_json(results: &[BenchResult]) -> String {
    let mut s = String::from("{\"bench\":\"fairsel-engine\",\"runs\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&r.json());
    }
    s.push_str("]}");
    s
}

fn measure<T: CiTest, F>(
    scenario: &str,
    algo: &str,
    n_features: usize,
    session: &mut CiSession<T>,
    run: F,
) -> BenchResult
where
    F: FnOnce(&mut CiSession<T>) -> usize,
{
    let t0 = Instant::now();
    let selected = run(session);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = session.stats();
    BenchResult {
        scenario: scenario.to_owned(),
        algo: algo.to_owned(),
        n_features,
        requested: stats.requested,
        issued: stats.issued,
        cache_hits: stats.cache_hits,
        wall_ms,
        selected,
    }
}

/// SeqSel vs GrpSel (sequential and parallel) against the d-separation
/// oracle on fairness-structured synthetic DAGs of growing width — the
/// `O(n)` vs `O(k log n)` curve of Figures 4–5.
pub fn oracle_scaling(sizes: &[usize], workers: usize) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for &n in sizes {
        let cfg = SyntheticConfig {
            n_features: n,
            biased_fraction: 0.05,
            ..Default::default()
        };
        let inst = synthetic_instance(&mut StdRng::seed_from_u64(n as u64), &cfg);
        let problem = Problem::from_roles(&inst.roles);
        let select = SelectConfig::default();
        let scenario = format!("oracle/n={n}");

        let mut tester = OracleCi::from_dag(inst.dag.clone());
        let mut session = CiSession::new(&mut tester);
        out.push(measure(&scenario, "seqsel", n, &mut session, |s| {
            seqsel_in(s, &problem, &select).selected().len()
        }));

        let mut tester = OracleCi::from_dag(inst.dag.clone());
        let mut session = CiSession::new(&mut tester);
        out.push(measure(&scenario, "grpsel", n, &mut session, |s| {
            grpsel_in(s, &problem, &select, None).selected().len()
        }));

        let mut tester = OracleCi::from_dag(inst.dag.clone());
        let mut session = CiSession::new(&mut tester);
        let algo = format!("grpsel-par{workers}");
        out.push(measure(&scenario, &algo, n, &mut session, |s| {
            grpsel_par_in(s, &problem, &select, None, workers)
                .selected()
                .len()
        }));
    }
    out
}

/// SeqSel vs GrpSel with the G-test on sampled data — the finite-sample
/// regime where each CI test costs real work and parallel batches pay off.
pub fn data_scaling(n_features: usize, rows: usize, workers: usize) -> Vec<BenchResult> {
    let cfg = SyntheticConfig {
        n_features,
        biased_fraction: 0.1,
        predictive_fraction: 0.25,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(42);
    let inst = synthetic_instance(&mut rng, &cfg);
    let scm = synthetic_scm(&mut rng, &inst, 1.5);
    let table = sample_table(&scm, &inst.roles, rows, &mut rng);
    let problem = Problem::from_table(&table);
    let select = SelectConfig::default();
    let scenario = format!("gtest/n={n_features}/rows={rows}");
    let mut out = Vec::new();

    let mut tester = GTest::new(&table, 0.01);
    let mut session = CiSession::new(&mut tester);
    out.push(measure(
        &scenario,
        "seqsel",
        n_features,
        &mut session,
        |s| seqsel_in(s, &problem, &select).selected().len(),
    ));

    let mut tester = GTest::new(&table, 0.01);
    let mut session = CiSession::new(&mut tester);
    out.push(measure(
        &scenario,
        "grpsel",
        n_features,
        &mut session,
        |s| grpsel_in(s, &problem, &select, None).selected().len(),
    ));

    let mut tester = GTest::new(&table, 0.01);
    let mut session = CiSession::new(&mut tester);
    let algo = format!("grpsel-par{workers}");
    out.push(measure(&scenario, &algo, n_features, &mut session, |s| {
        grpsel_par_in(s, &problem, &select, None, workers)
            .selected()
            .len()
    }));
    out
}

/// The cache story: the same workload replayed inside one session issues
/// zero new tests the second time.
pub fn cache_replay(n_features: usize) -> Vec<BenchResult> {
    let cfg = SyntheticConfig {
        n_features,
        biased_fraction: 0.1,
        ..Default::default()
    };
    let inst = synthetic_instance(&mut StdRng::seed_from_u64(7), &cfg);
    let problem = Problem::from_roles(&inst.roles);
    let select = SelectConfig::default();
    let scenario = format!("replay/n={n_features}");

    let mut tester = OracleCi::from_dag(inst.dag.clone());
    let mut session = CiSession::new(&mut tester);
    let first = measure(&scenario, "seqsel-cold", n_features, &mut session, |s| {
        seqsel_in(s, &problem, &select).selected().len()
    });
    // Second run in the same session: everything is a cache hit, so the
    // deltas below come out as issued = 0.
    let before = (
        session.stats().requested,
        session.stats().issued,
        session.stats().cache_hits,
    );
    let t0 = Instant::now();
    let selected = seqsel_in(&mut session, &problem, &select).selected().len();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = session.stats();
    let second = BenchResult {
        scenario,
        algo: "seqsel-warm".to_owned(),
        n_features,
        requested: stats.requested - before.0,
        issued: stats.issued - before.1,
        cache_hits: stats.cache_hits - before.2,
        wall_ms,
        selected,
    };
    vec![first, second]
}

/// The full suite. `quick` keeps sizes small enough for CI.
pub fn bench_suite(quick: bool, workers: usize) -> Vec<BenchResult> {
    let oracle_sizes: &[usize] = if quick {
        &[32, 128]
    } else {
        &[64, 256, 1024, 4096]
    };
    let (data_n, data_rows) = if quick { (16, 1500) } else { (24, 6000) };
    let mut out = oracle_scaling(oracle_sizes, workers);
    out.extend(data_scaling(data_n, data_rows, workers));
    out.extend(cache_replay(if quick { 32 } else { 128 }));
    out
}

/// Suite with the default worker count.
pub fn default_suite(quick: bool) -> Vec<BenchResult> {
    bench_suite(quick, default_workers())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_runs_and_serializes() {
        let results = bench_suite(true, 2);
        assert!(results.len() >= 8);
        let json = to_json(&results);
        assert!(json.starts_with("{\"bench\":\"fairsel-engine\""));
        assert!(json.contains("\"algo\":\"grpsel\""));
        assert!(json.contains("\"scenario\":\"replay/n=32\""));
    }

    #[test]
    fn grpsel_issues_fewer_tests_at_scale() {
        let results = oracle_scaling(&[256], 2);
        let issued = |algo: &str| {
            results
                .iter()
                .find(|r| r.algo == algo)
                .map(|r| r.issued)
                .expect("algo present")
        };
        assert!(
            issued("grpsel") < issued("seqsel"),
            "grpsel {} !< seqsel {}",
            issued("grpsel"),
            issued("seqsel")
        );
        assert_eq!(
            issued("grpsel"),
            issued("grpsel-par2"),
            "parallelism is free"
        );
    }

    #[test]
    fn warm_replay_issues_nothing() {
        let results = cache_replay(24);
        let warm = results.iter().find(|r| r.algo == "seqsel-warm").unwrap();
        assert_eq!(warm.issued, 0, "warm run must be fully cached");
        assert!(warm.cache_hits > 0);
        assert_eq!(warm.requested, warm.cache_hits);
    }
}
