// placeholder
