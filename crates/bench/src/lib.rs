//! Dependency-light timing harness: SeqSel vs GrpSel through the
//! execution engine, on oracle and data testers, over the synthetic
//! fixtures — the numbers behind `BENCH_engine.json`.
//!
//! Everything is measured with `std::time::Instant`; no external
//! benchmarking framework. Each scenario reports CI tests issued (the
//! paper's complexity currency), engine cache behavior, and wall time.
//! Timed scenarios run `repeats` times on fresh sessions and report the
//! **median** wall time (single-shot numbers on shared hardware jitter
//! more than the deltas being measured); counters are deterministic
//! across repeats, so any repeat's counters are the counters.

use fairsel_ci::{CiTest, CiTestBatch, FisherZ, GTest, KernelMode, OracleCi};
use fairsel_core::{
    grpsel_batched_in, grpsel_in, grpsel_par_in, grpsel_ungrouped_in, seqsel_in, Problem,
    SelectConfig,
};
use fairsel_datasets::sim::sample_table;
use fairsel_datasets::synthetic::{synthetic_instance, synthetic_scm, SyntheticConfig};
use fairsel_engine::{default_workers, CiSession};
use fairsel_table::{EncodedTable, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// One measured run.
#[derive(Clone, Debug, Default)]
pub struct BenchResult {
    /// Scenario label, e.g. `oracle/n=256`.
    pub scenario: String,
    /// Algorithm label, e.g. `grpsel-par4`.
    pub algo: String,
    /// Number of candidate features in the instance.
    pub n_features: usize,
    /// Logical queries routed through the engine.
    pub requested: u64,
    /// CI tests actually issued (post-cache).
    pub issued: u64,
    /// Cache hits (memo + in-batch dedup).
    pub cache_hits: u64,
    /// Encoding-layer cache hits (variable-set encodings reused).
    pub encode_hits: u64,
    /// Encoding-layer cache misses (encodings computed).
    pub encode_misses: u64,
    /// Queries evaluated speculatively (predicted frontier work).
    pub speculative_issued: u64,
    /// Demanded queries answered by a speculative evaluation; for one
    /// workload, `issued + speculative_hits` of a speculative run equals
    /// `issued` of the non-speculative run (conservation — validated by
    /// the smoke suite).
    pub speculative_hits: u64,
    /// End-to-end selection wall time, milliseconds (median of repeats).
    pub wall_ms: f64,
    /// Request payload bytes shipped over the wire per request (frame
    /// header included) — `0` for non-serving scenarios. The
    /// fp-addressed serving row proves warm requests shrink to bytes.
    pub req_bytes: u64,
    /// Features the run selected.
    pub selected: usize,
    /// Per-request latency percentiles, milliseconds — `0` for scenarios
    /// that measure one aggregate wall time instead of a distribution.
    /// Derived from a log2-bucketed [`fairsel_obs::Histogram`], so
    /// `p50 <= p95 <= p99 <= max` holds by construction (the validator
    /// enforces it wherever `hist_total > 0`).
    pub p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Maximum observed request latency, milliseconds.
    pub max_ms: f64,
    /// Number of per-request samples behind the percentiles.
    pub hist_total: u64,
    /// Table rows in the instance — `0` for scenarios that don't sweep
    /// the row count (only `rows-scaling/*` populates it).
    pub rows: u64,
    /// Wall time normalized per table row, nanoseconds — the
    /// hardware-shaped-kernel currency (`0` outside `rows-scaling/*`).
    pub ns_per_row: f64,
    /// Hex FNV digest of every memoized outcome's exact bit patterns
    /// (p-value, statistic, verdict) in canonical key order. Rows of the
    /// same scenario must agree — the validator-enforced proof that the
    /// kernel variants being timed are byte-identical. Empty for
    /// scenarios that don't compare kernels.
    pub pvalue_hash: String,
    /// Contingency cells filled through the dense counting arenas.
    pub dense_count_cells: u64,
    /// Bytes of width-adaptive (u8/u16/u32) code storage built.
    pub narrow_code_bytes: u64,
    /// Rows appended to a resident dataset before this run — nonzero only
    /// for the `append/reselect` warm rows, where the validator requires
    /// it (the proof the session was extended, not rebuilt).
    pub append_rows: u64,
    /// Cached variable-set encodings carried across the append by
    /// [`fairsel_table::EncodedTable::extend`] instead of being recomputed
    /// — the streaming-append reuse currency, validator-enforced nonzero
    /// on the warm rows.
    pub extended_encodings: u64,
    /// Memoized outcomes re-derived at the new `n` from patched
    /// sufficient statistics at session extension — nonzero only on the
    /// `append-reselect-patched` rows, where the validator requires it
    /// (the proof the re-select paid O(batch) statistical work, not
    /// O(workload)).
    pub memo_patched: u64,
    /// Memoized outcomes the extension could not patch (evicted counts,
    /// unstable encodings, non-patchable tester) — re-issued on demand.
    /// Together with `memo_patched` this conserves the parent's memo
    /// size, validator-enforced against the invalidate-all baseline row.
    pub memo_invalidated: u64,
}

impl BenchResult {
    fn json(&self) -> String {
        format!(
            "{{\"scenario\":\"{}\",\"algo\":\"{}\",\"n_features\":{},\
             \"requested\":{},\"issued\":{},\"cache_hits\":{},\
             \"speculative_issued\":{},\"speculative_hits\":{},\
             \"encode_hits\":{},\"encode_misses\":{},\
             \"wall_ms\":{:.3},\"req_bytes\":{},\"selected\":{},\
             \"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3},\
             \"max_ms\":{:.3},\"hist_total\":{},\"rows\":{},\
             \"ns_per_row\":{:.3},\"pvalue_hash\":\"{}\",\
             \"dense_count_cells\":{},\"narrow_code_bytes\":{},\
             \"append_rows\":{},\"extended_encodings\":{},\
             \"memo_patched\":{},\"memo_invalidated\":{}}}",
            self.scenario,
            self.algo,
            self.n_features,
            self.requested,
            self.issued,
            self.cache_hits,
            self.speculative_issued,
            self.speculative_hits,
            self.encode_hits,
            self.encode_misses,
            self.wall_ms,
            self.req_bytes,
            self.selected,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.max_ms,
            self.hist_total,
            self.rows,
            self.ns_per_row,
            self.pvalue_hash,
            self.dense_count_cells,
            self.narrow_code_bytes,
            self.append_rows,
            self.extended_encodings,
            self.memo_patched,
            self.memo_invalidated
        )
    }

    /// Fill the percentile columns from a recorded latency histogram
    /// (µs buckets → ms columns).
    fn set_latency(&mut self, snap: &fairsel_obs::HistSnapshot) {
        self.p50_ms = snap.p50() as f64 / 1e3;
        self.p95_ms = snap.p95() as f64 / 1e3;
        self.p99_ms = snap.p99() as f64 / 1e3;
        self.max_ms = snap.max as f64 / 1e3;
        self.hist_total = snap.count;
    }
}

/// Run a scenario `repeats` times on fresh state and keep the median wall
/// time. Counters are taken from the median run; every run's counters are
/// identical by determinism (fresh sessions, fixed seeds).
fn median_of_repeats(repeats: usize, run: impl Fn() -> BenchResult) -> BenchResult {
    let mut results: Vec<BenchResult> = (0..repeats.max(1)).map(|_| run()).collect();
    results.sort_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms));
    let mid = results.len() / 2;
    results.swap_remove(mid)
}

/// Serialize a suite to a JSON document (an object with a `runs` array),
/// ready to be written as `BENCH_engine.json`.
pub fn to_json(results: &[BenchResult]) -> String {
    let mut s = String::from("{\"bench\":\"fairsel-engine\",\"runs\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&r.json());
    }
    s.push_str("]}");
    s
}

fn measure<T: CiTest, F>(
    scenario: &str,
    algo: &str,
    n_features: usize,
    session: &mut CiSession<T>,
    run: F,
) -> BenchResult
where
    F: FnOnce(&mut CiSession<T>) -> usize,
{
    let t0 = Instant::now();
    let selected = run(session);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = session.stats();
    // Counter-completeness self-check: every EngineStats counter must
    // survive into the serialized stats document (the R5 contract),
    // verified live on every measured run.
    if let Err(e) = validate_stats_json(&stats.to_json()) {
        panic!("engine stats serialization lost a counter: {e}");
    }
    BenchResult {
        scenario: scenario.to_owned(),
        algo: algo.to_owned(),
        n_features,
        requested: stats.requested,
        issued: stats.issued,
        cache_hits: stats.cache_hits,
        encode_hits: stats.encode_cache_hits,
        encode_misses: stats.encode_cache_misses,
        speculative_issued: stats.speculative_issued,
        speculative_hits: stats.speculative_hits,
        wall_ms,
        req_bytes: 0,
        selected,
        ..Default::default()
    }
}

/// SeqSel vs GrpSel (sequential and parallel) against the d-separation
/// oracle on fairness-structured synthetic DAGs of growing width — the
/// `O(n)` vs `O(k log n)` curve of Figures 4–5.
pub fn oracle_scaling(sizes: &[usize], workers: usize, repeats: usize) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for &n in sizes {
        let cfg = SyntheticConfig {
            n_features: n,
            biased_fraction: 0.05,
            ..Default::default()
        };
        let inst = synthetic_instance(&mut StdRng::seed_from_u64(n as u64), &cfg);
        let problem = Problem::from_roles(&inst.roles);
        let select = SelectConfig::default();
        let scenario = format!("oracle/n={n}");

        out.push(median_of_repeats(repeats, || {
            let mut session = CiSession::new(OracleCi::from_dag(inst.dag.clone()));
            measure(&scenario, "seqsel", n, &mut session, |s| {
                seqsel_in(s, &problem, &select).selected().len()
            })
        }));
        out.push(median_of_repeats(repeats, || {
            let mut session = CiSession::new(OracleCi::from_dag(inst.dag.clone()));
            measure(&scenario, "grpsel", n, &mut session, |s| {
                grpsel_in(s, &problem, &select, None).selected().len()
            })
        }));
        let algo = format!("grpsel-par{workers}");
        out.push(median_of_repeats(repeats, || {
            let mut session = CiSession::new(OracleCi::from_dag(inst.dag.clone()));
            measure(&scenario, &algo, n, &mut session, |s| {
                grpsel_par_in(s, &problem, &select, None, workers)
                    .selected()
                    .len()
            })
        }));
    }
    out
}

/// SeqSel vs GrpSel with the G-test on sampled data — the finite-sample
/// regime where each CI test costs real work and parallel batches pay off.
pub fn data_scaling(
    n_features: usize,
    rows: usize,
    workers: usize,
    repeats: usize,
) -> Vec<BenchResult> {
    let cfg = SyntheticConfig {
        n_features,
        biased_fraction: 0.1,
        predictive_fraction: 0.25,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(42);
    let inst = synthetic_instance(&mut rng, &cfg);
    let scm = synthetic_scm(&mut rng, &inst, 1.5);
    let table = sample_table(&scm, &inst.roles, rows, &mut rng);
    let problem = Problem::from_table(&table);
    let select = SelectConfig::default();
    let scenario = format!("gtest/n={n_features}/rows={rows}");
    let mut out = Vec::new();

    out.push(median_of_repeats(repeats, || {
        let mut session = CiSession::new(GTest::new(&table, 0.01));
        measure(&scenario, "seqsel", n_features, &mut session, |s| {
            seqsel_in(s, &problem, &select).selected().len()
        })
    }));
    out.push(median_of_repeats(repeats, || {
        let mut session = CiSession::new(GTest::new(&table, 0.01));
        measure(&scenario, "grpsel", n_features, &mut session, |s| {
            grpsel_in(s, &problem, &select, None).selected().len()
        })
    }));
    let algo = format!("grpsel-par{workers}");
    out.push(median_of_repeats(repeats, || {
        let mut session = CiSession::new(GTest::new(&table, 0.01));
        measure(&scenario, &algo, n_features, &mut session, |s| {
            grpsel_par_in(s, &problem, &select, None, workers)
                .selected()
                .len()
        })
    }));
    out
}

/// The batch-execution story: GrpSel with the G-test (and Fisher-z)
/// through four execution strategies on the same instance and seed —
///
/// * `grpsel-nocache`: the per-query baseline, every query re-deriving
///   its joint encodings (memoization disabled — the pre-`EncodedTable`
///   data path);
/// * `grpsel-batched`: the pre-grouping batched scheduler (PR 2/3):
///   frontiers through `eval_batch` over the shared encoding caches,
///   serially, with no conditioning-set partitioning;
/// * `grpsel-batched-parN`: the **Z-grouped scheduler** — frontiers
///   partitioned by canonical conditioning set, one scaffold per distinct
///   `Z` (`eval_z_group`), group chunks stolen from the persistent worker
///   pool's shared deque at N workers;
/// * `grpsel-spec`: the Z-grouped scheduler with speculative frontier
///   waves on — the `speculative_*` columns measure the policy, and
///   `issued + speculative_hits` equals the non-speculative `issued`
///   (conservation, enforced by [`validate_bench_json`]).
///
/// Selections are byte-identical across all four (property-tested in
/// `fairsel-tests`); the rows differ only in wall time and counters.
pub fn data_tester_modes(
    n_features: usize,
    rows: usize,
    workers: usize,
    repeats: usize,
) -> Vec<BenchResult> {
    // A high biased fraction keeps many features in play for phase 2,
    // whose frontier conditions every query on the same wide `A ∪ C₁`
    // set — exactly the shape where per-query re-encoding hurts most.
    let cfg = SyntheticConfig {
        n_features,
        biased_fraction: 0.4,
        predictive_fraction: 0.25,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(42);
    let inst = synthetic_instance(&mut rng, &cfg);
    let scm = synthetic_scm(&mut rng, &inst, 1.5);
    let table = sample_table(&scm, &inst.roles, rows, &mut rng);
    let problem = Problem::from_table(&table);
    let select = SelectConfig {
        max_group: Some(SelectConfig::auto_max_group(rows)),
        ..Default::default()
    };
    let mut out = Vec::new();
    let gtest_scenario = format!("gtest-batch/n={n_features}/rows={rows}");
    modes_for(
        &mut out,
        &gtest_scenario,
        n_features,
        &problem,
        &select,
        workers,
        repeats,
        |cached| GTest::over(encoded(&table, cached), 0.01),
    );
    let fz_scenario = format!("fisherz-batch/n={n_features}/rows={rows}");
    modes_for(
        &mut out,
        &fz_scenario,
        n_features,
        &problem,
        &select,
        workers,
        repeats,
        |cached| FisherZ::over(encoded(&table, cached), 0.01),
    );
    out
}

/// Pool scaling of the Z-grouped scheduler: the same G-test workload at
/// 1/2/4/8 workers. On a single-core host the curve is flat — that is
/// the honest reading; the scenario exists so multi-core hosts (and
/// regressions in pool dispatch overhead) are visible in the committed
/// numbers.
pub fn workers_scaling(n_features: usize, rows: usize, repeats: usize) -> Vec<BenchResult> {
    let cfg = SyntheticConfig {
        n_features,
        biased_fraction: 0.4,
        predictive_fraction: 0.25,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(42);
    let inst = synthetic_instance(&mut rng, &cfg);
    let scm = synthetic_scm(&mut rng, &inst, 1.5);
    let table = sample_table(&scm, &inst.roles, rows, &mut rng);
    let problem = Problem::from_table(&table);
    let select = SelectConfig {
        max_group: Some(SelectConfig::auto_max_group(rows)),
        ..Default::default()
    };
    let scenario = format!("workers-scaling/n={n_features}/rows={rows}");
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|w| {
            let algo = format!("grpsel-batched-par{w}");
            median_of_repeats(repeats, || {
                let mut session = CiSession::new(GTest::over(encoded(&table, true), 0.01));
                measure(&scenario, &algo, n_features, &mut session, |s| {
                    grpsel_batched_in(s, &problem, &select, None, w)
                        .selected()
                        .len()
                })
            })
        })
        .collect()
}

/// The hardware-shaped-kernel story: the same GrpSel workload at growing
/// row counts, each kernel generation timed on identical queries. Two
/// scenario families:
///
/// * `rows-scaling/gtest/rows=R` — `kernels-narrow` (width-adaptive
///   codes, dense counting arenas, memoized CSR scaffolds) vs
///   `kernels-reference` (the pre-kernel path: u32-widened codes, hashed
///   or freshly allocated per-query counting);
/// * `rows-scaling/fisherz/rows=R` — `kernels-blocked` (fused
///   two-pass Pearson, cache-blocked products, triangular Gram
///   formation) vs `kernels-naive` (the reference loops, forced via
///   the process-wide toggle).
///
/// Every row carries `ns_per_row` (the per-row kernel cost) and
/// `pvalue_hash`, a bit-exact digest of every cached outcome; the
/// validator rejects the document if the two kernels of any scenario
/// disagree on a single bit.
pub fn rows_scaling(row_sizes: &[usize], workers: usize, repeats: usize) -> Vec<BenchResult> {
    let n_features = 16;
    let mut out = Vec::new();
    for &rows in row_sizes {
        let cfg = SyntheticConfig {
            n_features,
            biased_fraction: 0.25,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(rows as u64);
        let inst = synthetic_instance(&mut rng, &cfg);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        let table = sample_table(&scm, &inst.roles, rows, &mut rng);
        let problem = Problem::from_table(&table);
        let select = SelectConfig {
            max_group: Some(SelectConfig::auto_max_group(rows)),
            ..Default::default()
        };
        // Large instances are dominated by kernel time, not run-to-run
        // jitter; one shot keeps the suite tractable.
        let reps = if rows >= 100_000 { 1 } else { repeats };

        let scenario = format!("rows-scaling/gtest/rows={rows}");
        for (algo, mode) in [
            ("kernels-narrow", KernelMode::Narrow),
            ("kernels-reference", KernelMode::Reference),
        ] {
            if reps == 1 {
                // Single-shot sizes get one untimed pass first: a fresh
                // process pays page-fault and allocator warm-up that
                // would otherwise land entirely on whichever variant
                // runs first and swamp the kernel difference under test.
                let tester = GTest::over(encoded(&table, true), 0.01).with_kernel_mode(mode);
                let mut session = CiSession::new(tester);
                let _ = grpsel_batched_in(&mut session, &problem, &select, None, workers);
            }
            out.push(median_of_repeats(reps, || {
                let tester = GTest::over(encoded(&table, true), 0.01).with_kernel_mode(mode);
                let mut session = CiSession::new(tester);
                let mut row = measure(&scenario, algo, n_features, &mut session, |s| {
                    let sel = grpsel_batched_in(s, &problem, &select, None, workers)
                        .selected()
                        .len();
                    s.refresh_encode_stats();
                    sel
                });
                finish_scaling_row(&mut row, rows, &session);
                row
            }));
        }

        let scenario = format!("rows-scaling/fisherz/rows={rows}");
        for (algo, naive) in [("kernels-blocked", false), ("kernels-naive", true)] {
            if reps == 1 {
                // Same untimed warm-up as the G-test pair above.
                fairsel_math::set_naive_kernels(naive);
                let tester = FisherZ::over(encoded(&table, true), 0.01);
                let mut session = CiSession::new(tester);
                let _ = grpsel_batched_in(&mut session, &problem, &select, None, workers);
                fairsel_math::set_naive_kernels(false);
            }
            out.push(median_of_repeats(reps, || {
                fairsel_math::set_naive_kernels(naive);
                let tester = FisherZ::over(encoded(&table, true), 0.01);
                let mut session = CiSession::new(tester);
                let mut row = measure(&scenario, algo, n_features, &mut session, |s| {
                    let sel = grpsel_batched_in(s, &problem, &select, None, workers)
                        .selected()
                        .len();
                    s.refresh_encode_stats();
                    sel
                });
                fairsel_math::set_naive_kernels(false);
                finish_scaling_row(&mut row, rows, &session);
                row
            }));
        }
    }
    out
}

/// Fill the rows-scaling columns of a freshly measured row.
fn finish_scaling_row<T: CiTest>(row: &mut BenchResult, rows: usize, session: &CiSession<T>) {
    row.rows = rows as u64;
    row.ns_per_row = row.wall_ms * 1e6 / rows.max(1) as f64;
    row.pvalue_hash = format!("{:016x}", session.outcomes_fingerprint());
    row.dense_count_cells = session.stats().dense_count_cells;
    row.narrow_code_bytes = session.stats().narrow_code_bytes;
}

fn encoded(table: &Table, cached: bool) -> Arc<EncodedTable> {
    Arc::new(if cached {
        EncodedTable::new(table)
    } else {
        EncodedTable::new_uncached(table)
    })
}

/// Run one scenario's four execution modes (per-query uncached baseline,
/// legacy ungrouped batched, Z-grouped + worker pool, Z-grouped +
/// speculation) for any batch-aware tester.
#[allow(clippy::too_many_arguments)]
fn modes_for<T, F>(
    out: &mut Vec<BenchResult>,
    scenario: &str,
    n_features: usize,
    problem: &Problem,
    select: &SelectConfig,
    workers: usize,
    repeats: usize,
    mk: F,
) where
    T: CiTestBatch,
    F: Fn(bool) -> T,
{
    // Per-query baseline: encoding memoization off. The per-query route
    // doesn't sync encode counters on its own, so refresh before the
    // session stats are read.
    out.push(median_of_repeats(repeats, || {
        let mut session = CiSession::new(mk(false));
        measure(scenario, "grpsel-nocache", n_features, &mut session, |s| {
            let selected = grpsel_in(s, problem, select, None).selected().len();
            s.refresh_encode_stats();
            selected
        })
    }));

    // Legacy batched scheduler: shared encoding caches, no Z-grouping.
    out.push(median_of_repeats(repeats, || {
        let mut session = CiSession::new(mk(true));
        measure(scenario, "grpsel-batched", n_features, &mut session, |s| {
            grpsel_ungrouped_in(s, problem, select, None, 1)
                .selected()
                .len()
        })
    }));

    // Z-grouped scheduler on the persistent pool.
    let algo = format!("grpsel-batched-par{workers}");
    out.push(median_of_repeats(repeats, || {
        let mut session = CiSession::new(mk(true));
        measure(scenario, &algo, n_features, &mut session, |s| {
            grpsel_batched_in(s, problem, select, None, workers)
                .selected()
                .len()
        })
    }));

    // Z-grouped + speculative frontier waves.
    let speculative = SelectConfig {
        speculate: true,
        ..select.clone()
    };
    out.push(median_of_repeats(repeats, || {
        let mut session = CiSession::new(mk(true));
        measure(scenario, "grpsel-spec", n_features, &mut session, |s| {
            grpsel_batched_in(s, problem, &speculative, None, workers)
                .selected()
                .len()
        })
    }));
}

/// Selected-feature count reported in a `select` response body: the
/// quoted admitted names on the c1/c2 report lines. One definition for
/// every serving scenario, so a report-format change cannot silently
/// zero one scenario's `selected` column while another keeps parsing.
fn selected_in_body(body: &str) -> usize {
    body.lines()
        .filter(|l| l.starts_with("c1 ") || l.starts_with("c2 "))
        .map(|l| l.matches('"').count() / 2)
        .sum()
}

/// The serving story: cold vs warm request latency against an in-process
/// `fairsel-server`. The same `select` workload is sent twice over TCP;
/// the first request pays CSV parse + split + encode + every CI test, the
/// second is answered from the fingerprint-sharded shared session (zero
/// tests issued, memo hits only). Counter columns: the cold row carries
/// the first request's cumulative engine stats, the warm row the *delta*
/// of the second (so `issued = 0` is the acceptance signal); encode
/// columns stay cumulative, showing the cache the warm request reused.
pub fn serve_cold_warm(n_features: usize, rows: usize) -> Vec<BenchResult> {
    use fairsel_server::{request, Request, Response, ServeConfig, Server, WorkloadRequest};

    let cfg = SyntheticConfig {
        n_features,
        biased_fraction: 0.2,
        predictive_fraction: 0.25,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(42);
    let inst = synthetic_instance(&mut rng, &cfg);
    let scm = synthetic_scm(&mut rng, &inst, 1.5);
    let table = sample_table(&scm, &inst.roles, rows, &mut rng);
    let csv_text = fairsel_table::csv::to_csv_string(&table);

    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.spawn();
    let req = Request::Select(WorkloadRequest {
        dataset: fairsel_server::DatasetRef::Csv(csv_text),
        max_group: fairsel_server::MaxGroupSpec::Auto,
        ..Default::default()
    });
    let req_bytes = (req.to_json().to_string().len() + 4) as u64;

    let scenario = format!("serve/n={n_features}/rows={rows}");
    let shoot = |algo: &str, prev: Option<&BenchResult>| -> BenchResult {
        let t0 = Instant::now();
        let resp = request(&addr, &req).expect("serve request");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let Response::Ok { body, stats, cache } = resp else {
            panic!("serve request failed: {resp:?}");
        };
        let stats = stats.expect("select response carries stats");
        let cache = cache.expect("select response carries cache info");
        let num = |k: &str| stats.get_u64(k).unwrap_or(0);
        let selected = selected_in_body(&body);
        let (mut requested, mut issued, mut hits) =
            (num("requested"), num("issued"), num("cache_hits"));
        if let Some(p) = prev {
            requested -= p.requested;
            issued -= p.issued;
            hits -= p.cache_hits;
        }
        BenchResult {
            scenario: scenario.clone(),
            algo: algo.to_owned(),
            n_features,
            requested,
            issued,
            cache_hits: hits,
            encode_hits: cache.encode_hits,
            encode_misses: cache.encode_misses,
            speculative_issued: num("speculative_issued"),
            speculative_hits: num("speculative_hits"),
            wall_ms,
            req_bytes,
            selected,
            ..Default::default()
        }
    };
    let cold = shoot("serve-cold", None);
    let warm = shoot("serve-warm", Some(&cold));
    handle.shutdown();
    vec![cold, warm]
}

/// The concurrent-serving story, the regime the bounded acceptor exists
/// for: `clients` parallel clients fire the same `select` workload at
/// one server in three waves — cold inline CSV (every client ships the
/// dataset, the first one pays the CI tests), warm inline CSV (cached
/// answers, but still megabyte-scale requests), and fingerprint-addressed
/// after a single `put` (cached answers *and* requests of a few hundred
/// bytes). Per-wave counters are deltas of the session's cumulative
/// engine stats; `req_bytes` is the per-request frame size, the
/// acceptance signal being the warm-fp row's `issued == 0` with
/// `req_bytes < 1024`.
pub fn serve_concurrent(n_features: usize, rows: usize, clients: usize) -> Vec<BenchResult> {
    use fairsel_server::{
        put_dataset, request, DatasetRef, Request, Response, ServeConfig, Server, WorkloadRequest,
    };

    let cfg = SyntheticConfig {
        n_features,
        biased_fraction: 0.2,
        predictive_fraction: 0.25,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(42);
    let inst = synthetic_instance(&mut rng, &cfg);
    let scm = synthetic_scm(&mut rng, &inst, 1.5);
    let table = sample_table(&scm, &inst.roles, rows, &mut rng);
    let csv_text = fairsel_table::csv::to_csv_string(&table);
    let codec_bytes = fairsel_table::encode_table(&table);

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            // Headroom above the client count: this scenario measures
            // concurrent throughput, not shedding.
            max_conns: clients * 2 + 4,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.spawn();

    let workload = |dataset: DatasetRef| {
        Request::Select(WorkloadRequest {
            dataset,
            max_group: fairsel_server::MaxGroupSpec::Auto,
            ..Default::default()
        })
    };
    let scenario = format!("serve/concurrent/n={n_features}/rows={rows}/clients={clients}");

    // One wave: all clients issue `req` concurrently; counters are the
    // delta of the session's cumulative stats across the wave (the
    // maximum over responses is the value at the last completion).
    let mut cum = (0u64, 0u64, 0u64);
    let mut wave = |algo: &str, req: &Request| -> BenchResult {
        let req_bytes = (req.to_json().to_string().len() + 4) as u64;
        let t0 = Instant::now();
        let outcomes: Vec<(u64, u64, u64, u64, u64, usize, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let addr = &addr;
                    scope.spawn(move || {
                        let t_req = Instant::now();
                        let resp = request(addr, req).expect("concurrent request");
                        let lat_us = t_req.elapsed().as_micros() as u64;
                        let Response::Ok { body, stats, cache } = resp else {
                            panic!("concurrent request failed: {resp:?}");
                        };
                        let stats = stats.expect("select carries stats");
                        let cache = cache.expect("select carries cache info");
                        let num = |k: &str| stats.get_u64(k).unwrap_or(0);
                        let selected = selected_in_body(&body);
                        (
                            num("requested"),
                            num("issued"),
                            num("cache_hits"),
                            cache.encode_hits,
                            cache.encode_misses,
                            selected,
                            lat_us,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let after = (
            outcomes.iter().map(|o| o.0).max().unwrap_or(0),
            outcomes.iter().map(|o| o.1).max().unwrap_or(0),
            outcomes.iter().map(|o| o.2).max().unwrap_or(0),
        );
        let hist = fairsel_obs::Histogram::new();
        for o in &outcomes {
            hist.record(o.6);
        }
        let mut row = BenchResult {
            scenario: scenario.clone(),
            algo: algo.to_owned(),
            n_features,
            requested: after.0 - cum.0,
            issued: after.1 - cum.1,
            cache_hits: after.2 - cum.2,
            encode_hits: outcomes.iter().map(|o| o.3).max().unwrap_or(0),
            encode_misses: outcomes.iter().map(|o| o.4).max().unwrap_or(0),
            speculative_issued: 0,
            speculative_hits: 0,
            wall_ms,
            req_bytes,
            selected: outcomes.first().map_or(0, |o| o.5),
            ..Default::default()
        };
        row.set_latency(&hist.snapshot());
        cum = after;
        row
    };

    let cold = wave(
        "serve-cold-csv",
        &workload(DatasetRef::Csv(csv_text.clone())),
    );
    let warm_csv = wave("serve-warm-csv", &workload(DatasetRef::Csv(csv_text)));

    // Upload once, then every client addresses the dataset by fingerprint.
    let t0 = Instant::now();
    let resp = put_dataset(&addr, &codec_bytes).expect("put");
    let put_wall = t0.elapsed().as_secs_f64() * 1e3;
    let Response::Ok { body: fp_hex, .. } = resp else {
        panic!("put failed: {resp:?}");
    };
    let fp = u64::from_str_radix(&fp_hex, 16).expect("hex fingerprint");
    let put_row = BenchResult {
        scenario: scenario.clone(),
        algo: "serve-put".to_owned(),
        n_features,
        requested: 0,
        issued: 0,
        cache_hits: 0,
        encode_hits: 0,
        encode_misses: 0,
        speculative_issued: 0,
        speculative_hits: 0,
        wall_ms: put_wall,
        req_bytes: (Request::Put.to_json().to_string().len() + 4 + 4 + codec_bytes.len()) as u64,
        selected: 0,
        ..Default::default()
    };
    let warm_fp = wave("serve-warm-fp", &workload(DatasetRef::Fp(fp)));

    handle.shutdown();
    vec![cold, warm_csv, put_row, warm_fp]
}

/// The latency-tail story: a mixed hot/cold client population against one
/// server, the regime the per-command histograms exist for. Hot clients
/// hammer a warmed, fingerprint-addressed dataset (cache hits, requests of
/// a few hundred bytes); cold clients each ship a *distinct* CSV dataset,
/// paying parse + split + encode + every CI test. Both populations run
/// concurrently for `rounds` requests per client, and each one's
/// per-request latencies land in a log2 [`fairsel_obs::Histogram`] — the
/// two rows report p50/p95/p99/max per population, making the tail the
/// cold builds put on the mix visible (a lifetime mean would average it
/// away).
pub fn serve_latency_tail(
    n_features: usize,
    rows: usize,
    hot_clients: usize,
    cold_clients: usize,
    rounds: usize,
) -> Vec<BenchResult> {
    use fairsel_server::{
        put_dataset, request, DatasetRef, Request, Response, ServeConfig, Server, WorkloadRequest,
    };

    let gen_table = |seed: u64| {
        let cfg = SyntheticConfig {
            n_features,
            biased_fraction: 0.2,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = synthetic_instance(&mut rng, &cfg);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        sample_table(&scm, &inst.roles, rows, &mut rng)
    };
    let hot_table = gen_table(42);
    let cold_csvs: Vec<String> = (0..cold_clients)
        .map(|i| fairsel_table::csv::to_csv_string(&gen_table(100 + i as u64)))
        .collect();

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            max_conns: (hot_clients + cold_clients) * 2 + 4,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.spawn();

    let workload = |dataset: DatasetRef| {
        Request::Select(WorkloadRequest {
            dataset,
            max_group: fairsel_server::MaxGroupSpec::Auto,
            ..Default::default()
        })
    };

    // Warm the hot path: upload once, run the workload once so every hot
    // request below is a pure cache hit.
    let resp = put_dataset(&addr, &fairsel_table::encode_table(&hot_table)).expect("put");
    let Response::Ok { body: fp_hex, .. } = resp else {
        panic!("put failed: {resp:?}");
    };
    let fp = u64::from_str_radix(&fp_hex, 16).expect("hex fingerprint");
    let hot_req = workload(DatasetRef::Fp(fp));
    match request(&addr, &hot_req).expect("warmup request") {
        Response::Ok { .. } => {}
        other => panic!("warmup failed: {other:?}"),
    }

    let hot_hist = fairsel_obs::Histogram::new();
    let cold_hist = fairsel_obs::Histogram::new();
    let shoot = |req: &Request, hist: &fairsel_obs::Histogram| {
        let t0 = Instant::now();
        let resp = request(&addr, req).expect("tail request");
        hist.record(t0.elapsed().as_micros() as u64);
        match resp {
            Response::Ok { .. } => {}
            other => panic!("tail request failed: {other:?}"),
        }
    };
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..hot_clients {
            let (hot_req, hot_hist, shoot) = (&hot_req, &hot_hist, &shoot);
            scope.spawn(move || {
                for _ in 0..rounds {
                    shoot(hot_req, hot_hist);
                }
            });
        }
        for csv_text in &cold_csvs {
            let (cold_hist, shoot, workload) = (&cold_hist, &shoot, &workload);
            scope.spawn(move || {
                let req = workload(DatasetRef::Csv(csv_text.clone()));
                for _ in 0..rounds {
                    shoot(&req, cold_hist);
                }
            });
        }
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    handle.shutdown();

    let scenario = format!(
        "serve/latency-tail/n={n_features}/rows={rows}/hot={hot_clients}/cold={cold_clients}"
    );
    let row = |algo: &str, hist: &fairsel_obs::Histogram, req_bytes: u64| -> BenchResult {
        let mut r = BenchResult {
            scenario: scenario.clone(),
            algo: algo.to_owned(),
            n_features,
            wall_ms,
            req_bytes,
            ..Default::default()
        };
        r.set_latency(&hist.snapshot());
        r
    };
    let hot_bytes = (hot_req.to_json().to_string().len() + 4) as u64;
    let cold_bytes = cold_csvs.first().map_or(0, |c| {
        (workload(DatasetRef::Csv(c.clone()))
            .to_json()
            .to_string()
            .len()
            + 4) as u64
    });
    vec![
        row("tail-hot", &hot_hist, hot_bytes),
        row("tail-cold", &cold_hist, cold_bytes),
    ]
}

/// The cache story: the same workload replayed inside one session issues
/// zero new tests the second time.
pub fn cache_replay(n_features: usize) -> Vec<BenchResult> {
    let cfg = SyntheticConfig {
        n_features,
        biased_fraction: 0.1,
        ..Default::default()
    };
    let inst = synthetic_instance(&mut StdRng::seed_from_u64(7), &cfg);
    let problem = Problem::from_roles(&inst.roles);
    let select = SelectConfig::default();
    let scenario = format!("replay/n={n_features}");

    let mut tester = OracleCi::from_dag(inst.dag.clone());
    let mut session = CiSession::new(&mut tester);
    let first = measure(&scenario, "seqsel-cold", n_features, &mut session, |s| {
        seqsel_in(s, &problem, &select).selected().len()
    });
    // Second run in the same session: everything is a cache hit, so the
    // deltas below come out as issued = 0.
    let before = (
        session.stats().requested,
        session.stats().issued,
        session.stats().cache_hits,
    );
    let t0 = Instant::now();
    let selected = seqsel_in(&mut session, &problem, &select).selected().len();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = session.stats();
    let second = BenchResult {
        scenario,
        algo: "seqsel-warm".to_owned(),
        n_features,
        requested: stats.requested - before.0,
        issued: stats.issued - before.1,
        cache_hits: stats.cache_hits - before.2,
        encode_hits: 0,
        encode_misses: 0,
        speculative_issued: 0,
        speculative_hits: 0,
        wall_ms,
        req_bytes: 0,
        selected,
        ..Default::default()
    };
    vec![first, second]
}

/// The streaming-append story: a dataset is resident and warm (selected
/// once), then `batch` new rows arrive. Per batch size, three rows:
///
/// * `reselect-cold` — the pre-streaming path: the client re-uploads the
///   whole concatenated dataset and the server pays CSV-free but full
///   cost (fresh encode, fresh scaffolds, every CI test);
/// * `append-reselect` — the invalidate-all streaming path
///   ([`CiSession::extended_over_invalidating`]): encodings extend in
///   place, scaffolds transfer, but every memoized outcome is dropped
///   and the workload re-issues — O(workload) statistical cost, kept as
///   the measured baseline;
/// * `append-reselect-patched` — the sufficient-statistic path
///   ([`CiSession::extended_over`]): resident contingency tables are
///   patched by counting only the appended rows and memoized outcomes
///   are re-derived at the new `n` — O(batch) statistical cost.
///
/// All three rows must report the **same** `pvalue_hash` (every outcome
/// bit identical to the cold run on the concatenated table); the warm
/// rows must carry nonzero `append_rows`/`extended_encodings`; the
/// patched row must show nonzero `memo_patched`, a conserved ledger
/// against the baseline's `memo_invalidated`, and `issued` strictly
/// below the baseline — all enforced by [`validate_bench_json`].
/// `req_bytes` tells the transport story: the cold client re-ships the
/// full dataset frame, the streaming clients ship only the batch frame
/// (zero re-upload of the base) and then address the child by
/// fingerprint.
pub fn append_reselect(
    n_features: usize,
    base_rows: usize,
    batch_sizes: &[usize],
    workers: usize,
    repeats: usize,
) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for &batch_rows in batch_sizes {
        let cfg = SyntheticConfig {
            n_features,
            biased_fraction: 0.25,
            predictive_fraction: 0.25,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(base_rows as u64 ^ (batch_rows as u64).rotate_left(17));
        let inst = synthetic_instance(&mut rng, &cfg);
        let scm = synthetic_scm(&mut rng, &inst, 1.5);
        let total_rows = base_rows + batch_rows;
        let full = sample_table(&scm, &inst.roles, total_rows, &mut rng);
        let base_idx: Vec<usize> = (0..base_rows).collect();
        let batch_idx: Vec<usize> = (base_rows..total_rows).collect();
        let base = full.take_rows(&base_idx);
        let batch = full.take_rows(&batch_idx);
        let problem = Problem::from_table(&full);
        let select = SelectConfig {
            max_group: Some(SelectConfig::auto_max_group(total_rows)),
            ..Default::default()
        };
        let scenario =
            format!("append/reselect/n={n_features}/rows={base_rows}/batch={batch_rows}");
        // Wire cost, measured on the real codec frames: a cold client
        // re-uploads the concatenated dataset; a streaming client ships
        // the batch alone and re-selects by child fingerprint.
        let full_bytes = (fairsel_table::encode_table(&full).len() + 8) as u64;
        let batch_bytes = (fairsel_table::encode_row_batch(&batch).len() + 8) as u64;

        out.push(median_of_repeats(repeats, || {
            let mut session = CiSession::new(GTest::over(encoded(&full, true), 0.01));
            let mut row = measure(&scenario, "reselect-cold", n_features, &mut session, |s| {
                let sel = grpsel_batched_in(s, &problem, &select, None, workers)
                    .selected()
                    .len();
                s.refresh_encode_stats();
                sel
            });
            row.req_bytes = full_bytes;
            row.rows = total_rows as u64;
            row.pvalue_hash = format!("{:016x}", session.outcomes_fingerprint());
            row
        }));

        let warm_row = |algo: &str, patch: bool| {
            // Untimed warm-up: the parent session is resident and has
            // answered the workload once (the steady-state a streaming
            // client appends into).
            let parent_enc = encoded(&base, true);
            let mut parent = CiSession::new(GTest::over(Arc::clone(&parent_enc), 0.01));
            let _ = grpsel_batched_in(&mut parent, &problem, &select, None, workers);
            // Timed: extend the encodings over the batch, transfer the
            // session (patching sufficient statistics or invalidating
            // the memo wholesale), and re-run the selection.
            let t0 = Instant::now();
            let child_enc = Arc::new(parent_enc.extend(&batch).expect("batch matches schema"));
            let mut child = if patch {
                parent
                    .extended_over(child_enc)
                    .expect("G-test scaffolds extend")
            } else {
                parent
                    .extended_over_invalidating(child_enc)
                    .expect("G-test scaffolds extend")
            };
            let selected = grpsel_batched_in(&mut child, &problem, &select, None, workers)
                .selected()
                .len();
            child.refresh_encode_stats();
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let stats = child.stats();
            BenchResult {
                scenario: scenario.clone(),
                algo: algo.to_owned(),
                n_features,
                requested: stats.requested,
                issued: stats.issued,
                cache_hits: stats.cache_hits,
                encode_hits: stats.encode_cache_hits,
                encode_misses: stats.encode_cache_misses,
                wall_ms,
                req_bytes: batch_bytes,
                selected,
                rows: total_rows as u64,
                pvalue_hash: format!("{:016x}", child.outcomes_fingerprint()),
                append_rows: stats.append_rows,
                extended_encodings: stats.extended_encodings,
                memo_patched: stats.memo_patched,
                memo_invalidated: stats.memo_invalidated,
                ..Default::default()
            }
        };
        out.push(median_of_repeats(repeats, || {
            warm_row("append-reselect", false)
        }));
        out.push(median_of_repeats(repeats, || {
            warm_row("append-reselect-patched", true)
        }));
    }
    out
}

/// The full suite. `quick` keeps sizes (and repeat counts) small enough
/// for CI. The batch scenarios always run the Z-grouped scheduler at 4
/// workers (`grpsel-batched-par4`) regardless of the host's core count —
/// the committed numbers compare schedulers, not machines.
pub fn bench_suite(quick: bool, workers: usize) -> Vec<BenchResult> {
    let oracle_sizes: &[usize] = if quick {
        &[32, 128]
    } else {
        &[64, 256, 1024, 4096]
    };
    let repeats = if quick { 3 } else { 5 };
    // The batch scenario runs a high biased fraction (wide phase-2
    // conditioning sets); keep n modest so the target's CPT (one parent
    // per biased/predictive feature) stays within the generator's bound.
    let (data_n, data_rows) = if quick { (16, 1500) } else { (24, 6000) };
    let (batch_n, batch_rows) = if quick { (24, 1500) } else { (32, 6000) };
    let mut out = oracle_scaling(oracle_sizes, workers, repeats);
    out.extend(data_scaling(data_n, data_rows, workers, repeats));
    out.extend(data_tester_modes(batch_n, batch_rows, 4, repeats));
    out.extend(workers_scaling(batch_n, batch_rows, repeats));
    let row_sizes: &[usize] = if quick {
        &[1000, 3000]
    } else {
        &[6000, 25_000, 100_000, 500_000]
    };
    out.extend(rows_scaling(row_sizes, 4, repeats));
    let batch_sizes: &[usize] = if quick { &[32, 128] } else { &[128, 512, 2048] };
    out.extend(append_reselect(data_n, data_rows, batch_sizes, 4, repeats));
    out.extend(cache_replay(if quick { 32 } else { 128 }));
    let (serve_n, serve_rows) = if quick { (16, 1200) } else { (24, 4000) };
    out.extend(serve_cold_warm(serve_n, serve_rows));
    out.extend(serve_concurrent(
        serve_n,
        serve_rows,
        if quick { 3 } else { 4 },
    ));
    if quick {
        out.extend(serve_latency_tail(serve_n, serve_rows, 2, 2, 2));
    } else {
        out.extend(serve_latency_tail(serve_n, serve_rows, 4, 3, 3));
    }
    out
}

/// Suite with the default worker count.
pub fn default_suite(quick: bool) -> Vec<BenchResult> {
    bench_suite(quick, default_workers())
}

/// The CI smoke suite: the data-tester scenarios (including the
/// speculative run the validator checks for conservation) plus the
/// cold/warm serve round trip, on tiny inputs.
pub fn smoke_suite() -> Vec<BenchResult> {
    let mut out = data_tester_modes(16, 800, 2, 1);
    out.extend(rows_scaling(&[2000, 6000], 2, 1));
    out.extend(append_reselect(12, 600, &[60], 2, 1));
    out.extend(serve_cold_warm(12, 600));
    out.extend(serve_concurrent(12, 600, 3));
    out.extend(serve_latency_tail(10, 400, 2, 2, 2));
    out
}

/// Read an integer field out of one run's flat JSON body.
fn run_field(run: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = run.find(&pat)? + pat.len();
    let rest = &run[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Read a float field out of one run's flat JSON body.
fn run_field_f64(run: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = run.find(&pat)? + pat.len();
    let rest = &run[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Read a string field out of one run's flat JSON body.
fn run_field_str<'a>(run: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = run.find(&pat)? + pat.len();
    let rest = &run[at..];
    Some(&rest[..rest.find('"')?])
}

/// Every `EngineStats` counter key, exactly as serialized by
/// `EngineStats::to_json`. The static analyzer's R5 rule requires every
/// counter declared in `engine/src/session.rs` to appear here — a counter
/// is only real once it is serialized *and* validator-checked — and
/// [`validate_stats_json`] enforces the presence of each key at runtime on
/// every stats document a bench session produces.
pub const ENGINE_STATS_KEYS: &[&str] = &[
    "requested",
    "issued",
    "cache_hits",
    "batches",
    "parallel_batches",
    "batched_batches",
    "grouped_batches",
    "speculative_issued",
    "speculative_hits",
    "max_batch",
    "wall_ms",
    "encode_cache_hits",
    "encode_cache_misses",
    "encode_cache_evictions",
    "narrow_code_bytes",
    "dense_count_cells",
    "append_rows",
    "extended_encodings",
    "extended_scaffolds",
    "rebuilt_scaffolds",
    "resident_scaffolds",
    "scaffold_evictions",
    "memoized_before",
    "memo_patched",
    "memo_invalidated",
    "memo_patch_hits",
    "resident_suff_tables",
    "suff_evictions",
];

/// Check a session stats JSON document (the `--stats-out` shape) carries
/// every [`ENGINE_STATS_KEYS`] counter.
pub fn validate_stats_json(json: &str) -> Result<(), String> {
    for key in ENGINE_STATS_KEYS {
        let quoted = format!("\"{key}\":");
        if !json.contains(&quoted) {
            return Err(format!("stats JSON missing counter {quoted}"));
        }
    }
    Ok(())
}

/// Validate a serialized bench document the way the CI smoke job does:
/// structurally sound JSON with a non-empty `runs` array, every run
/// carrying the encode-cache **and scheduler** counters, the G-test
/// GrpSel batched scenario actually *hitting* the encode cache, and the
/// speculative runs conserving `issued` against their non-speculative
/// twins (`issued_spec + speculative_hits == issued_plain` — the proof
/// speculation moved work rather than adding or dropping any).
pub fn validate_bench_json(json: &str) -> Result<(), String> {
    let json = json.trim();
    if !json.starts_with('{') || !json.ends_with('}') {
        return Err("document is not a JSON object".into());
    }
    let (mut depth, mut max_depth) = (0i64, 0i64);
    for b in json.bytes() {
        match b {
            b'{' | b'[' => {
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            b'}' | b']' => {
                depth -= 1;
                if depth < 0 {
                    return Err("unbalanced brackets".into());
                }
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err("unbalanced brackets".into());
    }
    if max_depth < 3 {
        return Err("missing nested runs".into());
    }
    if !json.contains("\"runs\":[{") {
        return Err("empty or missing runs array".into());
    }
    for key in [
        "\"scenario\":",
        "\"algo\":",
        "\"issued\":",
        "\"encode_hits\":",
        "\"encode_misses\":",
        "\"speculative_issued\":",
        "\"speculative_hits\":",
        "\"wall_ms\":",
        "\"req_bytes\":",
        "\"p50_ms\":",
        "\"p95_ms\":",
        "\"p99_ms\":",
        "\"max_ms\":",
        "\"hist_total\":",
        "\"rows\":",
        "\"ns_per_row\":",
        "\"pvalue_hash\":",
        "\"dense_count_cells\":",
        "\"narrow_code_bytes\":",
        "\"append_rows\":",
        "\"extended_encodings\":",
        "\"memo_patched\":",
        "\"memo_invalidated\":",
    ] {
        let runs = json.matches("\"scenario\":").count();
        if json.matches(key).count() != runs {
            return Err(format!("counter {key} absent from some run"));
        }
    }
    // Scheduler acceptance signal: every speculative run conserves issued
    // work against its non-speculative twin and actually speculated.
    let runs: Vec<&str> = json
        .split("{\"scenario\":\"")
        .skip(1)
        .map(|chunk| chunk.split('}').next().unwrap_or(""))
        .collect();
    let find_run = |scenario_prefix: &str, algo: &str| -> Option<&&str> {
        let needle = format!("\"algo\":\"{algo}\",");
        runs.iter()
            .find(|r| r.starts_with(scenario_prefix) && r.contains(&needle))
    };
    for scenario in ["gtest-batch", "fisherz-batch"] {
        let plain = find_run(scenario, "grpsel-batched")
            .ok_or_else(|| format!("{scenario}: no grpsel-batched run"))?;
        let spec = find_run(scenario, "grpsel-spec")
            .ok_or_else(|| format!("{scenario}: no grpsel-spec run"))?;
        let plain_issued = run_field(plain, "issued").ok_or("unreadable issued")?;
        let spec_issued = run_field(spec, "issued").ok_or("unreadable issued")?;
        let spec_extra =
            run_field(spec, "speculative_issued").ok_or("unreadable speculative_issued")?;
        let spec_hits = run_field(spec, "speculative_hits").ok_or("unreadable speculative_hits")?;
        if spec_extra == 0 {
            return Err(format!("{scenario}: speculative run never speculated"));
        }
        if spec_issued + spec_hits != plain_issued {
            return Err(format!(
                "{scenario}: speculation broke issued conservation \
                 ({spec_issued} + {spec_hits} != {plain_issued})"
            ));
        }
    }
    // The acceptance signal: a batched G-test GrpSel run with real
    // encode-cache reuse.
    let hit = json
        .split("{\"scenario\":\"gtest-batch")
        .skip(1)
        .any(|chunk| {
            // Run objects are flat: the first '}' closes this run.
            let run = chunk.split('}').next().unwrap_or("");
            run.contains("\"algo\":\"grpsel-batched\"") && !run.contains("\"encode_hits\":0,")
        });
    if !hit {
        return Err("no gtest-batch grpsel-batched run with encode_hits > 0".into());
    }
    // The serving acceptance signal: a warm request against the session
    // service that issued zero new CI tests, hit the shared memo, and
    // reused the encode cache.
    let warm = json.split("{\"scenario\":\"serve/").skip(1).any(|chunk| {
        let run = chunk.split('}').next().unwrap_or("");
        run.contains("\"algo\":\"serve-warm\"")
            && run.contains("\"issued\":0,")
            && !run.contains("\"cache_hits\":0,")
            && !run.contains("\"encode_hits\":0,")
    });
    if !warm {
        return Err(
            "no serve-warm run with issued == 0, cache_hits > 0 and encode_hits > 0".into(),
        );
    }
    // The fp-addressed serving acceptance signal: under concurrent load,
    // a warm fingerprint-addressed wave issues zero CI tests while each
    // request ships under 1 KiB — the whole point of `put`.
    let warm_fp = runs
        .iter()
        .find(|r| r.starts_with("serve/concurrent") && r.contains("\"algo\":\"serve-warm-fp\","))
        .ok_or("no serve/concurrent serve-warm-fp run")?;
    let issued = run_field(warm_fp, "issued").ok_or("unreadable issued")?;
    let req_bytes = run_field(warm_fp, "req_bytes").ok_or("unreadable req_bytes")?;
    let hits = run_field(warm_fp, "cache_hits").ok_or("unreadable cache_hits")?;
    if issued != 0 {
        return Err(format!(
            "warm fp-addressed wave issued {issued} CI tests (must be fully cached)"
        ));
    }
    if hits == 0 {
        return Err("warm fp-addressed wave never hit the shared memo".into());
    }
    if !(1..1024).contains(&req_bytes) {
        return Err(format!(
            "warm fp-addressed request payload is {req_bytes} bytes (must be in 1..1024)"
        ));
    }
    // Percentile sanity: wherever a run recorded a latency histogram, its
    // percentiles must ascend (p50 <= p95 <= p99 <= max — guaranteed by
    // the log2-bucket quantile construction, so a violation means a
    // broken or hand-edited document).
    for r in &runs {
        let total = run_field(r, "hist_total").ok_or("unreadable hist_total")?;
        if total == 0 {
            continue;
        }
        let p50 = run_field_f64(r, "p50_ms").ok_or("unreadable p50_ms")?;
        let p95 = run_field_f64(r, "p95_ms").ok_or("unreadable p95_ms")?;
        let p99 = run_field_f64(r, "p99_ms").ok_or("unreadable p99_ms")?;
        let max = run_field_f64(r, "max_ms").ok_or("unreadable max_ms")?;
        if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
            return Err(format!(
                "percentiles not monotone in a run ({p50} / {p95} / {p99} / max {max})"
            ));
        }
    }
    // The tail-latency acceptance signal: the hot/cold mixed scenario ran
    // and actually recorded per-request latencies.
    let tail_ok = runs.iter().any(|r| {
        r.starts_with("serve/latency-tail") && run_field(r, "hist_total").unwrap_or(0) > 0
    });
    if !tail_ok {
        return Err("no serve/latency-tail run with hist_total > 0".into());
    }
    // The kernel acceptance signals: rows-scaling rows exist; every one
    // reports a positive per-row cost and a nonempty outcome digest; row
    // counts ascend within each (family, algo); the kernel variants of a
    // scenario produce the SAME digest (the byte-identity contract, bit
    // for bit); and the narrow G-test rows actually exercised the dense
    // counting arenas and width-adaptive code storage.
    let mut scaling_hashes: std::collections::HashMap<&str, &str> = Default::default();
    let mut last_rows: std::collections::HashMap<String, u64> = Default::default();
    let mut any_scaling = false;
    for r in &runs {
        if !r.starts_with("rows-scaling/") {
            continue;
        }
        any_scaling = true;
        let scenario = r.split('"').next().unwrap_or("");
        let algo = run_field_str(r, "algo").ok_or("unreadable algo")?;
        let nspr = run_field_f64(r, "ns_per_row").ok_or("unreadable ns_per_row")?;
        if nspr <= 0.0 {
            return Err(format!("{scenario}/{algo}: ns_per_row must be positive"));
        }
        let hash = run_field_str(r, "pvalue_hash").ok_or("unreadable pvalue_hash")?;
        if hash.is_empty() {
            return Err(format!("{scenario}/{algo}: empty pvalue_hash"));
        }
        if let Some(prev) = scaling_hashes.get(scenario) {
            if *prev != hash {
                return Err(format!(
                    "{scenario}: kernel variants disagree on outcome bits \
                     ({prev} vs {hash} at {algo})"
                ));
            }
        } else {
            scaling_hashes.insert(scenario, hash);
        }
        let rows_n = run_field(r, "rows").ok_or("unreadable rows")?;
        let family = scenario.rsplit_once("/rows=").map_or(scenario, |(f, _)| f);
        let key = format!("{family}/{algo}");
        if let Some(&prev) = last_rows.get(&key) {
            if rows_n <= prev {
                return Err(format!("{key}: rows not ascending ({prev} -> {rows_n})"));
            }
        }
        last_rows.insert(key, rows_n);
        if family == "rows-scaling/gtest" && algo == "kernels-narrow" {
            if run_field(r, "dense_count_cells").ok_or("unreadable dense_count_cells")? == 0 {
                return Err(format!(
                    "{scenario}: narrow kernels never filled a dense arena"
                ));
            }
            if run_field(r, "narrow_code_bytes").ok_or("unreadable narrow_code_bytes")? == 0 {
                return Err(format!(
                    "{scenario}: narrow kernels built no narrow code storage"
                ));
            }
        }
    }
    if !any_scaling {
        return Err("no rows-scaling runs".into());
    }
    // The streaming-append acceptance signals: every `append-reselect`
    // row has a `reselect-cold` twin with the **same** outcome digest
    // (the extended session answers bit-for-bit what a cold run on the
    // concatenated table answers), nonzero extend counters (the session
    // was extended, not rebuilt), and a wire cost strictly under the cold
    // re-upload (only the batch crosses the wire, never the base).
    let mut any_append = false;
    for r in &runs {
        if !r.starts_with("append/reselect") || !r.contains("\"algo\":\"append-reselect\",") {
            continue;
        }
        any_append = true;
        let scenario = r.split('"').next().unwrap_or("");
        let cold = find_run(scenario, "reselect-cold")
            .ok_or_else(|| format!("{scenario}: no reselect-cold twin"))?;
        let warm_hash = run_field_str(r, "pvalue_hash").ok_or("unreadable pvalue_hash")?;
        let cold_hash = run_field_str(cold, "pvalue_hash").ok_or("unreadable pvalue_hash")?;
        if warm_hash.is_empty() || warm_hash != cold_hash {
            return Err(format!(
                "{scenario}: extended re-select disagrees with cold outcome bits \
                 ({warm_hash:?} vs {cold_hash:?})"
            ));
        }
        if run_field(r, "append_rows").ok_or("unreadable append_rows")? == 0 {
            return Err(format!("{scenario}: append-reselect appended no rows"));
        }
        if run_field(r, "extended_encodings").ok_or("unreadable extended_encodings")? == 0 {
            return Err(format!("{scenario}: append-reselect reused no encodings"));
        }
        let warm_bytes = run_field(r, "req_bytes").ok_or("unreadable req_bytes")?;
        let cold_bytes = run_field(cold, "req_bytes").ok_or("unreadable req_bytes")?;
        if warm_bytes == 0 || warm_bytes >= cold_bytes {
            return Err(format!(
                "{scenario}: streaming wire cost {warm_bytes} not under the \
                 cold re-upload {cold_bytes}"
            ));
        }
    }
    if !any_append {
        return Err("no append/reselect runs".into());
    }
    // The sufficient-statistic acceptance signals: every
    // `append-reselect-patched` row matches the cold digest bit-for-bit,
    // actually patched resident memos (`memo_patched > 0`), conserves
    // the parent's memo against the invalidate-all baseline
    // (patched + invalidated == baseline's invalidated, and the baseline
    // itself patched nothing), and — the whole point — issued strictly
    // fewer CI tests after the append than the invalidate-all path.
    let mut any_patched = false;
    for r in &runs {
        if !r.starts_with("append/reselect") || !r.contains("\"algo\":\"append-reselect-patched\",")
        {
            continue;
        }
        any_patched = true;
        let scenario = r.split('"').next().unwrap_or("");
        let cold = find_run(scenario, "reselect-cold")
            .ok_or_else(|| format!("{scenario}: no reselect-cold twin"))?;
        let baseline = find_run(scenario, "append-reselect")
            .ok_or_else(|| format!("{scenario}: no append-reselect baseline twin"))?;
        let patched_hash = run_field_str(r, "pvalue_hash").ok_or("unreadable pvalue_hash")?;
        let cold_hash = run_field_str(cold, "pvalue_hash").ok_or("unreadable pvalue_hash")?;
        if patched_hash.is_empty() || patched_hash != cold_hash {
            return Err(format!(
                "{scenario}: patched re-select disagrees with cold outcome bits \
                 ({patched_hash:?} vs {cold_hash:?})"
            ));
        }
        let memo_patched = run_field(r, "memo_patched").ok_or("unreadable memo_patched")?;
        if memo_patched == 0 {
            return Err(format!("{scenario}: patched re-select patched no memos"));
        }
        let memo_invalidated =
            run_field(r, "memo_invalidated").ok_or("unreadable memo_invalidated")?;
        let base_patched = run_field(baseline, "memo_patched").ok_or("unreadable memo_patched")?;
        let base_invalidated =
            run_field(baseline, "memo_invalidated").ok_or("unreadable memo_invalidated")?;
        if base_patched != 0 {
            return Err(format!(
                "{scenario}: invalidate-all baseline claims {base_patched} patched memos"
            ));
        }
        if memo_patched + memo_invalidated != base_invalidated {
            return Err(format!(
                "{scenario}: patched memo ledger not conserved \
                 ({memo_patched} + {memo_invalidated} != {base_invalidated})"
            ));
        }
        let patched_issued = run_field(r, "issued").ok_or("unreadable issued")?;
        let base_issued = run_field(baseline, "issued").ok_or("unreadable issued")?;
        if patched_issued >= base_issued {
            return Err(format!(
                "{scenario}: patched re-select issued {patched_issued} CI tests, \
                 not under the invalidate-all baseline's {base_issued}"
            ));
        }
    }
    if !any_patched {
        return Err("no append-reselect-patched runs".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The committed benchmark document must pass the same validator CI
    /// runs on smoke output — including the append/reselect patched-row
    /// ledger and issued-work checks. A hand-edited or stale
    /// `BENCH_engine.json` fails tier-1, not just the bench workflow.
    #[test]
    fn committed_bench_document_validates() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
        let json = std::fs::read_to_string(path).expect("read committed BENCH_engine.json");
        validate_bench_json(&json).expect("committed BENCH_engine.json must validate");
    }

    /// Manual perf probe: repeated 500k rows-scaling rounds so run-to-run
    /// noise is visible. Run with `--ignored --nocapture`; drop workers to
    /// 1 when per-phase timings must not double-count scheduler waits on
    /// a single-core box.
    #[test]
    #[ignore]
    fn probe_rows_scaling_order() {
        for round in 0..4 {
            for r in rows_scaling(&[500_000], 4, 1) {
                println!(
                    "round {round} {:<34} {:<20} {:>8.1} ns/row",
                    r.scenario, r.algo, r.ns_per_row
                );
            }
        }
    }

    #[test]
    fn quick_suite_runs_and_serializes() {
        let results = bench_suite(true, 2);
        assert!(results.len() >= 8);
        let json = to_json(&results);
        assert!(json.starts_with("{\"bench\":\"fairsel-engine\""));
        assert!(json.contains("\"algo\":\"grpsel\""));
        assert!(json.contains("\"scenario\":\"replay/n=32\""));
    }

    #[test]
    fn grpsel_issues_fewer_tests_at_scale() {
        let results = oracle_scaling(&[256], 2, 1);
        let issued = |algo: &str| {
            results
                .iter()
                .find(|r| r.algo == algo)
                .map(|r| r.issued)
                .expect("algo present")
        };
        assert!(
            issued("grpsel") < issued("seqsel"),
            "grpsel {} !< seqsel {}",
            issued("grpsel"),
            issued("seqsel")
        );
        assert_eq!(
            issued("grpsel"),
            issued("grpsel-par2"),
            "parallelism is free"
        );
    }

    #[test]
    fn warm_replay_issues_nothing() {
        let results = cache_replay(24);
        let warm = results.iter().find(|r| r.algo == "seqsel-warm").unwrap();
        assert_eq!(warm.issued, 0, "warm run must be fully cached");
        assert!(warm.cache_hits > 0);
        assert_eq!(warm.requested, warm.cache_hits);
    }

    #[test]
    fn batched_modes_hit_encode_cache_and_agree() {
        let results = data_tester_modes(16, 800, 2, 1);
        for scenario in ["gtest-batch", "fisherz-batch"] {
            let rows: Vec<_> = results
                .iter()
                .filter(|r| r.scenario.starts_with(scenario))
                .collect();
            assert_eq!(rows.len(), 4, "{scenario}: four execution modes");
            let baseline = rows.iter().find(|r| r.algo == "grpsel-nocache").unwrap();
            let batched = rows.iter().find(|r| r.algo == "grpsel-batched").unwrap();
            let grouped = rows
                .iter()
                .find(|r| r.algo == "grpsel-batched-par2")
                .unwrap();
            let spec = rows.iter().find(|r| r.algo == "grpsel-spec").unwrap();
            assert_eq!(baseline.encode_hits, 0, "uncached baseline never hits");
            assert!(
                batched.encode_hits > 0,
                "{scenario}: batched run must reuse encodings"
            );
            assert!(
                batched.encode_misses < baseline.encode_misses,
                "{scenario}: cache must cut encoding work ({} !< {})",
                batched.encode_misses,
                baseline.encode_misses
            );
            assert!(grouped.encode_hits > 0, "{scenario}: grouped run hits too");
            // Same instance, same seed: every mode selects identically;
            // the non-speculative modes issue the same tests, and the
            // speculative mode conserves them.
            for r in &rows {
                assert_eq!(r.selected, baseline.selected, "{}", r.algo);
            }
            assert_eq!(batched.issued, baseline.issued);
            assert_eq!(grouped.issued, baseline.issued);
            assert!(spec.speculative_issued > 0, "{scenario}: must speculate");
            assert_eq!(
                spec.issued + spec.speculative_hits,
                baseline.issued,
                "{scenario}: speculation must conserve issued work"
            );
        }
    }

    #[test]
    fn workers_scaling_rows_agree() {
        let rows = workers_scaling(12, 600, 1);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.issued, rows[0].issued, "{}", r.algo);
            assert_eq!(r.selected, rows[0].selected, "{}", r.algo);
        }
        assert!(rows[0].scenario.starts_with("workers-scaling/"));
        assert_eq!(rows[3].algo, "grpsel-batched-par8");
    }

    #[test]
    fn serve_cold_warm_hits_shared_cache() {
        let results = serve_cold_warm(10, 400);
        assert_eq!(results.len(), 2);
        let cold = &results[0];
        let warm = &results[1];
        assert_eq!(cold.algo, "serve-cold");
        assert_eq!(warm.algo, "serve-warm");
        assert!(cold.issued > 0, "cold request must issue tests");
        assert_eq!(warm.issued, 0, "warm request must be fully cached");
        assert!(warm.cache_hits > 0, "warm request must hit the memo");
        assert_eq!(
            warm.requested, cold.requested,
            "identical workload, identical query stream"
        );
        assert_eq!(warm.selected, cold.selected);
        assert!(warm.encode_hits >= cold.encode_hits);
    }

    /// One flat fake run object for validator tests.
    fn fake_run(
        scenario: &str,
        algo: &str,
        issued: u64,
        spec: (u64, u64),
        enc_hits: u64,
        req_bytes: u64,
    ) -> String {
        format!(
            "{{\"scenario\":\"{scenario}\",\"algo\":\"{algo}\",\"issued\":{issued},\
             \"cache_hits\":9,\"speculative_issued\":{},\"speculative_hits\":{},\
             \"encode_hits\":{enc_hits},\"encode_misses\":9,\"wall_ms\":1.0,\
             \"req_bytes\":{req_bytes},\"p50_ms\":0.000,\"p95_ms\":0.000,\
             \"p99_ms\":0.000,\"max_ms\":0.000,\"hist_total\":0,\"rows\":0,\
             \"ns_per_row\":0.000,\"pvalue_hash\":\"\",\
             \"dense_count_cells\":0,\"narrow_code_bytes\":0,\
             \"append_rows\":0,\"extended_encodings\":0,\
             \"memo_patched\":0,\"memo_invalidated\":0}}",
            spec.0, spec.1
        )
    }

    /// A fake rows-scaling run with explicit kernel columns.
    fn fake_scaling_run(
        family: &str,
        algo: &str,
        rows: u64,
        hash: &str,
        dense: u64,
        narrow: u64,
    ) -> String {
        format!(
            "{{\"scenario\":\"rows-scaling/{family}/rows={rows}\",\"algo\":\"{algo}\",\
             \"issued\":5,\"cache_hits\":9,\"speculative_issued\":0,\"speculative_hits\":0,\
             \"encode_hits\":5,\"encode_misses\":9,\"wall_ms\":1.0,\
             \"req_bytes\":0,\"p50_ms\":0.000,\"p95_ms\":0.000,\
             \"p99_ms\":0.000,\"max_ms\":0.000,\"hist_total\":0,\"rows\":{rows},\
             \"ns_per_row\":12.500,\"pvalue_hash\":\"{hash}\",\
             \"dense_count_cells\":{dense},\"narrow_code_bytes\":{narrow},\
             \"append_rows\":0,\"extended_encodings\":0,\
             \"memo_patched\":0,\"memo_invalidated\":0}}"
        )
    }

    /// A fake latency-tail run with explicit percentile columns.
    fn fake_tail_run(p50: f64, p95: f64, p99: f64, max: f64, total: u64) -> String {
        format!(
            "{{\"scenario\":\"serve/latency-tail/x\",\"algo\":\"tail-hot\",\"issued\":0,\
             \"cache_hits\":9,\"speculative_issued\":0,\"speculative_hits\":0,\
             \"encode_hits\":5,\"encode_misses\":9,\"wall_ms\":1.0,\
             \"req_bytes\":300,\"p50_ms\":{p50},\"p95_ms\":{p95},\
             \"p99_ms\":{p99},\"max_ms\":{max},\"hist_total\":{total},\"rows\":0,\
             \"ns_per_row\":0.000,\"pvalue_hash\":\"\",\
             \"dense_count_cells\":0,\"narrow_code_bytes\":0,\
             \"append_rows\":0,\"extended_encodings\":0,\
             \"memo_patched\":0,\"memo_invalidated\":0}}"
        )
    }

    /// A fake append/reselect run with explicit streaming columns.
    /// `memo` is the `(memo_patched, memo_invalidated)` ledger pair.
    fn fake_append_run(
        algo: &str,
        hash: &str,
        appended: u64,
        extended: u64,
        req_bytes: u64,
        issued: u64,
        memo: (u64, u64),
    ) -> String {
        format!(
            "{{\"scenario\":\"append/reselect/x\",\"algo\":\"{algo}\",\"issued\":{issued},\
             \"cache_hits\":9,\"speculative_issued\":0,\"speculative_hits\":0,\
             \"encode_hits\":5,\"encode_misses\":9,\"wall_ms\":1.0,\
             \"req_bytes\":{req_bytes},\"p50_ms\":0.000,\"p95_ms\":0.000,\
             \"p99_ms\":0.000,\"max_ms\":0.000,\"hist_total\":0,\"rows\":1000,\
             \"ns_per_row\":0.000,\"pvalue_hash\":\"{hash}\",\
             \"dense_count_cells\":0,\"narrow_code_bytes\":0,\
             \"append_rows\":{appended},\"extended_encodings\":{extended},\
             \"memo_patched\":{},\"memo_invalidated\":{}}}",
            memo.0, memo.1
        )
    }

    /// The smallest document the validator accepts, as mutable rows.
    fn fake_doc(rows: &[String]) -> String {
        format!(
            "{{\"bench\":\"fairsel-engine\",\"runs\":[{}]}}",
            rows.join(",")
        )
    }

    fn valid_rows() -> Vec<String> {
        vec![
            fake_run("gtest-batch/x", "grpsel-batched", 10, (0, 0), 5, 0),
            fake_run("gtest-batch/x", "grpsel-spec", 7, (5, 3), 5, 0),
            fake_run("fisherz-batch/x", "grpsel-batched", 12, (0, 0), 5, 0),
            fake_run("fisherz-batch/x", "grpsel-spec", 8, (6, 4), 5, 0),
            fake_run("serve/x", "serve-warm", 0, (0, 0), 5, 9000),
            fake_run("serve/concurrent/x", "serve-warm-fp", 0, (0, 0), 5, 300),
            fake_scaling_run("gtest", "kernels-narrow", 1000, "abc1", 50, 40),
            fake_scaling_run("gtest", "kernels-reference", 1000, "abc1", 0, 40),
            fake_scaling_run("gtest", "kernels-narrow", 3000, "abc2", 150, 120),
            fake_scaling_run("gtest", "kernels-reference", 3000, "abc2", 0, 120),
            fake_scaling_run("fisherz", "kernels-blocked", 1000, "fff1", 0, 0),
            fake_scaling_run("fisherz", "kernels-naive", 1000, "fff1", 0, 0),
            fake_tail_run(0.5, 1.0, 2.0, 3.0, 6),
            fake_append_run("reselect-cold", "aa11", 0, 0, 50_000, 6, (0, 0)),
            fake_append_run("append-reselect", "aa11", 200, 3, 2_000, 6, (0, 6)),
            fake_append_run("append-reselect-patched", "aa11", 200, 3, 2_000, 2, (5, 1)),
        ]
    }

    #[test]
    fn validator_requires_warm_serve_run() {
        validate_bench_json(&fake_doc(&valid_rows())).expect("fixture should validate");
        // No serve scenario.
        let no_serve: Vec<String> = valid_rows().drain(..4).collect();
        assert!(validate_bench_json(&fake_doc(&no_serve))
            .unwrap_err()
            .contains("serve-warm"));
        // Serve present but the warm run still issued tests.
        let mut stale = valid_rows();
        stale[4] = fake_run("serve/x", "serve-warm", 4, (0, 0), 5, 9000);
        assert!(validate_bench_json(&fake_doc(&stale)).is_err());
    }

    #[test]
    fn validator_requires_tiny_warm_fp_requests() {
        // Missing the serve/concurrent fp row entirely.
        let no_fp: Vec<String> = valid_rows().drain(..5).collect();
        assert!(validate_bench_json(&fake_doc(&no_fp))
            .unwrap_err()
            .contains("serve-warm-fp"));
        // The fp wave issued tests: not warm.
        let mut cold = valid_rows();
        cold[5] = fake_run("serve/concurrent/x", "serve-warm-fp", 3, (0, 0), 5, 300);
        assert!(validate_bench_json(&fake_doc(&cold))
            .unwrap_err()
            .contains("issued"));
        // The fp request is megabyte-scale: the transport regressed.
        let mut fat = valid_rows();
        fat[5] = fake_run("serve/concurrent/x", "serve-warm-fp", 0, (0, 0), 5, 900_000);
        assert!(validate_bench_json(&fake_doc(&fat))
            .unwrap_err()
            .contains("bytes"));
    }

    #[test]
    fn validator_enforces_speculation_conservation() {
        // A spec run whose issued + hits disagree with the plain run.
        let mut broken = valid_rows();
        broken[1] = fake_run("gtest-batch/x", "grpsel-spec", 7, (5, 2), 5, 0);
        assert!(validate_bench_json(&fake_doc(&broken))
            .unwrap_err()
            .contains("conservation"));
        // A "speculative" run that never speculated.
        let mut lazy = valid_rows();
        lazy[1] = fake_run("gtest-batch/x", "grpsel-spec", 10, (0, 0), 5, 0);
        assert!(validate_bench_json(&fake_doc(&lazy))
            .unwrap_err()
            .contains("never speculated"));
        // Missing the spec row entirely.
        let mut missing = valid_rows();
        missing.remove(1);
        assert!(validate_bench_json(&fake_doc(&missing))
            .unwrap_err()
            .contains("no grpsel-spec run"));
    }

    #[test]
    fn validator_requires_monotone_percentiles_and_tail_run() {
        // Missing the latency-tail row entirely.
        let mut no_tail = valid_rows();
        no_tail.remove(12);
        assert!(validate_bench_json(&fake_doc(&no_tail))
            .unwrap_err()
            .contains("latency-tail"));
        // Tail row present but its histogram never recorded anything.
        let mut empty = valid_rows();
        empty[12] = fake_tail_run(0.0, 0.0, 0.0, 0.0, 0);
        assert!(validate_bench_json(&fake_doc(&empty))
            .unwrap_err()
            .contains("latency-tail"));
        // Percentiles out of order: the document is corrupt.
        let mut bad = valid_rows();
        bad[12] = fake_tail_run(2.0, 1.0, 3.0, 4.0, 6);
        assert!(validate_bench_json(&fake_doc(&bad))
            .unwrap_err()
            .contains("monotone"));
        // p99 above max is just as corrupt.
        let mut above = valid_rows();
        above[12] = fake_tail_run(0.5, 1.0, 5.0, 4.0, 6);
        assert!(validate_bench_json(&fake_doc(&above))
            .unwrap_err()
            .contains("monotone"));
    }

    #[test]
    fn validator_enforces_append_reselect_identity() {
        validate_bench_json(&fake_doc(&valid_rows())).expect("fixture should validate");
        // The extended re-select disagrees with the cold run's bits.
        let mut split = valid_rows();
        split[14] = fake_append_run("append-reselect", "bb22", 200, 3, 2_000, 6, (0, 6));
        assert!(validate_bench_json(&fake_doc(&split))
            .unwrap_err()
            .contains("disagrees"));
        // A warm row that never recorded appended rows.
        let mut none_appended = valid_rows();
        none_appended[14] = fake_append_run("append-reselect", "aa11", 0, 3, 2_000, 6, (0, 6));
        assert!(validate_bench_json(&fake_doc(&none_appended))
            .unwrap_err()
            .contains("appended no rows"));
        // A warm row that rebuilt every encoding instead of extending.
        let mut rebuilt = valid_rows();
        rebuilt[14] = fake_append_run("append-reselect", "aa11", 200, 0, 2_000, 6, (0, 6));
        assert!(validate_bench_json(&fake_doc(&rebuilt))
            .unwrap_err()
            .contains("reused no encodings"));
        // The streaming client re-shipped as much as the cold one.
        let mut fat = valid_rows();
        fat[14] = fake_append_run("append-reselect", "aa11", 200, 3, 50_000, 6, (0, 6));
        assert!(validate_bench_json(&fake_doc(&fat))
            .unwrap_err()
            .contains("wire cost"));
        // A warm row with no cold twin to compare against.
        let mut orphan = valid_rows();
        orphan.remove(13);
        assert!(validate_bench_json(&fake_doc(&orphan))
            .unwrap_err()
            .contains("no reselect-cold twin"));
        // No append rows at all (the lone patched row does not count as
        // an invalidate-all baseline).
        let mut missing = valid_rows();
        missing.drain(13..15);
        assert!(validate_bench_json(&fake_doc(&missing))
            .unwrap_err()
            .contains("no append/reselect runs"));
    }

    #[test]
    fn validator_enforces_patched_reselect_ledger() {
        validate_bench_json(&fake_doc(&valid_rows())).expect("fixture should validate");
        // The patched re-select disagrees with the cold run's bits.
        let mut split = valid_rows();
        split[15] = fake_append_run("append-reselect-patched", "bb22", 200, 3, 2_000, 2, (5, 1));
        assert!(validate_bench_json(&fake_doc(&split))
            .unwrap_err()
            .contains("disagrees"));
        // A "patched" row that never patched a memo.
        let mut unpatched = valid_rows();
        unpatched[15] =
            fake_append_run("append-reselect-patched", "aa11", 200, 3, 2_000, 2, (0, 6));
        assert!(validate_bench_json(&fake_doc(&unpatched))
            .unwrap_err()
            .contains("patched no memos"));
        // Patched + invalidated no longer covers the baseline's memo.
        let mut leaky = valid_rows();
        leaky[15] = fake_append_run("append-reselect-patched", "aa11", 200, 3, 2_000, 2, (5, 0));
        assert!(validate_bench_json(&fake_doc(&leaky))
            .unwrap_err()
            .contains("not conserved"));
        // The baseline claims patched memos: it is not an invalidate-all
        // baseline and the comparison is meaningless.
        let mut fake_baseline = valid_rows();
        fake_baseline[14] = fake_append_run("append-reselect", "aa11", 200, 3, 2_000, 6, (1, 5));
        assert!(validate_bench_json(&fake_doc(&fake_baseline))
            .unwrap_err()
            .contains("baseline claims"));
        // Patching saved no issued work over invalidate-all.
        let mut no_saving = valid_rows();
        no_saving[15] =
            fake_append_run("append-reselect-patched", "aa11", 200, 3, 2_000, 6, (5, 1));
        assert!(validate_bench_json(&fake_doc(&no_saving))
            .unwrap_err()
            .contains("not under the invalidate-all baseline"));
        // No patched row at all.
        let mut missing = valid_rows();
        missing.remove(15);
        assert!(validate_bench_json(&fake_doc(&missing))
            .unwrap_err()
            .contains("no append-reselect-patched runs"));
    }

    #[test]
    fn append_reselect_extends_and_matches_cold() {
        let rows = append_reselect(12, 600, &[60], 2, 1);
        assert_eq!(rows.len(), 3);
        let cold = rows.iter().find(|r| r.algo == "reselect-cold").unwrap();
        let warm = rows.iter().find(|r| r.algo == "append-reselect").unwrap();
        let patched = rows
            .iter()
            .find(|r| r.algo == "append-reselect-patched")
            .unwrap();
        // Bit-identity: both extended sessions' memoized outcome digests
        // equal the cold run's on the concatenated table.
        assert_eq!(warm.pvalue_hash, cold.pvalue_hash);
        assert_eq!(patched.pvalue_hash, cold.pvalue_hash);
        assert!(!warm.pvalue_hash.is_empty());
        // The warm-birth ledger: the batch was appended and real
        // encodings survived the extension — on both streaming rows.
        assert_eq!(warm.append_rows, 60);
        assert!(warm.extended_encodings > 0);
        assert_eq!(patched.append_rows, 60);
        assert!(patched.extended_encodings > 0);
        // The baseline invalidates every outcome on append, so its
        // re-select issues exactly the cold query stream — the saving is
        // encode/scaffold reuse and wire bytes, not skipped tests.
        assert_eq!(warm.issued, cold.issued);
        assert_eq!(warm.memo_patched, 0);
        assert!(warm.memo_invalidated > 0);
        // The patched row pays O(batch): resident memos were re-derived
        // from patched counts, the ledger conserves the baseline's memo,
        // and the re-select issues strictly fewer tests.
        assert!(patched.memo_patched > 0);
        assert_eq!(
            patched.memo_patched + patched.memo_invalidated,
            warm.memo_invalidated
        );
        assert!(patched.issued < warm.issued);
        assert_eq!(warm.selected, cold.selected);
        assert_eq!(patched.selected, cold.selected);
        // Only the batch frame crosses the wire.
        assert!(warm.req_bytes > 0 && warm.req_bytes < cold.req_bytes);
    }

    #[test]
    fn serve_latency_tail_reports_ascending_percentiles() {
        let rows = serve_latency_tail(10, 400, 2, 2, 2);
        assert_eq!(rows.len(), 2);
        let hot = &rows[0];
        let cold = &rows[1];
        assert_eq!(hot.algo, "tail-hot");
        assert_eq!(cold.algo, "tail-cold");
        for r in &rows {
            assert_eq!(r.hist_total, 4, "{}: 2 clients x 2 rounds", r.algo);
            assert!(
                r.p50_ms <= r.p95_ms && r.p95_ms <= r.p99_ms && r.p99_ms <= r.max_ms,
                "{}: percentiles must ascend ({} / {} / {} / {})",
                r.algo,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms,
                r.max_ms
            );
            assert!(r.max_ms > 0.0, "{}: requests take nonzero time", r.algo);
        }
        // The transport asymmetry: hot requests address by fingerprint,
        // cold requests ship a whole CSV dataset.
        assert!(hot.req_bytes < 1024, "hot request is fp-addressed");
        assert!(cold.req_bytes > 1024, "cold request carries a dataset");
    }

    #[test]
    fn validator_enforces_kernel_byte_identity() {
        validate_bench_json(&fake_doc(&valid_rows())).expect("fixture should validate");
        // The two kernels of one scenario disagree on outcome bits.
        let mut split = valid_rows();
        split[7] = fake_scaling_run("gtest", "kernels-reference", 1000, "deadbeef", 0, 40);
        assert!(validate_bench_json(&fake_doc(&split))
            .unwrap_err()
            .contains("disagree"));
        // Row counts regress within an algo.
        let mut shrunk = valid_rows();
        shrunk[8] = fake_scaling_run("gtest", "kernels-narrow", 500, "abc9", 150, 120);
        shrunk[9] = fake_scaling_run("gtest", "kernels-reference", 500, "abc9", 0, 120);
        assert!(validate_bench_json(&fake_doc(&shrunk))
            .unwrap_err()
            .contains("ascending"));
        // A narrow G-test row that never touched a dense arena.
        let mut hashed = valid_rows();
        hashed[6] = fake_scaling_run("gtest", "kernels-narrow", 1000, "abc1", 0, 40);
        assert!(validate_bench_json(&fake_doc(&hashed))
            .unwrap_err()
            .contains("dense"));
        // A row with no outcome digest at all.
        let mut blank = valid_rows();
        blank[10] = fake_scaling_run("fisherz", "kernels-blocked", 1000, "", 0, 0);
        assert!(validate_bench_json(&fake_doc(&blank))
            .unwrap_err()
            .contains("pvalue_hash"));
        // No rows-scaling rows anywhere.
        let mut none = valid_rows();
        none.drain(6..12);
        assert!(validate_bench_json(&fake_doc(&none))
            .unwrap_err()
            .contains("rows-scaling"));
    }

    #[test]
    fn rows_scaling_kernels_agree_and_count() {
        let rows = rows_scaling(&[600], 2, 1);
        assert_eq!(rows.len(), 4);
        let by_algo = |algo: &str| rows.iter().find(|r| r.algo == algo).unwrap();
        let narrow = by_algo("kernels-narrow");
        let reference = by_algo("kernels-reference");
        let blocked = by_algo("kernels-blocked");
        let naive = by_algo("kernels-naive");
        // Byte-identity across kernel generations, per tester.
        assert_eq!(narrow.pvalue_hash, reference.pvalue_hash);
        assert_eq!(blocked.pvalue_hash, naive.pvalue_hash);
        assert!(!narrow.pvalue_hash.is_empty());
        // The narrow path counts its dense arena work; the reference path
        // by construction never touches an arena.
        assert!(narrow.dense_count_cells > 0);
        assert_eq!(reference.dense_count_cells, 0);
        assert!(narrow.narrow_code_bytes > 0);
        for r in &rows {
            assert_eq!(r.rows, 600);
            assert!(r.ns_per_row > 0.0, "{}", r.algo);
        }
        // Selections agree across kernels of the same tester (different
        // testers legitimately select differently).
        assert_eq!(narrow.selected, reference.selected);
        assert_eq!(blocked.selected, naive.selected);
    }

    #[test]
    fn smoke_suite_validates() {
        let json = to_json(&smoke_suite());
        validate_bench_json(&json).expect("smoke output must validate");
    }

    #[test]
    fn serve_concurrent_warm_fp_is_cached_and_tiny() {
        let rows = serve_concurrent(10, 400, 3);
        assert_eq!(rows.len(), 4);
        let by_algo = |algo: &str| rows.iter().find(|r| r.algo == algo).unwrap();
        let cold = by_algo("serve-cold-csv");
        let warm_csv = by_algo("serve-warm-csv");
        let put = by_algo("serve-put");
        let warm_fp = by_algo("serve-warm-fp");
        assert!(cold.issued > 0, "cold wave must issue tests");
        assert_eq!(warm_csv.issued, 0, "warm csv wave is fully cached");
        assert_eq!(warm_fp.issued, 0, "warm fp wave is fully cached");
        assert!(warm_fp.cache_hits > 0);
        // The transport win: csv requests ship the dataset, fp requests
        // ship a fingerprint.
        assert!(cold.req_bytes > 1024, "csv request carries the dataset");
        assert!(
            warm_fp.req_bytes < 1024,
            "fp request must be under 1 KiB (got {})",
            warm_fp.req_bytes
        );
        assert!(put.req_bytes > 0 && put.wall_ms >= 0.0);
        // Every wave selects identically.
        assert_eq!(cold.selected, warm_csv.selected);
        assert_eq!(cold.selected, warm_fp.selected);
    }

    #[test]
    fn validator_rejects_bad_documents() {
        assert!(validate_bench_json("not json").is_err());
        assert!(validate_bench_json("{\"bench\":\"x\",\"runs\":[]}").is_err());
        // A runs array whose rows lack the encode counters.
        let legacy = "{\"bench\":\"fairsel-engine\",\"runs\":[{\"scenario\":\"gtest-batch/x\",\
                      \"algo\":\"grpsel-batched\",\"issued\":3,\"wall_ms\":1.0}]}";
        assert!(validate_bench_json(legacy).is_err());
        // Encode counters present but never hit.
        let cold = "{\"bench\":\"fairsel-engine\",\"runs\":[{\"scenario\":\"gtest-batch/x\",\
                    \"algo\":\"grpsel-batched\",\"issued\":3,\"encode_hits\":0,\
                    \"encode_misses\":9,\"wall_ms\":1.0}]}";
        assert!(validate_bench_json(cold).is_err());
    }
}
