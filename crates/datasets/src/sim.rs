//! Shared machinery for simulated datasets: CPT constructors that express
//! causal effects the way a data modeler would (logistic / ordinal response
//! to parents), and the sampler that turns a [`DiscreteScm`] plus a role
//! vector into role-annotated train/test [`Table`]s.
//!
//! Every generated table keeps **column order equal to node order**, so a
//! table column id, a `Problem` variable id, and a DAG `NodeId` index all
//! agree — the convention the whole workspace relies on.

use fairsel_graph::{Dag, NodeId};
use fairsel_scm::DiscreteScm;
use fairsel_table::{Column, Role, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Logistic response: `P(child = 1 | parents) = σ(bias + Σ wᵢ·x̃ᵢ)` where
/// `x̃` is the parent value rescaled to `[-1, 1]`. Returns the flat CPT
/// buffer for a **binary** child in the mixed-radix row order used by
/// [`fairsel_scm::Cpt`] (parents ascending by node id, first parent most
/// significant).
///
/// `weights` maps parent node → coefficient; parents of `node` missing
/// from `weights` get coefficient 0 (pure noise parents).
///
/// # Panics
/// Panics if a weight refers to a non-parent of `node`.
pub fn logistic_cpt(
    dag: &Dag,
    arities: &[u32],
    node: NodeId,
    bias: f64,
    weights: &[(NodeId, f64)],
) -> Vec<f64> {
    let parents = dag.parents(node);
    for (w, _) in weights {
        assert!(
            parents.contains(w),
            "logistic_cpt: {} is not a parent of {}",
            dag.name(*w),
            dag.name(node)
        );
    }
    let mut probs = Vec::new();
    for_each_parent_row(parents, arities, |values| {
        let mut z = bias;
        for (i, &p) in parents.iter().enumerate() {
            if let Some(&(_, w)) = weights.iter().find(|(n, _)| *n == p) {
                z += w * rescale(values[i], arities[p.index()]);
            }
        }
        let p1 = sigmoid(z);
        probs.push(1.0 - p1);
        probs.push(p1);
    });
    probs
}

/// Ordinal (graded) response for a child of arity `k`: the child level is
/// distributed `Binomial(k - 1, σ(bias + Σ wᵢ·x̃ᵢ))`, so increasing the
/// linear predictor monotonically shifts mass to higher levels. With
/// `k = 2` this coincides with [`logistic_cpt`].
pub fn ordinal_cpt(
    dag: &Dag,
    arities: &[u32],
    node: NodeId,
    bias: f64,
    weights: &[(NodeId, f64)],
) -> Vec<f64> {
    let parents = dag.parents(node);
    for (w, _) in weights {
        assert!(
            parents.contains(w),
            "ordinal_cpt: {} is not a parent of {}",
            dag.name(*w),
            dag.name(node)
        );
    }
    let k = arities[node.index()];
    assert!(k >= 2, "ordinal_cpt: child arity must be >= 2");
    let mut probs = Vec::new();
    for_each_parent_row(parents, arities, |values| {
        let mut z = bias;
        for (i, &p) in parents.iter().enumerate() {
            if let Some(&(_, w)) = weights.iter().find(|(n, _)| *n == p) {
                z += w * rescale(values[i], arities[p.index()]);
            }
        }
        let p = sigmoid(z);
        for level in 0..k {
            probs.push(binomial_pmf(k - 1, level, p));
        }
    });
    probs
}

/// Root distribution: Bernoulli(`p1`) for a binary root node.
pub fn bernoulli(p1: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&p1), "bernoulli: p out of range");
    vec![1.0 - p1, p1]
}

/// Root distribution: explicit categorical probabilities (must sum to 1).
pub fn categorical(probs: &[f64]) -> Vec<f64> {
    let sum: f64 = probs.iter().sum();
    assert!((sum - 1.0).abs() < 1e-9, "categorical: probs sum to {sum}");
    probs.to_vec()
}

/// Noisy-copy CPT: the child (same arity `a` as its single parent) copies
/// the parent with probability `1 - eps` and is uniform otherwise. The
/// classic "proxy variable" mechanism (zip code ≈ race).
pub fn noisy_copy(a: u32, eps: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&eps), "noisy_copy: eps out of range");
    let a_us = a as usize;
    let off = eps / a as f64;
    let mut probs = vec![off; a_us * a_us];
    for v in 0..a_us {
        probs[v * a_us + v] += 1.0 - eps;
    }
    probs
}

/// Enumerate parent rows in the CPT's mixed-radix order, calling `f` with
/// the parent values of each row (parents in ascending node-id order).
fn for_each_parent_row<F: FnMut(&[u32])>(parents: &[NodeId], arities: &[u32], mut f: F) {
    let pa: Vec<u32> = parents.iter().map(|p| arities[p.index()]).collect();
    let rows: usize = pa.iter().map(|&a| a as usize).product();
    let mut values = vec![0u32; parents.len()];
    for r in 0..rows {
        let mut rem = r;
        // First parent is most significant: decode from the right.
        for i in (0..pa.len()).rev() {
            values[i] = (rem % pa[i] as usize) as u32;
            rem /= pa[i] as usize;
        }
        f(&values);
    }
}

/// Map a categorical value in `0..a` onto `[-1, 1]` (binary: −1 / +1).
fn rescale(v: u32, a: u32) -> f64 {
    if a <= 1 {
        0.0
    } else {
        2.0 * v as f64 / (a - 1) as f64 - 1.0
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

fn binomial_pmf(n: u32, k: u32, p: f64) -> f64 {
    let mut c = 1.0;
    for i in 0..k {
        c = c * (n - i) as f64 / (i + 1) as f64;
    }
    c * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
}

/// A simulated dataset: the generating SCM (ground truth), per-node roles,
/// and sampled train/test tables whose columns follow node order.
#[derive(Clone, Debug)]
pub struct SimulatedDataset {
    /// Short dataset name as used in the paper's tables ("MEPS(1)", ...).
    pub name: String,
    /// The generating structural causal model — ground truth for audits.
    pub scm: DiscreteScm,
    /// Role of each node/column.
    pub roles: Vec<Role>,
    /// Training split.
    pub train: Table,
    /// Held-out test split.
    pub test: Table,
}

impl SimulatedDataset {
    /// Sample `n_train + n_test` rows from `scm` and package them.
    pub fn generate(
        name: impl Into<String>,
        scm: DiscreteScm,
        roles: Vec<Role>,
        n_train: usize,
        n_test: usize,
        seed: u64,
    ) -> SimulatedDataset {
        assert_eq!(roles.len(), scm.len(), "one role per node required");
        let mut rng = StdRng::seed_from_u64(seed);
        let train = sample_table(&scm, &roles, n_train, &mut rng);
        let test = sample_table(&scm, &roles, n_test, &mut rng);
        SimulatedDataset {
            name: name.into(),
            scm,
            roles,
            train,
            test,
        }
    }

    /// Sample a fresh table of `n` rows from a *different* SCM over the
    /// same graph/roles — used by the §5.4 distribution-shift experiment.
    pub fn resample_from(&self, shifted: &DiscreteScm, n: usize, seed: u64) -> Table {
        assert_eq!(
            shifted.len(),
            self.scm.len(),
            "shifted SCM must match shape"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        sample_table(shifted, &self.roles, n, &mut rng)
    }

    /// The causal graph behind the data.
    pub fn dag(&self) -> &Dag {
        self.scm.dag()
    }

    /// Number of candidate (non-sensitive, non-admissible) features.
    pub fn n_features(&self) -> usize {
        self.roles.iter().filter(|r| **r == Role::Feature).count()
    }
}

/// Sample `n` rows of `scm` into a role-annotated [`Table`].
pub fn sample_table<R: rand::Rng + ?Sized>(
    scm: &DiscreteScm,
    roles: &[Role],
    n: usize,
    rng: &mut R,
) -> Table {
    let cols = scm.sample(rng, n);
    let dag = scm.dag();
    let columns: Vec<Column> = cols
        .into_iter()
        .enumerate()
        .map(|(i, codes)| {
            let v = NodeId(i as u32);
            Column::cat(dag.name(v).to_owned(), roles[i], codes, scm.arity(v))
        })
        .collect();
    Table::new(columns).expect("sampled columns are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_graph::DagBuilder;
    use fairsel_scm::DiscreteScmBuilder;

    fn chain_dag() -> Dag {
        DagBuilder::new()
            .nodes(["S", "A", "Y"])
            .edge("S", "A")
            .edge("A", "Y")
            .build()
    }

    #[test]
    fn logistic_cpt_rows_normalized_and_monotone() {
        let dag = chain_dag();
        let arities = vec![2, 2, 2];
        let a = dag.expect_node("A");
        let s = dag.expect_node("S");
        let probs = logistic_cpt(&dag, &arities, a, 0.0, &[(s, 1.5)]);
        assert_eq!(probs.len(), 4);
        assert!((probs[0] + probs[1] - 1.0).abs() < 1e-12);
        assert!((probs[2] + probs[3] - 1.0).abs() < 1e-12);
        // Positive weight: P(A=1 | S=1) > P(A=1 | S=0).
        assert!(probs[3] > probs[1]);
    }

    #[test]
    #[should_panic(expected = "not a parent")]
    fn logistic_cpt_rejects_non_parent() {
        let dag = chain_dag();
        let y = dag.expect_node("Y");
        let s = dag.expect_node("S");
        logistic_cpt(&dag, &[2, 2, 2], y, 0.0, &[(s, 1.0)]);
    }

    #[test]
    fn ordinal_cpt_shifts_mass_with_parent() {
        let dag = chain_dag();
        let arities = vec![2, 4, 2];
        let a = dag.expect_node("A");
        let s = dag.expect_node("S");
        let probs = ordinal_cpt(&dag, &arities, a, 0.0, &[(s, 2.0)]);
        assert_eq!(probs.len(), 8);
        for row in probs.chunks(4) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        // Expected level is higher when S = 1.
        let ev = |row: &[f64]| {
            row.iter()
                .enumerate()
                .map(|(i, p)| i as f64 * p)
                .sum::<f64>()
        };
        assert!(ev(&probs[4..8]) > ev(&probs[0..4]));
    }

    #[test]
    fn noisy_copy_diagonal_dominates() {
        let probs = noisy_copy(3, 0.3);
        assert_eq!(probs.len(), 9);
        for r in 0..3 {
            let row = &probs[r * 3..(r + 1) * 3];
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(row[r] > 0.7);
        }
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let total: f64 = (0..=5).map(|k| binomial_pmf(5, k, 0.37)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generate_produces_role_annotated_splits() {
        let dag = chain_dag();
        let s = dag.expect_node("S");
        let a = dag.expect_node("A");
        let y = dag.expect_node("Y");
        let arities = vec![2u32, 2, 2];
        let scm = DiscreteScmBuilder::with_arities(dag.clone(), arities.clone())
            .cpt(s, bernoulli(0.5))
            .unwrap()
            .cpt(a, logistic_cpt(&dag, &arities, a, 0.0, &[(s, 1.0)]))
            .unwrap()
            .cpt(y, logistic_cpt(&dag, &arities, y, 0.0, &[(a, 1.0)]))
            .unwrap()
            .build()
            .unwrap();
        let roles = vec![Role::Sensitive, Role::Admissible, Role::Target];
        let ds = SimulatedDataset::generate("toy", scm, roles, 100, 40, 7);
        assert_eq!(ds.train.n_rows(), 100);
        assert_eq!(ds.test.n_rows(), 40);
        assert_eq!(ds.train.sensitive_cols(), vec![0]);
        assert_eq!(ds.train.target_col(), 2);
        assert_eq!(ds.n_features(), 0);
        // Determinism.
        let again = SimulatedDataset::generate("toy", ds.scm.clone(), ds.roles.clone(), 100, 40, 7);
        assert_eq!(
            ds.train.col(1).codes().unwrap(),
            again.train.col(1).codes().unwrap()
        );
    }

    #[test]
    fn rescale_maps_to_unit_interval() {
        assert_eq!(rescale(0, 2), -1.0);
        assert_eq!(rescale(1, 2), 1.0);
        assert_eq!(rescale(1, 3), 0.0);
        assert_eq!(rescale(0, 1), 0.0);
    }
}
