//! Fairness-structured synthetic graphs — the workload generator behind the
//! paper's scaling and recovery experiments (§5.3, Figures 4–6).
//!
//! Each instance contains sensitive roots `S`, admissible mediators `A`
//! (children of `S`), a target `Y`, and `n` candidate features drawn from
//! four causal archetypes:
//!
//! * **Biased** — `S → X → Y`: carries fresh sensitive information and
//!   feeds the target; Theorem-1 unsafe. The fraction of these is the
//!   paper's `p` (Figure 4) / `k` (Figure 5) knob.
//! * **Mediated** — `A → X (→ Y)`: sensitive influence flows only through
//!   the admissible set, so `X ⊥ S | A` certifies it into `C₁`.
//! * **Exogenous** — root `X (→ Y)`: marginally independent of `S`,
//!   certified by the empty conditioning set.
//! * **Fig-6** — `X → A ← S`, `X → M → Y`: safe by Theorem 1(iii) only
//!   (not a descendant of `S` in `G_Ā`) but invisible to every CI
//!   pattern — the documented blind spot of observational selection.

use fairsel_graph::{Dag, NodeId};
use fairsel_scm::{DiscreteScm, DiscreteScmBuilder};
use fairsel_table::Role;
use rand::Rng;

use crate::sim::{bernoulli, logistic_cpt};

/// Knobs for [`synthetic_instance`].
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of candidate features `n` (excluding S, A, Y and the hidden
    /// mediators attached to Fig-6 features).
    pub n_features: usize,
    /// Fraction of features that are biased (`S → X → Y`).
    pub biased_fraction: f64,
    /// Among non-biased features, fraction mediated through `A`
    /// (the rest are exogenous roots).
    pub mediated_fraction: f64,
    /// Fraction of features wired as the Figure-6 pattern (clause-(iii)
    /// only). Carved out of the non-biased share.
    pub fig6_fraction: f64,
    /// Probability that a mediated/exogenous feature also feeds `Y`.
    pub predictive_fraction: f64,
    /// Number of sensitive roots.
    pub n_sensitive: usize,
    /// Number of admissible mediators.
    pub n_admissible: usize,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            n_features: 100,
            biased_fraction: 0.05,
            mediated_fraction: 0.4,
            fig6_fraction: 0.0,
            predictive_fraction: 0.3,
            n_sensitive: 1,
            n_admissible: 1,
        }
    }
}

/// The causal archetype assigned to each feature (ground truth labels for
/// scoring recovery).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Archetype {
    Biased,
    Mediated,
    Exogenous,
    Fig6,
    /// Hidden mediator `M` attached to a Fig-6 feature (also a candidate
    /// feature; it is a descendant of the Fig-6 variable but not of `S`).
    Fig6Mediator,
}

/// A generated instance: graph, per-node roles (aligned with node ids),
/// and the archetype of every feature node.
#[derive(Clone, Debug)]
pub struct SyntheticInstance {
    pub dag: Dag,
    pub roles: Vec<Role>,
    /// `(variable id, archetype)` for every candidate feature.
    pub archetypes: Vec<(usize, Archetype)>,
}

impl SyntheticInstance {
    /// Variable ids of the biased features.
    pub fn biased(&self) -> Vec<usize> {
        self.archetypes
            .iter()
            .filter(|(_, a)| *a == Archetype::Biased)
            .map(|&(v, _)| v)
            .collect()
    }

    /// Number of biased features `k`.
    pub fn n_biased(&self) -> usize {
        self.biased().len()
    }
}

/// Generate a fairness-structured random DAG. Archetypes are assigned to
/// feature slots uniformly at random (so biased features are interleaved
/// among fair ones, the adversarial case for midpoint group splits).
pub fn synthetic_instance<R: Rng + ?Sized>(
    rng: &mut R,
    cfg: &SyntheticConfig,
) -> SyntheticInstance {
    assert!(cfg.n_features > 0, "need at least one feature");
    assert!(cfg.n_sensitive > 0 && cfg.n_admissible > 0, "need S and A");
    let f = |x: f64| (0.0..=1.0).contains(&x);
    assert!(
        f(cfg.biased_fraction) && f(cfg.mediated_fraction) && f(cfg.fig6_fraction),
        "fractions must be in [0,1]"
    );

    let mut dag = Dag::new();
    let sensitive: Vec<NodeId> = (0..cfg.n_sensitive)
        .map(|i| dag.add_node(format!("S{}", i + 1)).expect("fresh name"))
        .collect();
    let admissible: Vec<NodeId> = (0..cfg.n_admissible)
        .map(|i| dag.add_node(format!("A{}", i + 1)).expect("fresh name"))
        .collect();
    for &a in &admissible {
        // Every admissible mediates every sensitive root (the Figure 1
        // shape); randomizing this adds nothing to the experiments.
        for &s in &sensitive {
            dag.add_edge(s, a).expect("S → A");
        }
    }

    // Assign archetypes to the n feature slots.
    let n = cfg.n_features;
    let n_biased = (cfg.biased_fraction * n as f64).round() as usize;
    let n_fig6 = (cfg.fig6_fraction * n as f64).round() as usize;
    let n_fair = n.saturating_sub(n_biased + n_fig6);
    let n_mediated = (cfg.mediated_fraction * n_fair as f64).round() as usize;
    let mut kinds = Vec::with_capacity(n);
    kinds.extend(std::iter::repeat_n(Archetype::Biased, n_biased));
    kinds.extend(std::iter::repeat_n(Archetype::Fig6, n_fig6));
    kinds.extend(std::iter::repeat_n(Archetype::Mediated, n_mediated));
    kinds.extend(std::iter::repeat_n(
        Archetype::Exogenous,
        n - kinds.len().min(n),
    ));
    kinds.truncate(n);
    // Fisher–Yates interleave so archetypes are not contiguous in id order.
    for i in (1..kinds.len()).rev() {
        kinds.swap(i, rng.gen_range(0..=i));
    }

    let mut features: Vec<NodeId> = Vec::with_capacity(n);
    let mut archetypes: Vec<(usize, Archetype)> = Vec::with_capacity(n);
    let mut fig6_pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for (i, &kind) in kinds.iter().enumerate() {
        let x = dag.add_node(format!("X{}", i + 1)).expect("fresh name");
        features.push(x);
        archetypes.push((x.index(), kind));
        match kind {
            Archetype::Biased => {
                let s = sensitive[rng.gen_range(0..sensitive.len())];
                dag.add_edge(s, x).expect("S → X");
            }
            Archetype::Mediated => {
                let a = admissible[rng.gen_range(0..admissible.len())];
                dag.add_edge(a, x).expect("A → X");
            }
            Archetype::Exogenous => {}
            Archetype::Fig6 => {
                let a = admissible[rng.gen_range(0..admissible.len())];
                dag.add_edge(x, a).expect("X → A");
                let m = dag.add_node(format!("M{}", i + 1)).expect("fresh name");
                dag.add_edge(x, m).expect("X → M");
                archetypes.push((m.index(), Archetype::Fig6Mediator));
                fig6_pairs.push((x, m));
            }
            Archetype::Fig6Mediator => unreachable!("mediators are added inline"),
        }
    }

    // Target last; its parents: every biased feature, each predictive fair
    // feature, the admissible set, and the Fig-6 mediators.
    let y = dag.add_node("Y").expect("fresh name");
    for &a in &admissible {
        dag.add_edge(a, y).expect("A → Y");
    }
    for (i, &x) in features.iter().enumerate() {
        match kinds[i] {
            Archetype::Biased => {
                dag.add_edge(x, y).expect("X → Y");
            }
            Archetype::Mediated | Archetype::Exogenous
                if rng.gen::<f64>() < cfg.predictive_fraction =>
            {
                dag.add_edge(x, y).expect("X → Y");
            }
            _ => {}
        }
    }
    for &(_, m) in &fig6_pairs {
        dag.add_edge(m, y).expect("M → Y");
    }

    let mut roles = vec![Role::Feature; dag.len()];
    for &s in &sensitive {
        roles[s.index()] = Role::Sensitive;
    }
    for &a in &admissible {
        roles[a.index()] = Role::Admissible;
    }
    roles[y.index()] = Role::Target;

    SyntheticInstance {
        dag,
        roles,
        archetypes,
    }
}

/// Attach CPTs to a synthetic instance so it can be *sampled* (the
/// spuriousness experiment needs data, not just a graph). All nodes are
/// binary; edge effects use a logistic response with weight `strength`.
///
/// The target's parent count is capped implicitly by the caller choosing a
/// small `predictive_fraction`: CPT size is `2^{|parents|}`, so keep
/// `|Pa(Y)| ≲ 20`.
pub fn synthetic_scm<R: Rng + ?Sized>(
    rng: &mut R,
    instance: &SyntheticInstance,
    strength: f64,
) -> DiscreteScm {
    let dag = &instance.dag;
    let arities = vec![2u32; dag.len()];
    let y_parents = dag
        .nodes()
        .filter(|&v| instance.roles[v.index()] == Role::Target)
        .map(|v| dag.parents(v).len())
        .max()
        .unwrap_or(0);
    assert!(
        y_parents <= 22,
        "synthetic_scm: target has {y_parents} parents; CPT would need 2^{y_parents} rows"
    );
    let mut builder = DiscreteScmBuilder::with_arities(dag.clone(), arities.clone());
    for v in dag.nodes() {
        let parents = dag.parents(v).to_vec();
        let probs = if parents.is_empty() {
            bernoulli(0.3 + 0.4 * rng.gen::<f64>())
        } else {
            let weights: Vec<(NodeId, f64)> = parents
                .iter()
                .map(|&p| (p, strength * if rng.gen::<bool>() { 1.0 } else { -1.0 }))
                .collect();
            logistic_cpt(dag, &arities, v, 0.0, &weights)
        };
        builder = builder.cpt(v, probs).expect("constructed CPTs are valid");
    }
    builder.build().expect("every node got a CPT")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_ci::{CiTest, OracleCi};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(seed: u64, cfg: &SyntheticConfig) -> SyntheticInstance {
        synthetic_instance(&mut StdRng::seed_from_u64(seed), cfg)
    }

    #[test]
    fn counts_match_config() {
        let cfg = SyntheticConfig {
            n_features: 200,
            biased_fraction: 0.1,
            fig6_fraction: 0.05,
            ..Default::default()
        };
        let inst = instance(1, &cfg);
        assert_eq!(inst.n_biased(), 20);
        let fig6 = inst
            .archetypes
            .iter()
            .filter(|(_, a)| *a == Archetype::Fig6)
            .count();
        assert_eq!(fig6, 10);
        // Features + mediators + S + A + Y.
        assert_eq!(inst.dag.len(), 200 + 10 + 1 + 1 + 1);
        let n_feature_roles = inst.roles.iter().filter(|r| **r == Role::Feature).count();
        assert_eq!(n_feature_roles, 210);
    }

    #[test]
    fn biased_features_are_dependent_on_s_given_a() {
        let cfg = SyntheticConfig {
            n_features: 50,
            biased_fraction: 0.2,
            ..Default::default()
        };
        let inst = instance(2, &cfg);
        let s = inst.dag.expect_node("S1");
        let a = inst.dag.expect_node("A1");
        let mut oracle = OracleCi::from_dag(inst.dag.clone());
        for &x in &inst.biased() {
            assert!(
                !oracle.ci(&[x], &[s.index()], &[a.index()]).independent,
                "biased X{x} should remain dependent on S given A"
            );
        }
    }

    #[test]
    fn mediated_and_exogenous_are_certified_fair() {
        let cfg = SyntheticConfig {
            n_features: 50,
            biased_fraction: 0.2,
            mediated_fraction: 0.5,
            ..Default::default()
        };
        let inst = instance(3, &cfg);
        let s = inst.dag.expect_node("S1").index();
        let a = inst.dag.expect_node("A1").index();
        let mut oracle = OracleCi::from_dag(inst.dag.clone());
        for &(v, kind) in &inst.archetypes {
            match kind {
                Archetype::Mediated => {
                    assert!(oracle.ci(&[v], &[s], &[a]).independent, "mediated X{v}");
                }
                Archetype::Exogenous => {
                    assert!(oracle.ci(&[v], &[s], &[]).independent, "exogenous X{v}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn fig6_features_have_no_ci_certificate() {
        let cfg = SyntheticConfig {
            n_features: 20,
            biased_fraction: 0.0,
            fig6_fraction: 0.2,
            mediated_fraction: 0.0,
            predictive_fraction: 0.0,
            ..Default::default()
        };
        let inst = instance(4, &cfg);
        let s = inst.dag.expect_node("S1").index();
        let a = inst.dag.expect_node("A1").index();
        let y = inst.dag.expect_node("Y").index();
        let mut oracle = OracleCi::from_dag(inst.dag.clone());
        for &(v, kind) in &inst.archetypes {
            if kind != Archetype::Fig6 {
                continue;
            }
            assert!(
                !oracle.ci(&[v], &[s], &[a]).independent,
                "X{v} ̸⊥ S | A (collider)"
            );
            // Predictive of Y through its mediator, so phase 2 cannot
            // rescue it either.
            assert!(!oracle.ci(&[v], &[y], &[a]).independent, "X{v} ̸⊥ Y | A");
            // Yet it is not a descendant of S in G_Ā.
            let g_bar = inst.dag.intervene(&[fairsel_graph::NodeId(a as u32)]);
            assert!(!g_bar.descendant_mask(&[fairsel_graph::NodeId(s as u32)])[v]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SyntheticConfig {
            n_features: 60,
            ..Default::default()
        };
        let a = instance(9, &cfg);
        let b = instance(9, &cfg);
        assert_eq!(a.dag.edges(), b.dag.edges());
        assert_eq!(a.archetypes, b.archetypes);
    }

    #[test]
    fn sampled_scm_reflects_bias_structure() {
        let cfg = SyntheticConfig {
            n_features: 12,
            biased_fraction: 0.25,
            predictive_fraction: 0.3,
            ..Default::default()
        };
        let inst = instance(5, &cfg);
        let mut rng = StdRng::seed_from_u64(6);
        let scm = synthetic_scm(&mut rng, &inst, 2.0);
        let cols = scm.sample(&mut rng, 4000);
        let s = inst.dag.expect_node("S1").index();
        // Empirical dependence: biased features correlate with S.
        for &x in &inst.biased() {
            let mut joint = [[0f64; 2]; 2];
            for r in 0..4000 {
                joint[cols[s][r] as usize][cols[x][r] as usize] += 1.0;
            }
            let n = 4000f64;
            let ps = (joint[1][0] + joint[1][1]) / n;
            let px = (joint[0][1] + joint[1][1]) / n;
            let corr = joint[1][1] / n - ps * px;
            assert!(
                corr.abs() > 0.02,
                "biased X{x} uncorrelated with S ({corr})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "parents")]
    fn scm_guard_against_huge_target_cpt() {
        let cfg = SyntheticConfig {
            n_features: 100,
            biased_fraction: 0.5,
            predictive_fraction: 1.0,
            ..Default::default()
        };
        let inst = instance(7, &cfg);
        synthetic_scm(&mut StdRng::seed_from_u64(1), &inst, 1.0);
    }
}
