//! Datasets for the reproduction: the paper's worked examples (Figures 1
//! and 6) as parameterized fixtures, the shared simulation machinery that
//! turns a [`fairsel_scm::DiscreteScm`] plus roles into role-annotated
//! train/test tables, and the fairness-structured synthetic workload
//! generator behind the §5.3 scaling and recovery experiments.

pub mod fixtures;
pub mod sim;
pub mod synthetic;

pub use fixtures::{all_fixtures, figure_1a, figure_1b, figure_1c, figure_6, Fixture};
pub use sim::{sample_table, SimulatedDataset};
pub use synthetic::{
    synthetic_instance, synthetic_scm, Archetype, SyntheticConfig, SyntheticInstance,
};
