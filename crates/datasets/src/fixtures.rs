//! The paper's worked examples as reusable fixtures: the three causal
//! graphs of Figure 1, and the Figure 6 counterexample where a safe
//! variable has no conditional-independence certificate.
//!
//! Each fixture ships the graph, role annotations (aligned with node ids),
//! and a parameterized [`DiscreteScm`] so both oracle-level and data-level
//! tests can run against the same ground truth.

use fairsel_graph::{Dag, DagBuilder, NodeId};
use fairsel_scm::{DiscreteScm, DiscreteScmBuilder};
use fairsel_table::Role;

use crate::sim::{bernoulli, logistic_cpt};

/// A fixture: graph, roles, and a sampled-data generator.
#[derive(Clone, Debug)]
pub struct Fixture {
    /// Paper figure this reproduces ("1a", "1b", "1c", "6").
    pub id: &'static str,
    pub dag: Dag,
    pub roles: Vec<Role>,
}

impl Fixture {
    /// Build the discrete SCM with all binary variables and edge strength
    /// `w` on every causal mechanism (|w| ≈ 1.5 gives strong, easily
    /// detectable effects at a few thousand samples).
    pub fn scm(&self, w: f64) -> DiscreteScm {
        let dag = &self.dag;
        let arities = vec![2u32; dag.len()];
        let mut b = DiscreteScmBuilder::with_arities(dag.clone(), arities.clone());
        for v in dag.nodes() {
            let parents = dag.parents(v);
            let probs = if parents.is_empty() {
                bernoulli(0.5)
            } else {
                let weights: Vec<(NodeId, f64)> = parents.iter().map(|&p| (p, w)).collect();
                logistic_cpt(dag, &arities, v, 0.0, &weights)
            };
            b = b.cpt(v, probs).expect("fixture CPTs are valid");
        }
        b.build().expect("all nodes covered")
    }

    /// Variable id of a named node.
    pub fn var(&self, name: &str) -> usize {
        self.dag.expect_node(name).index()
    }
}

fn roles_for(dag: &Dag, sensitive: &[&str], admissible: &[&str], target: &str) -> Vec<Role> {
    dag.nodes()
        .map(|v| {
            let n = dag.name(v);
            if sensitive.contains(&n) {
                Role::Sensitive
            } else if admissible.contains(&n) {
                Role::Admissible
            } else if n == target {
                Role::Target
            } else {
                Role::Feature
            }
        })
        .collect()
}

/// Figure 1(a): `X1` is fair (`X1 ⊥ S1 | A1`), `X2` is biased
/// (`S1 → X2 → Y`).
pub fn figure_1a() -> Fixture {
    let dag = DagBuilder::new()
        .nodes(["S1", "A1", "X1", "X2", "C1", "Y"])
        .edge("S1", "A1")
        .edge("S1", "X2")
        .edge("A1", "X1")
        .edge("C1", "X1")
        .edge("X1", "Y")
        .edge("X2", "Y")
        .build();
    let roles = roles_for(&dag, &["S1"], &["A1"], "Y");
    Fixture {
        id: "1a",
        dag,
        roles,
    }
}

/// Figure 1(b): `X1, X3 ∈ C₁`; `X2` carries sensitive information but is
/// screened off from `Y` (`X2 ⊥ Y | A1, X1, X3`) so it lands in `C₂`.
pub fn figure_1b() -> Fixture {
    let dag = DagBuilder::new()
        .nodes(["S1", "A1", "X1", "X2", "X3", "C1", "C2", "Y"])
        .edge("S1", "A1")
        .edge("S1", "X2")
        .edge("C2", "X2")
        .edge("A1", "X1")
        .edge("C1", "X1")
        .edge("X3", "Y")
        .edge("X1", "Y")
        .build();
    let roles = roles_for(&dag, &["S1"], &["A1"], "Y");
    Fixture {
        id: "1b",
        dag,
        roles,
    }
}

/// Figure 1(c): two admissible attributes; `X3 ⊥ S1 | A2` but not given
/// `A1`, exercising the `∃A' ⊆ A` subset search. `X2` is sensitive-laden
/// but screened off from `Y` given `A ∪ C₁` (phase-2 admissible).
pub fn figure_1c() -> Fixture {
    let dag = DagBuilder::new()
        .nodes(["S1", "A1", "A2", "X1", "X2", "X3", "C1", "C2", "Y"])
        .edge("S1", "A1")
        .edge("S1", "A2")
        .edge("A1", "X1")
        .edge("A2", "X3")
        .edge("S1", "X2")
        .edge("C2", "X2")
        .edge("C1", "X1")
        .edge("X1", "Y")
        .build();
    let roles = roles_for(&dag, &["S1"], &["A1", "A2"], "Y");
    Fixture {
        id: "1c",
        dag,
        roles,
    }
}

/// Figure 6: `X2 → S1 → A1`, `X2 → Y`, `X3 → Y`. `X2` is safe by Theorem
/// 1(iii) — as an ancestor of `S1` it is not a descendant of `S1` in
/// `G_Ā` — but the direct edge onto `S1` keeps `X2 ̸⊥ S1` under every
/// `A' ⊆ A`, so CI-based selection must reject it. The appendix's
/// identifiability gap.
pub fn figure_6() -> Fixture {
    let dag = DagBuilder::new()
        .nodes(["S1", "A1", "X2", "X3", "Y"])
        .edge("X2", "S1")
        .edge("S1", "A1")
        .edge("X2", "Y")
        .edge("X3", "Y")
        .build();
    let roles = roles_for(&dag, &["S1"], &["A1"], "Y");
    Fixture {
        id: "6",
        dag,
        roles,
    }
}

/// All four fixtures.
pub fn all_fixtures() -> Vec<Fixture> {
    vec![figure_1a(), figure_1b(), figure_1c(), figure_6()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_ci::{CiTest, OracleCi};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roles_align_with_nodes() {
        for f in all_fixtures() {
            assert_eq!(f.roles.len(), f.dag.len(), "fixture {}", f.id);
            let n_targets = f.roles.iter().filter(|r| **r == Role::Target).count();
            assert_eq!(n_targets, 1, "fixture {}", f.id);
        }
    }

    #[test]
    fn figure_1a_dsep_statements() {
        let f = figure_1a();
        let mut o = OracleCi::from_dag(f.dag.clone());
        let (s, a, x1, x2) = (f.var("S1"), f.var("A1"), f.var("X1"), f.var("X2"));
        assert!(o.ci(&[x1], &[s], &[a]).independent, "X1 ⊥ S1 | A1");
        assert!(!o.ci(&[x2], &[s], &[a]).independent, "X2 ̸⊥ S1 | A1");
    }

    #[test]
    fn figure_1b_x2_screened_from_y() {
        let f = figure_1b();
        let mut o = OracleCi::from_dag(f.dag.clone());
        let (x2, y) = (f.var("X2"), f.var("Y"));
        let cond = [f.var("A1"), f.var("X1"), f.var("X3")];
        assert!(o.ci(&[x2], &[y], &cond).independent, "X2 ⊥ Y | A1,X1,X3");
    }

    #[test]
    fn figure_1c_x3_needs_a2() {
        let f = figure_1c();
        let mut o = OracleCi::from_dag(f.dag.clone());
        let (s, x3) = (f.var("S1"), f.var("X3"));
        assert!(!o.ci(&[x3], &[s], &[f.var("A1")]).independent);
        assert!(o.ci(&[x3], &[s], &[f.var("A2")]).independent);
    }

    #[test]
    fn figure_6_x2_has_no_ci_certificate_yet_is_safe() {
        let f = figure_6();
        let mut o = OracleCi::from_dag(f.dag.clone());
        let (s, a, x2) = (f.var("S1"), f.var("A1"), f.var("X2"));
        assert!(!o.ci(&[x2], &[s], &[]).independent, "direct edge X2 → S1");
        assert!(
            !o.ci(&[x2], &[s], &[a]).independent,
            "still dependent given A1"
        );
        // Yet X2 is not a descendant of S1 in G_Ā — Theorem 1(iii) safe.
        let a_node = fairsel_graph::NodeId(a as u32);
        let s_node = fairsel_graph::NodeId(s as u32);
        let g_bar = f.dag.intervene(&[a_node]);
        assert!(!g_bar.descendant_mask(&[s_node])[x2]);
    }

    #[test]
    fn scm_samples_and_matches_shape() {
        for f in all_fixtures() {
            let scm = f.scm(1.5);
            let mut rng = StdRng::seed_from_u64(11);
            let cols = scm.sample(&mut rng, 500);
            assert_eq!(cols.len(), f.dag.len());
            assert!(cols.iter().all(|c| c.len() == 500));
            // Binary everywhere.
            assert!(cols.iter().flatten().all(|&v| v <= 1));
        }
    }

    #[test]
    fn scm_effects_visible_in_data() {
        // In Figure 1(a), X2 ← S1 with strength 1.5: the conditional means
        // must differ markedly.
        let f = figure_1a();
        let scm = f.scm(1.5);
        let mut rng = StdRng::seed_from_u64(13);
        let cols = scm.sample(&mut rng, 8000);
        let (s, x2) = (f.var("S1"), f.var("X2"));
        let mut mean = [0f64; 2];
        let mut count = [0f64; 2];
        for r in 0..8000 {
            mean[cols[s][r] as usize] += cols[x2][r] as f64;
            count[cols[s][r] as usize] += 1.0;
        }
        let diff = (mean[1] / count[1] - mean[0] / count[0]).abs();
        assert!(diff > 0.3, "S1 → X2 effect too weak: {diff}");
    }
}
