//! Property-based tests of the graphoid axioms the paper's group-testing
//! correctness rests on (Lemma 1, Lemmas 7–8), checked against d-separation
//! on random DAGs. Faithfulness makes d-separation and CI interchangeable,
//! so verifying the axioms graphically verifies the algebra GrpSel uses.
//!
//! Cases are generated from seeded RNG loops (the environment vendors no
//! property-testing framework); every failure message carries the seed, so
//! a counterexample reproduces deterministically.

use fairsel_graph::{d_separated, random_dag, Dag, NodeId, RandomDagConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 200;

/// Build a random DAG plus a partition of its nodes into four disjoint
/// lists (a, b, c, z), any of which may be empty. Graph size cycles
/// through 4..40 as the seed advances.
fn graph_and_sets(seed: u64) -> (Dag, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
    let n = 4 + (seed as usize * 7) % 36;
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = RandomDagConfig {
        nodes: n,
        max_parents: 3,
        density: 0.5,
        ..Default::default()
    };
    let dag = random_dag(&mut rng, &cfg);
    let mut a = Vec::new();
    let mut b = Vec::new();
    let mut c = Vec::new();
    let mut z = Vec::new();
    for v in dag.nodes() {
        match rng.gen_range(0..6) {
            0 => a.push(v),
            1 => b.push(v),
            2 => c.push(v),
            3 => z.push(v),
            _ => {} // leave out
        }
    }
    (dag, a, b, c, z)
}

/// Decomposition: A ⊥ B∪C | Z  ⇒  A ⊥ B | Z and A ⊥ C | Z.
#[test]
fn decomposition_axiom() {
    for seed in 0..CASES {
        let (dag, a, b, c, z) = graph_and_sets(seed);
        let mut bc = b.clone();
        bc.extend_from_slice(&c);
        if d_separated(&dag, &a, &bc, &z) {
            assert!(
                d_separated(&dag, &a, &b, &z),
                "decomposition failed on B (seed {seed})"
            );
            assert!(
                d_separated(&dag, &a, &c, &z),
                "decomposition failed on C (seed {seed})"
            );
        }
    }
}

/// Composition (holds for d-separation): A ⊥ B | Z and A ⊥ C | Z
/// ⇒ A ⊥ B∪C | Z. This is Lemma 1(2) and is what lets a group test
/// clear a whole set of features at once.
#[test]
fn composition_axiom() {
    for seed in 0..CASES {
        let (dag, a, b, c, z) = graph_and_sets(seed);
        if d_separated(&dag, &a, &b, &z) && d_separated(&dag, &a, &c, &z) {
            let mut bc = b.clone();
            bc.extend_from_slice(&c);
            assert!(
                d_separated(&dag, &a, &bc, &z),
                "composition failed (seed {seed})"
            );
        }
    }
}

/// Lemma 7 / Lemma 8 combined: X₁ ̸⊥ X\{X₁} | Z  ⇔  ∃ Xᵢ with
/// X₁ ̸⊥ Xᵢ | Z. This is the dependency-splitting rule GrpSel's
/// recursion relies on.
#[test]
fn group_dependence_iff_member_dependence() {
    for seed in 0..CASES {
        let (dag, a, b, c, z) = graph_and_sets(seed);
        // Use `a` as the singleton side (take first element), b∪c as group.
        if let Some(&x1) = a.first() {
            let mut group = b.clone();
            group.extend_from_slice(&c);
            if group.is_empty() {
                continue;
            }
            let group_dep = !d_separated(&dag, &[x1], &group, &z);
            let member_dep = group.iter().any(|&xi| !d_separated(&dag, &[x1], &[xi], &z));
            assert_eq!(group_dep, member_dep, "Lemma 7/8 violated (seed {seed})");
        }
    }
}

/// Weak union (holds for semi-graphoids / d-separation):
/// A ⊥ B∪C | Z ⇒ A ⊥ B | Z∪C.
#[test]
fn weak_union_axiom() {
    for seed in 0..CASES {
        let (dag, a, b, c, z) = graph_and_sets(seed);
        let mut bc = b.clone();
        bc.extend_from_slice(&c);
        if d_separated(&dag, &a, &bc, &z) {
            let mut zc = z.clone();
            zc.extend_from_slice(&c);
            assert!(
                d_separated(&dag, &a, &b, &zc),
                "weak union failed (seed {seed})"
            );
        }
    }
}

/// Symmetry: A ⊥ B | Z ⇔ B ⊥ A | Z.
#[test]
fn symmetry_axiom() {
    for seed in 0..CASES {
        let (dag, a, b, _c, z) = graph_and_sets(seed);
        assert_eq!(
            d_separated(&dag, &a, &b, &z),
            d_separated(&dag, &b, &a, &z),
            "symmetry violated (seed {seed})"
        );
    }
}

/// Interventions only remove paths: if X ⊥ Y | Z in G, it stays
/// separated in G with incoming edges of any T ⊆ Z removed — provided
/// the cut nodes are in the conditioning set (do-calculus rule 3
/// intuition used throughout §4.2).
#[test]
fn intervention_preserves_separation() {
    for seed in 0..CASES {
        let (dag, a, b, _c, z) = graph_and_sets(seed);
        if d_separated(&dag, &a, &b, &z) {
            let cut = dag.intervene(&z);
            assert!(
                d_separated(&cut, &a, &b, &z),
                "separation lost after surgery (seed {seed})"
            );
        }
    }
}
