//! Property-based tests of the graphoid axioms the paper's group-testing
//! correctness rests on (Lemma 1, Lemmas 7–8), checked against d-separation
//! on random DAGs. Faithfulness makes d-separation and CI interchangeable,
//! so verifying the axioms graphically verifies the algebra GrpSel uses.

use fairsel_graph::{d_separated, random_dag, Dag, NodeId, RandomDagConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a random DAG plus a partition of its nodes into four disjoint
/// name lists (a, b, c, z), any of which may be empty.
fn graph_and_sets(seed: u64, n: usize) -> (Dag, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = RandomDagConfig { nodes: n, max_parents: 3, density: 0.5, ..Default::default() };
    let dag = random_dag(&mut rng, &cfg);
    let mut a = Vec::new();
    let mut b = Vec::new();
    let mut c = Vec::new();
    let mut z = Vec::new();
    use rand::Rng;
    for v in dag.nodes() {
        match rng.gen_range(0..6) {
            0 => a.push(v),
            1 => b.push(v),
            2 => c.push(v),
            3 => z.push(v),
            _ => {} // leave out
        }
    }
    (dag, a, b, c, z)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decomposition: A ⊥ B∪C | Z  ⇒  A ⊥ B | Z and A ⊥ C | Z.
    #[test]
    fn decomposition_axiom(seed in 0u64..10_000, n in 4usize..40) {
        let (dag, a, b, c, z) = graph_and_sets(seed, n);
        let mut bc = b.clone();
        bc.extend_from_slice(&c);
        if d_separated(&dag, &a, &bc, &z) {
            prop_assert!(d_separated(&dag, &a, &b, &z), "decomposition failed on B");
            prop_assert!(d_separated(&dag, &a, &c, &z), "decomposition failed on C");
        }
    }

    /// Composition (holds for d-separation): A ⊥ B | Z and A ⊥ C | Z
    /// ⇒ A ⊥ B∪C | Z. This is Lemma 1(2) and is what lets a group test
    /// clear a whole set of features at once.
    #[test]
    fn composition_axiom(seed in 0u64..10_000, n in 4usize..40) {
        let (dag, a, b, c, z) = graph_and_sets(seed, n);
        if d_separated(&dag, &a, &b, &z) && d_separated(&dag, &a, &c, &z) {
            let mut bc = b.clone();
            bc.extend_from_slice(&c);
            prop_assert!(d_separated(&dag, &a, &bc, &z), "composition failed");
        }
    }

    /// Lemma 7 / Lemma 8 combined: X₁ ̸⊥ X\{X₁} | Z  ⇔  ∃ Xᵢ with
    /// X₁ ̸⊥ Xᵢ | Z. This is the dependency-splitting rule GrpSel's
    /// recursion relies on.
    #[test]
    fn group_dependence_iff_member_dependence(seed in 0u64..10_000, n in 4usize..40) {
        let (dag, a, b, c, z) = graph_and_sets(seed, n);
        // Use `a` as the singleton side (take first element), b∪c as group.
        if let Some(&x1) = a.first() {
            let mut group = b.clone();
            group.extend_from_slice(&c);
            if group.is_empty() {
                return Ok(());
            }
            let group_dep = !d_separated(&dag, &[x1], &group, &z);
            let member_dep = group.iter().any(|&xi| !d_separated(&dag, &[x1], &[xi], &z));
            prop_assert_eq!(group_dep, member_dep);
        }
    }

    /// Weak union (holds for semi-graphoids / d-separation):
    /// A ⊥ B∪C | Z ⇒ A ⊥ B | Z∪C.
    #[test]
    fn weak_union_axiom(seed in 0u64..10_000, n in 4usize..40) {
        let (dag, a, b, c, z) = graph_and_sets(seed, n);
        let mut bc = b.clone();
        bc.extend_from_slice(&c);
        if d_separated(&dag, &a, &bc, &z) {
            let mut zc = z.clone();
            zc.extend_from_slice(&c);
            prop_assert!(d_separated(&dag, &a, &b, &zc), "weak union failed");
        }
    }

    /// Symmetry: A ⊥ B | Z ⇔ B ⊥ A | Z.
    #[test]
    fn symmetry_axiom(seed in 0u64..10_000, n in 4usize..40) {
        let (dag, a, b, _c, z) = graph_and_sets(seed, n);
        prop_assert_eq!(
            d_separated(&dag, &a, &b, &z),
            d_separated(&dag, &b, &a, &z)
        );
    }

    /// Interventions only remove paths: if X ⊥ Y | Z in G, it stays
    /// separated in G with incoming edges of any T ⊆ Z removed — provided
    /// the cut nodes are in the conditioning set (do-calculus rule 3
    /// intuition used throughout §4.2).
    #[test]
    fn intervention_preserves_separation(seed in 0u64..10_000, n in 4usize..40) {
        let (dag, a, b, _c, z) = graph_and_sets(seed, n);
        if d_separated(&dag, &a, &b, &z) {
            let cut = dag.intervene(&z);
            prop_assert!(d_separated(&cut, &a, &b, &z));
        }
    }
}
