//! d-separation (Definition 3 of the paper) via the linear-time
//! reachable-set algorithm ("Bayes ball", Koller & Friedman Alg. 3.1).
//!
//! A path is *blocked* by `Z` when it contains a chain or fork whose middle
//! node is in `Z`, or a collider whose middle node (and all of its
//! descendants) is outside `Z`. `X ⊥_d Y | Z` holds when every path between
//! `X` and `Y` is blocked. Under the paper's faithfulness assumption
//! (Assumption 1) this graphical criterion coincides with conditional
//! independence in the data distribution, which is why the d-separation
//! oracle in `fairsel-ci` can stand in for a statistical CI test in the
//! complexity experiments.

use crate::dag::{Dag, NodeId};

/// Travel direction of the "ball" when it arrives at a node.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// Arrived from a child (moving towards parents).
    Up,
    /// Arrived from a parent (moving towards children).
    Down,
}

/// Set of nodes reachable from `sources` via paths that are active given
/// `given` (the conditioning set). `sources` themselves are included.
///
/// Runs in `O(V + E)` using two visit bits per node (one per direction).
pub fn reachable(dag: &Dag, sources: &[NodeId], given: &[NodeId]) -> Vec<bool> {
    let n = dag.len();
    let mut in_z = vec![false; n];
    for &z in given {
        in_z[z.index()] = true;
    }
    // A = Z ∪ ancestors(Z): the nodes at which a collider is unblocked.
    let mut in_anc_z = dag.ancestor_mask(given);
    for &z in given {
        in_anc_z[z.index()] = true;
    }

    let mut visited_up = vec![false; n];
    let mut visited_down = vec![false; n];
    let mut reach = vec![false; n];
    let mut stack: Vec<(NodeId, Dir)> = Vec::with_capacity(sources.len() * 2);
    for &s in sources {
        stack.push((s, Dir::Up));
    }
    while let Some((v, dir)) = stack.pop() {
        let i = v.index();
        let seen = match dir {
            Dir::Up => &mut visited_up[i],
            Dir::Down => &mut visited_down[i],
        };
        if *seen {
            continue;
        }
        *seen = true;
        if !in_z[i] {
            reach[i] = true;
        }
        match dir {
            Dir::Up => {
                if !in_z[i] {
                    for &p in dag.parents(v) {
                        stack.push((p, Dir::Up));
                    }
                    for &c in dag.children(v) {
                        stack.push((c, Dir::Down));
                    }
                }
            }
            Dir::Down => {
                if !in_z[i] {
                    // Chain: continue downwards.
                    for &c in dag.children(v) {
                        stack.push((c, Dir::Down));
                    }
                }
                if in_anc_z[i] {
                    // Collider at v is open (v ∈ Z or has a descendant in Z):
                    // bounce back up to the other parents.
                    for &p in dag.parents(v) {
                        stack.push((p, Dir::Up));
                    }
                }
            }
        }
    }
    reach
}

/// Test `X ⊥_d Y | Z` in `dag`.
///
/// Conventions for degenerate inputs, chosen to match how CI testers treat
/// them statistically:
/// * members of `x` or `y` that also appear in `z` are dropped (a variable
///   is trivially independent of anything given itself);
/// * if after dropping, `x` and `y` still share a variable, they are
///   d-connected;
/// * an empty side is d-separated from everything.
pub fn d_separated(dag: &Dag, x: &[NodeId], y: &[NodeId], z: &[NodeId]) -> bool {
    let in_z = |v: &NodeId| z.contains(v);
    let xs: Vec<NodeId> = x.iter().copied().filter(|v| !in_z(v)).collect();
    let ys: Vec<NodeId> = y.iter().copied().filter(|v| !in_z(v)).collect();
    if xs.is_empty() || ys.is_empty() {
        return true;
    }
    if xs.iter().any(|v| ys.contains(v)) {
        return false;
    }
    let reach = reachable(dag, &xs, z);
    !ys.iter().any(|v| reach[v.index()])
}

/// Convenience negation of [`d_separated`].
pub fn d_connected(dag: &Dag, x: &[NodeId], y: &[NodeId], z: &[NodeId]) -> bool {
    !d_separated(dag, x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;

    fn ids(dag: &Dag, names: &[&str]) -> Vec<NodeId> {
        names.iter().map(|n| dag.expect_node(n)).collect()
    }

    /// Assert X ⊥ Y | Z (or its negation) by names.
    fn check(dag: &Dag, x: &[&str], y: &[&str], z: &[&str], sep: bool) {
        let got = d_separated(dag, &ids(dag, x), &ids(dag, y), &ids(dag, z));
        assert_eq!(
            got,
            sep,
            "{x:?} ⊥ {y:?} | {z:?} expected {sep} in [{}]",
            dag.to_text()
        );
    }

    #[test]
    fn chain_blocked_by_middle() {
        let g = DagBuilder::new()
            .nodes(["a", "b", "c"])
            .edge("a", "b")
            .edge("b", "c")
            .build();
        check(&g, &["a"], &["c"], &[], false);
        check(&g, &["a"], &["c"], &["b"], true);
    }

    #[test]
    fn fork_blocked_by_middle() {
        let g = DagBuilder::new()
            .nodes(["a", "b", "c"])
            .edge("b", "a")
            .edge("b", "c")
            .build();
        check(&g, &["a"], &["c"], &[], false);
        check(&g, &["a"], &["c"], &["b"], true);
    }

    #[test]
    fn collider_blocks_unless_conditioned() {
        let g = DagBuilder::new()
            .nodes(["a", "b", "c"])
            .edge("a", "b")
            .edge("c", "b")
            .build();
        check(&g, &["a"], &["c"], &[], true);
        check(&g, &["a"], &["c"], &["b"], false);
    }

    #[test]
    fn collider_descendant_opens_path() {
        // a -> b <- c, b -> d: conditioning on d (descendant of the
        // collision node) opens the path.
        let g = DagBuilder::new()
            .nodes(["a", "b", "c", "d"])
            .edge("a", "b")
            .edge("c", "b")
            .edge("b", "d")
            .build();
        check(&g, &["a"], &["c"], &["d"], false);
        check(&g, &["a"], &["c"], &[], true);
    }

    #[test]
    fn mixed_path_with_open_and_blocked_routes() {
        // Two routes a->m->y and a->k<-y: with Z={} the chain route is open.
        // Conditioning on m blocks it and the collider stays blocked.
        let g = DagBuilder::new()
            .nodes(["a", "m", "k", "y"])
            .edge("a", "m")
            .edge("m", "y")
            .edge("a", "k")
            .edge("y", "k")
            .build();
        check(&g, &["a"], &["y"], &[], false);
        check(&g, &["a"], &["y"], &["m"], true);
        // Conditioning on m AND k re-opens via the collider.
        check(&g, &["a"], &["y"], &["m", "k"], false);
    }

    #[test]
    fn disconnected_nodes_always_separated() {
        let g = DagBuilder::new()
            .nodes(["a", "b", "z"])
            .edge("a", "z")
            .build();
        check(&g, &["a"], &["b"], &[], true);
        check(&g, &["a"], &["b"], &["z"], true);
    }

    #[test]
    fn set_valued_queries() {
        // s -> x1, s -> x2, x1 -> y
        let g = DagBuilder::new()
            .nodes(["s", "x1", "x2", "y"])
            .edge("s", "x1")
            .edge("s", "x2")
            .edge("x1", "y")
            .build();
        check(&g, &["x1", "x2"], &["y"], &[], false);
        check(&g, &["x2"], &["y"], &["s"], true);
        check(&g, &["x1", "x2"], &["y"], &["x1"], true); // x1 dropped into Z, x2 ⊥ y | x1? x2-s-x1-y blocked at x1
    }

    #[test]
    fn degenerate_conventions() {
        let g = DagBuilder::new().nodes(["a", "b"]).edge("a", "b").build();
        // Shared variable -> connected.
        check(&g, &["a"], &["a"], &[], false);
        // Conditioning drops the shared variable -> separated.
        check(&g, &["a"], &["a"], &["a"], true);
        // Empty side -> separated.
        let a = ids(&g, &["a"]);
        assert!(d_separated(&g, &a, &[], &[]));
    }

    #[test]
    fn figure_1a_properties() {
        // Paper Figure 1(a): S1 -> A1, S1 -> X2, A1 -> X1, X1 -> Y', X2 -> Y',
        // C1 -> X1 (C1 an exogenous cause). X1 ⊥ S1 | A1 must hold; X2 is
        // biased (X2 ̸⊥ S1 | A1).
        let g = DagBuilder::new()
            .nodes(["S1", "A1", "X1", "X2", "C1", "Y"])
            .edge("S1", "A1")
            .edge("S1", "X2")
            .edge("A1", "X1")
            .edge("C1", "X1")
            .edge("X1", "Y")
            .edge("X2", "Y")
            .build();
        check(&g, &["X1"], &["S1"], &["A1"], true);
        check(&g, &["X2"], &["S1"], &["A1"], false);
        check(&g, &["X1"], &["S1"], &[], false);
    }

    #[test]
    fn figure_1c_properties() {
        // Paper Figure 1(c): X1 ⊥ S1 | A1 and X3 ⊥ S1 | A2 but X3 ̸⊥ S1.
        // Edges: S1 -> A1 -> X1, S1 -> A2 -> X3, S1 -> X2, X2 -> Y, X1 -> Y,
        // C1 -> X1, C2 -> X2.
        let g = DagBuilder::new()
            .nodes(["S1", "A1", "A2", "X1", "X2", "X3", "C1", "C2", "Y"])
            .edge("S1", "A1")
            .edge("S1", "A2")
            .edge("A1", "X1")
            .edge("A2", "X3")
            .edge("S1", "X2")
            .edge("C1", "X1")
            .edge("C2", "X2")
            .edge("X1", "Y")
            .edge("X2", "Y")
            .build();
        check(&g, &["X1"], &["S1"], &["A1"], true);
        check(&g, &["X3"], &["S1"], &["A2"], true);
        check(&g, &["X3"], &["S1"], &[], false);
        check(&g, &["X2"], &["S1"], &["A1", "A2"], false);
    }

    #[test]
    fn conditioning_on_collider_ancestor_does_not_open() {
        // a -> b <- c, p -> a. Conditioning on p (ancestor of collider's
        // parent, NOT of the collider through b) must not open a-c.
        let g = DagBuilder::new()
            .nodes(["p", "a", "b", "c"])
            .edge("p", "a")
            .edge("a", "b")
            .edge("c", "b")
            .build();
        check(&g, &["a"], &["c"], &["p"], true);
    }

    #[test]
    fn long_chain_scales() {
        // 10k-node chain: endpoint pair separated by any interior node.
        let mut g = Dag::new();
        let n = 10_000;
        let nodes: Vec<NodeId> = (0..n)
            .map(|i| g.add_node(format!("v{i}")).unwrap())
            .collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        assert!(!d_separated(&g, &[nodes[0]], &[nodes[n - 1]], &[]));
        assert!(d_separated(
            &g,
            &[nodes[0]],
            &[nodes[n - 1]],
            &[nodes[n / 2]]
        ));
    }

    #[test]
    fn intervention_changes_separation() {
        // s -> a -> x, with also s -> x. In G, x ̸⊥ s | {} and x ̸⊥ s | a.
        // In G with do(a) (cut s -> a), x ̸⊥ s still via direct edge; but for
        // x2 with only path through a: s -> a -> x2, in G_do(a): x2 ⊥ s.
        let g = DagBuilder::new()
            .nodes(["s", "a", "x", "x2"])
            .edge("s", "a")
            .edge("s", "x")
            .edge("a", "x")
            .edge("a", "x2")
            .build();
        let cut = g.intervene(&[g.expect_node("a")]);
        check(&cut, &["x2"], &["s"], &[], true);
        check(&cut, &["x"], &["s"], &[], false);
        check(&g, &["x2"], &["s"], &[], false);
    }
}
