//! Random DAG generation for the synthetic scaling experiments (§5.3).
//!
//! Nodes are created in a fixed topological order and each node draws
//! parents uniformly from its predecessors, which guarantees acyclicity by
//! construction and produces graphs with controllable density.

use crate::dag::{Dag, NodeId};
use rand::Rng;

/// Parameters for [`random_dag`].
#[derive(Clone, Debug)]
pub struct RandomDagConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Maximum number of parents per node (inclusive).
    pub max_parents: usize,
    /// Probability that a node receives the maximum rather than a uniform
    /// 0..=max draw of parents; 0.0 gives sparse graphs, 1.0 dense ones.
    pub density: f64,
    /// Prefix for generated node names (`{prefix}{i}`).
    pub name_prefix: String,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        Self {
            nodes: 100,
            max_parents: 3,
            density: 0.3,
            name_prefix: "v".to_owned(),
        }
    }
}

/// Generate a random DAG. Deterministic given the RNG state.
pub fn random_dag<R: Rng + ?Sized>(rng: &mut R, cfg: &RandomDagConfig) -> Dag {
    assert!(cfg.nodes > 0, "random_dag: need at least one node");
    assert!(
        (0.0..=1.0).contains(&cfg.density),
        "random_dag: density must be in [0,1]"
    );
    let mut dag = Dag::new();
    let handles: Vec<NodeId> = (0..cfg.nodes)
        .map(|i| {
            dag.add_node(format!("{}{}", cfg.name_prefix, i))
                .expect("generated names are unique")
        })
        .collect();
    for i in 1..cfg.nodes {
        let cap = cfg.max_parents.min(i);
        if cap == 0 {
            continue;
        }
        let k = if rng.gen::<f64>() < cfg.density {
            cap
        } else {
            rng.gen_range(0..=cap)
        };
        // Sample k distinct predecessors via partial Fisher-Yates over a
        // candidate window (cheap because k is tiny).
        let mut chosen = std::collections::HashSet::with_capacity(k);
        while chosen.len() < k {
            chosen.insert(rng.gen_range(0..i));
        }
        // Insert edges in ascending predecessor order: HashSet iteration
        // order is seeded per process, and parent order decides float
        // summation order downstream (SCM sampling), so iterating the set
        // directly would make "same seed" DAGs process-dependent.
        let mut chosen: Vec<usize> = chosen.into_iter().collect();
        chosen.sort_unstable();
        for p in chosen {
            dag.add_edge(handles[p], handles[i])
                .expect("forward edges cannot create cycles");
        }
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_dag(
            &mut rng,
            &RandomDagConfig {
                nodes: 50,
                ..Default::default()
            },
        );
        assert_eq!(g.len(), 50);
        assert_eq!(g.topological_order().len(), 50);
    }

    #[test]
    fn respects_max_parents() {
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = RandomDagConfig {
            nodes: 200,
            max_parents: 2,
            density: 1.0,
            ..Default::default()
        };
        let g = random_dag(&mut rng, &cfg);
        for v in g.nodes() {
            assert!(g.parents(v).len() <= 2, "node {v:?} has too many parents");
        }
        // With density 1.0 every node past the first two has exactly 2.
        let two_parents = g.nodes().filter(|&v| g.parents(v).len() == 2).count();
        assert!(two_parents >= 197);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = RandomDagConfig {
            nodes: 80,
            ..Default::default()
        };
        let g1 = random_dag(&mut StdRng::seed_from_u64(42), &cfg);
        let g2 = random_dag(&mut StdRng::seed_from_u64(42), &cfg);
        assert_eq!(g1.edges(), g2.edges());
        let g3 = random_dag(&mut StdRng::seed_from_u64(43), &cfg);
        // Overwhelmingly likely to differ.
        assert_ne!(g1.edges(), g3.edges());
    }

    #[test]
    fn zero_density_still_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = RandomDagConfig {
            nodes: 30,
            max_parents: 4,
            density: 0.0,
            ..Default::default()
        };
        let g = random_dag(&mut rng, &cfg);
        assert_eq!(g.len(), 30);
    }

    #[test]
    fn large_graph_smoke() {
        let mut rng = StdRng::seed_from_u64(99);
        let cfg = RandomDagConfig {
            nodes: 5000,
            max_parents: 3,
            density: 0.4,
            ..Default::default()
        };
        let g = random_dag(&mut rng, &cfg);
        assert_eq!(g.len(), 5000);
        assert!(g.edge_count() > 4000);
    }
}
