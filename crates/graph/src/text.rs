//! Plain-text DAG round-tripping — the file format behind
//! `fairsel select --dag g.txt` (the CLI's oracle-tester path).
//!
//! The format is line-oriented and human-writable:
//!
//! ```text
//! # comment; blank lines are ignored
//! S            # a bare name declares a node
//! A
//! S -> A       # an edge; endpoints are auto-declared on first mention
//! A -> Y
//! ```
//!
//! Node ids are assigned in order of first mention, so
//! [`dag_to_text`] → [`dag_from_text`] reproduces the graph *including*
//! its node numbering (the serializer lists every node as a bare line in
//! id order before any edge). Parsing reports malformed input with
//! 1-based line numbers.

use crate::dag::{Dag, GraphError};
use std::fmt;

/// A parse failure, located by 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagTextError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for DagTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dag text, line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for DagTextError {}

fn err(line: usize, msg: impl Into<String>) -> DagTextError {
    DagTextError {
        line,
        msg: msg.into(),
    }
}

/// Valid node name: non-empty, no whitespace, none of the characters the
/// format itself uses (`#` comments, `->` arrows, `;`/`,` separators
/// people are likely to try).
fn check_name(name: &str, line: usize) -> Result<(), DagTextError> {
    if name.is_empty() {
        return Err(err(line, "empty node name"));
    }
    if name.contains("->") {
        return Err(err(
            line,
            format!("chained edges are not supported: {name:?} (write one `a -> b` per line)"),
        ));
    }
    if let Some(bad) = name
        .chars()
        .find(|c| c.is_whitespace() || matches!(c, '#' | ';' | ','))
    {
        return Err(err(
            line,
            format!("invalid character {bad:?} in node name {name:?}"),
        ));
    }
    Ok(())
}

/// Serialize a DAG to the line format: every node as a bare line in id
/// order, then every edge. Inverse of [`dag_from_text`].
pub fn dag_to_text(dag: &Dag) -> String {
    let mut s = String::new();
    for v in dag.nodes() {
        s.push_str(dag.name(v));
        s.push('\n');
    }
    for (f, t) in dag.edges() {
        s.push_str(dag.name(f));
        s.push_str(" -> ");
        s.push_str(dag.name(t));
        s.push('\n');
    }
    s
}

/// Parse the line format produced by [`dag_to_text`] (and by hand).
///
/// * blank lines and `#`-to-end-of-line comments are ignored;
/// * a bare name declares a node (duplicate declarations are errors);
/// * `a -> b` adds an edge, auto-declaring endpoints on first mention;
/// * self loops, cycles, and malformed lines are errors with line numbers.
pub fn dag_from_text(text: &str) -> Result<Dag, DagTextError> {
    let mut dag = Dag::new();
    let mut declared: Vec<String> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = match raw.split_once('#') {
            Some((before, _)) => before.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if let Some((from, to)) = line.split_once("->") {
            let (from, to) = (from.trim(), to.trim());
            check_name(from, lineno)?;
            check_name(to, lineno)?;
            let f = match dag.node(from) {
                Some(v) => v,
                None => dag.add_node(from).expect("unseen name"),
            };
            let t = match dag.node(to) {
                Some(v) => v,
                None => dag.add_node(to).expect("unseen name"),
            };
            dag.add_edge(f, t).map_err(|e| match e {
                GraphError::SelfLoop(n) => err(lineno, format!("self loop on {n:?}")),
                GraphError::CycleDetected { from, to } => err(
                    lineno,
                    format!("edge {from:?} -> {to:?} would create a cycle"),
                ),
                other => err(lineno, other.to_string()),
            })?;
        } else {
            check_name(line, lineno)?;
            if declared.iter().any(|d| d == line) {
                return Err(err(lineno, format!("duplicate node declaration {line:?}")));
            }
            declared.push(line.to_owned());
            if dag.node(line).is_none() {
                dag.add_node(line).expect("unseen name");
            }
        }
    }
    Ok(dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;

    fn fixture() -> Dag {
        DagBuilder::new()
            .nodes(["S", "A", "X1", "Y", "lonely"])
            .edge("S", "A")
            .edge("A", "Y")
            .edge("X1", "Y")
            .build()
    }

    #[test]
    fn round_trip_preserves_structure_and_ids() {
        let g = fixture();
        let text = dag_to_text(&g);
        let back = dag_from_text(&text).unwrap();
        assert_eq!(back.len(), g.len());
        assert_eq!(back.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(back.name(v), g.name(v), "node ids must round-trip");
        }
        for (f, t) in g.edges() {
            assert!(back.has_edge(f, t));
        }
        // Second round trip is textually stable.
        assert_eq!(dag_to_text(&back), text);
    }

    #[test]
    fn parses_comments_blanks_and_auto_declared_endpoints() {
        let g = dag_from_text("# a chain\n\n  a -> b   # edge with comment\nb -> c\n\nisolated\n")
            .unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(g.expect_node("a"), g.expect_node("b")));
        assert!(g.node("isolated").is_some());
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = dag_from_text("a -> b\nb -> a\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("cycle"), "{e}");

        let e = dag_from_text("a -> a\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("self loop"), "{e}");

        let e = dag_from_text("ok\n\nbad name\n").unwrap_err();
        assert_eq!(e.line, 3);

        let e = dag_from_text("a ->\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("empty node name"), "{e}");

        let e = dag_from_text("x\nx\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("duplicate"), "{e}");

        let e = dag_from_text("a -> b -> c\n").unwrap_err();
        assert!(e.to_string().contains("chained"), "{e}");
    }

    #[test]
    fn empty_text_is_empty_graph() {
        let g = dag_from_text("# nothing\n\n").unwrap();
        assert!(g.is_empty());
        assert_eq!(dag_to_text(&g), "");
    }
}
