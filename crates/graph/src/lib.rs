//! Causal directed acyclic graphs and the graphical machinery of the paper:
//! d-separation (§2.2, Definition 3), ancestral closures, `do`-operator
//! graph surgery (incoming-edge removal), and random-DAG generation for the
//! synthetic experiments of §5.3.
//!
//! The central type is [`Dag`]; d-separation queries run in `O(V + E)` per
//! query via the reachable-set ("Bayes ball") algorithm, which matters
//! because the oracle conditional-independence tester used by the
//! complexity experiments (Figures 4 and 5) issues hundreds of thousands of
//! queries against 5000-node graphs.

pub mod dag;
pub mod dsep;
pub mod generate;
pub mod text;

pub use dag::{Dag, DagBuilder, GraphError, NodeId};
pub use dsep::{d_connected, d_separated};
pub use generate::{random_dag, RandomDagConfig};
pub use text::{dag_from_text, dag_to_text, DagTextError};
