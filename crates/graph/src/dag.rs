//! The [`Dag`] type: a directed acyclic graph with named nodes, forward and
//! backward adjacency, reachability closures, and `do`-operator surgery.

use std::collections::HashMap;
use std::fmt;

/// Compact node handle. The workspace's largest synthetic graphs have 5000
/// nodes, so `u32` is ample and keeps adjacency lists half the size of
/// `usize` handles.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors from DAG construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Adding this edge would create a directed cycle.
    CycleDetected { from: String, to: String },
    /// An endpoint does not exist.
    UnknownNode(String),
    /// A node with this name already exists.
    DuplicateNode(String),
    /// Self loops are not allowed in a DAG.
    SelfLoop(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::CycleDetected { from, to } => {
                write!(f, "edge {from} -> {to} would create a cycle")
            }
            GraphError::UnknownNode(n) => write!(f, "unknown node: {n}"),
            GraphError::DuplicateNode(n) => write!(f, "duplicate node: {n}"),
            GraphError::SelfLoop(n) => write!(f, "self loop on node: {n}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed acyclic graph over named variables.
///
/// Invariants maintained by construction:
/// * no self loops, no duplicate edges, no directed cycles;
/// * `parents(v)` and `children(v)` are sorted, enabling binary-search edge
///   queries and deterministic iteration.
#[derive(Clone, Debug)]
pub struct Dag {
    names: Vec<String>,
    // analyze: bounded-by one entry per node of the fixed graph
    name_index: HashMap<String, NodeId>,
    parents: Vec<Vec<NodeId>>,
    children: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Dag {
    /// Empty graph.
    pub fn new() -> Self {
        Self {
            names: Vec::new(),
            name_index: HashMap::new(),
            parents: Vec::new(),
            children: Vec::new(),
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Add a node. Returns its handle, or an error on duplicate names.
    pub fn add_node(&mut self, name: impl Into<String>) -> Result<NodeId, GraphError> {
        let name = name.into();
        if self.name_index.contains_key(&name) {
            return Err(GraphError::DuplicateNode(name));
        }
        let id = NodeId(self.names.len() as u32);
        self.name_index.insert(name.clone(), id);
        self.names.push(name);
        self.parents.push(Vec::new());
        self.children.push(Vec::new());
        Ok(id)
    }

    /// Add a directed edge `from -> to`, rejecting cycles and self loops.
    /// Adding an existing edge is a no-op.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), GraphError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(GraphError::SelfLoop(self.name(from).to_owned()));
        }
        if self.has_edge(from, to) {
            return Ok(());
        }
        // Cycle check: is `from` reachable from `to` along directed edges?
        if self.reaches(to, from) {
            return Err(GraphError::CycleDetected {
                from: self.name(from).to_owned(),
                to: self.name(to).to_owned(),
            });
        }
        let pos = self.children[from.index()].binary_search(&to).unwrap_err();
        self.children[from.index()].insert(pos, to);
        let pos = self.parents[to.index()].binary_search(&from).unwrap_err();
        self.parents[to.index()].insert(pos, from);
        self.edge_count += 1;
        Ok(())
    }

    fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if v.index() < self.names.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownNode(format!("{v:?}")))
        }
    }

    /// Directed reachability `src ⇝ dst` (used by the cycle check).
    fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        if src == dst {
            return true;
        }
        let mut stack = vec![src];
        let mut seen = vec![false; self.len()];
        seen[src.index()] = true;
        while let Some(v) = stack.pop() {
            for &c in &self.children[v.index()] {
                if c == dst {
                    return true;
                }
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        false
    }

    /// Node name.
    pub fn name(&self, v: NodeId) -> &str {
        &self.names[v.index()]
    }

    /// Look a node up by name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Look a node up by name, panicking with a clear message when missing.
    /// Convenient in tests and fixtures.
    pub fn expect_node(&self, name: &str) -> NodeId {
        self.node(name)
            .unwrap_or_else(|| panic!("no node named {name:?} in graph"))
    }

    /// Sorted parent list of `v`.
    pub fn parents(&self, v: NodeId) -> &[NodeId] {
        &self.parents[v.index()]
    }

    /// Sorted child list of `v`.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Does the edge `from -> to` exist?
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.children[from.index()].binary_search(&to).is_ok()
    }

    /// Iterator over all node handles in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// All edges as `(from, to)` pairs, lexicographically ordered.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edge_count);
        for v in self.nodes() {
            for &c in self.children(v) {
                out.push((v, c));
            }
        }
        out
    }

    /// Topological order (Kahn's algorithm). The graph is acyclic by
    /// construction so this always succeeds.
    pub fn topological_order(&self) -> Vec<NodeId> {
        let n = self.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.parents[i].len()).collect();
        let mut queue: Vec<NodeId> = self.nodes().filter(|v| indeg[v.index()] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            for &c in self.children(v) {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    queue.push(c);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "acyclic invariant violated");
        order
    }

    /// Ancestor closure of a set (excluding the set itself unless a member
    /// is an ancestor of another member), as a boolean mask.
    pub fn ancestor_mask(&self, of: &[NodeId]) -> Vec<bool> {
        let mut mask = vec![false; self.len()];
        let mut stack: Vec<NodeId> = of.to_vec();
        while let Some(v) = stack.pop() {
            for &p in self.parents(v) {
                if !mask[p.index()] {
                    mask[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        mask
    }

    /// Strict ancestors of a set, as a sorted vector.
    pub fn ancestors(&self, of: &[NodeId]) -> Vec<NodeId> {
        mask_to_nodes(&self.ancestor_mask(of))
    }

    /// Descendant closure of a set (strict), as a boolean mask.
    pub fn descendant_mask(&self, of: &[NodeId]) -> Vec<bool> {
        let mut mask = vec![false; self.len()];
        let mut stack: Vec<NodeId> = of.to_vec();
        while let Some(v) = stack.pop() {
            for &c in self.children(v) {
                if !mask[c.index()] {
                    mask[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        mask
    }

    /// Strict descendants of a set, as a sorted vector.
    pub fn descendants(&self, of: &[NodeId]) -> Vec<NodeId> {
        mask_to_nodes(&self.descendant_mask(of))
    }

    /// Is `d` a descendant of `a` (strictly)?
    pub fn is_descendant(&self, d: NodeId, a: NodeId) -> bool {
        self.descendant_mask(&[a])[d.index()]
    }

    /// `do`-operator graph surgery: the mutilated graph `G_Ā` with all
    /// incoming edges of `targets` removed (Pearl's intervention graph,
    /// §2.2 of the paper).
    pub fn intervene(&self, targets: &[NodeId]) -> Dag {
        let mut cut = vec![false; self.len()];
        for &t in targets {
            cut[t.index()] = true;
        }
        let mut g = self.clone();
        for t in targets {
            let olds = std::mem::take(&mut g.parents[t.index()]);
            for p in olds {
                let pos = g.children[p.index()]
                    .binary_search(t)
                    .expect("consistent adjacency");
                g.children[p.index()].remove(pos);
                g.edge_count -= 1;
            }
        }
        g
    }

    /// Render as one-line DOT-ish text, useful in error messages and docs.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for (f, t) in self.edges() {
            if !s.is_empty() {
                s.push_str("; ");
            }
            s.push_str(self.name(f));
            s.push_str(" -> ");
            s.push_str(self.name(t));
        }
        s
    }
}

impl Default for Dag {
    fn default() -> Self {
        Self::new()
    }
}

fn mask_to_nodes(mask: &[bool]) -> Vec<NodeId> {
    mask.iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(NodeId(i as u32)))
        .collect()
}

/// Fluent construction helper used pervasively in tests and fixtures:
///
/// ```
/// use fairsel_graph::DagBuilder;
/// let g = DagBuilder::new()
///     .nodes(["S", "A", "X", "Y"])
///     .edge("S", "A")
///     .edge("A", "Y")
///     .edge("X", "Y")
///     .build();
/// assert_eq!(g.len(), 4);
/// assert_eq!(g.edge_count(), 3);
/// ```
#[derive(Default)]
pub struct DagBuilder {
    dag: Dag,
    pending: Vec<(String, String)>,
}

impl DagBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add several nodes at once.
    pub fn nodes<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for n in names {
            self.dag.add_node(n).expect("DagBuilder: duplicate node");
        }
        self
    }

    /// Add a single node.
    pub fn node(mut self, name: impl Into<String>) -> Self {
        self.dag.add_node(name).expect("DagBuilder: duplicate node");
        self
    }

    /// Queue an edge by name; endpoints may be declared later.
    pub fn edge(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.pending.push((from.into(), to.into()));
        self
    }

    /// Finish, panicking on unknown endpoints or cycles (builder is a
    /// test/fixture convenience; fallible construction uses `Dag` directly).
    pub fn build(mut self) -> Dag {
        for (f, t) in std::mem::take(&mut self.pending) {
            let from = self.dag.expect_node(&f);
            let to = self.dag.expect_node(&t);
            self.dag
                .add_edge(from, to)
                .unwrap_or_else(|e| panic!("DagBuilder: {e}"));
        }
        self.dag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // a -> b -> d, a -> c -> d
        DagBuilder::new()
            .nodes(["a", "b", "c", "d"])
            .edge("a", "b")
            .edge("a", "c")
            .edge("b", "d")
            .edge("c", "d")
            .build()
    }

    #[test]
    fn build_and_query_adjacency() {
        let g = diamond();
        let (a, b, c, d) = (
            g.expect_node("a"),
            g.expect_node("b"),
            g.expect_node("c"),
            g.expect_node("d"),
        );
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.children(a), &[b, c]);
        assert_eq!(g.parents(d), &[b, c]);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.name(a), "a");
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut g = Dag::new();
        g.add_node("x").unwrap();
        assert!(matches!(g.add_node("x"), Err(GraphError::DuplicateNode(_))));
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let mut g = Dag::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        g.add_edge(a, b).unwrap();
        g.add_edge(a, b).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Dag::new();
        let a = g.add_node("a").unwrap();
        assert!(matches!(g.add_edge(a, a), Err(GraphError::SelfLoop(_))));
    }

    #[test]
    fn cycle_rejected() {
        let mut g = Dag::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let c = g.add_node("c").unwrap();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        let err = g.add_edge(c, a).unwrap_err();
        assert!(matches!(err, GraphError::CycleDetected { .. }));
        // Graph unchanged by the failed insertion.
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn two_cycle_rejected() {
        let mut g = Dag::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        g.add_edge(a, b).unwrap();
        assert!(g.add_edge(b, a).is_err());
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order();
        let pos: Vec<usize> = g
            .nodes()
            .map(|v| order.iter().position(|&o| o == v).unwrap())
            .collect();
        for (f, t) in g.edges() {
            assert!(
                pos[f.index()] < pos[t.index()],
                "edge {f:?}->{t:?} out of order"
            );
        }
    }

    #[test]
    fn ancestors_descendants() {
        let g = diamond();
        let (a, b, c, d) = (
            g.expect_node("a"),
            g.expect_node("b"),
            g.expect_node("c"),
            g.expect_node("d"),
        );
        assert_eq!(g.ancestors(&[d]), vec![a, b, c]);
        assert_eq!(g.descendants(&[a]), vec![b, c, d]);
        assert!(g.is_descendant(d, a));
        assert!(!g.is_descendant(a, d));
        assert!(!g.is_descendant(a, a), "descendants are strict");
        assert_eq!(g.ancestors(&[a]), vec![]);
    }

    #[test]
    fn intervention_removes_incoming_edges_only() {
        let g = diamond();
        let (a, b, c, d) = (
            g.expect_node("a"),
            g.expect_node("b"),
            g.expect_node("c"),
            g.expect_node("d"),
        );
        let cut = g.intervene(&[b]);
        assert!(!cut.has_edge(a, b), "incoming edge of b removed");
        assert!(cut.has_edge(b, d), "outgoing edge of b kept");
        assert!(cut.has_edge(a, c) && cut.has_edge(c, d), "other edges kept");
        assert_eq!(cut.edge_count(), 3);
        // Original graph untouched.
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn intervention_on_root_is_identity() {
        let g = diamond();
        let a = g.expect_node("a");
        let cut = g.intervene(&[a]);
        assert_eq!(cut.edge_count(), g.edge_count());
    }

    #[test]
    fn edges_listing_and_text() {
        let g = DagBuilder::new().nodes(["s", "y"]).edge("s", "y").build();
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.to_text(), "s -> y");
    }

    #[test]
    fn empty_graph_behaves() {
        let g = Dag::new();
        assert!(g.is_empty());
        assert_eq!(g.topological_order(), vec![]);
        assert_eq!(g.edges(), vec![]);
    }
}
