//! CART decision trees and bagged random forests.
//!
//! Trees split on `feature < threshold` minimizing weighted Gini impurity;
//! forests bag bootstrap samples with √d feature subsampling. Used for the
//! paper's "Model Selection" robustness paragraph (§5.2): SeqSel/GrpSel
//! fairness must persist when logistic regression is swapped for random
//! forest or AdaBoost.

use crate::{check_fit_inputs, Classifier};
use fairsel_math::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Decision tree configuration.
#[derive(Clone, Debug)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    /// Features inspected per split; `None` = all (single tree),
    /// `Some(k)` = random subset of k (forest member).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_samples_leaf: 5,
            max_features: None,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        /// Weighted fraction of positives.
        proba: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART tree (arena-allocated nodes).
#[derive(Clone, Debug)]
pub struct DecisionTree {
    cfg: TreeConfig,
    nodes: Vec<Node>,
    rng: StdRng,
}

impl DecisionTree {
    pub fn new(cfg: TreeConfig) -> Self {
        Self::with_seed(cfg, 0)
    }

    /// Seeded variant (the forest seeds each member differently so feature
    /// subsampling decorrelates).
    pub fn with_seed(cfg: TreeConfig, seed: u64) -> Self {
        assert!(cfg.max_depth >= 1, "max_depth must be >= 1");
        assert!(cfg.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
        Self {
            cfg,
            nodes: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of nodes in the fitted tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn leaf(&mut self, pos_weight: f64, total_weight: f64) -> usize {
        let proba = if total_weight > 0.0 {
            pos_weight / total_weight
        } else {
            0.5
        };
        self.nodes.push(Node::Leaf { proba });
        self.nodes.len() - 1
    }

    /// Recursive split search over the rows in `idx`.
    fn grow(&mut self, x: &Mat, y: &[u32], w: &[f64], idx: &mut [usize], depth: usize) -> usize {
        let total_w: f64 = idx.iter().map(|&i| w[i]).sum();
        let pos_w: f64 = idx.iter().filter(|&&i| y[i] == 1).map(|&i| w[i]).sum();
        // Stopping conditions: purity, depth, size.
        if depth >= self.cfg.max_depth
            || idx.len() < 2 * self.cfg.min_samples_leaf
            || pos_w == 0.0
            || pos_w == total_w
        {
            return self.leaf(pos_w, total_w);
        }
        let d = x.cols();
        let features: Vec<usize> = match self.cfg.max_features {
            Some(k) if k < d => {
                // Partial Fisher–Yates to pick k distinct features.
                let mut all: Vec<usize> = (0..d).collect();
                for i in 0..k {
                    let j = self.rng.gen_range(i..d);
                    all.swap(i, j);
                }
                all.truncate(k);
                all
            }
            _ => (0..d).collect(),
        };

        let parent_gini = gini(pos_w, total_w);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        let mut vals: Vec<(f64, usize)> = Vec::with_capacity(idx.len());
        for &f in &features {
            vals.clear();
            vals.extend(idx.iter().map(|&i| (x[(i, f)], i)));
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN features"));
            let mut lw = 0.0;
            let mut lp = 0.0;
            for s in 0..vals.len() - 1 {
                let (v, i) = vals[s];
                lw += w[i];
                if y[i] == 1 {
                    lp += w[i];
                }
                let next_v = vals[s + 1].0;
                if v == next_v {
                    continue; // can't split between equal values
                }
                if s + 1 < self.cfg.min_samples_leaf
                    || vals.len() - s - 1 < self.cfg.min_samples_leaf
                {
                    continue;
                }
                let rw = total_w - lw;
                let rp = pos_w - lp;
                if lw <= 0.0 || rw <= 0.0 {
                    continue;
                }
                let child = (lw * gini(lp, lw) + rw * gini(rp, rw)) / total_w;
                let gain = parent_gini - child;
                if best.is_none_or(|(_, _, g)| gain > g) && gain > 1e-12 {
                    best = Some((f, (v + next_v) / 2.0, gain));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            return self.leaf(pos_w, total_w);
        };
        // Partition indices in place.
        let mut left: Vec<usize> = Vec::new();
        let mut right: Vec<usize> = Vec::new();
        for &i in idx.iter() {
            if x[(i, feature)] < threshold {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        let left_id = self.grow(x, y, w, &mut left, depth + 1);
        let right_id = self.grow(x, y, w, &mut right, depth + 1);
        self.nodes.push(Node::Split {
            feature,
            threshold,
            left: left_id,
            right: right_id,
        });
        self.nodes.len() - 1
    }

    fn proba_row(&self, x: &Mat, row: usize) -> f64 {
        let mut node = self.nodes.len() - 1; // root is pushed last
        loop {
            match &self.nodes[node] {
                Node::Leaf { proba } => return *proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[(row, *feature)] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

#[inline]
fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &Mat, y: &[u32], sample_weights: Option<&[f64]>) {
        check_fit_inputs(x, y, sample_weights);
        self.nodes.clear();
        let unit = vec![1.0; y.len()];
        let w = sample_weights.unwrap_or(&unit);
        let mut idx: Vec<usize> = (0..y.len()).collect();
        if x.cols() == 0 {
            let total: f64 = w.iter().sum();
            let pos: f64 = idx.iter().filter(|&&i| y[i] == 1).map(|&i| w[i]).sum();
            self.leaf(pos, total);
            return;
        }
        self.grow(x, y, w, &mut idx, 0);
    }

    fn predict_proba(&self, x: &Mat) -> Vec<f64> {
        assert!(!self.nodes.is_empty(), "predict before fit");
        (0..x.rows()).map(|i| self.proba_row(x, i)).collect()
    }

    fn name(&self) -> &'static str {
        "decision-tree"
    }
}

/// Bagged random forest of CART trees.
pub struct RandomForest {
    n_trees: usize,
    tree_cfg: TreeConfig,
    trees: Vec<DecisionTree>,
    seed: u64,
}

impl RandomForest {
    pub fn new(n_trees: usize, mut tree_cfg: TreeConfig, seed: u64) -> Self {
        assert!(n_trees >= 1, "need at least one tree");
        // Forest members default to √d feature subsampling at fit time if
        // not set explicitly; mark with None here and resolve in fit.
        if tree_cfg.min_samples_leaf == 0 {
            tree_cfg.min_samples_leaf = 1;
        }
        Self {
            n_trees,
            tree_cfg,
            trees: Vec::new(),
            seed,
        }
    }

    /// Forest with reasonable defaults (50 trees, depth 10).
    pub fn default_model(seed: u64) -> Self {
        Self::new(
            50,
            TreeConfig {
                max_depth: 10,
                min_samples_leaf: 2,
                max_features: None,
            },
            seed,
        )
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Mat, y: &[u32], sample_weights: Option<&[f64]>) {
        check_fit_inputs(x, y, sample_weights);
        self.trees.clear();
        let n = y.len();
        let d = x.cols();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let unit = vec![1.0; n];
        let base_w = sample_weights.unwrap_or(&unit);
        let subsample = self
            .tree_cfg
            .max_features
            .unwrap_or_else(|| ((d as f64).sqrt().ceil() as usize).max(1));
        for t in 0..self.n_trees {
            // Bootstrap: draw weights from a multinomial resample, keeping
            // provided sample weights multiplicative.
            let mut w = vec![0.0; n];
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                w[i] += base_w[i];
            }
            // Guard: if the bootstrap missed every positive-weight row,
            // fall back to the base weights.
            if w.iter().sum::<f64>() <= 0.0 {
                w.copy_from_slice(base_w);
            }
            let cfg = TreeConfig {
                max_features: Some(subsample.min(d.max(1))),
                ..self.tree_cfg.clone()
            };
            let mut tree = DecisionTree::with_seed(
                cfg,
                self.seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15),
            );
            tree.fit(x, y, Some(&w));
            self.trees.push(tree);
        }
    }

    fn predict_proba(&self, x: &Mat) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "predict before fit");
        let mut acc = vec![0.0; x.rows()];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict_proba(x)) {
                *a += p;
            }
        }
        for a in &mut acc {
            *a /= self.trees.len() as f64;
        }
        acc
    }

    fn name(&self) -> &'static str {
        "random-forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_math::dist::sample_std_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_data(n: usize, seed: u64) -> (Mat, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = sample_std_normal(&mut rng);
            let b = sample_std_normal(&mut rng);
            data.push(a);
            data.push(b);
            y.push(u32::from((a > 0.0) != (b > 0.0)));
        }
        (Mat::from_vec(n, 2, data), y)
    }

    fn accuracy(pred: &[u32], truth: &[u32]) -> f64 {
        pred.iter().zip(truth).filter(|(p, t)| p == t).count() as f64 / truth.len() as f64
    }

    #[test]
    fn tree_learns_xor() {
        // XOR is the canonical non-linear pattern a depth≥2 tree nails and
        // logistic regression cannot.
        let (x, y) = xor_data(2000, 1);
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&x, &y, None);
        let acc = accuracy(&tree.predict(&x), &y);
        assert!(acc > 0.9, "tree XOR accuracy {acc}");
    }

    #[test]
    fn tree_respects_max_depth_one() {
        let (x, y) = xor_data(500, 2);
        let mut stump = DecisionTree::new(TreeConfig {
            max_depth: 1,
            ..Default::default()
        });
        stump.fit(&x, &y, None);
        // A stump has at most 3 nodes (2 leaves + 1 split).
        assert!(stump.n_nodes() <= 3);
        // XOR is 50/50 for any single split.
        let acc = accuracy(&stump.predict(&x), &y);
        assert!(acc < 0.62, "stump should not solve XOR, got {acc}");
    }

    #[test]
    fn pure_labels_single_leaf() {
        let (x, _) = xor_data(100, 3);
        let y = vec![1u32; 100];
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&x, &y, None);
        assert_eq!(tree.n_nodes(), 1);
        assert!(tree.predict_proba(&x).iter().all(|&p| p == 1.0));
    }

    #[test]
    fn tree_sample_weights_matter() {
        // Two clusters with conflicting labels; weighting one side wins.
        let x = Mat::from_rows(&[&[0.0], &[0.0], &[1.0], &[1.0]]);
        let y = vec![0, 1, 0, 1];
        let w_pos = vec![0.1, 10.0, 0.1, 10.0];
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: 2,
            min_samples_leaf: 1,
            max_features: None,
        });
        tree.fit(&x, &y, Some(&w_pos));
        assert!(tree.predict_proba(&x).iter().all(|&p| p > 0.9));
    }

    #[test]
    fn forest_learns_xor_and_beats_chance_oos() {
        let (xtr, ytr) = xor_data(1500, 4);
        let (xte, yte) = xor_data(800, 5);
        let mut f = RandomForest::default_model(9);
        f.fit(&xtr, &ytr, None);
        let acc = accuracy(&f.predict(&xte), &yte);
        assert!(acc > 0.85, "forest OOS accuracy {acc}");
    }

    #[test]
    fn forest_deterministic_given_seed() {
        let (x, y) = xor_data(400, 6);
        let mut a = RandomForest::new(10, TreeConfig::default(), 3);
        let mut b = RandomForest::new(10, TreeConfig::default(), 3);
        a.fit(&x, &y, None);
        b.fit(&x, &y, None);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn zero_feature_matrix_predicts_base_rate() {
        let x = Mat::zeros(10, 0);
        let y = vec![1, 1, 1, 0, 0, 0, 0, 0, 0, 0];
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&x, &y, None);
        let p = tree.predict_proba(&x);
        assert!((p[0] - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let tree = DecisionTree::new(TreeConfig::default());
        tree.predict_proba(&Mat::zeros(1, 1));
    }
}
