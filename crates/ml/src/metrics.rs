//! Classification accuracy and the fairness metrics of the paper's
//! evaluation (§5.1):
//!
//! * **absolute odds difference** — the x-axis of Figures 2 and 3(a):
//!   mean of |ΔFPR| and |ΔTPR| across sensitive groups;
//! * statistical parity difference and disparate impact;
//! * equal-opportunity difference (ΔTPR);
//! * **conditional mutual information** `CMI(S; Ŷ | A)` — the causal-
//!   fairness audit of Table 2 (zero CMI ⇒ causal fairness by Lemma 2).
//!
//! Groups may take more than two values; pairwise metrics report the
//! worst (maximum) pairwise disparity, which reduces to the usual
//! privileged/unprivileged difference in the binary case.

use fairsel_ci::cmi::cmi_from_codes;
use std::collections::HashMap;

/// Confusion counts for one group.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GroupCounts {
    pub tp: f64,
    pub fp: f64,
    pub tn: f64,
    pub fn_: f64,
}

impl GroupCounts {
    /// True-positive rate; 0 when the group has no positives.
    pub fn tpr(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom > 0.0 {
            self.tp / denom
        } else {
            0.0
        }
    }

    /// False-positive rate; 0 when the group has no negatives.
    pub fn fpr(&self) -> f64 {
        let denom = self.fp + self.tn;
        if denom > 0.0 {
            self.fp / denom
        } else {
            0.0
        }
    }

    /// Fraction predicted positive.
    pub fn selection_rate(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total > 0.0 {
            (self.tp + self.fp) / total
        } else {
            0.0
        }
    }

    /// Total rows in the group.
    pub fn total(&self) -> f64 {
        self.tp + self.fp + self.tn + self.fn_
    }
}

/// Overall classification accuracy.
pub fn accuracy(y_true: &[u32], y_pred: &[u32]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "accuracy: length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count() as f64 / y_true.len() as f64
}

/// Per-group confusion counts keyed by the group code.
pub fn group_counts(y_true: &[u32], y_pred: &[u32], group: &[u32]) -> HashMap<u32, GroupCounts> {
    assert_eq!(y_true.len(), y_pred.len(), "metrics: length mismatch");
    assert_eq!(y_true.len(), group.len(), "metrics: length mismatch");
    let mut out: HashMap<u32, GroupCounts> = HashMap::new();
    for i in 0..y_true.len() {
        let c = out.entry(group[i]).or_default();
        match (y_true[i], y_pred[i]) {
            (1, 1) => c.tp += 1.0,
            (0, 1) => c.fp += 1.0,
            (0, 0) => c.tn += 1.0,
            (1, 0) => c.fn_ += 1.0,
            _ => panic!("metrics: labels must be binary"),
        }
    }
    out
}

/// [`group_counts`] in ascending group-code order — the deterministic
/// iteration every report-facing metric walks, so per-group arithmetic
/// happens in the same order on every run regardless of hash seeding.
pub fn sorted_group_counts(
    y_true: &[u32],
    y_pred: &[u32],
    group: &[u32],
) -> Vec<(u32, GroupCounts)> {
    let counts = group_counts(y_true, y_pred, group);
    let mut out: Vec<(u32, GroupCounts)> = counts.into_iter().collect();
    out.sort_by_key(|&(g, _)| g);
    out
}

/// Maximum pairwise absolute difference of a per-group scalar.
fn max_pairwise_diff(values: &[f64]) -> f64 {
    let mut max = 0.0f64;
    for i in 0..values.len() {
        for j in (i + 1)..values.len() {
            max = max.max((values[i] - values[j]).abs());
        }
    }
    max
}

/// Absolute odds difference: `(|ΔFPR| + |ΔTPR|) / 2`, maximized over group
/// pairs. 0 = perfectly equalized odds.
pub fn abs_odds_difference(y_true: &[u32], y_pred: &[u32], group: &[u32]) -> f64 {
    let counts = sorted_group_counts(y_true, y_pred, group);
    if counts.len() < 2 {
        return 0.0;
    }
    let groups: Vec<&GroupCounts> = counts.iter().map(|(_, c)| c).collect();
    let mut max = 0.0f64;
    for i in 0..groups.len() {
        for j in (i + 1)..groups.len() {
            let d = 0.5
                * ((groups[i].fpr() - groups[j].fpr()).abs()
                    + (groups[i].tpr() - groups[j].tpr()).abs());
            max = max.max(d);
        }
    }
    max
}

/// Statistical parity difference: max pairwise |selection-rate gap|.
pub fn statistical_parity_difference(y_true: &[u32], y_pred: &[u32], group: &[u32]) -> f64 {
    let counts = sorted_group_counts(y_true, y_pred, group);
    let rates: Vec<f64> = counts.iter().map(|(_, c)| c.selection_rate()).collect();
    max_pairwise_diff(&rates)
}

/// Disparate impact: min over pairs of (lower rate / higher rate); 1.0 is
/// perfectly balanced, small values indicate adverse impact. Returns 1.0
/// when fewer than two groups appear, 0.0 when a group is never selected
/// while another is.
pub fn disparate_impact(y_true: &[u32], y_pred: &[u32], group: &[u32]) -> f64 {
    let counts = sorted_group_counts(y_true, y_pred, group);
    if counts.len() < 2 {
        return 1.0;
    }
    let rates: Vec<f64> = counts.iter().map(|(_, c)| c.selection_rate()).collect();
    let mut min_ratio = 1.0f64;
    for i in 0..rates.len() {
        for j in (i + 1)..rates.len() {
            let (lo, hi) = if rates[i] < rates[j] {
                (rates[i], rates[j])
            } else {
                (rates[j], rates[i])
            };
            let ratio = if hi > 0.0 { lo / hi } else { 1.0 };
            min_ratio = min_ratio.min(ratio);
        }
    }
    min_ratio
}

/// Equal-opportunity difference: max pairwise |ΔTPR|.
pub fn equal_opportunity_difference(y_true: &[u32], y_pred: &[u32], group: &[u32]) -> f64 {
    let counts = sorted_group_counts(y_true, y_pred, group);
    let tprs: Vec<f64> = counts.iter().map(|(_, c)| c.tpr()).collect();
    max_pairwise_diff(&tprs)
}

/// The Table 2 audit: plug-in `CMI(S; Ŷ | A)` in nats, with negatives
/// truncated to zero (footnote 3 of the paper).
pub fn cmi_fairness(s_codes: &[u32], y_pred: &[u32], a_codes: &[u32]) -> f64 {
    cmi_from_codes(s_codes, y_pred, a_codes)
}

/// Bundle of everything the evaluation section reports for one pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FairnessReport {
    pub accuracy: f64,
    pub abs_odds_difference: f64,
    pub statistical_parity_difference: f64,
    pub disparate_impact: f64,
    pub equal_opportunity_difference: f64,
    /// `CMI(S; Ŷ | A)` in nats.
    pub cmi_s_pred_given_a: f64,
}

impl FairnessReport {
    /// Compute all metrics. `s_codes` are (joint) sensitive codes,
    /// `a_codes` (joint) admissible codes for the CMI audit.
    pub fn compute(
        y_true: &[u32],
        y_pred: &[u32],
        s_codes: &[u32],
        a_codes: &[u32],
    ) -> FairnessReport {
        FairnessReport {
            accuracy: accuracy(y_true, y_pred),
            abs_odds_difference: abs_odds_difference(y_true, y_pred, s_codes),
            statistical_parity_difference: statistical_parity_difference(y_true, y_pred, s_codes),
            disparate_impact: disparate_impact(y_true, y_pred, s_codes),
            equal_opportunity_difference: equal_opportunity_difference(y_true, y_pred, s_codes),
            cmi_s_pred_given_a: cmi_fairness(s_codes, y_pred, a_codes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_math::assert_close;

    #[test]
    fn accuracy_basic() {
        assert_close!(accuracy(&[1, 0, 1, 0], &[1, 0, 0, 0]), 0.75, 1e-12);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn group_counts_partition() {
        let y = [1, 1, 0, 0, 1, 0];
        let p = [1, 0, 0, 1, 1, 0];
        let g = [0, 0, 0, 1, 1, 1];
        let counts = group_counts(&y, &p, &g);
        let g0 = counts[&0];
        assert_eq!((g0.tp, g0.fn_, g0.tn, g0.fp), (1.0, 1.0, 1.0, 0.0));
        let g1 = counts[&1];
        assert_eq!((g1.tp, g1.fn_, g1.tn, g1.fp), (1.0, 0.0, 1.0, 1.0));
        assert_eq!(g0.total() + g1.total(), 6.0);
    }

    #[test]
    fn perfect_predictor_equal_base_rates_is_fair() {
        // Same base rate in both groups and perfect predictions -> zero
        // odds difference and parity difference.
        let y = [1, 0, 1, 0];
        let g = [0, 0, 1, 1];
        assert_close!(abs_odds_difference(&y, &y, &g), 0.0, 1e-12);
        assert_close!(statistical_parity_difference(&y, &y, &g), 0.0, 1e-12);
        assert_close!(disparate_impact(&y, &y, &g), 1.0, 1e-12);
    }

    #[test]
    fn group_blind_constant_predictor_is_fair() {
        let y = [1, 0, 1, 0, 1, 0];
        let p = [1, 1, 1, 1, 1, 1];
        let g = [0, 0, 0, 1, 1, 1];
        assert_close!(abs_odds_difference(&y, &p, &g), 0.0, 1e-12);
        assert_close!(statistical_parity_difference(&y, &p, &g), 0.0, 1e-12);
    }

    #[test]
    fn discriminating_predictor_flagged() {
        // Predict positive iff group 1, labels independent of group.
        let y = [1, 0, 1, 0];
        let p = [0, 0, 1, 1];
        let g = [0, 0, 1, 1];
        // Group 0: TPR 0, FPR 0. Group 1: TPR 1, FPR 1.
        assert_close!(abs_odds_difference(&y, &p, &g), 1.0, 1e-12);
        assert_close!(statistical_parity_difference(&y, &p, &g), 1.0, 1e-12);
        assert_close!(disparate_impact(&y, &p, &g), 0.0, 1e-12);
        assert_close!(equal_opportunity_difference(&y, &p, &g), 1.0, 1e-12);
    }

    #[test]
    fn single_group_defaults() {
        let y = [1, 0];
        let p = [1, 1];
        let g = [0, 0];
        assert_close!(abs_odds_difference(&y, &p, &g), 0.0, 1e-12);
        assert_close!(disparate_impact(&y, &p, &g), 1.0, 1e-12);
    }

    #[test]
    fn multi_group_takes_worst_pair() {
        // Three groups with selection rates 0, 0.5, 1.
        let y = [0, 0, 1, 0, 1, 1];
        let p = [0, 0, 1, 0, 1, 1];
        let g = [0, 0, 1, 1, 2, 2];
        assert_close!(statistical_parity_difference(&y, &p, &g), 1.0, 1e-12);
    }

    #[test]
    fn cmi_audit_zero_for_group_blind() {
        // Predictions depend only on A, not on S.
        let s = [0, 1, 0, 1, 0, 1, 0, 1];
        let a = [0, 0, 1, 1, 0, 0, 1, 1];
        let pred = [0, 0, 1, 1, 0, 0, 1, 1];
        assert_close!(cmi_fairness(&s, &pred, &a), 0.0, 1e-12);
    }

    #[test]
    fn cmi_audit_positive_for_group_tracking() {
        let s = [0, 1, 0, 1, 0, 1, 0, 1];
        let a = [0; 8];
        let pred = s;
        assert!(cmi_fairness(&s, &pred, &a) > 0.5);
    }

    #[test]
    fn report_bundles_consistently() {
        let y = [1, 0, 1, 0];
        let p = [0, 0, 1, 1];
        let s = [0, 0, 1, 1];
        let a = [0, 0, 0, 0];
        let r = FairnessReport::compute(&y, &p, &s, &a);
        assert_close!(r.accuracy, accuracy(&y, &p), 1e-12);
        assert_close!(r.abs_odds_difference, 1.0, 1e-12);
        assert!(r.cmi_s_pred_given_a > 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        accuracy(&[1], &[1, 0]);
    }
}
