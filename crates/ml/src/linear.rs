//! L2-regularized logistic regression fit by IRLS (Newton–Raphson).
//!
//! This is the paper's primary classifier (§5.1 uses sklearn's logistic
//! regression with default settings). IRLS converges in a handful of
//! iterations on the ≤ few-hundred-dimensional design matrices the
//! featurizer produces, and it is fully deterministic — important because
//! the experiment harness compares eight pipelines on identical splits.

use crate::{check_fit_inputs, Classifier};
use fairsel_math::Mat;

/// Logistic regression configuration.
#[derive(Clone, Debug)]
pub struct LogisticConfig {
    /// L2 penalty (like sklearn's `1/C`; default 1.0).
    pub l2: f64,
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Stop when the max absolute coefficient update drops below this.
    pub tol: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            l2: 1.0,
            max_iter: 50,
            tol: 1e-8,
        }
    }
}

/// Fitted logistic-regression model.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    cfg: LogisticConfig,
    /// Coefficients, one per feature (empty before `fit`).
    weights: Vec<f64>,
    intercept: f64,
}

impl LogisticRegression {
    pub fn new(cfg: LogisticConfig) -> Self {
        Self {
            cfg,
            weights: Vec::new(),
            intercept: 0.0,
        }
    }

    /// Model with default hyperparameters.
    pub fn default_model() -> Self {
        Self::new(LogisticConfig::default())
    }

    /// Fitted coefficients (per feature dimension).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// |coefficient| per feature dimension — the feature-importance proxy
    /// used by the SPred baseline.
    pub fn importance(&self) -> Vec<f64> {
        self.weights.iter().map(|w| w.abs()).collect()
    }

    fn decision(&self, x: &Mat, row: usize) -> f64 {
        let mut z = self.intercept;
        for (j, &w) in self.weights.iter().enumerate() {
            z += w * x[(row, j)];
        }
        z
    }
}

/// Numerically-stable logistic function.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Mat, y: &[u32], sample_weights: Option<&[f64]>) {
        check_fit_inputs(x, y, sample_weights);
        let n = x.rows();
        let d = x.cols();
        // Design with intercept as an extra trailing column.
        let dim = d + 1;
        let mut beta = vec![0.0; dim];
        let unit = vec![1.0; n];
        let sw = sample_weights.unwrap_or(&unit);

        for _ in 0..self.cfg.max_iter {
            // p_i, and the IRLS working weights w_i = sw_i · p_i (1 - p_i).
            let mut grad = vec![0.0; dim];
            let mut hess = Mat::zeros(dim, dim);
            for i in 0..n {
                let mut z = beta[d];
                for j in 0..d {
                    z += beta[j] * x[(i, j)];
                }
                let p = sigmoid(z);
                let r = sw[i] * (y[i] as f64 - p);
                let w = (sw[i] * p * (1.0 - p)).max(1e-10);
                for j in 0..d {
                    grad[j] += r * x[(i, j)];
                }
                grad[d] += r;
                // Accumulate upper triangle of XᵀWX.
                for j in 0..d {
                    let xw = w * x[(i, j)];
                    if xw == 0.0 {
                        continue;
                    }
                    for k in j..d {
                        hess[(j, k)] += xw * x[(i, k)];
                    }
                    hess[(j, d)] += xw;
                }
                hess[(d, d)] += w;
            }
            // Symmetrize, add ridge (not on the intercept), add penalty grad.
            for j in 0..dim {
                for k in 0..j {
                    hess[(j, k)] = hess[(k, j)];
                }
            }
            for j in 0..d {
                hess[(j, j)] += self.cfg.l2;
                grad[j] -= self.cfg.l2 * beta[j];
            }
            hess[(d, d)] += 1e-8; // keep SPD when all weights degenerate

            let g = Mat::from_vec(dim, 1, grad);
            let step = match hess.solve_spd(&g) {
                Some(s) => s,
                None => break, // Hessian collapsed; keep current estimate
            };
            let mut max_step = 0.0f64;
            for j in 0..dim {
                beta[j] += step[(j, 0)];
                max_step = max_step.max(step[(j, 0)].abs());
            }
            if max_step < self.cfg.tol {
                break;
            }
        }
        self.intercept = beta[d];
        beta.truncate(d);
        self.weights = beta;
    }

    fn predict_proba(&self, x: &Mat) -> Vec<f64> {
        assert_eq!(x.cols(), self.weights.len(), "predict: dimension mismatch");
        (0..x.rows())
            .map(|i| sigmoid(self.decision(x, i)))
            .collect()
    }

    fn name(&self) -> &'static str {
        "logistic-regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_math::assert_close;
    use fairsel_math::dist::sample_std_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Linearly separable-ish data: y = 1{2·x0 − x1 + 0.5 + ε > 0}.
    fn synthetic(n: usize, seed: u64) -> (Mat, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = sample_std_normal(&mut rng);
            let b = sample_std_normal(&mut rng);
            data.push(a);
            data.push(b);
            let score = 2.0 * a - b + 0.5 + 0.3 * sample_std_normal(&mut rng);
            y.push(u32::from(score > 0.0));
        }
        (Mat::from_vec(n, 2, data), y)
    }

    #[test]
    fn sigmoid_stability() {
        assert_close!(sigmoid(0.0), 0.5, 1e-12);
        assert_close!(sigmoid(800.0), 1.0, 1e-12);
        assert_close!(sigmoid(-800.0), 0.0, 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn learns_separating_direction() {
        let (x, y) = synthetic(2000, 1);
        let mut lr = LogisticRegression::default_model();
        lr.fit(&x, &y, None);
        assert!(
            lr.weights()[0] > 0.5,
            "w0 should be positive: {:?}",
            lr.weights()
        );
        assert!(
            lr.weights()[1] < -0.2,
            "w1 should be negative: {:?}",
            lr.weights()
        );
        let preds = lr.predict(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.93, "training accuracy {acc} too low");
    }

    #[test]
    fn generalizes_to_fresh_sample() {
        let (xtr, ytr) = synthetic(2000, 2);
        let (xte, yte) = synthetic(1000, 3);
        let mut lr = LogisticRegression::default_model();
        lr.fit(&xtr, &ytr, None);
        let preds = lr.predict(&xte);
        let acc = preds.iter().zip(&yte).filter(|(p, t)| p == t).count() as f64 / yte.len() as f64;
        assert!(acc > 0.9, "test accuracy {acc} too low");
    }

    #[test]
    fn deterministic_fit() {
        let (x, y) = synthetic(500, 4);
        let mut a = LogisticRegression::default_model();
        let mut b = LogisticRegression::default_model();
        a.fit(&x, &y, None);
        b.fit(&x, &y, None);
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.intercept(), b.intercept());
    }

    #[test]
    fn strong_l2_shrinks_weights() {
        let (x, y) = synthetic(500, 5);
        let mut loose = LogisticRegression::new(LogisticConfig {
            l2: 0.01,
            ..Default::default()
        });
        let mut tight = LogisticRegression::new(LogisticConfig {
            l2: 1000.0,
            ..Default::default()
        });
        loose.fit(&x, &y, None);
        tight.fit(&x, &y, None);
        assert!(tight.weights()[0].abs() < loose.weights()[0].abs() * 0.2);
    }

    #[test]
    fn sample_weights_shift_the_fit() {
        // Duplicate-by-weight should match duplicate-by-row.
        let x = Mat::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = vec![0, 0, 1, 1];
        let w = vec![1.0, 1.0, 3.0, 1.0];
        let mut weighted = LogisticRegression::default_model();
        weighted.fit(&x, &y, Some(&w));
        let x_dup = Mat::from_rows(&[&[0.0], &[1.0], &[2.0], &[2.0], &[2.0], &[3.0]]);
        let y_dup = vec![0, 0, 1, 1, 1, 1];
        let mut duped = LogisticRegression::default_model();
        duped.fit(&x_dup, &y_dup, None);
        assert_close!(weighted.weights()[0], duped.weights()[0], 1e-5);
        assert_close!(weighted.intercept(), duped.intercept(), 1e-5);
    }

    #[test]
    fn constant_labels_predict_constant() {
        let (x, _) = synthetic(200, 6);
        let y = vec![1u32; 200];
        let mut lr = LogisticRegression::default_model();
        lr.fit(&x, &y, None);
        let proba = lr.predict_proba(&x);
        assert!(
            proba.iter().all(|&p| p > 0.9),
            "all-ones data should predict ~1"
        );
    }

    #[test]
    fn importance_is_abs_weights() {
        let (x, y) = synthetic(500, 7);
        let mut lr = LogisticRegression::default_model();
        lr.fit(&x, &y, None);
        let imp = lr.importance();
        assert_close!(imp[0], lr.weights()[0].abs(), 1e-12);
        assert!(imp[0] > imp[1], "x0 is the stronger feature");
    }

    #[test]
    #[should_panic(expected = "labels must be binary")]
    fn rejects_nonbinary_labels() {
        let x = Mat::from_rows(&[&[1.0]]);
        let mut lr = LogisticRegression::default_model();
        lr.fit(&x, &[2], None);
    }
}
