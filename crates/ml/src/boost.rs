//! AdaBoost (discrete SAMME) over depth-1 decision stumps.
//!
//! The third classifier in the paper's model-selection sweep (§5.2). Each
//! round fits a stump on the current sample weights, then reweights
//! towards the mistakes. Probabilities come from the logistic transform of
//! the ensemble margin (Friedman et al.'s "Real AdaBoost" connection).

use crate::linear::sigmoid;
use crate::tree::{DecisionTree, TreeConfig};
use crate::{check_fit_inputs, Classifier};
use fairsel_math::Mat;

/// AdaBoost configuration.
#[derive(Clone, Debug)]
pub struct BoostConfig {
    /// Number of boosting rounds.
    pub rounds: usize,
    /// Learning-rate shrinkage on each stump's vote.
    pub learning_rate: f64,
}

impl Default for BoostConfig {
    fn default() -> Self {
        Self {
            rounds: 50,
            learning_rate: 1.0,
        }
    }
}

/// Fitted AdaBoost ensemble.
pub struct AdaBoost {
    cfg: BoostConfig,
    stumps: Vec<(DecisionTree, f64)>,
}

impl AdaBoost {
    pub fn new(cfg: BoostConfig) -> Self {
        assert!(cfg.rounds >= 1, "need at least one round");
        assert!(cfg.learning_rate > 0.0, "learning rate must be positive");
        Self {
            cfg,
            stumps: Vec::new(),
        }
    }

    /// Ensemble with default hyperparameters.
    pub fn default_model() -> Self {
        Self::new(BoostConfig::default())
    }

    /// Number of stumps actually kept (early stop on perfect fit).
    pub fn n_stumps(&self) -> usize {
        self.stumps.len()
    }

    /// Ensemble margin `Σ αₜ hₜ(x) / Σ αₜ` in [-1, 1] per row.
    fn margin(&self, x: &Mat) -> Vec<f64> {
        let total_alpha: f64 = self.stumps.iter().map(|(_, a)| a).sum();
        let mut acc = vec![0.0; x.rows()];
        for (stump, alpha) in &self.stumps {
            for (m, pred) in acc.iter_mut().zip(stump.predict(x)) {
                // Map {0,1} -> {-1,+1}.
                *m += alpha * (2.0 * pred as f64 - 1.0);
            }
        }
        if total_alpha > 0.0 {
            for m in &mut acc {
                *m /= total_alpha;
            }
        }
        acc
    }
}

impl Classifier for AdaBoost {
    fn fit(&mut self, x: &Mat, y: &[u32], sample_weights: Option<&[f64]>) {
        check_fit_inputs(x, y, sample_weights);
        self.stumps.clear();
        let n = y.len();
        let unit = vec![1.0; n];
        let base = sample_weights.unwrap_or(&unit);
        let mut w: Vec<f64> = base.to_vec();
        let norm: f64 = w.iter().sum();
        for v in &mut w {
            *v /= norm;
        }
        for round in 0..self.cfg.rounds {
            let mut stump = DecisionTree::with_seed(
                TreeConfig {
                    max_depth: 1,
                    min_samples_leaf: 1,
                    max_features: None,
                },
                round as u64,
            );
            stump.fit(x, y, Some(&w));
            let preds = stump.predict(x);
            let err: f64 = preds
                .iter()
                .zip(y)
                .zip(&w)
                .filter(|((p, t), _)| p != t)
                .map(|(_, &wi)| wi)
                .sum();
            if err >= 0.5 {
                // Worse than chance: the weighted problem is exhausted.
                if self.stumps.is_empty() {
                    // Keep one stump anyway so predict() works.
                    self.stumps.push((stump, 1e-10));
                }
                break;
            }
            let err = err.max(1e-12);
            let alpha = self.cfg.learning_rate * 0.5 * ((1.0 - err) / err).ln();
            // Reweight: multiply mistakes by e^{alpha}, hits by e^{-alpha}.
            let mut total = 0.0;
            for ((p, t), wi) in preds.iter().zip(y).zip(w.iter_mut()) {
                *wi *= if p != t { alpha.exp() } else { (-alpha).exp() };
                total += *wi;
            }
            for wi in &mut w {
                *wi /= total;
            }
            let perfect = err <= 1e-12;
            self.stumps.push((stump, alpha));
            if perfect {
                break;
            }
        }
    }

    fn predict_proba(&self, x: &Mat) -> Vec<f64> {
        assert!(!self.stumps.is_empty(), "predict before fit");
        // Logistic link on the normalized margin (scaled for contrast).
        self.margin(x)
            .into_iter()
            .map(|m| sigmoid(4.0 * m))
            .collect()
    }

    fn name(&self) -> &'static str {
        "adaboost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_math::dist::sample_std_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_data(n: usize, seed: u64) -> (Mat, Vec<u32>) {
        // Label 1 inside the unit circle: needs an ensemble of axis splits.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = 1.5 * sample_std_normal(&mut rng);
            let b = 1.5 * sample_std_normal(&mut rng);
            data.push(a);
            data.push(b);
            y.push(u32::from(a * a + b * b < 2.0));
        }
        (Mat::from_vec(n, 2, data), y)
    }

    fn accuracy(pred: &[u32], truth: &[u32]) -> f64 {
        pred.iter().zip(truth).filter(|(p, t)| p == t).count() as f64 / truth.len() as f64
    }

    #[test]
    fn boosting_beats_single_stump() {
        let (x, y) = ring_data(1500, 1);
        let mut single = AdaBoost::new(BoostConfig {
            rounds: 1,
            learning_rate: 1.0,
        });
        single.fit(&x, &y, None);
        let acc1 = accuracy(&single.predict(&x), &y);
        let mut many = AdaBoost::new(BoostConfig {
            rounds: 100,
            learning_rate: 1.0,
        });
        many.fit(&x, &y, None);
        let acc100 = accuracy(&many.predict(&x), &y);
        assert!(
            acc100 > acc1 + 0.05,
            "boosting should improve: 1 round {acc1}, 100 rounds {acc100}"
        );
        assert!(acc100 > 0.85, "ensemble accuracy {acc100}");
    }

    #[test]
    fn generalizes_out_of_sample() {
        let (xtr, ytr) = ring_data(1500, 2);
        let (xte, yte) = ring_data(800, 3);
        let mut ada = AdaBoost::default_model();
        ada.fit(&xtr, &ytr, None);
        let acc = accuracy(&ada.predict(&xte), &yte);
        assert!(acc > 0.8, "OOS accuracy {acc}");
    }

    #[test]
    fn separable_data_converges_fast() {
        let x = Mat::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = vec![0, 0, 1, 1];
        let mut ada = AdaBoost::default_model();
        ada.fit(&x, &y, None);
        assert_eq!(ada.predict(&x), y);
        // One stump suffices; early stop keeps the ensemble tiny.
        assert!(ada.n_stumps() <= 2, "got {} stumps", ada.n_stumps());
    }

    #[test]
    fn proba_ordering_matches_margin() {
        let (x, y) = ring_data(600, 4);
        let mut ada = AdaBoost::default_model();
        ada.fit(&x, &y, None);
        let proba = ada.predict_proba(&x);
        assert!(proba.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Mean proba of true positives should exceed that of negatives.
        let (mut pos, mut npos, mut neg, mut nneg) = (0.0, 0, 0.0, 0);
        for (p, &t) in proba.iter().zip(&y) {
            if t == 1 {
                pos += p;
                npos += 1;
            } else {
                neg += p;
                nneg += 1;
            }
        }
        assert!(pos / npos as f64 > neg / nneg as f64 + 0.2);
    }

    #[test]
    fn respects_initial_sample_weights() {
        // Conflicting points; massive weight decides the vote.
        let x = Mat::from_rows(&[&[0.0], &[0.0]]);
        let y = vec![0, 1];
        let mut ada = AdaBoost::new(BoostConfig {
            rounds: 5,
            learning_rate: 1.0,
        });
        ada.fit(&x, &y, Some(&[100.0, 0.001]));
        assert_eq!(ada.predict(&x), vec![0, 0]);
    }
}
