//! Column → dense-matrix featurization.
//!
//! Categorical columns of arity 2 become a single 0/1 column; higher
//! arities are one-hot encoded with the first level dropped (reference
//! coding, avoiding perfect collinearity for the linear model). Numeric
//! columns are standardized with statistics *fit on the training table* and
//! reused at transform time, as any leakage-free pipeline must.

use fairsel_math::stats::{mean, std_dev};
use fairsel_math::Mat;
use fairsel_table::{ColId, Table};

#[derive(Clone, Debug)]
enum Spec {
    /// Binary categorical: emit the code itself.
    Binary { col: ColId },
    /// One-hot with the first level dropped: emits `arity - 1` indicators.
    OneHot { col: ColId, arity: u32 },
    /// Standardized numeric.
    Numeric { col: ColId, mean: f64, std: f64 },
}

/// Fitted featurization plan for a fixed set of columns.
#[derive(Clone, Debug)]
pub struct Featurizer {
    specs: Vec<Spec>,
    n_features: usize,
    cols: Vec<ColId>,
}

impl Featurizer {
    /// Fit on the training table over `cols` (order preserved).
    pub fn fit(table: &Table, cols: &[ColId]) -> Self {
        let mut specs = Vec::with_capacity(cols.len());
        let mut n_features = 0;
        for &c in cols {
            let col = table.col(c);
            match col.arity() {
                Some(2) => {
                    specs.push(Spec::Binary { col: c });
                    n_features += 1;
                }
                Some(a) => {
                    specs.push(Spec::OneHot { col: c, arity: a });
                    n_features += (a - 1) as usize;
                }
                None => {
                    let values = col.to_f64();
                    specs.push(Spec::Numeric {
                        col: c,
                        mean: mean(&values),
                        std: std_dev(&values),
                    });
                    n_features += 1;
                }
            }
        }
        Self {
            specs,
            n_features,
            cols: cols.to_vec(),
        }
    }

    /// Number of emitted feature dimensions.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The source columns, in featurization order.
    pub fn columns(&self) -> &[ColId] {
        &self.cols
    }

    /// Column id that produced feature dimension `f`.
    pub fn source_column(&self, f: usize) -> ColId {
        let mut offset = 0;
        for s in &self.specs {
            let width = match s {
                Spec::Binary { .. } | Spec::Numeric { .. } => 1,
                Spec::OneHot { arity, .. } => (*arity - 1) as usize,
            };
            if f < offset + width {
                return match s {
                    Spec::Binary { col } | Spec::Numeric { col, .. } | Spec::OneHot { col, .. } => {
                        *col
                    }
                };
            }
            offset += width;
        }
        panic!(
            "feature index {f} out of range ({} features)",
            self.n_features
        );
    }

    /// Transform a table (train or test) into an `n × d` matrix.
    ///
    /// # Panics
    /// Panics if a referenced column is missing or changed type/arity.
    pub fn transform(&self, table: &Table) -> Mat {
        let n = table.n_rows();
        let mut out = Mat::zeros(n, self.n_features);
        let mut j = 0;
        for s in &self.specs {
            match s {
                Spec::Binary { col } => {
                    let codes = table
                        .col(*col)
                        .codes()
                        .expect("featurizer: binary column became numeric");
                    for i in 0..n {
                        out[(i, j)] = codes[i] as f64;
                    }
                    j += 1;
                }
                Spec::OneHot { col, arity } => {
                    let codes = table
                        .col(*col)
                        .codes()
                        .expect("featurizer: one-hot column became numeric");
                    let width = (*arity - 1) as usize;
                    for i in 0..n {
                        let v = codes[i];
                        assert!(v < *arity, "featurizer: unseen category {v}");
                        if v > 0 {
                            out[(i, j + (v as usize - 1))] = 1.0;
                        }
                    }
                    j += width;
                }
                Spec::Numeric { col, mean, std } => {
                    let c = table.col(*col);
                    let denom = if *std > 0.0 { *std } else { 1.0 };
                    for i in 0..n {
                        out[(i, j)] = (c.value_f64(i) - mean) / denom;
                    }
                    j += 1;
                }
            }
        }
        out
    }

    /// Aggregate per-feature importances (one per emitted dimension) back
    /// to per-source-column importances by summing absolute values.
    /// Returns `(col, importance)` pairs in featurization order.
    pub fn aggregate_importance(&self, per_feature: &[f64]) -> Vec<(ColId, f64)> {
        assert_eq!(
            per_feature.len(),
            self.n_features,
            "importance length mismatch"
        );
        let mut out: Vec<(ColId, f64)> = self.cols.iter().map(|&c| (c, 0.0)).collect();
        for (f, &v) in per_feature.iter().enumerate() {
            let col = self.source_column(f);
            let slot = out
                .iter_mut()
                .find(|(c, _)| *c == col)
                .expect("source column present");
            slot.1 += v.abs();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_math::assert_close;
    use fairsel_table::{Column, Role};

    fn table() -> Table {
        Table::new(vec![
            Column::cat("bin", Role::Feature, vec![0, 1, 1, 0], 2),
            Column::cat("tri", Role::Feature, vec![0, 1, 2, 1], 3),
            Column::num("num", Role::Feature, vec![10.0, 20.0, 30.0, 40.0]),
        ])
        .unwrap()
    }

    #[test]
    fn feature_layout() {
        let t = table();
        let f = Featurizer::fit(&t, &[0, 1, 2]);
        // 1 (binary) + 2 (tri one-hot minus reference) + 1 (numeric) = 4
        assert_eq!(f.n_features(), 4);
        assert_eq!(f.source_column(0), 0);
        assert_eq!(f.source_column(1), 1);
        assert_eq!(f.source_column(2), 1);
        assert_eq!(f.source_column(3), 2);
    }

    #[test]
    fn transform_values() {
        let t = table();
        let f = Featurizer::fit(&t, &[0, 1, 2]);
        let m = f.transform(&t);
        assert_eq!(m.rows(), 4);
        // Binary passthrough.
        assert_eq!(m[(1, 0)], 1.0);
        // One-hot: row 0 has tri=0 (reference) -> both zero.
        assert_eq!((m[(0, 1)], m[(0, 2)]), (0.0, 0.0));
        // Row 2 has tri=2 -> second indicator.
        assert_eq!((m[(2, 1)], m[(2, 2)]), (0.0, 1.0));
        // Numeric standardized: mean 25, std ~11.18.
        assert_close!(m[(0, 3)], (10.0 - 25.0) / 11.180339887498949, 1e-9);
        let col: Vec<f64> = (0..4).map(|i| m[(i, 3)]).collect();
        assert_close!(fairsel_math::stats::mean(&col), 0.0, 1e-12);
    }

    #[test]
    fn transform_reuses_train_statistics() {
        let train = table();
        let f = Featurizer::fit(&train, &[2]);
        // Same schema as `table()`, different numeric values.
        let test = Table::new(vec![
            Column::cat("bin", Role::Feature, vec![0], 2),
            Column::cat("tri", Role::Feature, vec![0], 3),
            Column::num("num", Role::Feature, vec![25.0]),
        ])
        .unwrap();
        let m = f.transform(&test);
        // 25 is the training mean -> standardizes to 0 even though the test
        // table's own statistics differ.
        assert_close!(m[(0, 0)], 0.0, 1e-12);
    }

    #[test]
    fn constant_numeric_column_safe() {
        let t = Table::new(vec![Column::num("c", Role::Feature, vec![5.0; 3])]).unwrap();
        let f = Featurizer::fit(&t, &[0]);
        let m = f.transform(&t);
        for i in 0..3 {
            assert_eq!(m[(i, 0)], 0.0);
        }
    }

    #[test]
    fn subset_and_order_respected() {
        let t = table();
        let f = Featurizer::fit(&t, &[2, 0]);
        assert_eq!(f.n_features(), 2);
        assert_eq!(f.columns(), &[2, 0]);
        let m = f.transform(&t);
        assert_eq!(m[(1, 1)], 1.0); // binary column now second
    }

    #[test]
    fn importance_aggregation() {
        let t = table();
        let f = Featurizer::fit(&t, &[0, 1, 2]);
        let agg = f.aggregate_importance(&[0.5, 1.0, -2.0, 0.25]);
        assert_eq!(agg.len(), 3);
        assert_close!(agg[0].1, 0.5, 1e-12);
        assert_close!(agg[1].1, 3.0, 1e-12); // |1.0| + |-2.0|
        assert_close!(agg[2].1, 0.25, 1e-12);
    }

    #[test]
    fn empty_feature_set() {
        let t = table();
        let f = Featurizer::fit(&t, &[]);
        assert_eq!(f.n_features(), 0);
        let m = f.transform(&t);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 0);
    }
}
