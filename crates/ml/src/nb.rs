//! Naive Bayes over table columns: categorical likelihoods with Laplace
//! smoothing, Gaussian likelihoods for numeric columns.
//!
//! Unlike the other classifiers this one consumes the [`Table`] directly
//! (no featurizer), which makes it a handy fast probe for dataset sanity
//! checks and a convenient Bayes-approximating reference in tests.

use crate::Classifier;
use fairsel_math::Mat;
use fairsel_table::{ColId, Table};

#[derive(Clone, Debug)]
enum Likelihood {
    /// `log P(value | class)` per class (rows) and value (cols).
    Cat {
        log_probs: [Vec<f64>; 2],
        arity: u32,
    },
    /// Gaussian per class.
    Gauss { mean: [f64; 2], var: [f64; 2] },
}

/// Fitted naive-Bayes model over an explicit column subset.
pub struct NaiveBayes {
    cols: Vec<ColId>,
    log_prior: [f64; 2],
    likelihoods: Vec<Likelihood>,
    fitted: bool,
}

impl NaiveBayes {
    /// Model over the given columns; call [`NaiveBayes::fit_table`].
    pub fn new(cols: Vec<ColId>) -> Self {
        Self {
            cols,
            log_prior: [0.0; 2],
            likelihoods: Vec::new(),
            fitted: false,
        }
    }

    /// Fit from a table and binary labels.
    pub fn fit_table(&mut self, table: &Table, y: &[u32]) {
        assert_eq!(table.n_rows(), y.len(), "fit: row/label mismatch");
        assert!(!y.is_empty(), "fit: empty training set");
        assert!(y.iter().all(|&v| v <= 1), "fit: labels must be binary");
        let n = y.len() as f64;
        let n1 = y.iter().filter(|&&v| v == 1).count() as f64;
        let n0 = n - n1;
        // Laplace-smoothed priors.
        self.log_prior = [((n0 + 1.0) / (n + 2.0)).ln(), ((n1 + 1.0) / (n + 2.0)).ln()];
        self.likelihoods.clear();
        for &c in &self.cols {
            let col = table.col(c);
            let lik = match col.arity() {
                Some(arity) => {
                    let codes = col.codes().expect("categorical");
                    let mut counts = [vec![0.0f64; arity as usize], vec![0.0f64; arity as usize]];
                    for (i, &v) in codes.iter().enumerate() {
                        counts[y[i] as usize][v as usize] += 1.0;
                    }
                    let class_tot = [n0, n1];
                    let log_probs = [0, 1].map(|k| {
                        counts[k]
                            .iter()
                            .map(|&cnt| ((cnt + 1.0) / (class_tot[k] + arity as f64)).ln())
                            .collect::<Vec<f64>>()
                    });
                    Likelihood::Cat { log_probs, arity }
                }
                None => {
                    let mut sums = [0.0f64; 2];
                    let mut cnts = [0.0f64; 2];
                    for i in 0..y.len() {
                        sums[y[i] as usize] += col.value_f64(i);
                        cnts[y[i] as usize] += 1.0;
                    }
                    let mean = [0, 1].map(|k| {
                        if cnts[k] > 0.0 {
                            sums[k] / cnts[k]
                        } else {
                            0.0
                        }
                    });
                    let mut ss = [0.0f64; 2];
                    for i in 0..y.len() {
                        let d = col.value_f64(i) - mean[y[i] as usize];
                        ss[y[i] as usize] += d * d;
                    }
                    let var = [0, 1].map(|k| {
                        if cnts[k] > 1.0 {
                            (ss[k] / cnts[k]).max(1e-9)
                        } else {
                            1.0
                        }
                    });
                    Likelihood::Gauss { mean, var }
                }
            };
            self.likelihoods.push(lik);
        }
        self.fitted = true;
    }

    /// Per-row log-odds `log P(y=1|x) − log P(y=0|x)` on a table.
    pub fn log_odds(&self, table: &Table) -> Vec<f64> {
        assert!(self.fitted, "predict before fit");
        let n = table.n_rows();
        let mut out = vec![self.log_prior[1] - self.log_prior[0]; n];
        for (slot, &c) in self.cols.iter().enumerate() {
            let col = table.col(c);
            match &self.likelihoods[slot] {
                Likelihood::Cat { log_probs, arity } => {
                    let codes = col.codes().expect("categorical column changed type");
                    for (o, &v) in out.iter_mut().zip(codes) {
                        assert!(v < *arity, "unseen category at predict time");
                        *o += log_probs[1][v as usize] - log_probs[0][v as usize];
                    }
                }
                Likelihood::Gauss { mean, var } => {
                    for (i, o) in out.iter_mut().enumerate() {
                        let v = col.value_f64(i);
                        let ll = |k: usize| {
                            -0.5 * ((v - mean[k]) * (v - mean[k]) / var[k] + var[k].ln())
                        };
                        *o += ll(1) - ll(0);
                    }
                }
            }
        }
        out
    }

    /// `P(y=1|x)` on a table.
    pub fn predict_proba_table(&self, table: &Table) -> Vec<f64> {
        self.log_odds(table)
            .into_iter()
            .map(crate::linear::sigmoid)
            .collect()
    }

    /// Hard labels on a table.
    pub fn predict_table(&self, table: &Table) -> Vec<u32> {
        self.predict_proba_table(table)
            .into_iter()
            .map(|p| u32::from(p >= 0.5))
            .collect()
    }
}

/// The [`Classifier`] impl is deliberately unsupported — naive Bayes works
/// on tables, not featurized matrices. It panics with guidance.
impl Classifier for NaiveBayes {
    fn fit(&mut self, _x: &Mat, _y: &[u32], _w: Option<&[f64]>) {
        panic!("NaiveBayes consumes tables; use fit_table()");
    }

    fn predict_proba(&self, _x: &Mat) -> Vec<f64> {
        panic!("NaiveBayes consumes tables; use predict_proba_table()");
    }

    fn name(&self) -> &'static str {
        "naive-bayes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_table::{Column, Role};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy(n: usize, seed: u64) -> (Table, Vec<u32>) {
        // y depends on cat feature and on a numeric shift.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cat = Vec::with_capacity(n);
        let mut num = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let label: u32 = rng.gen_range(0..2);
            let c = if rng.gen::<f64>() < 0.8 {
                label
            } else {
                1 - label
            };
            let x = label as f64 * 2.0 + fairsel_math::dist::sample_std_normal(&mut rng);
            cat.push(c);
            num.push(x);
            y.push(label);
        }
        let t = Table::new(vec![
            Column::cat("c", Role::Feature, cat, 2),
            Column::num("x", Role::Feature, num),
        ])
        .unwrap();
        (t, y)
    }

    #[test]
    fn learns_informative_features() {
        let (t, y) = toy(4000, 1);
        let mut nb = NaiveBayes::new(vec![0, 1]);
        nb.fit_table(&t, &y);
        let preds = nb.predict_table(&t);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.85, "NB accuracy {acc}");
    }

    #[test]
    fn prior_only_when_no_columns() {
        let (t, mut y) = toy(100, 2);
        y.iter_mut().for_each(|v| *v = 1);
        y[0] = 0;
        let mut nb = NaiveBayes::new(vec![]);
        nb.fit_table(&t, &y);
        let p = nb.predict_proba_table(&t);
        assert!(p.iter().all(|&v| v > 0.9), "prior should dominate");
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (t, y) = toy(500, 3);
        let mut nb = NaiveBayes::new(vec![0, 1]);
        nb.fit_table(&t, &y);
        assert!(nb
            .predict_proba_table(&t)
            .iter()
            .all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    #[should_panic(expected = "use fit_table")]
    fn matrix_api_guides_to_table_api() {
        let mut nb = NaiveBayes::new(vec![]);
        nb.fit(&Mat::zeros(1, 1), &[0], None);
    }

    #[test]
    fn laplace_smoothing_handles_unseen_combinations() {
        // Class 1 never sees category 1; prediction must stay finite.
        let t = Table::new(vec![Column::cat("c", Role::Feature, vec![0, 0, 1, 0], 2)]).unwrap();
        let y = vec![1, 1, 0, 0];
        let mut nb = NaiveBayes::new(vec![0]);
        nb.fit_table(&t, &y);
        let odds = nb.log_odds(&t);
        assert!(odds.iter().all(|o| o.is_finite()));
    }
}
