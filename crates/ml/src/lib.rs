//! The machine-learning substrate: everything the paper's pipeline needs
//! *after* feature selection.
//!
//! §5.1 of the paper trains scikit-learn logistic regression on the
//! selected features and also validates with random forest and AdaBoost
//! ("Model Selection"). This crate reimplements that stack:
//!
//! * [`Featurizer`] — one-hot encodes categoricals and standardizes
//!   numerics, mapping table columns to a dense [`fairsel_math::Mat`];
//! * [`LogisticRegression`] (IRLS/Newton), [`DecisionTree`] (CART),
//!   [`RandomForest`], [`AdaBoost`] (SAMME on stumps), and
//!   [`NaiveBayes`] — all implementing the binary [`Classifier`] trait
//!   with optional per-sample weights (needed by the Reweighing and
//!   Capuchin-repair baselines);
//! * [`metrics`] — accuracy plus the fairness metrics the evaluation
//!   reports: absolute odds difference (Figure 2/3), statistical parity,
//!   disparate impact, equal-opportunity difference, and the conditional
//!   mutual information audit `CMI(S; Ŷ | A)` of Table 2.

pub mod boost;
pub mod features;
pub mod linear;
pub mod metrics;
pub mod nb;
pub mod tree;

pub use boost::AdaBoost;
pub use features::Featurizer;
pub use linear::LogisticRegression;
pub use metrics::FairnessReport;
pub use nb::NaiveBayes;
pub use tree::{DecisionTree, RandomForest};

use fairsel_math::Mat;

/// A binary classifier over dense feature matrices. Labels are `0`/`1`.
pub trait Classifier {
    /// Fit on features `x` (`n × d`) and labels `y`, optionally weighted
    /// per sample.
    fn fit(&mut self, x: &Mat, y: &[u32], sample_weights: Option<&[f64]>);

    /// Probability of the positive class per row.
    fn predict_proba(&self, x: &Mat) -> Vec<f64>;

    /// Hard labels at the 0.5 threshold.
    fn predict(&self, x: &Mat) -> Vec<u32> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| u32::from(p >= 0.5))
            .collect()
    }

    /// Short name for experiment logs.
    fn name(&self) -> &'static str;
}

/// Validate fit() inputs; shared by all classifiers.
pub(crate) fn check_fit_inputs(x: &Mat, y: &[u32], w: Option<&[f64]>) {
    assert_eq!(x.rows(), y.len(), "fit: row/label count mismatch");
    assert!(x.rows() > 0, "fit: empty training set");
    assert!(y.iter().all(|&v| v <= 1), "fit: labels must be binary 0/1");
    if let Some(w) = w {
        assert_eq!(w.len(), y.len(), "fit: weight count mismatch");
        assert!(
            w.iter().all(|&v| v >= 0.0 && v.is_finite()),
            "fit: bad weights"
        );
        assert!(w.iter().sum::<f64>() > 0.0, "fit: weights sum to zero");
    }
}
