//! Lightweight span tracing: scoped guards, per-thread buffers, and a
//! bounded process-wide [`TraceSink`].
//!
//! [`span`] returns a guard that records a [`CompletedSpan`] on drop:
//! name, optional key-values, a monotonic start timestamp (µs since the
//! process trace epoch), duration, the recording thread, and a parent
//! link to the enclosing span on the same thread. Completed spans
//! accumulate in a small per-thread buffer and are drained into the
//! global sink when the thread's span stack empties (end of a request /
//! pool task) or the buffer fills — one lock acquisition per burst, not
//! per span.
//!
//! The sink is disabled by default. A disabled [`span`] call is a single
//! relaxed atomic load returning an inert guard: no clock read, no
//! allocation, no thread-local touch — cheap enough that instrumented
//! code needs no `cfg` gating, and (by property test) selections and
//! engine counters are byte-identical with tracing on or off.
//!
//! The sink keeps the most recent `cap` spans; overflow evicts the
//! oldest and increments an exact `spans_dropped` counter.

use crate::lockorder::TrackedMutex;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;
use std::time::Instant;

/// Default capacity of the global sink's ring buffer.
pub const DEFAULT_SINK_CAP: usize = 4096;

/// Per-thread completed-span buffer size before a forced flush.
const THREAD_BUF_CAP: usize = 128;

/// Key-value annotations attached to a span.
pub type SpanKv = Vec<(&'static str, String)>;

/// A finished span, as stored in the sink.
#[derive(Clone, Debug)]
pub struct CompletedSpan {
    /// Process-unique id (never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for roots.
    pub parent: u64,
    /// Small per-process id of the recording thread.
    pub thread: u64,
    pub name: &'static str,
    /// µs since the process trace epoch (monotonic clock).
    pub start_us: u64,
    pub dur_us: u64,
    pub kv: SpanKv,
}

struct SinkInner {
    // analyze: bounded-by ring capped at `cap`; push evicts the oldest span
    ring: VecDeque<CompletedSpan>,
    dropped: u64,
}

/// Bounded collector of completed spans.
///
/// The process-wide instance lives behind [`sink`]; tests can build
/// private instances to exercise ring/drop semantics without global
/// state.
pub struct TraceSink {
    enabled: AtomicBool,
    cap: usize,
    inner: TrackedMutex<SinkInner>,
}

impl TraceSink {
    pub fn new(cap: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            cap: cap.max(1),
            inner: TrackedMutex::new(
                "obs.trace_sink",
                SinkInner {
                    ring: VecDeque::new(),
                    dropped: 0,
                },
            ),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Move `spans` into the ring, evicting oldest entries on overflow.
    pub fn push_all(&self, spans: &mut Vec<CompletedSpan>) {
        if spans.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        for s in spans.drain(..) {
            if inner.ring.len() == self.cap {
                inner.ring.pop_front();
                inner.dropped += 1;
            }
            inner.ring.push_back(s);
        }
    }

    /// The last `n` spans (at most), ordered by start time then id.
    pub fn recent(&self, n: usize) -> Vec<CompletedSpan> {
        let inner = self.inner.lock();
        let skip = inner.ring.len().saturating_sub(n);
        let mut out: Vec<CompletedSpan> = inner.ring.iter().skip(skip).cloned().collect();
        out.sort_by_key(|s| (s.start_us, s.id));
        out
    }

    /// Exact count of spans evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all buffered spans and reset the eviction counter.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.ring.clear();
        inner.dropped = 0;
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic µs since the process trace epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// The process-wide sink. Disabled until [`set_enabled`]`(true)`.
pub fn sink() -> &'static TraceSink {
    static SINK: OnceLock<TraceSink> = OnceLock::new();
    SINK.get_or_init(|| TraceSink::new(DEFAULT_SINK_CAP))
}

/// Enable or disable recording into the global sink.
pub fn set_enabled(on: bool) {
    sink().set_enabled(on);
}

/// Is the global sink recording?
#[inline]
pub fn enabled() -> bool {
    sink().enabled()
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

struct ThreadBuf {
    /// Ids of the open spans on this thread, innermost last.
    stack: Vec<u64>,
    /// Completed spans awaiting a flush into the global sink.
    done: Vec<CompletedSpan>,
    thread: u64,
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        stack: Vec::new(),
        done: Vec::new(),
        thread: NEXT_THREAD_ID.fetch_add(1, Relaxed),
    });
}

struct LiveSpan {
    id: u64,
    parent: u64,
    thread: u64,
    name: &'static str,
    start_us: u64,
    kv: SpanKv,
}

/// RAII guard from [`span`]; records the span into the sink on drop.
/// Inert (a no-op drop) when tracing was disabled at creation.
pub struct SpanGuard {
    live: Option<LiveSpan>,
    // Parent links are thread-local; keep guards on their thread.
    _not_send: PhantomData<*const ()>,
}

/// Open a span. Records only if the global sink is enabled *now*.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_kv(name, Vec::new)
}

/// Open a span with annotations; the closure runs only when enabled, so
/// disabled call sites pay no allocation or formatting.
#[inline]
pub fn span_kv<F: FnOnce() -> SpanKv>(name: &'static str, kv: F) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            live: None,
            _not_send: PhantomData,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Relaxed);
    let (parent, thread) = TLS.with(|t| {
        let mut t = t.borrow_mut();
        let parent = t.stack.last().copied().unwrap_or(0);
        t.stack.push(id);
        (parent, t.thread)
    });
    SpanGuard {
        live: Some(LiveSpan {
            id,
            parent,
            thread,
            name,
            start_us: now_us(),
            kv: kv(),
        }),
        _not_send: PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur_us = now_us().saturating_sub(live.start_us);
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            // Guards drop LIFO per thread; tolerate a stray mismatch
            // (e.g. a leaked guard) rather than corrupting the stack.
            if t.stack.last() == Some(&live.id) {
                t.stack.pop();
            } else {
                t.stack.retain(|&x| x != live.id);
            }
            t.done.push(CompletedSpan {
                id: live.id,
                parent: live.parent,
                thread: live.thread,
                name: live.name,
                start_us: live.start_us,
                dur_us,
                kv: live.kv,
            });
            if t.stack.is_empty() || t.done.len() >= THREAD_BUF_CAP {
                sink().push_all(&mut t.done);
            }
        });
    }
}

/// Record an already-measured interval (e.g. queue wait whose start was
/// stamped on another thread). No parent link; flushes immediately.
pub fn record_span_at(name: &'static str, start_us: u64, dur_us: u64, kv: SpanKv) {
    if !enabled() {
        return;
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Relaxed);
    let thread = TLS.with(|t| t.borrow().thread);
    sink().push_all(&mut vec![CompletedSpan {
        id,
        parent: 0,
        thread,
        name,
        start_us,
        dur_us,
        kv,
    }]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Tests that toggle the global flag or read the global sink must not
    /// interleave; everything else uses private `TraceSink` instances.
    fn global_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn ring_is_bounded_and_counts_drops_exactly() {
        let sink = TraceSink::new(4);
        let mk = |i: u64| CompletedSpan {
            id: i,
            parent: 0,
            thread: 1,
            name: "t",
            start_us: i,
            dur_us: 1,
            kv: Vec::new(),
        };
        sink.push_all(&mut (1..=10).map(mk).collect());
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 6);
        let ids: Vec<u64> = sink.recent(100).iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10], "most recent spans survive");
        let last2: Vec<u64> = sink.recent(2).iter().map(|s| s.id).collect();
        assert_eq!(last2, vec![9, 10]);
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = global_lock();
        set_enabled(false);
        sink().clear();
        {
            let _s = span("never.recorded");
        }
        assert!(sink().is_empty());
        assert_eq!(sink().dropped(), 0);
    }

    #[test]
    fn nested_spans_link_parents_and_flush_at_root() {
        let _g = global_lock();
        set_enabled(true);
        sink().clear();
        {
            let _outer = span("outer");
            {
                let _inner = span_kv("inner", || vec![("k", "v".into())]);
            }
        }
        set_enabled(false);
        let spans = sink().recent(16);
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.thread, outer.thread);
        assert_eq!(inner.kv, vec![("k", "v".to_string())]);
        assert!(inner.start_us >= outer.start_us);
        sink().clear();
    }

    #[test]
    fn manual_record_lands_when_enabled_only() {
        let _g = global_lock();
        set_enabled(false);
        sink().clear();
        record_span_at("queue", 10, 5, Vec::new());
        assert!(sink().is_empty());
        set_enabled(true);
        record_span_at("queue", 10, 5, vec![("conn", "3".into())]);
        set_enabled(false);
        let spans = sink().recent(4);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "queue");
        assert_eq!(spans[0].start_us, 10);
        assert_eq!(spans[0].dur_us, 5);
        sink().clear();
    }

    #[test]
    fn spans_from_worker_threads_reach_the_sink() {
        let _g = global_lock();
        set_enabled(true);
        sink().clear();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span("worker.task");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let spans = sink().recent(16);
        assert_eq!(spans.iter().filter(|s| s.name == "worker.task").count(), 4);
        let threads: std::collections::HashSet<u64> = spans.iter().map(|s| s.thread).collect();
        assert_eq!(threads.len(), 4, "each worker gets its own thread id");
        sink().clear();
    }
}
