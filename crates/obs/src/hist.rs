//! Log2-bucketed latency histograms with exact atomic counts.
//!
//! A [`Histogram`] is a fixed array of 65 atomic buckets: bucket 0 holds
//! the value 0, bucket `i` (1..=64) holds values in `[2^(i-1), 2^i)`
//! (bucket 64's upper edge clamps at `u64::MAX`). Recording is three
//! relaxed atomic adds and one atomic max — cheap enough to leave on
//! unconditionally, and *exact*: totals are never sampled or decayed, so
//! a quiescent histogram's bucket sum equals the number of `record`
//! calls, which lets tests assert on counts deterministically even when
//! the recorded durations themselves are nondeterministic.
//!
//! Percentiles come from a [`HistSnapshot`]: the reported quantile is the
//! upper edge of the bucket containing that rank, capped at the observed
//! maximum, so `p50 <= p95 <= p99 <= max` holds by construction.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Bucket count: one zero bucket plus one per power-of-two magnitude.
pub const N_BUCKETS: usize = 65;

/// Bucket holding `v`: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper edge of bucket `i` (`u64::MAX` for the last bucket).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log2-bucketed histogram safe for concurrent recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Thread-safe; counts are exact.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Point-in-time copy. `count` is the bucket sum, so a snapshot is
    /// always self-consistent even if taken mid-record.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; N_BUCKETS];
        let mut count = 0u64;
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Relaxed);
            count += *out;
        }
        HistSnapshot {
            buckets,
            count,
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`] for exposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: [u64; N_BUCKETS],
    /// Total observations (sum of buckets).
    pub count: u64,
    /// Sum of all recorded values (wraps on overflow).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistSnapshot {
    /// Quantile `q` in `[0, 1]`: the upper edge of the bucket containing
    /// rank `ceil(q * count)`, capped at `max`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(inclusive_upper_edge, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }
}

/// A monotone counter (e.g. the pool busy-time integral, in µs).
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Self {
            v: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn add(&self, delta: u64) {
        self.v.fetch_add(delta, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_edges_are_exact_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for k in 1..64usize {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            assert_eq!(bucket_index(lo), k, "lower edge of bucket {k}");
            assert_eq!(bucket_index(hi), k, "upper edge of bucket {k}");
            if k < 63 {
                assert_eq!(bucket_index(hi + 1), k + 1, "first value past bucket {k}");
            }
        }
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(63), (1u64 << 63) - 1);
    }

    #[test]
    fn u64_max_clamps_into_last_bucket() {
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_upper(64), u64::MAX);
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[64], 1);
    }

    #[test]
    fn quantiles_walk_bucket_edges() {
        let h = Histogram::new();
        // 90 fast (bucket upper edge 127), 9 medium (edge 1023), 1 slow.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(1000);
        }
        h.record(50_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 50_000);
        assert_eq!(s.p50(), 127);
        assert_eq!(s.p95(), 1023);
        assert_eq!(s.p99(), 1023);
        assert_eq!(s.quantile(1.0), 50_000);
    }

    #[test]
    fn quantiles_cap_at_observed_max() {
        let h = Histogram::new();
        h.record(3000); // bucket upper edge is 4095 — must not be reported
        let s = h.snapshot();
        assert_eq!(s.p50(), 3000);
        assert_eq!(s.p99(), 3000);
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 64, 900, 900, 12_345, 1 << 40] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.p50() <= s.p95());
        assert!(s.p95() <= s.p99());
        assert!(s.p99() <= s.max);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.max, 0);
        assert!(s.nonzero_buckets().is_empty());
    }

    #[test]
    fn concurrent_records_keep_exact_totals() {
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per {
                        h.record(t * 1_000 + (i % 37));
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, threads * per, "every record lands exactly once");
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        // The value multiset is deterministic, so sum and max are too.
        let expect_sum: u64 = (0..threads)
            .flat_map(|t| (0..per).map(move |i| t * 1_000 + (i % 37)))
            .sum();
        assert_eq!(s.sum, expect_sum);
        assert_eq!(s.max, (threads - 1) * 1_000 + 36);
    }

    #[test]
    fn nonzero_buckets_ascend() {
        let h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(5_000);
        let nz = h.snapshot().nonzero_buckets();
        assert_eq!(nz, vec![(0, 1), (7, 1), (8191, 1)]);
    }
}
