//! Debug-build lock-order checker: [`TrackedMutex`], a `Mutex` wrapper that
//! records per-thread acquisition stacks into a global lock-order graph and
//! panics the moment any thread acquires two locks in an order that forms a
//! cycle with an order some thread used before — a deadlock made loud and
//! deterministic instead of a once-a-month CI hang.
//!
//! Mechanics (debug builds): every `TrackedMutex` carries a `&'static str`
//! name. `lock()` consults a thread-local stack of currently held names;
//! for each held lock `h` it inserts the edge `h → name` into a global
//! graph, stamped with the two [`std::panic::Location`]s that first
//! witnessed the pair (holder's acquisition site and the current call
//! site, via `#[track_caller]`). Before inserting, a DFS checks whether
//! `name ⇝ h` is already reachable — if so the new edge closes a cycle,
//! and the panic message names both acquisition sites of the conflicting
//! edge plus the current one. Same-name edges are skipped: distinct
//! per-workload instances sharing a name (e.g. one mutex per session slot)
//! are never ordered against each other by construction here, and a true
//! self-deadlock panics in std anyway.
//!
//! In release builds the wrapper is a transparent `Mutex` with a
//! poison-tolerant `lock()` — no name, no thread-local, no graph, zero
//! overhead — so production code routes through the same API it ships
//! with and every debug test run doubles as a deadlock-freedom check.
//!
//! `lock()` is poison-tolerant in both builds (`PoisonError::into_inner`):
//! the workspace's invariant-bearing state is guarded by conservation-law
//! tests, not by poisoning, and the server's panic budget is confined to
//! `catch_unwind` per connection.

#[cfg(debug_assertions)]
pub use checked::{TrackedGuard, TrackedMutex};

#[cfg(not(debug_assertions))]
pub use passthrough::{TrackedGuard, TrackedMutex};

#[cfg(debug_assertions)]
mod checked {
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Deref, DerefMut};
    use std::panic::Location;
    use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

    type Site = &'static Location<'static>;

    /// First-witness lock-order graph: edge `(a, b)` means some thread
    /// acquired `b` while holding `a`, stamped with where `a` was held and
    /// where `b` was taken the first time the pair was seen.
    #[derive(Default)]
    struct OrderGraph {
        // analyze: bounded-by ordered pairs of distinct lock names, a static set in the code
        edges: BTreeMap<(&'static str, &'static str), (Site, Site)>,
        // analyze: bounded-by one entry per static lock name
        adj: BTreeMap<&'static str, BTreeSet<&'static str>>,
    }

    impl OrderGraph {
        /// Is `to` reachable from `from` along recorded edges?
        fn reachable(&self, from: &'static str, to: &'static str) -> bool {
            let mut stack = vec![from];
            let mut seen = BTreeSet::new();
            while let Some(n) = stack.pop() {
                if n == to {
                    return true;
                }
                if !seen.insert(n) {
                    continue;
                }
                if let Some(next) = self.adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
            false
        }
    }

    fn graph() -> &'static Mutex<OrderGraph> {
        static GRAPH: OnceLock<Mutex<OrderGraph>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(OrderGraph::default()))
    }

    thread_local! {
        /// Names + acquisition sites of TrackedMutexes this thread holds,
        /// in acquisition order.
        static HELD: RefCell<Vec<(&'static str, Site)>> = const { RefCell::new(Vec::new()) };
    }

    /// Validate acquiring `name` at `site` against everything this thread
    /// already holds, recording first-witness edges. Panics on an
    /// order inversion.
    fn check_and_record(name: &'static str, site: Site) {
        // `try_with`: during thread teardown the TLS slot may already be
        // destroyed (a guard dropped from another TLS destructor) — skip
        // tracking rather than abort.
        let held: Vec<(&'static str, Site)> =
            HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();
        if held.is_empty() {
            return;
        }
        let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
        for &(h, h_site) in &held {
            if h == name {
                continue;
            }
            if g.edges.contains_key(&(h, name)) {
                continue;
            }
            if g.reachable(name, h) {
                // Adding h → name would close a cycle. Dig out the edge(s)
                // of the existing name ⇝ h path for the message; the
                // direct edge exists in the common two-lock case.
                let conflict = g
                    .edges
                    .get(&(name, h))
                    .map(|(a, b)| {
                        format!(
                            "previously `{name}` (held at {a}) was ordered before \
                             `{h}` (acquired at {b})"
                        )
                    })
                    .unwrap_or_else(|| {
                        format!("`{name}` already reaches `{h}` through recorded orders")
                    });
                drop(g);
                panic!(
                    "lock-order inversion: acquiring `{name}` at {site} while \
                     holding `{h}` (acquired at {h_site}); {conflict}"
                );
            }
            g.edges.insert((h, name), (h_site, site));
            g.adj.entry(h).or_default().insert(name);
        }
    }

    fn push_held(name: &'static str, site: Site) {
        let _ = HELD.try_with(|h| h.borrow_mut().push((name, site)));
    }

    fn pop_held(name: &'static str) {
        let _ = HELD.try_with(|h| {
            let mut v = h.borrow_mut();
            if let Some(i) = v.iter().rposition(|&(n, _)| n == name) {
                v.remove(i);
            }
        });
    }

    /// A named mutex whose acquisitions are checked against the global
    /// lock-order graph (debug builds only — see the module docs).
    pub struct TrackedMutex<T> {
        name: &'static str,
        inner: Mutex<T>,
    }

    /// Guard for a [`TrackedMutex`]; releases the thread's held-stack entry
    /// on drop.
    pub struct TrackedGuard<'a, T> {
        // `Option` so `wait` can move the std guard through a Condvar.
        guard: Option<MutexGuard<'a, T>>,
        name: &'static str,
    }

    impl<T> TrackedMutex<T> {
        /// A tracked mutex named `name`. Use one name per *role* (e.g.
        /// `"server.registry.slots"`): instances sharing a name are not
        /// ordered against each other.
        pub const fn new(name: &'static str, value: T) -> Self {
            TrackedMutex {
                name,
                inner: Mutex::new(value),
            }
        }

        /// Acquire, panicking on a cycle-forming order inversion (debug
        /// builds). Poison-tolerant: a panic elsewhere never cascades here.
        #[track_caller]
        pub fn lock(&self) -> TrackedGuard<'_, T> {
            let site = Location::caller();
            check_and_record(self.name, site);
            let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            push_held(self.name, site);
            TrackedGuard {
                guard: Some(guard),
                name: self.name,
            }
        }

        /// Condvar wait: releases and reacquires *this* mutex. The held
        /// stack keeps its entry — the reacquisition cannot introduce a
        /// new edge (same lock, same order position).
        pub fn wait<'a>(&self, cv: &Condvar, mut g: TrackedGuard<'a, T>) -> TrackedGuard<'a, T> {
            let inner = g.guard.take().expect("guard present outside wait");
            let inner = cv.wait(inner).unwrap_or_else(|e| e.into_inner());
            g.guard = Some(inner);
            g
        }
    }

    impl<T> Deref for TrackedGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard present")
        }
    }

    impl<T> DerefMut for TrackedGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.guard.as_mut().expect("guard present")
        }
    }

    impl<T> Drop for TrackedGuard<'_, T> {
        fn drop(&mut self) {
            pop_held(self.name);
        }
    }
}

#[cfg(not(debug_assertions))]
mod passthrough {
    use std::sync::{Condvar, Mutex, MutexGuard};

    /// Release builds: a transparent `Mutex` wrapper — the name is
    /// discarded at construction, `lock()` is the plain poison-tolerant
    /// acquisition, and the guard is the std guard itself. Zero overhead.
    pub struct TrackedMutex<T> {
        inner: Mutex<T>,
    }

    /// In release builds the guard is exactly [`std::sync::MutexGuard`].
    pub type TrackedGuard<'a, T> = MutexGuard<'a, T>;

    impl<T> TrackedMutex<T> {
        pub const fn new(_name: &'static str, value: T) -> Self {
            TrackedMutex {
                inner: Mutex::new(value),
            }
        }

        #[inline]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }

        #[inline]
        pub fn wait<'a>(&self, cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            cv.wait(g).unwrap_or_else(|e| e.into_inner())
        }
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::TrackedMutex;

    /// A deliberate A→B then B→A inversion panics, and the message names
    /// both acquisition sites (this file) plus both lock names.
    #[test]
    fn inversion_panics_with_both_sites() {
        static A: TrackedMutex<i32> = TrackedMutex::new("lockorder.test.a", 0);
        static B: TrackedMutex<i32> = TrackedMutex::new("lockorder.test.b", 0);
        {
            let _a = A.lock();
            let _b = B.lock(); // records a → b
        }
        let err = std::panic::catch_unwind(|| {
            let _b = B.lock();
            let _a = A.lock(); // b → a closes the cycle
        })
        .expect_err("inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("lock-order inversion"),
            "unexpected panic: {msg}"
        );
        assert!(msg.contains("lockorder.test.a") && msg.contains("lockorder.test.b"));
        // Both acquisition sites of the conflicting order are named: the
        // current site and the first-witness sites all live in this file.
        assert!(
            msg.matches("lockorder.rs").count() >= 3,
            "expected current + both first-witness sites in: {msg}"
        );
    }

    /// Consistent ordering across many acquisitions never panics, and
    /// re-locking after release is clean.
    #[test]
    fn consistent_order_is_silent() {
        static C: TrackedMutex<i32> = TrackedMutex::new("lockorder.test.c", 0);
        static D: TrackedMutex<i32> = TrackedMutex::new("lockorder.test.d", 0);
        for _ in 0..64 {
            let mut c = C.lock();
            let mut d = D.lock();
            *c += 1;
            *d += 1;
        }
        assert_eq!(*C.lock(), 64);
    }

    /// Same-name instances are exempt: per-slot mutexes sharing a role
    /// name must not order against each other.
    #[test]
    fn same_name_instances_exempt() {
        let m1 = TrackedMutex::new("lockorder.test.slot", 1);
        let m2 = TrackedMutex::new("lockorder.test.slot", 2);
        let g1 = m1.lock();
        let g2 = m2.lock();
        assert_eq!(*g1 + *g2, 3);
    }

    /// Condvar wait round-trips the guard without disturbing tracking.
    #[test]
    fn condvar_wait_roundtrip() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::{Arc, Condvar};
        let m = Arc::new(TrackedMutex::new("lockorder.test.cv", false));
        let cv = Arc::new(Condvar::new());
        let flagged = Arc::new(AtomicBool::new(false));
        let (m2, cv2, f2) = (Arc::clone(&m), Arc::clone(&cv), Arc::clone(&flagged));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = true;
            f2.store(true, Ordering::SeqCst);
            drop(g);
            cv2.notify_all();
        });
        let mut g = m.lock();
        while !*g {
            g = m.wait(&cv, g);
        }
        drop(g);
        t.join().expect("notifier thread");
        assert!(flagged.load(Ordering::SeqCst));
    }
}
