//! fairsel-obs: std-only observability primitives for the fairsel stack.
//!
//! Three pieces, no external crates:
//!
//! - [`hist`] — log2-bucketed latency [`Histogram`]s with atomic buckets,
//!   exact counts, and `p50`/`p95`/`p99`/`max` exposition, plus a
//!   monotone [`Counter`] for gauges like the pool busy-time integral.
//! - [`trace`] — scoped [`span`]s with monotonic timestamps, parent
//!   links, per-thread buffering, and a bounded process-wide
//!   [`TraceSink`] (disabled by default; a disabled span is one atomic
//!   load).
//! - a process-wide **registry** of named histograms and counters
//!   ([`histogram`] / [`counter`]), so instrumentation sites in the
//!   engine don't have to thread handles through every call path, and
//!   the server's `stats` response can enumerate everything by name.
//!
//! Metric names use `base/label` (e.g. `engine_batch/grouped`): the part
//! after the slash is a label value (batch kind, command), which the
//! Prometheus renderer in the server crate turns into
//! `fairsel_engine_batch_ms_bucket{kind="grouped",...}`.
//!
//! This crate sits below everything else in the workspace (it depends on
//! nothing) so engine, server, cli, and bench can all share one sink and
//! one registry.

pub mod hist;
pub mod lockorder;
pub mod trace;

pub use hist::{bucket_index, bucket_upper, Counter, HistSnapshot, Histogram, N_BUCKETS};
pub use lockorder::{TrackedGuard, TrackedMutex};
pub use trace::{
    enabled, now_us, record_span_at, set_enabled, sink, span, span_kv, CompletedSpan, SpanGuard,
    SpanKv, TraceSink, DEFAULT_SINK_CAP,
};

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

#[derive(Default)]
struct Registry {
    // analyze: bounded-by one entry per distinct metric name, a static set in the code
    hists: BTreeMap<String, Arc<Histogram>>,
    // analyze: bounded-by one entry per distinct metric name, a static set in the code
    counters: BTreeMap<String, Arc<Counter>>,
}

fn registry() -> &'static TrackedMutex<Registry> {
    static REG: OnceLock<TrackedMutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| TrackedMutex::new("obs.registry", Registry::default()))
}

/// The process-wide histogram named `name`, created on first use.
/// Callers on hot paths should cache the returned `Arc`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut reg = registry().lock();
    Arc::clone(
        reg.hists
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new())),
    )
}

/// The process-wide counter named `name`, created on first use.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut reg = registry().lock();
    Arc::clone(
        reg.counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new())),
    )
}

/// Snapshot every registered histogram, sorted by name.
pub fn histograms_snapshot() -> Vec<(String, HistSnapshot)> {
    let reg = registry().lock();
    reg.hists
        .iter()
        .map(|(k, h)| (k.clone(), h.snapshot()))
        .collect()
}

/// Read every registered counter, sorted by name.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    let reg = registry().lock();
    reg.counters
        .iter()
        .map(|(k, c)| (k.clone(), c.get()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_interns_by_name() {
        let a = histogram("test_reg/a");
        let b = histogram("test_reg/a");
        assert!(Arc::ptr_eq(&a, &b));
        a.record(7);
        let snap = histograms_snapshot();
        let (_, s) = snap
            .iter()
            .find(|(k, _)| k == "test_reg/a")
            .expect("registered histogram is enumerable");
        assert!(s.count >= 1);
    }

    #[test]
    fn counters_accumulate_and_enumerate() {
        let c = counter("test_reg/busy");
        c.add(5);
        c.add(7);
        assert!(c.get() >= 12);
        let snap = counters_snapshot();
        assert!(snap.iter().any(|(k, v)| k == "test_reg/busy" && *v >= 12));
    }

    #[test]
    fn snapshots_are_name_sorted() {
        histogram("test_sorted/b");
        histogram("test_sorted/a");
        let names: Vec<String> = histograms_snapshot().into_iter().map(|(k, _)| k).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
