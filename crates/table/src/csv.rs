//! CSV persistence with a role-annotated header.
//!
//! Header cells have the form `name:type[role]` where `type` is `catK` or
//! `num` — self-describing enough to round-trip a [`Table`] exactly, while
//! remaining an ordinary CSV any spreadsheet can open.

use crate::table::{Column, ColumnData, Role, Table, TableError};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Serialize a table to CSV text.
pub fn to_csv_string(table: &Table) -> String {
    let mut out = String::new();
    // Header.
    let header: Vec<String> = table
        .columns()
        .iter()
        .map(|c| {
            let ty = match &c.data {
                ColumnData::Cat { arity, .. } => format!("cat{arity}"),
                ColumnData::Num(_) => "num".to_owned(),
            };
            format!("{}:{}[{}]", c.name, ty, c.role)
        })
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    // Rows.
    for row in 0..table.n_rows() {
        for (i, c) in table.columns().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match &c.data {
                ColumnData::Cat { codes, .. } => {
                    write!(out, "{}", codes[row]).expect("string write");
                }
                ColumnData::Num(v) => {
                    // Full round-trip precision.
                    write!(out, "{:?}", v[row]).expect("string write");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Write a table to a CSV file.
pub fn write_csv(table: &Table, path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_csv_string(table).as_bytes())
}

/// Parse a table from CSV text produced by [`to_csv_string`].
pub fn from_csv_string(text: &str) -> Result<Table, TableError> {
    from_csv_reader(text.as_bytes())
}

/// Read a table from a CSV file.
pub fn read_csv(path: &Path) -> Result<Table, TableError> {
    let f = std::fs::File::open(path)
        .map_err(|e| TableError::JoinError(format!("io error opening {}: {e}", path.display())))?;
    from_csv_reader(f)
}

fn from_csv_reader<R: Read>(reader: R) -> Result<Table, TableError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| bad("empty csv"))?
        .map_err(|e| bad(&format!("io error: {e}")))?;
    #[derive(Clone)]
    enum Ty {
        Cat(u32),
        Num,
    }
    let mut names = Vec::new();
    let mut roles = Vec::new();
    let mut types = Vec::new();
    for cell in header.split(',') {
        let (name, rest) = cell
            .split_once(':')
            .ok_or_else(|| bad(&format!("header cell missing type: {cell}")))?;
        let (ty, role) = rest
            .strip_suffix(']')
            .and_then(|r| r.split_once('['))
            .ok_or_else(|| bad(&format!("header cell missing role: {cell}")))?;
        let role = Role::parse(role).ok_or_else(|| bad(&format!("unknown role: {role}")))?;
        let ty = if ty == "num" {
            Ty::Num
        } else if let Some(k) = ty.strip_prefix("cat") {
            Ty::Cat(
                k.parse::<u32>()
                    .map_err(|_| bad(&format!("bad arity in {cell}")))?,
            )
        } else {
            return Err(bad(&format!("unknown type: {ty}")));
        };
        names.push(name.to_owned());
        roles.push(role);
        types.push(ty);
    }
    let ncols = names.len();
    let mut cat_data: Vec<Vec<u32>> = vec![Vec::new(); ncols];
    let mut num_data: Vec<Vec<f64>> = vec![Vec::new(); ncols];
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| bad(&format!("io error: {e}")))?;
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != ncols {
            return Err(bad(&format!(
                "row {} has {} cells, expected {ncols}",
                lineno + 2,
                cells.len()
            )));
        }
        for (i, cell) in cells.iter().enumerate() {
            match types[i] {
                Ty::Cat(arity) => {
                    let v = cell
                        .parse::<u32>()
                        .map_err(|_| bad(&format!("bad categorical value {cell:?}")))?;
                    if v >= arity {
                        return Err(bad(&format!(
                            "categorical value {v} out of range for arity {arity}"
                        )));
                    }
                    cat_data[i].push(v);
                }
                Ty::Num => num_data[i].push(
                    cell.parse::<f64>()
                        .map_err(|_| bad(&format!("bad numeric value {cell:?}")))?,
                ),
            }
        }
    }
    let mut columns = Vec::with_capacity(ncols);
    for i in 0..ncols {
        let col = match types[i] {
            Ty::Cat(arity) => Column::cat(
                names[i].clone(),
                roles[i],
                std::mem::take(&mut cat_data[i]),
                arity,
            ),
            Ty::Num => Column::num(names[i].clone(), roles[i], std::mem::take(&mut num_data[i])),
        };
        columns.push(col);
    }
    Table::new(columns)
}

fn bad(msg: &str) -> TableError {
    TableError::JoinError(format!("csv: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Role;

    fn sample() -> Table {
        Table::new(vec![
            Column::cat("s", Role::Sensitive, vec![0, 1, 1], 2),
            Column::num("x", Role::Feature, vec![1.5, -2.25, 1e-9]),
            Column::cat("y", Role::Target, vec![1, 0, 1], 2),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_exact() {
        let t = sample();
        let text = to_csv_string(&t);
        let back = from_csv_string(&text).unwrap();
        assert_eq!(back.n_rows(), 3);
        assert_eq!(back.schema_string(), t.schema_string());
        assert_eq!(
            back.expect_column("x").to_f64(),
            t.expect_column("x").to_f64()
        );
        assert_eq!(
            back.expect_column("s").codes().unwrap(),
            t.expect_column("s").codes().unwrap()
        );
    }

    #[test]
    fn header_format() {
        let text = to_csv_string(&sample());
        let header = text.lines().next().unwrap();
        assert_eq!(header, "s:cat2[sensitive],x:num[feature],y:cat2[target]");
    }

    #[test]
    fn file_roundtrip() {
        let t = sample();
        let dir = std::env::temp_dir().join("fairsel_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(&t, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.schema_string(), t.schema_string());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_csv_string("").is_err());
        assert!(from_csv_string("noheader\n1\n").is_err());
        assert!(from_csv_string("a:cat2[feature]\n5\n").is_err()); // code 5 >= arity 2
    }

    #[test]
    fn rejects_ragged_rows() {
        let text = "a:num[feature],b:num[feature]\n1.0,2.0\n3.0\n";
        assert!(from_csv_string(text).is_err());
    }

    #[test]
    fn empty_rows_table() {
        let t = Table::new(vec![Column::num("x", Role::Feature, vec![])]).unwrap();
        let back = from_csv_string(&to_csv_string(&t)).unwrap();
        assert_eq!(back.n_rows(), 0);
        assert_eq!(back.n_cols(), 1);
    }
}
