//! [`CappedCache`] — a concurrent, size-capped memo cache with
//! approximate-LRU eviction and hit/miss/eviction telemetry.
//!
//! The encoding layer and the testers built on it memoize per-variable-set
//! artifacts (joint encodings, design matrices, residual vectors). In a
//! batch-scoped session those caches are naturally bounded by the workload;
//! in a *long-lived* service they are not — every distinct conditioning set
//! a client ever asks about would stay resident forever. This cache bounds
//! them: lookups run under a read lock (recency is tracked with a relaxed
//! atomic tick, so hits never take the write lock), inserts evict the
//! least-recently-used entry once the cap is reached.
//!
//! Eviction only ever discards *memoized* values that can be recomputed
//! bit-identically, so a capped cache changes memory behavior and nothing
//! else — the property the bounded-cache regression tests in
//! `fairsel-tests` pin down.

use crate::encode::EncodeStats;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

struct Slot<V> {
    value: V,
    last_used: AtomicU64,
}

/// A bounded concurrent memo cache. `V` is cloned out on every hit, so it
/// should be a cheap handle (`Arc<...>` in every use here).
pub struct CappedCache<K, V> {
    // analyze: bounded-by this IS the capped cache; insert evicts at `cap`
    map: RwLock<HashMap<K, Slot<V>>>,
    cap: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Inserts that actually took residency (racing duplicates excluded) —
    /// with `evictions`, the exact ledger behind the scaffold conservation
    /// law: `inserted == len() + evictions` at every instant.
    inserted: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> CappedCache<K, V> {
    /// Cache holding at most `cap` entries (`cap == 0` is clamped to 1).
    pub fn new(cap: usize) -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
            cap: cap.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserted: AtomicU64::new(0),
        }
    }

    /// Maximum number of entries retained.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.read().expect("cache lock").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look a key up, bumping its recency. Counts a hit on success; a miss
    /// is only counted by [`CappedCache::insert`] / [`CappedCache::note_miss`]
    /// (so recursive fills account once per value actually computed).
    /// Borrowed key forms are accepted (`&[ColId]` for a `Vec<ColId>` key)
    /// so hot hit paths never allocate.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let map = self.map.read().expect("cache lock");
        let slot = map.get(key)?;
        slot.last_used
            .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(slot.value.clone())
    }

    /// Record a computation that bypassed the cache entirely (the uncached
    /// baseline mode still reports honest miss counts).
    pub fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Look a key up without touching hit or recency telemetry — a pure
    /// residency probe. The dataset-extension patching path uses this to
    /// check preconditions (is the scaffold resident in the child?)
    /// without skewing the hit/miss ledger or the LRU ordering.
    pub fn peek<Q>(&self, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let map = self.map.read().expect("cache lock");
        map.get(key).map(|slot| slot.value.clone())
    }

    /// Resident entries, in unspecified order, without touching hit or
    /// recency telemetry. The dataset-extension path walks a parent
    /// cache's resident set through this to extend each value in place.
    pub fn snapshot(&self) -> Vec<(K, V)> {
        let map = self.map.read().expect("cache lock");
        // analyze: unordered-ok callers own the ordering contract — the
        // extension path sorts snapshots before iterating (K is not Ord
        // here, so this method cannot sort for them).
        map.iter()
            .map(|(k, s)| (k.clone(), s.value.clone()))
            .collect()
    }

    /// Insert a freshly computed value, evicting the least-recently-used
    /// entry if the cache is full. Counts a miss. When another thread
    /// raced the same key in first, the resident value wins and is
    /// returned — values for one key are bit-identical by construction,
    /// and keeping one canonical handle preserves `Arc` sharing.
    pub fn insert(&self, key: K, value: V) -> V {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.insert_inner(key, value)
    }

    /// Insert a value carried over from a parent cache on dataset
    /// extension. Identical to [`CappedCache::insert`] except no miss is
    /// counted: the value was structurally extended, not recomputed, and
    /// the miss counter is the honest measure of computation.
    pub fn insert_transferred(&self, key: K, value: V) -> V {
        self.insert_inner(key, value)
    }

    fn insert_inner(&self, key: K, value: V) -> V {
        let mut map = self.map.write().expect("cache lock");
        if let Some(existing) = map.get(&key) {
            return existing.value.clone();
        }
        while map.len() >= self.cap {
            // Approximate LRU: evict the minimum recency tick. O(n) scan,
            // but only on inserts into a full cache.
            // analyze: unordered-ok the victim choice on recency ties is
            // arbitrary by contract (K is not Ord) — eviction only ever
            // discards memoized values recomputed bit-identically, so it
            // changes memory behavior and nothing else.
            let victim = map
                .iter()
                .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        self.inserted.fetch_add(1, Ordering::Relaxed);
        map.insert(
            key,
            Slot {
                value: value.clone(),
                last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
            },
        );
        value
    }

    /// Inserts that took residency (transfers included, racing losers
    /// excluded). Structurally `inserted() == len() + evictions()`.
    pub fn inserted(&self) -> u64 {
        self.inserted.load(Ordering::Relaxed)
    }

    /// Entries evicted by the cap so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Cumulative telemetry.
    pub fn stats(&self) -> EncodeStats {
        EncodeStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            ..EncodeStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_insert_and_telemetry() {
        let c: CappedCache<u32, Arc<u32>> = CappedCache::new(8);
        assert!(c.get(&1).is_none());
        c.insert(1, Arc::new(10));
        assert_eq!(*c.get(&1).unwrap(), 10);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
    }

    #[test]
    fn evicts_least_recently_used() {
        let c: CappedCache<u32, Arc<u32>> = CappedCache::new(2);
        c.insert(1, Arc::new(10));
        c.insert(2, Arc::new(20));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(&1).is_some());
        c.insert(3, Arc::new(30));
        assert_eq!(c.len(), 2);
        assert!(c.get(&2).is_none(), "LRU entry must be evicted");
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
        assert_eq!(c.stats().evictions, 1);
        // Conservation ledger: every resident entry was inserted once.
        assert_eq!(c.inserted(), c.len() as u64 + c.evictions());
    }

    #[test]
    fn racing_insert_keeps_first_value() {
        let c: CappedCache<u32, Arc<u32>> = CappedCache::new(4);
        let a = c.insert(7, Arc::new(1));
        let b = c.insert(7, Arc::new(2));
        assert!(Arc::ptr_eq(&a, &b), "second insert must return resident");
        assert_eq!(c.len(), 1);
        assert_eq!(c.inserted(), 1, "racing loser must not count as inserted");
    }

    #[test]
    fn snapshot_and_transfer_insert_skip_telemetry() {
        let c: CappedCache<u32, Arc<u32>> = CappedCache::new(8);
        c.insert(1, Arc::new(10));
        c.insert_transferred(2, Arc::new(20));
        let mut snap = c.snapshot();
        snap.sort_by_key(|(k, _)| *k);
        assert_eq!(snap.len(), 2);
        assert_eq!((snap[0].0, *snap[0].1), (1, 10));
        assert_eq!((snap[1].0, *snap[1].1), (2, 20));
        let s = c.stats();
        // One real insert, one transfer, no gets: 1 miss, 0 hits.
        assert_eq!((s.hits, s.misses), (0, 1));
    }

    #[test]
    fn peek_skips_telemetry_and_recency() {
        let c: CappedCache<u32, Arc<u32>> = CappedCache::new(2);
        c.insert(1, Arc::new(10));
        c.insert(2, Arc::new(20));
        assert_eq!(*c.peek(&1).unwrap(), 10);
        assert!(c.peek(&9).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 2), "peek must not count");
        // Peeking 1 did not bump its recency: it is still the LRU victim.
        c.insert(3, Arc::new(30));
        assert!(c.peek(&1).is_none(), "peek must not protect from eviction");
        assert!(c.peek(&2).is_some());
    }

    #[test]
    fn zero_cap_clamped() {
        let c: CappedCache<u32, u32> = CappedCache::new(0);
        assert_eq!(c.cap(), 1);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 1);
    }
}
