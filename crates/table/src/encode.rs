//! [`EncodedTable`] — the columnar encoding layer between a [`Table`] and
//! the data-driven CI testers.
//!
//! Every discrete tester reduces a query `X ⊥ Y | Z` to joint categorical
//! codes for each side, and GrpSel's level-synchronous frontiers re-use the
//! same variable sets over and over (the conditioning set is shared by a
//! whole level; halved groups share prefixes with their parents). Deriving
//! those codes from the raw table per query makes a batch of `b` queries
//! cost `O(b · encode)`; memoizing them here makes it
//! `O(encode + b · count)`.
//!
//! The cache is keyed by the *sorted, deduplicated* variable set — the same
//! quotient the engine's `QueryKey` uses — and is populated incrementally:
//! the encoding for `{a, b, c}` is built by composing the cached encoding
//! for `{a, b}` with column `c`, so a frontier's nested groups share work
//! structurally, not just textually. All lookups go through a shared
//! reference (`RwLock` + atomics), which is what lets the engine's worker
//! pool and the batch testers hit one cache concurrently.
//!
//! The table is held by `Arc`, and the set cache is *bounded*
//! ([`CappedCache`], default [`DEFAULT_CACHE_CAP`] entries, LRU eviction):
//! an `EncodedTable` can outlive any single request, which is exactly how
//! the `fairsel-server` session registry shares one encode pass across
//! many clients without growing without bound.

use crate::lru::CappedCache;
use crate::table::{ColId, Table};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default bound on memoized set encodings (and, downstream, on Fisher-z's
/// per-conditioning-set caches). Generous: a GrpSel run over hundreds of
/// features touches a few thousand distinct sets; a long-lived service
/// stays bounded at roughly `cap × rows × width` bytes per dataset.
pub const DEFAULT_CACHE_CAP: usize = 8192;

/// A code element: `u8`, `u16` or `u32`. The counting kernels in the
/// testers are generic over this, so a binary column is counted straight
/// out of 1-byte storage without widening.
pub trait CodeValue: Copy + Send + Sync + 'static {
    /// Widen to `u32` (lossless by construction: codes are `< arity` and
    /// the storage width is chosen from the arity).
    fn widen(self) -> u32;
    /// Widen to an index.
    #[inline]
    fn index(self) -> usize {
        self.widen() as usize
    }
    /// Narrow a full-width code known (by arity bound) to fit this width.
    fn truncate(v: u32) -> Self;
}

impl CodeValue for u8 {
    #[inline]
    fn widen(self) -> u32 {
        self as u32
    }
    #[inline]
    fn truncate(v: u32) -> u8 {
        debug_assert!(v <= u8::MAX as u32);
        v as u8
    }
}
impl CodeValue for u16 {
    #[inline]
    fn widen(self) -> u32 {
        self as u32
    }
    #[inline]
    fn truncate(v: u32) -> u16 {
        debug_assert!(v <= u16::MAX as u32);
        v as u16
    }
}
impl CodeValue for u32 {
    #[inline]
    fn widen(self) -> u32 {
        self
    }
    #[inline]
    fn truncate(v: u32) -> u32 {
        v
    }
}

/// Width-adaptive code storage: per-row joint codes held at the narrowest
/// unsigned width the code space fits (the same arity-derived rule the
/// wire codec uses), so a binary column costs 1 byte/row instead of 4.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Codes {
    /// Code space fits a byte (`arity <= 256`).
    U8(Vec<u8>),
    /// Code space fits two bytes (`arity <= 65536`).
    U16(Vec<u16>),
    /// Full-width codes.
    U32(Vec<u32>),
}

/// Dispatch a generic expression over the concrete code slice held by a
/// [`Codes`] value. `$s` binds the inner `Vec<u8>`/`Vec<u16>`/`Vec<u32>`
/// (by reference when `$codes` is a reference), and `$body` is
/// monomorphized per width — the counting kernels use this to run the
/// narrow paths without per-element enum dispatch.
#[macro_export]
macro_rules! with_codes {
    ($codes:expr, |$s:ident| $body:expr) => {
        match $codes {
            $crate::Codes::U8($s) => $body,
            $crate::Codes::U16($s) => $body,
            $crate::Codes::U32($s) => $body,
        }
    };
}

impl Codes {
    /// Storage width in bytes for a code space of size `arity` — the same
    /// rule as the wire codec: codes are `< arity`, so they fit one byte
    /// when `arity <= 2^8`, two when `arity <= 2^16`, four otherwise.
    pub fn width_for(arity: u32) -> usize {
        if arity as u64 <= 1 << 8 {
            1
        } else if arity as u64 <= 1 << 16 {
            2
        } else {
            4
        }
    }

    /// Narrow a full-width code vector to the width chosen from `arity`.
    pub fn from_u32(codes: Vec<u32>, arity: u32) -> Codes {
        match Self::width_for(arity) {
            1 => Codes::U8(codes.iter().map(|&c| c as u8).collect()),
            2 => Codes::U16(codes.iter().map(|&c| c as u16).collect()),
            _ => Codes::U32(codes),
        }
    }

    /// Narrow a full-width code slice to the width chosen from `arity`.
    pub fn from_slice(codes: &[u32], arity: u32) -> Codes {
        match Self::width_for(arity) {
            1 => Codes::U8(codes.iter().map(|&c| c as u8).collect()),
            2 => Codes::U16(codes.iter().map(|&c| c as u16).collect()),
            _ => Codes::U32(codes.to_vec()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        with_codes!(self, |c| c.len())
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage width in bytes per row.
    pub fn width(&self) -> usize {
        match self {
            Codes::U8(_) => 1,
            Codes::U16(_) => 2,
            Codes::U32(_) => 4,
        }
    }

    /// Total bytes of code storage.
    pub fn byte_len(&self) -> usize {
        self.len() * self.width()
    }

    /// The code at `row`, widened.
    pub fn get(&self, row: usize) -> u32 {
        with_codes!(self, |c| c[row].widen())
    }

    /// Widen to a full `u32` vector (reference paths and tests).
    pub fn to_u32_vec(&self) -> Vec<u32> {
        with_codes!(self, |c| c.iter().map(|&v| v.widen()).collect())
    }
}

/// Joint categorical encoding of a variable set: one code per row plus the
/// code-space size and the number of *observed* distinct codes.
///
/// Codes are produced by left-to-right composition over the sorted column
/// set: mixed-radix while the product of arities fits `u32`, densely
/// re-numbered (first-occurrence order) on overflow. Count-based statistics
/// (G-test, plug-in CMI) depend only on the partition the codes induce, so
/// any injective re-encoding is exact — including the width narrowing.
#[derive(Debug)]
pub struct Encoding {
    /// Per-row joint code at arity-derived width.
    pub codes: Codes,
    /// Size of the code space (`codes` values are `< arity`).
    pub arity: u32,
    /// Number of distinct codes actually observed.
    pub distinct: usize,
}

impl Encoding {
    /// True when every row is its own stratum — the degenerate case where
    /// conditioning on this set makes any CI test vacuous (each stratum
    /// holds one observation, so no stratum is informative and p = 1).
    pub fn all_singletons(&self) -> bool {
        !self.codes.is_empty() && self.distinct == self.codes.len()
    }
}

/// Cache telemetry: how many requests were answered from the cache, how
/// many values were computed, and how many cached values were evicted to
/// stay under the size cap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EncodeStats {
    /// Requests answered from the memo cache.
    pub hits: u64,
    /// Encodings actually computed (including intermediate prefixes).
    pub misses: u64,
    /// Cached values discarded by the LRU bound.
    pub evictions: u64,
    /// Bytes of width-narrowed code storage built (cumulative over every
    /// encoding computed; with u32 storage this would be 4 bytes/row).
    pub narrow_code_bytes: u64,
    /// Cells zeroed+filled by the dense counting arenas in the testers
    /// (cumulative `strata × xa × ya` over every dense fill).
    pub dense_count_cells: u64,
    /// Rows appended through [`EncodedTable::extend`] (cumulative over the
    /// dataset's whole lineage).
    pub append_rows: u64,
    /// Cached joint encodings carried into a child dataset by incremental
    /// extension instead of recomputation (cumulative over the lineage).
    pub extended_encodings: u64,
}

impl EncodeStats {
    /// Component-wise sum (used to aggregate a tester's private caches
    /// with the encoding layer's).
    pub fn merged(self, other: EncodeStats) -> EncodeStats {
        EncodeStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            narrow_code_bytes: self.narrow_code_bytes + other.narrow_code_bytes,
            dense_count_cells: self.dense_count_cells + other.dense_count_cells,
            append_rows: self.append_rows + other.append_rows,
            extended_encodings: self.extended_encodings + other.extended_encodings,
        }
    }
}

/// A [`Table`] plus memoized joint encodings and materialized numeric
/// columns, shared across queries, worker threads — and, through the
/// session service, across requests.
///
/// Construction is cheap — nothing is encoded eagerly; every per-set
/// encoding is computed on first use and retained (up to the cache cap).
/// Use [`EncodedTable::new_uncached`] to get the same (byte-identical)
/// answers with memoization disabled — the per-query baseline the
/// benchmarks compare against.
pub struct EncodedTable {
    table: Arc<Table>,
    caching: bool,
    sets: CappedCache<Vec<ColId>, Arc<Encoding>>,
    // analyze: bounded-by at most one entry per column of the dataset
    numeric: RwLock<std::collections::HashMap<ColId, Arc<Vec<f64>>>>,
    numeric_hits: AtomicU64,
    numeric_misses: AtomicU64,
    code_bytes: AtomicU64,
    append_rows: AtomicU64,
    extended: AtomicU64,
    /// Parent row count at the last [`EncodedTable::extend`] (0 for a cold
    /// build): the boundary between retained prefix rows and appended rows
    /// that sufficient-statistic patching counts.
    base_rows: usize,
    /// Set keys whose codes provably agree with the parent's codes on the
    /// first `base_rows` rows — the keys extended in place at the last
    /// [`EncodedTable::extend`]. Data-independent stability (singleton and
    /// fully mixed-radix chains) is decided structurally instead; see
    /// [`EncodedTable::prefix_stable`].
    // analyze: bounded-by subset of the resident cache keys at the last extend
    stable_sets: std::collections::HashSet<Vec<ColId>>,
    // Reusable scratch for the dense-renumber compose fallback: pre-sized
    // once and cleared (capacity kept) between groups, so a 500k-row
    // overflow composition doesn't pay a rehash storm per prefix step.
    // analyze: bounded-by cleared between groups; peak size is one group's distinct prefixes
    dense_scratch: Mutex<std::collections::HashMap<u64, u32>>,
}

impl std::fmt::Debug for EncodedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncodedTable")
            .field("rows", &self.table.n_rows())
            .field("caching", &self.caching)
            .field("cached_sets", &self.sets.len())
            .field("cap", &self.sets.cap())
            .finish()
    }
}

impl EncodedTable {
    /// Wrap a table with an empty encoding cache (default cap). The table
    /// is cloned into shared ownership; use [`EncodedTable::from_arc`]
    /// when an `Arc<Table>` is already at hand.
    pub fn new(table: &Table) -> Self {
        Self::from_arc(Arc::new(table.clone()))
    }

    /// Wrap a table with memoization disabled: every request recomputes.
    /// Answers are byte-identical to the cached variant.
    pub fn new_uncached(table: &Table) -> Self {
        Self::build(Arc::new(table.clone()), false, DEFAULT_CACHE_CAP)
    }

    /// Wrap a shared table with the default cache cap.
    pub fn from_arc(table: Arc<Table>) -> Self {
        Self::build(table, true, DEFAULT_CACHE_CAP)
    }

    /// Wrap a shared table, bounding the set-encoding cache at `cap`
    /// entries (clamped to at least 1). Testers built over this layer
    /// (Fisher-z) read [`EncodedTable::cache_cap`] to bound their own
    /// per-conditioning-set caches consistently.
    pub fn from_arc_with_cap(table: Arc<Table>, cap: usize) -> Self {
        Self::build(table, true, cap)
    }

    fn build(table: Arc<Table>, caching: bool, cap: usize) -> Self {
        Self {
            table,
            caching,
            sets: CappedCache::new(cap),
            numeric: RwLock::new(std::collections::HashMap::new()),
            numeric_hits: AtomicU64::new(0),
            numeric_misses: AtomicU64::new(0),
            code_bytes: AtomicU64::new(0),
            append_rows: AtomicU64::new(0),
            extended: AtomicU64::new(0),
            base_rows: 0,
            stable_sets: Default::default(),
            dense_scratch: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Shared handle to the underlying table.
    pub fn table_arc(&self) -> &Arc<Table> {
        &self.table
    }

    /// Whether memoization is enabled (false for the per-query baseline).
    pub fn caching(&self) -> bool {
        self.caching
    }

    /// The bound on memoized set encodings.
    pub fn cache_cap(&self) -> usize {
        self.sets.cap()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.table.n_rows()
    }

    /// Rows inherited from the parent dataset at the last
    /// [`EncodedTable::extend`] — 0 for a cold build. Sufficient-statistic
    /// patching counts only the rows from here to [`EncodedTable::n_rows`].
    pub fn base_rows(&self) -> usize {
        self.base_rows
    }

    /// Whether this (extended) table's joint codes for `cols` provably
    /// equal the parent's codes on the first [`EncodedTable::base_rows`]
    /// rows — the precondition for patching a contingency table that was
    /// counted against the parent's codes. Singletons and fully
    /// mixed-radix chains are stable by construction (the code of a row is
    /// a pure function of its values and the declared arities); dense
    /// re-numbered chains are stable exactly when the last extension
    /// carried them over in place.
    pub fn prefix_stable(&self, cols: &[ColId]) -> bool {
        let mut key = cols.to_vec();
        key.sort_unstable();
        key.dedup();
        key.len() <= 1 || self.mixed_key_arity(&key).is_some() || self.stable_sets.contains(&key)
    }

    /// Cache telemetry so far (set encodings + materialized numeric
    /// columns).
    pub fn stats(&self) -> EncodeStats {
        self.sets.stats().merged(EncodeStats {
            hits: self.numeric_hits.load(Ordering::Relaxed),
            misses: self.numeric_misses.load(Ordering::Relaxed),
            narrow_code_bytes: self.code_bytes.load(Ordering::Relaxed),
            append_rows: self.append_rows.load(Ordering::Relaxed),
            extended_encodings: self.extended.load(Ordering::Relaxed),
            ..EncodeStats::default()
        })
    }

    /// Number of distinct variable sets currently memoized.
    pub fn cached_sets(&self) -> usize {
        self.sets.len()
    }

    /// Joint encoding of a variable set. Order and multiplicity of `cols`
    /// are irrelevant: the set is sorted and deduplicated first (CI
    /// statistics only see the induced partition). Cached encodings are
    /// shared via `Arc`, so repeated queries cost one hash lookup.
    ///
    /// # Panics
    /// Panics when a referenced column is numeric.
    pub fn encode(&self, cols: &[ColId]) -> Arc<Encoding> {
        let mut key = cols.to_vec();
        key.sort_unstable();
        key.dedup();
        self.encode_sorted(key)
    }

    fn encode_sorted(&self, key: Vec<ColId>) -> Arc<Encoding> {
        if self.caching {
            if let Some(hit) = self.sets.get(&key) {
                return hit;
            }
            let enc = Arc::new(self.build_encoding(&key));
            self.code_bytes
                .fetch_add(enc.codes.byte_len() as u64, Ordering::Relaxed);
            self.sets.insert(key, enc)
        } else {
            self.sets.note_miss();
            let enc = self.build_encoding(&key);
            self.code_bytes
                .fetch_add(enc.codes.byte_len() as u64, Ordering::Relaxed);
            Arc::new(enc)
        }
    }

    /// Build the encoding for a sorted, deduplicated set by composing the
    /// cached encoding of its longest proper prefix with the last column.
    fn build_encoding(&self, key: &[ColId]) -> Encoding {
        let n = self.table.n_rows();
        match key.len() {
            0 => Encoding {
                codes: Codes::U8(vec![0; n]),
                arity: 1,
                distinct: usize::from(n > 0),
            },
            1 => self.base_column(key[0]),
            _ => {
                let prefix = self.encode_sorted(key[..key.len() - 1].to_vec());
                // The appended column goes through its cached single-set
                // encoding, so compose streams two narrow inputs instead
                // of the table's full-width storage.
                let last = self.encode_sorted(vec![key[key.len() - 1]]);
                let mut scratch = self.dense_scratch.lock().expect("dense scratch lock");
                compose(&prefix, &last, &mut scratch)
            }
        }
    }

    fn column_codes(&self, col: ColId) -> (&[u32], u32) {
        let c = self.table.col(col);
        let codes = c
            .codes()
            .unwrap_or_else(|| panic!("encode: column {} is numeric", c.name));
        (codes, c.arity().expect("categorical column has arity"))
    }

    fn base_column(&self, col: ColId) -> Encoding {
        let (codes, arity) = self.column_codes(col);
        let distinct = count_distinct(codes, arity);
        Encoding {
            codes: Codes::from_slice(codes, arity),
            arity,
            distinct,
        }
    }

    /// Extend this dataset with an appended row batch, producing a child
    /// `EncodedTable` over the concatenated table (schema-validated by
    /// [`Table::concat`]) whose cache is pre-warmed by **extending** the
    /// parent's resident joint encodings: each cached `Codes` vector keeps
    /// the parent's rows verbatim and only the batch rows are encoded,
    /// re-widening u8→u16→u32 storage only when the child's code space
    /// outgrows the parent's width. Extended entries are inserted without
    /// counting misses ([`CappedCache::insert_transferred`]) and tallied in
    /// [`EncodeStats::extended_encodings`]; entries that cannot be provably
    /// extended are simply left to rebuild cold on first use. Either way
    /// every child encoding is bit-identical to a cold build over the
    /// concatenated table.
    pub fn extend(&self, batch: &Table) -> Result<EncodedTable, crate::table::TableError> {
        let n_parent = self.table.n_rows();
        let child_table = Arc::new(self.table.concat(batch)?);
        let mut child = EncodedTable::build(child_table, self.caching, self.sets.cap());
        child.base_rows = n_parent;
        child.append_rows.store(
            self.append_rows.load(Ordering::Relaxed) + batch.n_rows() as u64,
            Ordering::Relaxed,
        );
        child
            .extended
            .store(self.extended.load(Ordering::Relaxed), Ordering::Relaxed);
        if !self.caching {
            return Ok(child);
        }
        // Shortest keys first so extended prefixes are resident in the
        // child cache before longer keys (the dense path reads them back).
        let mut resident = self.sets.snapshot();
        resident.sort_by(|(a, _), (b, _)| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        let parent_arities: std::collections::HashMap<Vec<ColId>, u32> =
            resident.iter().map(|(k, e)| (k.clone(), e.arity)).collect();
        // Keys whose child codes provably agree with the parent's codes on
        // the first `n_parent` rows (extension preserves this invariant).
        let mut stable: std::collections::HashSet<Vec<ColId>> = Default::default();
        for (key, parent_enc) in resident {
            if let Some(enc) =
                child.extend_encoding(&key, &parent_enc, n_parent, &parent_arities, &stable)
            {
                child
                    .code_bytes
                    .fetch_add(enc.codes.byte_len() as u64, Ordering::Relaxed);
                child.sets.insert_transferred(key.clone(), Arc::new(enc));
                child.extended.fetch_add(1, Ordering::Relaxed);
                stable.insert(key);
            }
        }
        child.stable_sets = stable;
        Ok(child)
    }

    /// Joint arity of a key when its whole compose chain stays in the
    /// mixed-radix branch (the product of column arities fits `u32` — a
    /// data-independent property, so parent and child agree on it).
    fn mixed_key_arity(&self, key: &[ColId]) -> Option<u32> {
        let mut arity: u64 = 1;
        for &c in key {
            let a = self.table.col(c).arity()? as u64;
            arity = arity.checked_mul(a).filter(|&v| v <= u32::MAX as u64)?;
        }
        Some(arity as u32)
    }

    /// Try to extend one parent encoding onto this (child) table. Returns
    /// the child encoding — bit-identical to a cold build — or `None` when
    /// the parent value cannot be provably extended (a branch flip in the
    /// compose chain, or an unverifiable prefix), in which case the key is
    /// rebuilt cold on first use instead.
    fn extend_encoding(
        &self,
        key: &[ColId],
        parent: &Encoding,
        n_parent: usize,
        parent_arities: &std::collections::HashMap<Vec<ColId>, u32>,
        stable: &std::collections::HashSet<Vec<ColId>>,
    ) -> Option<Encoding> {
        let n = self.table.n_rows();
        if key.is_empty() {
            return Some(Encoding {
                codes: Codes::U8(vec![0; n]),
                arity: 1,
                distinct: usize::from(n > 0),
            });
        }
        if key.len() == 1 {
            let (codes, arity) = self.column_codes(key[0]);
            let suffix = codes[n_parent..].to_vec();
            let codes = extend_codes(&parent.codes, &suffix, arity);
            let distinct = with_codes!(&codes, |c| count_distinct(c, arity));
            return Some(Encoding {
                codes,
                arity,
                distinct,
            });
        }
        if let Some(joint) = self.mixed_key_arity(key) {
            // Fully mixed chain: suffix codes fold straight off the raw
            // columns (identical to the chained combine), the code space —
            // and hence the storage width — matches the parent's exactly.
            debug_assert_eq!(parent.arity, joint);
            let mut suffix = vec![0u32; n - n_parent];
            for &c in key {
                let (codes, a) = self.column_codes(c);
                for (o, &v) in suffix.iter_mut().zip(&codes[n_parent..]) {
                    *o = *o * a + v;
                }
            }
            let codes = extend_codes(&parent.codes, &suffix, joint);
            let distinct = with_codes!(&codes, |c| count_distinct(c, joint));
            return Some(Encoding {
                codes,
                arity: joint,
                distinct,
            });
        }
        // The chain overflows u32 somewhere. The final compose step can
        // still be extended when the prefix is provably append-stable and
        // parent and child take the same branch at this step.
        let (prefix_key, last) = key.split_at(key.len() - 1);
        if !stable.contains(prefix_key) && self.mixed_key_arity(prefix_key).is_none() {
            return None;
        }
        let parent_prefix_arity = parent_arities
            .get(prefix_key)
            .copied()
            .or_else(|| self.mixed_key_arity(prefix_key))?;
        let child_p = self.encode_sorted(prefix_key.to_vec());
        let child_c = self.encode_sorted(vec![last[0]]);
        let arity_c = child_c.arity;
        let parent_joint = parent_prefix_arity as u64 * arity_c as u64;
        let child_joint = child_p.arity as u64 * arity_c as u64;
        let fits = |j: u64| j <= u32::MAX as u64;
        if fits(parent_joint) != fits(child_joint) {
            // Branch flip: the prefix's dense code space grew past the
            // radix bound, so the parent's codes live in a different code
            // space than a cold child build would produce.
            return None;
        }
        if fits(child_joint) {
            let joint = child_joint as u32;
            let mut suffix = vec![0u32; n - n_parent];
            with_codes!(&child_p.codes, |p| with_codes!(&child_c.codes, |q| {
                for ((o, &pc), &cc) in suffix.iter_mut().zip(&p[n_parent..]).zip(&q[n_parent..]) {
                    *o = pc.widen() * arity_c + cc.widen();
                }
            }));
            let codes = extend_codes(&parent.codes, &suffix, joint);
            let distinct = with_codes!(&codes, |c| count_distinct(c, joint));
            Some(Encoding {
                codes,
                arity: joint,
                distinct,
            })
        } else {
            // Both dense: replay the parent's first-occurrence numbering
            // from its own codes, then number new pairs starting at the
            // parent's distinct count — exactly what a cold build's
            // first-occurrence sweep over the concatenated rows produces.
            let mut map: std::collections::HashMap<u64, u32> =
                std::collections::HashMap::with_capacity(parent.distinct + (n - n_parent));
            let mut suffix = Vec::with_capacity(n - n_parent);
            let mut next = parent.distinct as u32;
            with_codes!(&child_p.codes, |p| with_codes!(&child_c.codes, |q| {
                for i in 0..n_parent {
                    let pair = p[i].widen() as u64 * arity_c as u64 + q[i].widen() as u64;
                    map.entry(pair).or_insert_with(|| parent.codes.get(i));
                }
                for i in n_parent..n {
                    let pair = p[i].widen() as u64 * arity_c as u64 + q[i].widen() as u64;
                    let code = *map.entry(pair).or_insert_with(|| {
                        let v = next;
                        next += 1;
                        v
                    });
                    suffix.push(code);
                }
            }));
            let distinct = next as usize;
            let arity = (distinct as u32).max(1);
            let codes = extend_codes(&parent.codes, &suffix, arity);
            Some(Encoding {
                codes,
                arity,
                distinct,
            })
        }
    }

    /// Materialize a column as `f64` (categorical codes cast), cached.
    /// Numeric testers (Fisher-z, RCIT) use this to avoid per-query
    /// clones. Unbounded but naturally capped by the table's width.
    pub fn numeric_col(&self, col: ColId) -> Arc<Vec<f64>> {
        if self.caching {
            if let Some(hit) = self.numeric.read().expect("numeric cache lock").get(&col) {
                self.numeric_hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(hit);
            }
        }
        self.numeric_misses.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(self.table.col(col).to_f64());
        if self.caching {
            self.numeric
                .write()
                .expect("numeric cache lock")
                .entry(col)
                .or_insert_with(|| Arc::clone(&v));
        }
        v
    }
}

/// Compose a prefix encoding with one more column: mixed radix while the
/// product of code spaces fits `u32`, dense first-occurrence re-numbering
/// otherwise. Either way the result is injective on distinct observed
/// combinations, so the induced partition equals the full joint partition.
/// `scratch` is the caller's reusable dense-renumber map; it is cleared
/// (capacity kept) and pre-sized before use.
fn compose(
    prefix: &Encoding,
    last: &Encoding,
    scratch: &mut std::collections::HashMap<u64, u32>,
) -> Encoding {
    let n = last.codes.len();
    debug_assert_eq!(prefix.codes.len(), n);
    let arity = last.arity;
    let joint = prefix.arity as u64 * arity as u64;
    if joint <= u32::MAX as u64 {
        let joint = joint as u32;
        let (out, distinct) = with_codes!(&prefix.codes, |p| with_codes!(&last.codes, |q| {
            compose_codes(p, q, arity, joint)
        }));
        Encoding {
            codes: out,
            arity: joint,
            distinct,
        }
    } else {
        // Dense re-encode pairs (prefix code, column code) in
        // first-occurrence order; the pair fits u64 by construction.
        scratch.clear();
        scratch.reserve(n);
        let mut out = Vec::with_capacity(n);
        with_codes!(&prefix.codes, |p| with_codes!(&last.codes, |q| {
            for (&pc, &c) in p.iter().zip(q) {
                let pair = pc.widen() as u64 * arity as u64 + c.widen() as u64;
                let next = scratch.len() as u32;
                out.push(*scratch.entry(pair).or_insert(next));
            }
        }));
        let distinct = scratch.len();
        let out_arity = (distinct as u32).max(1);
        Encoding {
            codes: Codes::from_u32(out, out_arity),
            arity: out_arity,
            distinct,
        }
    }
}

/// Mixed-radix combine `prefix * arity + col`, written directly at the
/// width the joint code space needs — no full-width intermediate vector,
/// no separate narrowing pass. The distinct count runs as its own sweep
/// over the (narrow) output: keeping the combine loop branch-free lets
/// it vectorize, which beats folding the seen-bitmap probe into the
/// same pass (measured ~2× at 500k rows).
fn compose_codes<P: CodeValue, C: CodeValue>(
    p: &[P],
    col: &[C],
    arity: u32,
    joint: u32,
) -> (Codes, usize) {
    let out = match Codes::width_for(joint) {
        1 => Codes::U8(combine(p, col, arity)),
        2 => Codes::U16(combine(p, col, arity)),
        _ => Codes::U32(combine(p, col, arity)),
    };
    let distinct = with_codes!(&out, |o| count_distinct(o, joint));
    (out, distinct)
}

/// Append `suffix` (full-width codes already known to fit the child code
/// space) onto a parent's narrow code vector, re-widening the storage only
/// when `width_for(arity)` outgrows the parent's width.
fn extend_codes(parent: &Codes, suffix: &[u32], arity: u32) -> Codes {
    let width = Codes::width_for(arity);
    debug_assert!(width >= parent.width(), "a child code space never shrinks");
    if width == parent.width() {
        match parent {
            Codes::U8(v) => {
                let mut v = v.clone();
                v.extend(suffix.iter().map(|&c| c as u8));
                Codes::U8(v)
            }
            Codes::U16(v) => {
                let mut v = v.clone();
                v.extend(suffix.iter().map(|&c| c as u16));
                Codes::U16(v)
            }
            Codes::U32(v) => {
                let mut v = v.clone();
                v.extend_from_slice(suffix);
                Codes::U32(v)
            }
        }
    } else if width == 2 {
        let mut v: Vec<u16> =
            with_codes!(parent, |p| p.iter().map(|&c| c.widen() as u16).collect());
        v.extend(suffix.iter().map(|&c| c as u16));
        Codes::U16(v)
    } else {
        let mut v = parent.to_u32_vec();
        v.extend_from_slice(suffix);
        Codes::U32(v)
    }
}

fn combine<P: CodeValue, C: CodeValue, O: CodeValue>(p: &[P], col: &[C], arity: u32) -> Vec<O> {
    p.iter()
        .zip(col)
        .map(|(&pc, &c)| O::truncate(pc.widen() * arity + c.widen()))
        .collect()
}

/// Count distinct code values; a bitmap when the code space is small
/// relative to the row count, a hash set otherwise.
fn count_distinct<C: CodeValue>(codes: &[C], arity: u32) -> usize {
    if codes.is_empty() {
        return 0;
    }
    if (arity as usize) <= codes.len().saturating_mul(4).max(1024) {
        let mut seen = vec![false; arity as usize];
        let mut distinct = 0;
        for &c in codes {
            if !seen[c.index()] {
                seen[c.index()] = true;
                distinct += 1;
            }
        }
        distinct
    } else {
        codes
            .iter()
            .map(|c| c.widen())
            .collect::<std::collections::HashSet<_>>()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Role};
    use std::collections::HashMap;

    fn table() -> Table {
        Table::new(vec![
            Column::cat("a", Role::Feature, vec![0, 1, 1, 0], 2),
            Column::cat("b", Role::Feature, vec![2, 0, 1, 2], 3),
            Column::cat("c", Role::Feature, vec![0, 0, 1, 1], 2),
            Column::num("x", Role::Feature, vec![1.0, 2.0, 3.0, 4.0]),
        ])
        .unwrap()
    }

    /// Two encodings induce the same partition when equal codes coincide.
    fn same_partition(a: &[u32], b: &[u32]) -> bool {
        let mut map = HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            if *map.entry(x).or_insert(y) != y {
                return false;
            }
        }
        let mut rev = HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            if *rev.entry(y).or_insert(x) != x {
                return false;
            }
        }
        true
    }

    #[test]
    fn matches_joint_codes_partition() {
        let t = table();
        let enc = EncodedTable::new(&t);
        let e = enc.encode(&[0, 1]);
        let (codes, arity) = t.joint_codes(&[0, 1]);
        assert!(same_partition(&e.codes.to_u32_vec(), &codes));
        assert_eq!(e.arity, arity);
        assert_eq!(e.distinct, 3); // (0,2) (1,0) (1,1) (0,2)
    }

    #[test]
    fn order_and_duplicates_share_one_entry() {
        let t = table();
        let enc = EncodedTable::new(&t);
        let a = enc.encode(&[1, 0]);
        let b = enc.encode(&[0, 1, 0]);
        assert!(Arc::ptr_eq(&a, &b), "sorted set key must dedup spellings");
        // One composed set costs three misses: prefix {0}, appended
        // single {1}, and the composition itself.
        assert_eq!(enc.stats().misses, 3);
        assert_eq!(enc.stats().hits, 1);
    }

    #[test]
    fn prefix_composition_reuses_subsets() {
        let t = table();
        let enc = EncodedTable::new(&t);
        enc.encode(&[0, 1]);
        let before = enc.stats().misses;
        enc.encode(&[0, 1, 2]); // prefix {0,1} already cached; single {2} is new
        assert_eq!(enc.stats().misses, before + 2);
        // {0}, {1}, {0,1}, {2}, {0,1,2}
        assert_eq!(enc.cached_sets(), 5);
    }

    #[test]
    fn empty_set_is_one_stratum() {
        let t = table();
        let enc = EncodedTable::new(&t);
        let e = enc.encode(&[]);
        assert_eq!(e.arity, 1);
        assert_eq!(e.distinct, 1);
        assert!(e.codes.to_u32_vec().iter().all(|&c| c == 0));
        assert!(!e.all_singletons());
    }

    #[test]
    fn all_singletons_detected() {
        let rows = 16;
        let cols: Vec<Column> = (0..5)
            .map(|bit| {
                Column::cat(
                    format!("b{bit}"),
                    Role::Feature,
                    (0..rows).map(|r| (r >> bit) as u32 & 1).collect(),
                    2,
                )
            })
            .collect();
        let t = Table::new(cols).unwrap();
        let enc = EncodedTable::new(&t);
        // 4 bits (16 combos over 16 rows, each unique) => all singleton.
        let e = enc.encode(&[0, 1, 2, 3]);
        assert!(e.all_singletons());
        // A single binary column over 16 rows is not.
        assert!(!enc.encode(&[0]).all_singletons());
    }

    #[test]
    fn overflow_composes_densely() {
        // 40 binary columns: joint arity 2^40 overflows u32.
        let cols: Vec<Column> = (0..40)
            .map(|i| {
                Column::cat(
                    format!("c{i}"),
                    Role::Feature,
                    vec![0, 1, (i % 2) as u32, 1 - (i % 2) as u32],
                    2,
                )
            })
            .collect();
        let t = Table::new(cols).unwrap();
        let enc = EncodedTable::new(&t);
        let all: Vec<ColId> = (0..40).collect();
        let e = enc.encode(&all);
        let (reference, _) = t.joint_codes_dense(&all);
        assert!(same_partition(&e.codes.to_u32_vec(), &reference));
        assert_eq!(e.distinct, 4);
        assert!(e.all_singletons());
    }

    #[test]
    fn storage_width_follows_arity() {
        let t = Table::new(vec![
            Column::cat("bin", Role::Feature, vec![0, 1, 1, 0], 2),
            Column::cat("mid", Role::Feature, vec![0, 299, 7, 12], 300),
            Column::cat("big", Role::Feature, vec![0, 69999, 5, 1], 70000),
        ])
        .unwrap();
        let enc = EncodedTable::new(&t);
        assert_eq!(enc.encode(&[0]).codes.width(), 1);
        assert_eq!(enc.encode(&[1]).codes.width(), 2);
        assert_eq!(enc.encode(&[2]).codes.width(), 4);
        // Composition widens to the joint code space: 2 × 300 = 600 → u16.
        let joint = enc.encode(&[0, 1]);
        assert_eq!(joint.codes.width(), 2);
        assert_eq!(joint.arity, 600);
        // Narrowed bytes are accounted: 4 + 8 + 16 + (prefix reuse) + 8.
        assert!(enc.stats().narrow_code_bytes >= 4 + 8 + 16 + 8);
    }

    #[test]
    fn dense_overflow_at_scale_matches_partition() {
        // Satellite: the >u32-joint-arity path at scale. 40 binary columns
        // over 50k rows overflow u32 on the last compose steps and take
        // the pre-sized dense-renumber scratch.
        let rows = 50_000usize;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let bits: Vec<Vec<u32>> = (0..40)
            .map(|_| (0..rows).map(|_| (next() & 1) as u32).collect())
            .collect();
        let cols: Vec<Column> = bits
            .iter()
            .enumerate()
            .map(|(i, b)| Column::cat(format!("c{i}"), Role::Feature, b.clone(), 2))
            .collect();
        let t = Table::new(cols).unwrap();
        let enc = EncodedTable::new(&t);
        let all: Vec<ColId> = (0..40).collect();
        let e = enc.encode(&all);
        // The reference partition via 64-bit packing of the 40 bits.
        let packed: Vec<u64> = (0..rows)
            .map(|r| bits.iter().fold(0u64, |acc, b| acc << 1 | b[r] as u64))
            .collect();
        let distinct = packed.iter().collect::<std::collections::HashSet<_>>();
        assert_eq!(e.distinct, distinct.len());
        assert!(e.arity as usize >= e.distinct);
        // Same partition: equal joint codes iff equal packed bit patterns.
        let mut map: HashMap<u32, u64> = HashMap::new();
        let widened = e.codes.to_u32_vec();
        for (code, pack) in widened.iter().zip(&packed) {
            assert_eq!(*map.entry(*code).or_insert(*pack), *pack);
        }
        // Codes stay within the declared code space.
        assert!(widened.iter().all(|&c| c < e.arity));
    }

    #[test]
    fn uncached_matches_cached_byte_for_byte() {
        let t = table();
        let cached = EncodedTable::new(&t);
        let cold = EncodedTable::new_uncached(&t);
        for set in [vec![], vec![2], vec![0, 2], vec![0, 1, 2]] {
            let a = cached.encode(&set);
            let b = cold.encode(&set);
            assert_eq!(a.codes, b.codes);
            assert_eq!(a.arity, b.arity);
            assert_eq!(a.distinct, b.distinct);
        }
        assert_eq!(cold.stats().hits, 0, "uncached never hits");
        // Uncached recomputes the {0} prefix for {0,1,2}.
        let again = cold.stats().misses;
        cold.encode(&[0, 1, 2]);
        assert!(cold.stats().misses > again);
    }

    #[test]
    fn capped_cache_evicts_and_stays_exact() {
        let t = table();
        let capped = EncodedTable::from_arc_with_cap(Arc::new(t.clone()), 2);
        let unbounded = EncodedTable::new(&t);
        // More distinct sets than the cap can hold.
        let sets: Vec<Vec<ColId>> = vec![vec![0], vec![1], vec![2], vec![0, 1], vec![1, 2]];
        for set in &sets {
            capped.encode(set);
        }
        assert!(capped.cached_sets() <= 2, "cap must bound residency");
        assert!(capped.stats().evictions > 0, "evictions must be counted");
        // Every encoding — evicted and recomputed or not — is exact.
        for set in &sets {
            let a = capped.encode(set);
            let b = unbounded.encode(set);
            assert_eq!(a.codes, b.codes);
            assert_eq!(a.arity, b.arity);
            assert_eq!(a.distinct, b.distinct);
        }
        assert_eq!(capped.cache_cap(), 2);
        assert_eq!(unbounded.cache_cap(), DEFAULT_CACHE_CAP);
    }

    #[test]
    fn extend_matches_cold_build_bit_for_bit() {
        let parent_t = table();
        let parent = EncodedTable::new(&parent_t);
        // Warm a spread of sets, including composed ones.
        let sets: Vec<Vec<ColId>> = vec![vec![], vec![0], vec![2], vec![0, 1], vec![0, 1, 2]];
        for s in &sets {
            parent.encode(s);
        }
        let batch = Table::new(vec![
            Column::cat("a", Role::Feature, vec![1, 0, 1], 2),
            Column::cat("b", Role::Feature, vec![0, 2, 1], 3),
            Column::cat("c", Role::Feature, vec![1, 1, 0], 2),
            Column::num("x", Role::Feature, vec![5.0, 6.0, 7.0]),
        ])
        .unwrap();
        let child = parent.extend(&batch).unwrap();
        let cold = EncodedTable::new(&parent_t.concat(&batch).unwrap());
        assert_eq!(child.n_rows(), 7);
        // Every warm set was transferred, none of them cost a miss.
        assert_eq!(child.stats().misses, 0);
        assert!(child.cached_sets() >= sets.len());
        for s in &sets {
            let w = child.encode(s);
            let c = cold.encode(s);
            assert_eq!(w.codes, c.codes, "set {s:?}");
            assert_eq!(w.arity, c.arity, "set {s:?}");
            assert_eq!(w.distinct, c.distinct, "set {s:?}");
        }
        let stats = child.stats();
        assert_eq!(stats.append_rows, 3);
        // Resident in the parent: {}, {0}, {1}, {2}, {0,1}, {0,1,2} — the
        // intermediate single {1} rides along with the requested sets.
        assert_eq!(stats.extended_encodings, 6);
        assert_eq!(stats.misses, 0, "transferred sets never recompute");
    }

    #[test]
    fn extend_chains_accumulate_counters() {
        let parent_t = table();
        let parent = EncodedTable::new(&parent_t);
        parent.encode(&[0, 1]);
        let batch = Table::new(vec![
            Column::cat("a", Role::Feature, vec![0], 2),
            Column::cat("b", Role::Feature, vec![1], 3),
            Column::cat("c", Role::Feature, vec![0], 2),
            Column::num("x", Role::Feature, vec![9.0]),
        ])
        .unwrap();
        let child = parent.extend(&batch).unwrap();
        let grandchild = child.extend(&batch).unwrap();
        let s = grandchild.stats();
        assert_eq!(s.append_rows, 2, "lineage-cumulative rows");
        // {a}, {b}, {a,b} transferred at each generation.
        assert_eq!(s.extended_encodings, 6);
        // The child encoding still matches a cold double-concat build.
        let cold_t = parent_t.concat(&batch).unwrap().concat(&batch).unwrap();
        let cold = EncodedTable::new(&cold_t);
        assert_eq!(grandchild.encode(&[0, 1]).codes, cold.encode(&[0, 1]).codes);
    }

    #[test]
    fn extend_rejects_schema_mismatch() {
        let parent = EncodedTable::new(&table());
        let bad = Table::new(vec![Column::cat("a", Role::Feature, vec![0], 2)]).unwrap();
        assert!(parent.extend(&bad).is_err());
    }

    #[test]
    fn extend_dense_path_rewidens_and_matches_cold() {
        // Two wide columns overflow u32 at the final compose step, so the
        // cached joint encoding is dense-renumbered. The parent observes
        // few distinct pairs (u8 storage); the appended batch pushes the
        // distinct count past 256, forcing the extension to re-widen the
        // carried codes to u16 — and the result must still match a cold
        // build on the concatenated table bit for bit.
        let arity = 70_000u32;
        let parent_rows = 300usize;
        let batch_rows = 200usize;
        let pcodes: Vec<u32> = (0..parent_rows).map(|i| (i % 200) as u32).collect();
        let parent_t = Table::new(vec![
            Column::cat("u", Role::Feature, pcodes.clone(), arity),
            Column::cat(
                "v",
                Role::Feature,
                pcodes.iter().map(|&c| c * 2).collect(),
                arity,
            ),
        ])
        .unwrap();
        let parent = EncodedTable::new(&parent_t);
        let e = parent.encode(&[0, 1]);
        assert!(e.arity as usize <= parent_rows, "dense renumbering");
        assert_eq!(e.codes.width(), 1, "parent fits u8");
        // Batch rows introduce fresh pairs: distinct goes 200 -> 400.
        let bcodes: Vec<u32> = (0..batch_rows).map(|i| 1000 + i as u32).collect();
        let batch = Table::new(vec![
            Column::cat("u", Role::Feature, bcodes.clone(), arity),
            Column::cat(
                "v",
                Role::Feature,
                bcodes.iter().map(|&c| c * 2).collect(),
                arity,
            ),
        ])
        .unwrap();
        let child = parent.extend(&batch).unwrap();
        let cold = EncodedTable::new(&parent_t.concat(&batch).unwrap());
        let w = child.encode(&[0, 1]);
        let c = cold.encode(&[0, 1]);
        assert_eq!(w.codes, c.codes);
        assert_eq!(w.arity, c.arity);
        assert_eq!(w.distinct, c.distinct);
        assert_eq!(w.codes.width(), 2, "extension re-widened u8 -> u16");
        assert!(child.stats().extended_encodings > 0);
        // The dense-renumbered joint set was carried over in place, so the
        // child records it as prefix-stable; on a child whose parent never
        // encoded it there is no proof, and the structural fallbacks don't
        // apply (the chain overflows u32).
        assert!(child.prefix_stable(&[0, 1]));
        assert!(child.prefix_stable(&[1, 0]), "spelling-insensitive");
        let unwarmed = EncodedTable::new(&parent_t).extend(&batch).unwrap();
        assert!(!unwarmed.prefix_stable(&[0, 1]));
        assert!(unwarmed.prefix_stable(&[0]), "singletons always stable");
    }

    #[test]
    fn extension_records_base_rows() {
        let parent_t = table();
        let parent = EncodedTable::new(&parent_t);
        assert_eq!(parent.base_rows(), 0, "cold build has no parent rows");
        let batch = Table::new(vec![
            Column::cat("a", Role::Feature, vec![1], 2),
            Column::cat("b", Role::Feature, vec![0], 3),
            Column::cat("c", Role::Feature, vec![1], 2),
            Column::num("x", Role::Feature, vec![5.0]),
        ])
        .unwrap();
        let child = parent.extend(&batch).unwrap();
        assert_eq!(child.base_rows(), 4);
        assert_eq!(child.n_rows(), 5);
        // Mixed-radix chains are structurally prefix-stable even when the
        // parent never encoded them.
        assert!(child.prefix_stable(&[0, 1, 2]));
        assert!(child.prefix_stable(&[]));
        let grandchild = child.extend(&batch).unwrap();
        assert_eq!(grandchild.base_rows(), 5, "boundary of the last append");
    }

    #[test]
    fn numeric_columns_cached_by_arc() {
        let t = table();
        let enc = EncodedTable::new(&t);
        let a = enc.numeric_col(3);
        let b = enc.numeric_col(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, vec![1.0, 2.0, 3.0, 4.0]);
        // Categorical columns materialize their codes.
        assert_eq!(*enc.numeric_col(0), vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "is numeric")]
    fn encoding_numeric_column_panics() {
        let t = table();
        EncodedTable::new(&t).encode(&[3]);
    }

    #[test]
    fn shared_across_threads() {
        let t = table();
        let enc = Arc::new(EncodedTable::new(&t));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let enc = Arc::clone(&enc);
                    scope.spawn(move || enc.encode(&[0, 1, 2]).codes.clone())
                })
                .collect();
            let first = handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>();
            assert!(first.windows(2).all(|w| w[0] == w[1]));
        });
    }
}
