//! Columnar in-memory tables — the data-management substrate of the
//! reproduction.
//!
//! The paper frames fair feature selection inside *data integration*: an
//! initial training table (sensitive attributes `S`, admissible attributes
//! `A`, target `Y`) is augmented with candidate features `X` arriving from
//! other sources via PK-FK joins (§1, §3). This crate provides that
//! machinery:
//!
//! * [`Table`] — a columnar table whose columns carry a fairness
//!   [`Role`] (`Sensitive` / `Admissible` / `Feature` / `Target` / `Key`);
//! * [`Table::join`] — hash PK-FK join used to integrate feature sources;
//! * [`EncodedTable`] — the memoized columnar encoding layer the
//!   data-driven CI testers read: per-set joint codes (with a stratum
//!   cache keyed by sorted variable set, populated by composing cached
//!   sub-encodings) and materialized numeric columns, all behind a shared
//!   reference so a batch of queries — or a pool of workers — amortizes
//!   one encoding pass;
//! * [`SourceRegistry`] — the integration pipeline: register sources, call
//!   [`SourceRegistry::integrate`], get the exhaustive feature table the
//!   selection algorithms then prune;
//! * CSV round-tripping with a role-annotated header so generated datasets
//!   can be persisted and inspected;
//! * a compact binary column [`codec`] (length-prefixed typed columns,
//!   exact float bits) — the `put` wire format of `fairsel serve`, so a
//!   dataset is uploaded once and addressed by fingerprint afterwards.

pub mod codec;
pub mod csv;
pub mod encode;
pub mod integrate;
pub mod lru;
pub mod table;

pub use codec::{decode_row_batch, decode_table, encode_row_batch, encode_table, CodecError};
pub use encode::{CodeValue, Codes, EncodeStats, EncodedTable, Encoding, DEFAULT_CACHE_CAP};
pub use integrate::SourceRegistry;
pub use lru::CappedCache;
pub use table::{ColId, Column, ColumnData, Role, StableSplit, Table, TableError};
