//! The [`Table`] type and its column model.

use rand::Rng;
use std::collections::HashMap;
use std::fmt;

/// Fairness role of a column, following the paper's variable taxonomy (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Role {
    /// Protected attribute (`S`): race, gender, age group, ...
    Sensitive,
    /// Admissible attribute (`A`): the sensitive attributes are allowed to
    /// influence the outcome through these.
    Admissible,
    /// Candidate feature (`X`): neither sensitive nor admissible.
    Feature,
    /// The training target (`Y`).
    Target,
    /// Join key (not a model variable).
    Key,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::Sensitive => "sensitive",
            Role::Admissible => "admissible",
            Role::Feature => "feature",
            Role::Target => "target",
            Role::Key => "key",
        };
        f.write_str(s)
    }
}

impl Role {
    /// Parse the textual form used in the CSV header.
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "sensitive" => Some(Role::Sensitive),
            "admissible" => Some(Role::Admissible),
            "feature" => Some(Role::Feature),
            "target" => Some(Role::Target),
            "key" => Some(Role::Key),
            _ => None,
        }
    }
}

/// Physical column storage.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnData {
    /// Categorical codes in `0..arity`.
    Cat { codes: Vec<u32>, arity: u32 },
    /// Numeric values.
    Num(Vec<f64>),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Cat { codes, .. } => codes.len(),
            ColumnData::Num(v) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A named, role-tagged column.
#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    pub name: String,
    pub role: Role,
    pub data: ColumnData,
}

impl Column {
    /// Build a categorical column; validates codes against the arity.
    pub fn cat(name: impl Into<String>, role: Role, codes: Vec<u32>, arity: u32) -> Self {
        assert!(arity >= 1, "categorical arity must be >= 1");
        assert!(
            codes.iter().all(|&c| c < arity),
            "categorical code out of range for column"
        );
        Self {
            name: name.into(),
            role,
            data: ColumnData::Cat { codes, arity },
        }
    }

    /// Build a numeric column.
    pub fn num(name: impl Into<String>, role: Role, values: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            role,
            data: ColumnData::Num(values),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Is this a categorical column?
    pub fn is_categorical(&self) -> bool {
        matches!(self.data, ColumnData::Cat { .. })
    }

    /// Arity for categorical columns, `None` for numeric.
    pub fn arity(&self) -> Option<u32> {
        match &self.data {
            ColumnData::Cat { arity, .. } => Some(*arity),
            ColumnData::Num(_) => None,
        }
    }

    /// Value at `row` as f64 (categorical codes cast).
    #[inline]
    pub fn value_f64(&self, row: usize) -> f64 {
        match &self.data {
            ColumnData::Cat { codes, .. } => codes[row] as f64,
            ColumnData::Num(v) => v[row],
        }
    }

    /// Materialize the whole column as f64.
    pub fn to_f64(&self) -> Vec<f64> {
        match &self.data {
            ColumnData::Cat { codes, .. } => codes.iter().map(|&c| c as f64).collect(),
            ColumnData::Num(v) => v.clone(),
        }
    }

    /// Categorical codes, or `None` for numeric columns.
    pub fn codes(&self) -> Option<&[u32]> {
        match &self.data {
            ColumnData::Cat { codes, .. } => Some(codes),
            ColumnData::Num(_) => None,
        }
    }

    fn take(&self, rows: &[usize]) -> Column {
        let data = match &self.data {
            ColumnData::Cat { codes, arity } => ColumnData::Cat {
                codes: rows.iter().map(|&r| codes[r]).collect(),
                arity: *arity,
            },
            ColumnData::Num(v) => ColumnData::Num(rows.iter().map(|&r| v[r]).collect()),
        };
        Column {
            name: self.name.clone(),
            role: self.role,
            data,
        }
    }
}

/// Index of a column within a table.
pub type ColId = usize;

/// Errors from table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Column lengths disagree.
    RaggedColumns {
        expected: usize,
        got: usize,
        column: String,
    },
    /// Duplicate column name.
    DuplicateColumn(String),
    /// Column not found.
    UnknownColumn(String),
    /// Join key problems (missing key, non-unique right key, dangling FK).
    JoinError(String),
    /// An appended row batch does not match the parent schema.
    SchemaMismatch(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::RaggedColumns {
                expected,
                got,
                column,
            } => {
                write!(f, "column {column} has {got} rows, expected {expected}")
            }
            TableError::DuplicateColumn(c) => write!(f, "duplicate column name: {c}"),
            TableError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            TableError::JoinError(m) => write!(f, "join error: {m}"),
            TableError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
        }
    }
}

impl std::error::Error for TableError {}

/// Result of [`Table::split_rows_stable`]: both halves in ascending row
/// order, plus whether the deterministic fallback cut was taken (in which
/// case the append-stable prefix property does not hold).
#[derive(Debug)]
pub struct StableSplit {
    /// Training rows (ascending original row order).
    pub train: Table,
    /// Held-out rows (ascending original row order).
    pub test: Table,
    /// True when thresholding left a side empty and a prefix cut was used.
    pub fallback: bool,
}

/// Stable per-row hash (splitmix64 finalizer over a seed/row mix): the
/// train-membership coin for [`Table::split_rows_stable`]. Depends only on
/// `(seed, row)`, so appended rows never reshuffle existing ones.
fn stable_row_hash(seed: u64, row: u64) -> u64 {
    let mut z = seed ^ row.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A columnar table: equal-length named columns plus a name index.
#[derive(Clone, Debug)]
pub struct Table {
    columns: Vec<Column>,
    // analyze: bounded-by one entry per column of the dataset
    index: HashMap<String, ColId>,
    n_rows: usize,
}

impl Table {
    /// Build from columns; all must have equal length and unique names.
    pub fn new(columns: Vec<Column>) -> Result<Self, TableError> {
        let n_rows = columns.first().map_or(0, Column::len);
        let mut index = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if c.len() != n_rows {
                return Err(TableError::RaggedColumns {
                    expected: n_rows,
                    got: c.len(),
                    column: c.name.clone(),
                });
            }
            if index.insert(c.name.clone(), i).is_some() {
                return Err(TableError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Self {
            columns,
            index,
            n_rows,
        })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// All columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by id.
    pub fn col(&self, id: ColId) -> &Column {
        &self.columns[id]
    }

    /// Column id by name.
    pub fn col_id(&self, name: &str) -> Option<ColId> {
        self.index.get(name).copied()
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.col_id(name).map(|i| &self.columns[i])
    }

    /// Column by name, panicking with a clear message when absent.
    pub fn expect_column(&self, name: &str) -> &Column {
        self.column(name)
            .unwrap_or_else(|| panic!("no column named {name:?}"))
    }

    /// Ids of all columns with the given role (in table order).
    pub fn cols_with_role(&self, role: Role) -> Vec<ColId> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| (c.role == role).then_some(i))
            .collect()
    }

    /// Sensitive column ids (`S`).
    pub fn sensitive_cols(&self) -> Vec<ColId> {
        self.cols_with_role(Role::Sensitive)
    }

    /// Admissible column ids (`A`).
    pub fn admissible_cols(&self) -> Vec<ColId> {
        self.cols_with_role(Role::Admissible)
    }

    /// Candidate feature column ids (`X`).
    pub fn feature_cols(&self) -> Vec<ColId> {
        self.cols_with_role(Role::Feature)
    }

    /// The target column id (`Y`).
    ///
    /// # Panics
    /// Panics if there is not exactly one target column.
    pub fn target_col(&self) -> ColId {
        let t = self.cols_with_role(Role::Target);
        assert_eq!(
            t.len(),
            1,
            "expected exactly one target column, found {}",
            t.len()
        );
        t[0]
    }

    /// Add a column (consuming self for chaining in builders).
    pub fn with_column(mut self, col: Column) -> Result<Self, TableError> {
        if self.n_cols() > 0 && col.len() != self.n_rows {
            return Err(TableError::RaggedColumns {
                expected: self.n_rows,
                got: col.len(),
                column: col.name,
            });
        }
        if self.index.contains_key(&col.name) {
            return Err(TableError::DuplicateColumn(col.name));
        }
        if self.n_cols() == 0 {
            self.n_rows = col.len();
        }
        self.index.insert(col.name.clone(), self.columns.len());
        self.columns.push(col);
        Ok(self)
    }

    /// Projection onto the named columns (in the given order).
    pub fn select(&self, names: &[&str]) -> Result<Table, TableError> {
        let mut cols = Vec::with_capacity(names.len());
        for &n in names {
            let id = self
                .col_id(n)
                .ok_or_else(|| TableError::UnknownColumn(n.to_owned()))?;
            cols.push(self.columns[id].clone());
        }
        Table::new(cols)
    }

    /// New table with only the rows at `rows` (duplicates and reordering
    /// allowed — also how bootstrap resampling is implemented).
    pub fn take_rows(&self, rows: &[usize]) -> Table {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.take(rows)).collect();
        Table::new(columns).expect("take preserves invariants")
    }

    /// Rows where `mask` is true.
    pub fn filter_rows(&self, mask: &[bool]) -> Table {
        assert_eq!(mask.len(), self.n_rows, "mask length mismatch");
        let rows: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        self.take_rows(&rows)
    }

    /// Shuffled train/test split; `train_frac` in (0, 1).
    pub fn split_train_test<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        train_frac: f64,
    ) -> (Table, Table) {
        assert!(
            (0.0..1.0).contains(&train_frac) && train_frac > 0.0,
            "train_frac must be in (0,1)"
        );
        let mut rows: Vec<usize> = (0..self.n_rows).collect();
        for i in (1..rows.len()).rev() {
            let j = rng.gen_range(0..=i);
            rows.swap(i, j);
        }
        let cut = ((self.n_rows as f64) * train_frac).round() as usize;
        let cut = cut.clamp(1, self.n_rows.saturating_sub(1).max(1));
        (self.take_rows(&rows[..cut]), self.take_rows(&rows[cut..]))
    }

    /// Concatenate a row batch with an identical schema onto this table.
    /// Every column must agree in name, order, role, kind, and (for
    /// categorical columns) arity — an appended batch extends the parent's
    /// code dictionaries, it never redefines them.
    pub fn concat(&self, batch: &Table) -> Result<Table, TableError> {
        if batch.n_cols() != self.n_cols() {
            return Err(TableError::SchemaMismatch(format!(
                "batch has {} columns, parent has {}",
                batch.n_cols(),
                self.n_cols()
            )));
        }
        for (a, b) in self.columns.iter().zip(batch.columns()) {
            if a.name != b.name {
                return Err(TableError::SchemaMismatch(format!(
                    "column {:?} in parent vs {:?} in batch",
                    a.name, b.name
                )));
            }
            if a.role != b.role {
                return Err(TableError::SchemaMismatch(format!(
                    "column {:?}: role {} in parent vs {} in batch",
                    a.name, a.role, b.role
                )));
            }
            match (&a.data, &b.data) {
                (ColumnData::Cat { arity: pa, .. }, ColumnData::Cat { arity: ba, .. }) => {
                    if pa != ba {
                        return Err(TableError::SchemaMismatch(format!(
                            "column {:?}: arity {pa} in parent vs {ba} in batch \
                             (a batch may not widen or narrow the code dictionary)",
                            a.name
                        )));
                    }
                }
                (ColumnData::Num(_), ColumnData::Num(_)) => {}
                _ => {
                    return Err(TableError::SchemaMismatch(format!(
                        "column {:?}: categorical/numeric kind differs",
                        a.name
                    )))
                }
            }
        }
        let columns = self
            .columns
            .iter()
            .zip(batch.columns())
            .map(|(a, b)| {
                let data = match (&a.data, &b.data) {
                    (ColumnData::Cat { codes, arity }, ColumnData::Cat { codes: more, .. }) => {
                        let mut all = Vec::with_capacity(codes.len() + more.len());
                        all.extend_from_slice(codes);
                        all.extend_from_slice(more);
                        ColumnData::Cat {
                            codes: all,
                            arity: *arity,
                        }
                    }
                    (ColumnData::Num(v), ColumnData::Num(more)) => {
                        let mut all = Vec::with_capacity(v.len() + more.len());
                        all.extend_from_slice(v);
                        all.extend_from_slice(more);
                        ColumnData::Num(all)
                    }
                    _ => unreachable!("kinds validated above"),
                };
                Column {
                    name: a.name.clone(),
                    role: a.role,
                    data,
                }
            })
            .collect();
        Table::new(columns)
    }

    /// Row-stable train/test split: row `i` is a training row iff a stable
    /// hash of `(seed, i)` falls below the `train_frac` threshold, and both
    /// sides keep ascending row order. Membership depends only on
    /// `(seed, i)` — never on the table length — so splitting a table
    /// extended by appended rows yields exactly the parent's split plus the
    /// new rows (the prefix property the streaming-append path relies on).
    ///
    /// When thresholding leaves either side empty (tiny tables, extreme
    /// fractions) a deterministic prefix cut is used instead and
    /// [`StableSplit::fallback`] is set — the prefix property does not hold
    /// across a fallback, so extenders must rebuild cold in that case.
    pub fn split_rows_stable(&self, seed: u64, train_frac: f64) -> StableSplit {
        assert!(
            (0.0..1.0).contains(&train_frac) && train_frac > 0.0,
            "train_frac must be in (0,1)"
        );
        let threshold = (train_frac * (u64::MAX as f64)) as u64;
        let mut train_rows = Vec::new();
        let mut test_rows = Vec::new();
        for i in 0..self.n_rows {
            if stable_row_hash(seed, i as u64) < threshold {
                train_rows.push(i);
            } else {
                test_rows.push(i);
            }
        }
        let fallback = self.n_rows > 0 && (train_rows.is_empty() || test_rows.is_empty());
        if fallback {
            let cut = ((self.n_rows as f64) * train_frac).round() as usize;
            let cut = cut.clamp(1, self.n_rows.saturating_sub(1).max(1));
            train_rows = (0..cut.min(self.n_rows)).collect();
            test_rows = (cut.min(self.n_rows)..self.n_rows).collect();
        }
        StableSplit {
            train: self.take_rows(&train_rows),
            test: self.take_rows(&test_rows),
            fallback,
        }
    }

    /// Hash PK-FK join: `self` (fact table, FK in `left_key`) against
    /// `right` (dimension table whose `right_key` values must be unique).
    /// All non-key columns of `right` are appended; the result keeps
    /// `self`'s row order and row count. Dangling foreign keys are an error
    /// (referential integrity, as in a curated feature store).
    pub fn join(
        &self,
        right: &Table,
        left_key: &str,
        right_key: &str,
    ) -> Result<Table, TableError> {
        let lk = self
            .column(left_key)
            .ok_or_else(|| TableError::UnknownColumn(left_key.to_owned()))?;
        let rk = right
            .column(right_key)
            .ok_or_else(|| TableError::UnknownColumn(right_key.to_owned()))?;
        let lcodes = lk.codes().ok_or_else(|| {
            TableError::JoinError(format!("left key {left_key} must be categorical/integer"))
        })?;
        let rcodes = rk.codes().ok_or_else(|| {
            TableError::JoinError(format!("right key {right_key} must be categorical/integer"))
        })?;
        // Build PK hash index over the dimension table.
        let mut pk: HashMap<u32, usize> = HashMap::with_capacity(rcodes.len());
        for (row, &code) in rcodes.iter().enumerate() {
            if pk.insert(code, row).is_some() {
                return Err(TableError::JoinError(format!(
                    "right key {right_key} is not unique (duplicate value {code})"
                )));
            }
        }
        // Probe.
        let mut right_rows = Vec::with_capacity(self.n_rows);
        for &code in lcodes {
            match pk.get(&code) {
                Some(&row) => right_rows.push(row),
                None => {
                    return Err(TableError::JoinError(format!(
                        "dangling foreign key value {code} in {left_key}"
                    )))
                }
            }
        }
        let mut out = self.clone();
        for c in right.columns() {
            if c.name == right_key {
                continue;
            }
            let taken = c.take(&right_rows);
            out = out.with_column(taken)?;
        }
        Ok(out)
    }

    /// Joint categorical code for a set of categorical columns: each row is
    /// encoded as a mixed-radix number. Returns `(codes, arity)`. Used by
    /// discrete CI tests on *sets* of variables (group testing).
    ///
    /// # Panics
    /// Panics when a column is numeric or the joint arity overflows `u32`.
    pub fn joint_codes(&self, cols: &[ColId]) -> (Vec<u32>, u32) {
        if cols.is_empty() {
            return (vec![0; self.n_rows], 1);
        }
        let mut arity: u64 = 1;
        for &c in cols {
            let a = self.columns[c].arity().unwrap_or_else(|| {
                panic!("joint_codes: column {} is numeric", self.columns[c].name)
            });
            arity = arity
                .checked_mul(a as u64)
                .filter(|&v| v <= u32::MAX as u64)
                .unwrap_or_else(|| panic!("joint_codes: joint arity overflow"));
        }
        let mut out = vec![0u32; self.n_rows];
        for &c in cols {
            let col = &self.columns[c];
            let a = col.arity().expect("checked above");
            let codes = col.codes().expect("checked above");
            for (o, &v) in out.iter_mut().zip(codes) {
                *o = *o * a + v;
            }
        }
        (out, arity as u32)
    }

    /// Like [`Table::joint_codes`], but never overflows: when the joint
    /// arity exceeds `u32` (e.g. a 32-variable group query from GrpSel),
    /// distinct *observed* combinations are densely re-encoded instead.
    /// Count-based statistics (G-test, plug-in CMI) depend only on the
    /// partition the codes induce, so dense re-encoding is exact; the
    /// returned arity is then the number of observed combinations.
    ///
    /// # Panics
    /// Panics when a column is numeric.
    pub fn joint_codes_dense(&self, cols: &[ColId]) -> (Vec<u32>, u32) {
        let mut arity: u64 = 1;
        let mut overflow = false;
        for &c in cols {
            let a = self.columns[c].arity().unwrap_or_else(|| {
                panic!("joint_codes: column {} is numeric", self.columns[c].name)
            });
            match arity
                .checked_mul(a as u64)
                .filter(|&v| v <= u32::MAX as u64)
            {
                Some(v) => arity = v,
                None => {
                    overflow = true;
                    break;
                }
            }
        }
        if !overflow {
            return self.joint_codes(cols);
        }
        let col_codes: Vec<&[u32]> = cols
            .iter()
            .map(|&c| self.columns[c].codes().expect("checked above"))
            .collect();
        let mut dense: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut out = Vec::with_capacity(self.n_rows);
        for row in 0..self.n_rows {
            let key: Vec<u32> = col_codes.iter().map(|codes| codes[row]).collect();
            let next = dense.len() as u32;
            out.push(*dense.entry(key).or_insert(next));
        }
        let observed = dense.len() as u32;
        (out, observed.max(1))
    }

    /// Human-readable schema line, e.g. `s:cat2[sensitive] y:cat2[target]`.
    pub fn schema_string(&self) -> String {
        self.columns
            .iter()
            .map(|c| {
                let ty = match &c.data {
                    ColumnData::Cat { arity, .. } => format!("cat{arity}"),
                    ColumnData::Num(_) => "num".to_owned(),
                };
                format!("{}:{}[{}]", c.name, ty, c.role)
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn people() -> Table {
        Table::new(vec![
            Column::cat("id", Role::Key, vec![0, 1, 2, 3], 4),
            Column::cat("gender", Role::Sensitive, vec![0, 1, 0, 1], 2),
            Column::cat("plan", Role::Admissible, vec![0, 0, 1, 1], 2),
            Column::num("income", Role::Feature, vec![30.0, 45.0, 52.0, 38.0]),
            Column::cat("approved", Role::Target, vec![1, 0, 1, 0], 2),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let t = people();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 5);
        assert_eq!(t.col_id("income"), Some(3));
        assert!(t.column("missing").is_none());
        assert_eq!(t.sensitive_cols(), vec![1]);
        assert_eq!(t.admissible_cols(), vec![2]);
        assert_eq!(t.feature_cols(), vec![3]);
        assert_eq!(t.target_col(), 4);
    }

    #[test]
    fn ragged_columns_rejected() {
        let err = Table::new(vec![
            Column::num("a", Role::Feature, vec![1.0, 2.0]),
            Column::num("b", Role::Feature, vec![1.0]),
        ])
        .unwrap_err();
        assert!(matches!(err, TableError::RaggedColumns { .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Table::new(vec![
            Column::num("a", Role::Feature, vec![1.0]),
            Column::num("a", Role::Feature, vec![2.0]),
        ])
        .unwrap_err();
        assert!(matches!(err, TableError::DuplicateColumn(_)));
    }

    #[test]
    #[should_panic(expected = "code out of range")]
    fn cat_codes_validated() {
        Column::cat("c", Role::Feature, vec![0, 3], 2);
    }

    #[test]
    fn select_projects_in_order() {
        let t = people();
        let p = t.select(&["income", "gender"]).unwrap();
        assert_eq!(p.n_cols(), 2);
        assert_eq!(p.col(0).name, "income");
        assert_eq!(p.col(1).name, "gender");
        assert!(t.select(&["nope"]).is_err());
    }

    #[test]
    fn take_and_filter_rows() {
        let t = people();
        let sub = t.take_rows(&[2, 0, 2]);
        assert_eq!(sub.n_rows(), 3);
        assert_eq!(sub.expect_column("income").to_f64(), vec![52.0, 30.0, 52.0]);
        let filtered = t.filter_rows(&[true, false, false, true]);
        assert_eq!(filtered.n_rows(), 2);
        assert_eq!(filtered.expect_column("gender").codes().unwrap(), &[0, 1]);
    }

    #[test]
    fn split_partitions_rows() {
        let t = people();
        let mut rng = StdRng::seed_from_u64(5);
        let (train, test) = t.split_train_test(&mut rng, 0.75);
        assert_eq!(train.n_rows() + test.n_rows(), 4);
        assert_eq!(train.n_rows(), 3);
        // Deterministic under the same seed.
        let mut rng2 = StdRng::seed_from_u64(5);
        let (train2, _) = t.split_train_test(&mut rng2, 0.75);
        assert_eq!(
            train.expect_column("income").to_f64(),
            train2.expect_column("income").to_f64()
        );
    }

    #[test]
    fn concat_appends_rows_with_matching_schema() {
        let t = people();
        let batch = Table::new(vec![
            Column::cat("id", Role::Key, vec![0], 4),
            Column::cat("gender", Role::Sensitive, vec![1], 2),
            Column::cat("plan", Role::Admissible, vec![0], 2),
            Column::num("income", Role::Feature, vec![61.5]),
            Column::cat("approved", Role::Target, vec![1], 2),
        ])
        .unwrap();
        let child = t.concat(&batch).unwrap();
        assert_eq!(child.n_rows(), 5);
        assert_eq!(child.schema_string(), t.schema_string());
        assert_eq!(
            child.expect_column("income").to_f64(),
            vec![30.0, 45.0, 52.0, 38.0, 61.5]
        );
        assert_eq!(
            child.expect_column("gender").codes().unwrap(),
            &[0, 1, 0, 1, 1]
        );
    }

    #[test]
    fn concat_rejects_schema_mismatches() {
        let t = people();
        // Wrong arity.
        let wrong_arity = Table::new(vec![
            Column::cat("id", Role::Key, vec![0], 4),
            Column::cat("gender", Role::Sensitive, vec![2], 3),
            Column::cat("plan", Role::Admissible, vec![0], 2),
            Column::num("income", Role::Feature, vec![1.0]),
            Column::cat("approved", Role::Target, vec![1], 2),
        ])
        .unwrap();
        let err = t.concat(&wrong_arity).unwrap_err();
        assert!(matches!(err, TableError::SchemaMismatch(_)), "{err}");
        assert!(err.to_string().contains("arity"));
        // Wrong column count.
        let narrow = t.select(&["gender", "approved"]).unwrap();
        assert!(matches!(
            t.concat(&narrow),
            Err(TableError::SchemaMismatch(_))
        ));
        // Wrong kind.
        let wrong_kind = Table::new(vec![
            Column::cat("id", Role::Key, vec![0], 4),
            Column::cat("gender", Role::Sensitive, vec![1], 2),
            Column::cat("plan", Role::Admissible, vec![0], 2),
            Column::cat("income", Role::Feature, vec![0], 2),
            Column::cat("approved", Role::Target, vec![1], 2),
        ])
        .unwrap();
        assert!(matches!(
            t.concat(&wrong_kind),
            Err(TableError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn stable_split_is_append_stable() {
        // The prefix property: splitting the concatenated table yields the
        // parent's train rows followed by the batch's train rows.
        let rows = 400usize;
        let mk = |n: usize, offset: usize| {
            Table::new(vec![
                Column::cat(
                    "s",
                    Role::Sensitive,
                    (0..n).map(|i| ((i + offset) % 2) as u32).collect(),
                    2,
                ),
                Column::num(
                    "x",
                    Role::Feature,
                    (0..n).map(|i| (i + offset) as f64).collect(),
                ),
            ])
            .unwrap()
        };
        let parent = mk(rows, 0);
        let batch = mk(60, rows);
        let child = parent.concat(&batch).unwrap();
        let ps = parent.split_rows_stable(7, 0.8);
        let cs = child.split_rows_stable(7, 0.8);
        assert!(!ps.fallback && !cs.fallback);
        assert_eq!(
            ps.train.n_rows() + ps.test.n_rows(),
            rows,
            "split partitions rows"
        );
        // Parent train rows are a prefix of the child train rows (x carries
        // the original row index, so compare by value).
        let pt = ps.train.expect_column("x").to_f64();
        let ct = cs.train.expect_column("x").to_f64();
        assert_eq!(&ct[..pt.len()], &pt[..]);
        let pe = ps.test.expect_column("x").to_f64();
        let ce = cs.test.expect_column("x").to_f64();
        assert_eq!(&ce[..pe.len()], &pe[..]);
        // Deterministic; different seeds differ.
        let again = parent.split_rows_stable(7, 0.8);
        assert_eq!(pt, again.train.expect_column("x").to_f64());
        let other = parent.split_rows_stable(8, 0.8);
        assert_ne!(pt, other.train.expect_column("x").to_f64());
    }

    #[test]
    fn stable_split_falls_back_on_degenerate_tables() {
        let t = people(); // 4 rows
                          // With a fraction this extreme, thresholding will usually empty the
                          // test side on 4 rows; either way both sides must end non-empty.
        let s = t.split_rows_stable(3, 0.99);
        assert!(s.train.n_rows() >= 1 && s.test.n_rows() >= 1);
        assert_eq!(s.train.n_rows() + s.test.n_rows(), 4);
    }

    #[test]
    fn pk_fk_join_appends_dimension_columns() {
        let base = people();
        let zipinfo = Table::new(vec![
            Column::cat("pid", Role::Key, vec![3, 2, 1, 0], 4),
            Column::num("zip_density", Role::Feature, vec![0.9, 0.1, 0.5, 0.2]),
            Column::cat("urban", Role::Feature, vec![1, 0, 1, 0], 2),
        ])
        .unwrap();
        let joined = base.join(&zipinfo, "id", "pid").unwrap();
        assert_eq!(joined.n_rows(), 4);
        assert_eq!(joined.n_cols(), 7);
        // Row 0 has id 0 which maps to zipinfo row 3 -> density 0.2.
        assert_eq!(
            joined.expect_column("zip_density").to_f64(),
            vec![0.2, 0.5, 0.1, 0.9]
        );
        assert_eq!(
            joined.expect_column("urban").codes().unwrap(),
            &[0, 1, 0, 1]
        );
    }

    #[test]
    fn join_rejects_duplicate_pk() {
        let base = people();
        let dim = Table::new(vec![
            Column::cat("pid", Role::Key, vec![0, 0, 1, 2], 4),
            Column::num("v", Role::Feature, vec![1.0; 4]),
        ])
        .unwrap();
        assert!(matches!(
            base.join(&dim, "id", "pid"),
            Err(TableError::JoinError(_))
        ));
    }

    #[test]
    fn join_rejects_dangling_fk() {
        let base = people();
        let dim = Table::new(vec![
            Column::cat("pid", Role::Key, vec![0, 1], 4),
            Column::num("v", Role::Feature, vec![1.0, 2.0]),
        ])
        .unwrap();
        let err = base.join(&dim, "id", "pid").unwrap_err();
        assert!(matches!(err, TableError::JoinError(_)));
    }

    #[test]
    fn joint_codes_mixed_radix() {
        let t = Table::new(vec![
            Column::cat("a", Role::Feature, vec![0, 1, 1], 2),
            Column::cat("b", Role::Feature, vec![2, 0, 1], 3),
        ])
        .unwrap();
        let (codes, arity) = t.joint_codes(&[0, 1]);
        assert_eq!(arity, 6);
        assert_eq!(codes, vec![2, 3, 4]); // a*3 + b
        let (codes0, a0) = t.joint_codes(&[]);
        assert_eq!(a0, 1);
        assert!(codes0.iter().all(|&c| c == 0));
    }

    #[test]
    fn joint_codes_dense_matches_when_no_overflow() {
        let t = Table::new(vec![
            Column::cat("a", Role::Feature, vec![0, 1, 1], 2),
            Column::cat("b", Role::Feature, vec![2, 0, 1], 3),
        ])
        .unwrap();
        assert_eq!(t.joint_codes_dense(&[0, 1]), t.joint_codes(&[0, 1]));
        assert_eq!(t.joint_codes_dense(&[]), t.joint_codes(&[]));
    }

    #[test]
    fn joint_codes_dense_survives_arity_overflow() {
        // 40 binary columns: mixed-radix arity would be 2^40 > u32::MAX.
        let cols: Vec<Column> = (0..40)
            .map(|i| {
                Column::cat(
                    format!("c{i}"),
                    Role::Feature,
                    vec![0, 1, (i % 2) as u32, 1 - (i % 2) as u32],
                    2,
                )
            })
            .collect();
        let t = Table::new(cols).unwrap();
        let all: Vec<ColId> = (0..40).collect();
        let (codes, arity) = t.joint_codes_dense(&all);
        assert_eq!(codes.len(), 4);
        // Rows 0..3 are pairwise distinct combinations except none repeat:
        // arity equals the number of distinct observed rows.
        let distinct: std::collections::HashSet<u32> = codes.iter().copied().collect();
        assert_eq!(arity as usize, distinct.len());
        // Equal rows get equal codes, distinct rows distinct codes.
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn value_views() {
        let t = people();
        let g = t.expect_column("gender");
        assert_eq!(g.value_f64(1), 1.0);
        assert_eq!(g.arity(), Some(2));
        let inc = t.expect_column("income");
        assert!(inc.codes().is_none());
        assert_eq!(inc.value_f64(0), 30.0);
    }

    #[test]
    fn schema_string_readable() {
        let t = people();
        let s = t.schema_string();
        assert!(s.contains("gender:cat2[sensitive]"));
        assert!(s.contains("income:num[feature]"));
    }

    #[test]
    fn with_column_on_empty_table() {
        let t = Table::new(vec![]).unwrap();
        let t = t
            .with_column(Column::num("x", Role::Feature, vec![1.0, 2.0]))
            .unwrap();
        assert_eq!(t.n_rows(), 2);
        assert!(t
            .clone()
            .with_column(Column::num("y", Role::Feature, vec![1.0]))
            .is_err());
    }
}
