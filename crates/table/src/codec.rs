//! Compact binary column codec — the `put` transport of `fairsel serve`.
//!
//! CSV text is a fine interchange format but a poor wire format: every
//! request re-ships and re-parses the full dataset, floats lose their
//! exact bits, and a megabyte of digits decodes slower than it transfers.
//! This codec serializes a [`Table`] as length-prefixed typed columns so
//! a client can upload a dataset **once** and address it by fingerprint
//! afterwards.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! magic    4  b"FSB1"
//! version  1  0x01
//! n_rows   8  u64
//! n_cols   4  u32
//! column * n_cols:
//!   len    4  u32   byte length of the column block that follows
//!   block:
//!     name_len 4  u32, then name_len bytes of UTF-8
//!     role     1  u8   0=sensitive 1=admissible 2=feature 3=target 4=key
//!     kind     1  u8   0=categorical 1=numeric
//!     cat:  arity u32, then n_rows codes of `code_width(arity)` bytes
//!           each (1 when arity ≤ 2⁸, 2 when ≤ 2¹⁶, else 4 — the width
//!           is a function of the arity, so it costs no header field)
//!     num:  n_rows * f64 (IEEE-754 bits — exact round trip)
//! ```
//!
//! The per-column length prefix lets a reader skip columns without
//! understanding their kind — room for future column types without a
//! version bump. Decoding validates everything (magic, version, UTF-8,
//! role/kind bytes, code range, duplicate names) and returns a
//! [`CodecError`] with a byte offset instead of panicking: the bytes come
//! off the network.

use crate::table::{Column, ColumnData, Role, Table};
use std::fmt;

/// Magic bytes opening every encoded table.
pub const CODEC_MAGIC: [u8; 4] = *b"FSB1";

/// Magic bytes opening an append row-batch frame. The payload layout is
/// identical to a full table frame — a batch *is* a table whose schema
/// must match the parent's — but the distinct magic keeps a `put` payload
/// from ever being replayed as an `append` (or vice versa).
pub const APPEND_MAGIC: [u8; 4] = *b"FSA1";

/// Codec version this module reads and writes.
pub const CODEC_VERSION: u8 = 1;

/// Decode failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    pub offset: usize,
    pub msg: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table codec error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for CodecError {}

fn role_byte(role: Role) -> u8 {
    match role {
        Role::Sensitive => 0,
        Role::Admissible => 1,
        Role::Feature => 2,
        Role::Target => 3,
        Role::Key => 4,
    }
}

fn byte_role(b: u8) -> Option<Role> {
    match b {
        0 => Some(Role::Sensitive),
        1 => Some(Role::Admissible),
        2 => Some(Role::Feature),
        3 => Some(Role::Target),
        4 => Some(Role::Key),
        _ => None,
    }
}

/// Bytes per categorical code: the narrowest width that fits every code
/// below `arity`. Derived identically by encoder and decoder.
fn code_width(arity: u32) -> usize {
    if arity <= 1 << 8 {
        1
    } else if arity <= 1 << 16 {
        2
    } else {
        4
    }
}

/// Serialize a table to the binary column format.
pub fn encode_table(table: &Table) -> Vec<u8> {
    encode_frame(table, &CODEC_MAGIC)
}

/// Serialize a row batch (a table whose schema matches the parent it will
/// extend) as an `FSA1` append frame.
pub fn encode_row_batch(batch: &Table) -> Vec<u8> {
    encode_frame(batch, &APPEND_MAGIC)
}

fn encode_frame(table: &Table, magic: &[u8; 4]) -> Vec<u8> {
    let n_rows = table.n_rows();
    // Worst-case estimate: 8 bytes per numeric cell dominates.
    let mut out = Vec::with_capacity(32 + table.n_cols() * (32 + n_rows * 8));
    out.extend_from_slice(magic);
    out.push(CODEC_VERSION);
    out.extend_from_slice(&(n_rows as u64).to_le_bytes());
    out.extend_from_slice(&(table.n_cols() as u32).to_le_bytes());
    for col in table.columns() {
        let mut block = Vec::with_capacity(16 + col.name.len() + n_rows * 8);
        block.extend_from_slice(&(col.name.len() as u32).to_le_bytes());
        block.extend_from_slice(col.name.as_bytes());
        block.push(role_byte(col.role));
        match &col.data {
            ColumnData::Cat { codes, arity } => {
                block.push(0);
                block.extend_from_slice(&arity.to_le_bytes());
                let width = code_width(*arity);
                for &c in codes {
                    block.extend_from_slice(&c.to_le_bytes()[..width]);
                }
            }
            ColumnData::Num(values) => {
                block.push(1);
                for &v in values {
                    block.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&(block.len() as u32).to_le_bytes());
        out.extend_from_slice(&block);
    }
    out
}

/// Cursor over the encoded bytes with offset-carrying errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, msg: impl Into<String>) -> CodecError {
        CodecError {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.err(format!("truncated {what}")))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

/// Decode a table from the binary column format, validating every field.
pub fn decode_table(bytes: &[u8]) -> Result<Table, CodecError> {
    decode_frame(bytes, &CODEC_MAGIC, "an encoded table")
}

/// Decode an `FSA1` append row batch, validating every field exactly like
/// [`decode_table`] — truncation, forged counts, out-of-range codes and
/// bad role/kind bytes all error cleanly with a byte offset.
pub fn decode_row_batch(bytes: &[u8]) -> Result<Table, CodecError> {
    decode_frame(bytes, &APPEND_MAGIC, "an append row batch")
}

fn decode_frame(bytes: &[u8], magic: &[u8; 4], what: &str) -> Result<Table, CodecError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4, "magic")? != magic {
        return Err(CodecError {
            offset: 0,
            msg: format!("bad magic (not {what})"),
        });
    }
    let version = r.u8("version")?;
    if version != CODEC_VERSION {
        return Err(r.err(format!("unsupported codec version {version}")));
    }
    let n_rows = r.u64("row count")?;
    let n_rows = usize::try_from(n_rows).map_err(|_| r.err("row count overflows usize"))?;
    // Every row costs at least one code byte in any categorical column
    // (and 8 in a numeric one), so counts beyond the payload length are
    // corrupt and rejected before any per-row allocation.
    if n_rows > bytes.len() {
        return Err(r.err(format!("row count {n_rows} exceeds payload size")));
    }
    let n_cols = r.u32("column count")? as usize;
    if n_cols > bytes.len() {
        return Err(r.err(format!("column count {n_cols} exceeds payload size")));
    }
    // The counts come off the network: never pre-reserve from them (a
    // forged frame could claim millions of columns and reserve gigabytes
    // before the first block fails validation); amortized push growth on
    // a vector of at most a few dozen real columns costs nothing.
    let mut columns = Vec::new();
    for i in 0..n_cols {
        let block_len = r.u32("column length")? as usize;
        let block_end = r
            .pos
            .checked_add(block_len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| r.err(format!("truncated column {i}")))?;
        let name_len = r.u32("name length")? as usize;
        let name = std::str::from_utf8(r.take(name_len, "column name")?)
            .map_err(|_| r.err(format!("column {i} name is not UTF-8")))?
            .to_owned();
        let role = {
            let b = r.u8("role")?;
            byte_role(b).ok_or_else(|| r.err(format!("column {name:?}: bad role byte {b}")))?
        };
        let data = match r.u8("kind")? {
            0 => {
                let arity = r.u32("arity")?;
                if arity == 0 {
                    return Err(r.err(format!("column {name:?}: zero arity")));
                }
                let width = code_width(arity);
                let raw = r.take(n_rows * width, "categorical codes")?;
                let mut codes = Vec::with_capacity(n_rows);
                for (row, c) in raw.chunks_exact(width).enumerate() {
                    let mut le = [0u8; 4];
                    le[..width].copy_from_slice(c);
                    let code = u32::from_le_bytes(le);
                    if code >= arity {
                        return Err(r.err(format!(
                            "column {name:?} row {row}: code {code} >= arity {arity}"
                        )));
                    }
                    codes.push(code);
                }
                ColumnData::Cat { codes, arity }
            }
            1 => {
                let raw = r.take(n_rows * 8, "numeric values")?;
                ColumnData::Num(
                    raw.chunks_exact(8)
                        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8"))))
                        .collect(),
                )
            }
            other => return Err(r.err(format!("column {name:?}: bad kind byte {other}"))),
        };
        if r.pos != block_end {
            return Err(r.err(format!(
                "column {name:?}: length prefix disagrees with content ({} != {})",
                r.pos, block_end
            )));
        }
        columns.push(Column { name, role, data });
    }
    if r.pos != bytes.len() {
        return Err(r.err("trailing bytes after last column"));
    }
    Table::new(columns).map_err(|e| CodecError {
        offset: bytes.len(),
        msg: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(vec![
            Column::cat("gender", Role::Sensitive, vec![0, 1, 0, 1], 2),
            Column::cat("plan", Role::Admissible, vec![0, 0, 1, 2], 3),
            Column::num(
                "income",
                Role::Feature,
                vec![30.25, -0.0, f64::MAX, 1.0e-300],
            ),
            Column::cat("approved", Role::Target, vec![1, 0, 1, 0], 2),
            Column::cat("id", Role::Key, vec![0, 1, 2, 3], 4),
        ])
        .unwrap()
    }

    #[test]
    fn round_trips_exactly() {
        let t = sample();
        let bytes = encode_table(&t);
        let back = decode_table(&bytes).unwrap();
        assert_eq!(back.n_rows(), t.n_rows());
        assert_eq!(back.columns(), t.columns());
    }

    #[test]
    fn round_trips_float_bits_exactly() {
        // Values CSV text would mangle: negative zero, subnormals, full
        // 17-significant-digit mantissas.
        let t = Table::new(vec![Column::num(
            "v",
            Role::Feature,
            vec![-0.0, f64::MIN_POSITIVE / 2.0, 0.1 + 0.2, f64::NEG_INFINITY],
        )])
        .unwrap();
        let back = decode_table(&encode_table(&t)).unwrap();
        let orig = match &t.columns()[0].data {
            ColumnData::Num(v) => v,
            _ => unreachable!(),
        };
        let got = match &back.columns()[0].data {
            ColumnData::Num(v) => v,
            _ => unreachable!(),
        };
        for (a, b) in orig.iter().zip(got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new(vec![]).unwrap();
        let back = decode_table(&encode_table(&t)).unwrap();
        assert_eq!(back.n_cols(), 0);
        assert_eq!(back.n_rows(), 0);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = encode_table(&sample());
        bytes[0] = b'X';
        assert!(decode_table(&bytes).unwrap_err().msg.contains("magic"));
        let mut bytes = encode_table(&sample());
        bytes[4] = 9;
        assert!(decode_table(&bytes).unwrap_err().msg.contains("version"));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = encode_table(&sample());
        // Every strict prefix must fail loudly, never panic.
        for cut in 0..bytes.len() {
            assert!(
                decode_table(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn forged_huge_counts_fail_cleanly_without_reserving() {
        // A tiny frame claiming u32::MAX columns (or a huge row count)
        // must error on validation, not reserve gigabytes first.
        let mut bytes = encode_table(&sample());
        bytes[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_table(&bytes).unwrap_err().msg.contains("column"));
        let mut bytes = encode_table(&sample());
        bytes[5..13].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_table(&bytes).unwrap_err().msg.contains("row count"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode_table(&sample());
        bytes.push(0);
        assert!(decode_table(&bytes).unwrap_err().msg.contains("trailing"));
    }

    #[test]
    fn rejects_out_of_range_codes() {
        let t = Table::new(vec![Column::cat("c", Role::Feature, vec![0, 1], 2)]).unwrap();
        let mut bytes = encode_table(&t);
        // Arity 2 codes travel as single bytes; the last byte is row 1's
        // code — forge it past the arity.
        let n = bytes.len();
        bytes[n - 1] = 7;
        let err = decode_table(&bytes).unwrap_err();
        assert!(err.msg.contains("arity"), "{err}");
    }

    #[test]
    fn wide_arities_round_trip_through_wider_code_widths() {
        // Arities straddling the 1-/2-/4-byte width boundaries, with
        // codes at the extremes of each range.
        for arity in [2u32, 256, 257, 65536, 65537, u32::MAX] {
            let codes = vec![0, 1, arity - 1, arity / 2];
            let t = Table::new(vec![Column::cat("c", Role::Feature, codes, arity)]).unwrap();
            let back = decode_table(&encode_table(&t)).unwrap();
            assert_eq!(back.columns(), t.columns(), "arity {arity}");
        }
    }

    #[test]
    fn binary_is_smaller_than_csv_for_categorical_data() {
        // The serving workloads are overwhelmingly low-arity categorical;
        // one byte per code must beat the CSV digits-plus-commas text.
        let t = Table::new(
            (0..8)
                .map(|c| {
                    Column::cat(
                        format!("c{c}"),
                        Role::Feature,
                        (0..2000).map(|i| ((i + c) % 4) as u32).collect(),
                        4,
                    )
                })
                .collect(),
        )
        .unwrap();
        let bin = encode_table(&t).len();
        let csv = crate::csv::to_csv_string(&t).len();
        assert!(bin < csv, "binary {bin} !< csv {csv}");
    }

    #[test]
    fn rejects_bad_role_and_kind_bytes() {
        let t = Table::new(vec![Column::cat("c", Role::Feature, vec![0], 1)]).unwrap();
        let bytes = encode_table(&t);
        // Block starts after magic(4)+version(1)+rows(8)+cols(4)+len(4);
        // name_len(4)+name(1) precede the role byte.
        let role_at = 4 + 1 + 8 + 4 + 4 + 4 + 1;
        let mut forged = bytes.clone();
        forged[role_at] = 9;
        assert!(decode_table(&forged).unwrap_err().msg.contains("role"));
        let mut forged = bytes;
        forged[role_at + 1] = 7;
        assert!(decode_table(&forged).unwrap_err().msg.contains("kind"));
    }

    #[test]
    fn rejects_duplicate_names() {
        let a = Table::new(vec![Column::cat("c", Role::Feature, vec![0], 1)]).unwrap();
        let one = encode_table(&a);
        // Splice the single column block in twice and bump the count.
        let header = 4 + 1 + 8;
        let mut forged = one[..header].to_vec();
        forged.extend_from_slice(&2u32.to_le_bytes());
        forged.extend_from_slice(&one[header + 4..]);
        forged.extend_from_slice(&one[header + 4..]);
        let err = decode_table(&forged).unwrap_err();
        assert!(err.msg.contains("duplicate"), "{err}");
    }

    #[test]
    fn append_frame_round_trips_and_magics_do_not_cross() {
        let t = sample();
        let bytes = encode_row_batch(&t);
        assert_eq!(&bytes[..4], b"FSA1");
        let back = decode_row_batch(&bytes).unwrap();
        assert_eq!(back.columns(), t.columns());
        // A put payload is not an append payload and vice versa.
        assert!(decode_row_batch(&encode_table(&t))
            .unwrap_err()
            .msg
            .contains("magic"));
        assert!(decode_table(&bytes).unwrap_err().msg.contains("magic"));
    }

    /// A zero-row batch is a legal frame: the schema still round-trips
    /// (names, roles, arities) with no row payload, so a streaming client
    /// can send an empty append (e.g. a heartbeat flush) and the server
    /// treats it as a schema-checked no-op rather than an error.
    #[test]
    fn append_frame_round_trips_zero_rows() {
        let t = sample();
        let empty = t.take_rows(&[]);
        assert_eq!(empty.n_rows(), 0);
        let bytes = encode_row_batch(&empty);
        let back = decode_row_batch(&bytes).unwrap();
        assert_eq!(back.n_rows(), 0);
        assert_eq!(back.columns(), empty.columns());
        // The parent accepts it: concat is the identity on rows.
        let grown = t.concat(&back).unwrap();
        assert_eq!(grown.n_rows(), t.n_rows());
        assert_eq!(grown.columns(), t.columns());
    }

    /// A single-row batch is the smallest real append and must round-trip
    /// exactly — categorical codes and f64 bit patterns alike.
    #[test]
    fn append_frame_round_trips_single_row() {
        let t = sample();
        let one = t.take_rows(&[1]);
        assert_eq!(one.n_rows(), 1);
        let back = decode_row_batch(&encode_row_batch(&one)).unwrap();
        assert_eq!(back.columns(), one.columns());
    }

    #[test]
    fn append_frame_rejects_truncation_anywhere() {
        let bytes = encode_row_batch(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_row_batch(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn append_frame_rejects_lying_row_count() {
        // A row count larger than the payload can hold must fail on the
        // size check (huge counts) or on the per-column reads (small lies),
        // never panic or over-allocate.
        let bytes = encode_row_batch(&sample());
        let mut huge = bytes.clone();
        huge[5..13].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_row_batch(&huge)
            .unwrap_err()
            .msg
            .contains("row count"));
        let mut off_by_some = bytes;
        off_by_some[5..13].copy_from_slice(&16u64.to_le_bytes());
        assert!(decode_row_batch(&off_by_some).is_err());
    }

    #[test]
    fn append_frame_rejects_out_of_range_codes() {
        let t = Table::new(vec![Column::cat("c", Role::Feature, vec![0, 1], 2)]).unwrap();
        let mut bytes = encode_row_batch(&t);
        let n = bytes.len();
        bytes[n - 1] = 9;
        let err = decode_row_batch(&bytes).unwrap_err();
        assert!(err.msg.contains("arity"), "{err}");
    }

    #[test]
    fn binary_is_smaller_than_csv_for_numeric_data() {
        let values: Vec<f64> = (0..2000).map(|i| (i as f64) * 0.123456789).collect();
        let t = Table::new(vec![Column::num("v", Role::Feature, values)]).unwrap();
        let bin = encode_table(&t).len();
        let csv = crate::csv::to_csv_string(&t).len();
        assert!(bin < csv, "binary {bin} !< csv {csv}");
    }
}
