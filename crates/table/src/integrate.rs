//! The data-integration pipeline: a base training table plus feature
//! sources joined in by PK-FK keys (§1, §3 of the paper).
//!
//! The paper's setting is exactly this: a data engineer has `D = {S, A, Y}`
//! and a catalogue of candidate sources whose features would improve
//! accuracy, some of which would also leak protected information. The
//! [`SourceRegistry`] materializes the exhaustive join, and the selection
//! algorithms in `fairsel-core` then decide which of the integrated columns
//! are safe to keep.

use crate::table::{Table, TableError};

/// A named feature source joined to the base table by a PK-FK pair.
#[derive(Clone, Debug)]
pub struct Source {
    /// Human-readable source name (provenance, shows up in errors).
    pub name: String,
    /// The dimension table.
    pub table: Table,
    /// Foreign-key column in the base table.
    pub fk: String,
    /// Primary-key column in `table`.
    pub pk: String,
}

/// Registry of sources to integrate with a base table.
#[derive(Clone, Debug)]
pub struct SourceRegistry {
    base: Table,
    sources: Vec<Source>,
}

impl SourceRegistry {
    /// Start from the base training table (must already contain the FK
    /// columns the sources will join on).
    pub fn new(base: Table) -> Self {
        Self {
            base,
            sources: Vec::new(),
        }
    }

    /// Register a feature source.
    pub fn add_source(
        mut self,
        name: impl Into<String>,
        table: Table,
        fk: impl Into<String>,
        pk: impl Into<String>,
    ) -> Self {
        self.sources.push(Source {
            name: name.into(),
            table,
            fk: fk.into(),
            pk: pk.into(),
        });
        self
    }

    /// Number of registered sources.
    pub fn n_sources(&self) -> usize {
        self.sources.len()
    }

    /// The base table.
    pub fn base(&self) -> &Table {
        &self.base
    }

    /// Materialize the exhaustive integrated table (all sources joined).
    ///
    /// Join failures are decorated with the offending source name so data
    /// engineers can see which feed broke referential integrity.
    pub fn integrate(&self) -> Result<Table, TableError> {
        let mut out = self.base.clone();
        for s in &self.sources {
            out = out
                .join(&s.table, &s.fk, &s.pk)
                .map_err(|e| TableError::JoinError(format!("source {:?}: {e}", s.name)))?;
        }
        Ok(out)
    }

    /// Names of feature columns contributed by each source (provenance
    /// map: source name → feature names).
    pub fn provenance(&self) -> Vec<(String, Vec<String>)> {
        self.sources
            .iter()
            .map(|s| {
                let feats = s
                    .table
                    .columns()
                    .iter()
                    .filter(|c| c.name != s.pk)
                    .map(|c| c.name.clone())
                    .collect();
                (s.name.clone(), feats)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Role};

    fn base() -> Table {
        Table::new(vec![
            Column::cat("id", Role::Key, vec![0, 1, 2], 3),
            Column::cat("race", Role::Sensitive, vec![0, 1, 0], 2),
            Column::cat("y", Role::Target, vec![1, 0, 1], 2),
        ])
        .unwrap()
    }

    fn source_a() -> Table {
        Table::new(vec![
            Column::cat("pid", Role::Key, vec![2, 1, 0], 3),
            Column::num("credit", Role::Feature, vec![0.2, 0.5, 0.9]),
        ])
        .unwrap()
    }

    fn source_b() -> Table {
        Table::new(vec![
            Column::cat("pid", Role::Key, vec![0, 1, 2], 3),
            Column::cat("zip", Role::Feature, vec![0, 1, 2], 3),
        ])
        .unwrap()
    }

    #[test]
    fn integrates_all_sources_in_order() {
        let reg = SourceRegistry::new(base())
            .add_source("credit-bureau", source_a(), "id", "pid")
            .add_source("census", source_b(), "id", "pid");
        assert_eq!(reg.n_sources(), 2);
        let t = reg.integrate().unwrap();
        assert_eq!(t.n_cols(), 5);
        // id 0 -> source_a row 2 -> credit 0.9
        assert_eq!(t.expect_column("credit").to_f64(), vec![0.9, 0.5, 0.2]);
        assert_eq!(t.expect_column("zip").codes().unwrap(), &[0, 1, 2]);
    }

    #[test]
    fn join_error_names_the_source() {
        let broken = Table::new(vec![
            Column::cat("pid", Role::Key, vec![0], 3),
            Column::num("v", Role::Feature, vec![1.0]),
        ])
        .unwrap();
        let reg = SourceRegistry::new(base()).add_source("broken-feed", broken, "id", "pid");
        let err = reg.integrate().unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("broken-feed"),
            "error should name the source: {msg}"
        );
    }

    #[test]
    fn provenance_lists_feature_columns() {
        let reg = SourceRegistry::new(base()).add_source("credit-bureau", source_a(), "id", "pid");
        let prov = reg.provenance();
        assert_eq!(prov.len(), 1);
        assert_eq!(prov[0].0, "credit-bureau");
        assert_eq!(prov[0].1, vec!["credit".to_owned()]);
    }

    #[test]
    fn empty_registry_returns_base() {
        let reg = SourceRegistry::new(base());
        let t = reg.integrate().unwrap();
        assert_eq!(t.n_cols(), base().n_cols());
    }
}
